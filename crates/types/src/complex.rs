//! A minimal complex number.
//!
//! The collision-kernel matrices are nonsymmetric, so their spectra (Figure 2
//! of the paper) live in the complex plane. The eigenvalue solver in
//! `batsolv-eigen` returns values of this type. Only the operations the
//! Francis QR iteration and spectrum diagnostics need are implemented.

use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Complex zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// Complex one.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Construct from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Construct a purely real value.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Modulus `|z|`, computed with `hypot` for robustness against
    /// overflow/underflow of the squared components.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let re = ((r + self.re) / 2.0).max(0.0).sqrt();
        let im_mag = ((r - self.re) / 2.0).max(0.0).sqrt();
        Complex::new(re, if self.im >= 0.0 { im_mag } else { -im_mag })
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        // Smith's algorithm: avoids overflow when one component dominates.
        if rhs.re.abs() >= rhs.im.abs() {
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Complex::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Complex::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl core::fmt::Display for Complex {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-14;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < TOL
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert!(close(z + Complex::ZERO, z));
        assert!(close(z * Complex::ONE, z));
        assert!(close(z - z, Complex::ZERO));
        assert!(close(z + (-z), Complex::ZERO));
    }

    #[test]
    fn modulus_of_3_4() {
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < TOL);
        assert!((Complex::new(3.0, 4.0).norm_sqr() - 25.0).abs() < TOL);
    }

    #[test]
    fn multiplication_rotates() {
        let i = Complex::new(0.0, 1.0);
        assert!(close(i * i, Complex::from_real(-1.0)));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.25, 7.0);
        assert!(close(a * b / b, a));
        // Branch with |im| > |re| in the divisor.
        let c = Complex::new(1e-3, 5.0);
        assert!(close(a * c / c, a));
    }

    #[test]
    fn sqrt_squares_back() {
        for &z in &[
            Complex::new(2.0, 3.0),
            Complex::new(-1.0, 0.5),
            Complex::new(-4.0, 0.0),
            Complex::new(0.0, -9.0),
        ] {
            let s = z.sqrt();
            assert!((s * s - z).abs() < 1e-12, "sqrt({z}) = {s}");
            // Principal branch: non-negative real part.
            assert!(s.re >= -TOL);
        }
    }

    #[test]
    fn conjugate_and_arg() {
        let z = Complex::new(1.0, 1.0);
        assert!(close(z.conj(), Complex::new(1.0, -1.0)));
        assert!((z.arg() - std::f64::consts::FRAC_PI_4).abs() < TOL);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
