//! The floating-point scalar abstraction.
//!
//! All batched kernels are generic over [`Scalar`] so the library supports
//! both single and double precision, mirroring Ginkgo's `ValueType` template
//! parameter. The XGC collision kernel requires double precision (the paper
//! solves to an absolute tolerance of 1e-10), so `f64` is the default
//! throughout the higher-level crates.

use core::fmt::{Debug, Display};
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real floating-point scalar usable in all batched kernels.
///
/// The bound set is exactly what the solver, format, and simulator kernels
/// need; it intentionally avoids pulling in an external numeric-traits crate.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + PartialOrd
    + PartialEq
    + Debug
    + Display
    + Default
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of this precision.
    const EPSILON: Self;
    /// Number of bytes one value occupies (used by the traffic model).
    const BYTES: usize;

    /// Lossy conversion from `f64` (exact for `f64`, rounded for `f32`).
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Conversion from an index, convenient for manufactured solutions.
    fn from_usize(x: usize) -> Self {
        Self::from_f64(x as f64)
    }
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Fused multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// `max` that propagates the larger value (NaN-naive, fine for norms).
    fn max_val(self, other: Self) -> Self {
        if self > other {
            self
        } else {
            other
        }
    }
    /// `min` counterpart of [`Scalar::max_val`].
    fn min_val(self, other: Self) -> Self {
        if self < other {
            self
        } else {
            other
        }
    }
    /// True if the value is finite (not NaN or infinite).
    fn is_finite(self) -> bool;
}

macro_rules! impl_scalar {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;
            const BYTES: usize = core::mem::size_of::<$t>();

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_scalar!(f32);
impl_scalar!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>() {
        assert_eq!(T::from_f64(0.0), T::ZERO);
        assert_eq!(T::from_f64(1.0), T::ONE);
        assert_eq!(T::from_usize(7).to_f64(), 7.0);
        assert!((T::from_f64(2.0).sqrt().to_f64() - 2f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn f64_roundtrip() {
        roundtrip::<f64>();
        assert_eq!(f64::BYTES, 8);
    }

    #[test]
    fn f32_roundtrip() {
        roundtrip::<f32>();
        assert_eq!(f32::BYTES, 4);
    }

    #[test]
    fn abs_and_minmax() {
        assert_eq!((-3.0f64).abs(), 3.0);
        assert_eq!(2.0f64.max_val(5.0), 5.0);
        assert_eq!(2.0f64.min_val(5.0), 2.0);
        assert_eq!(5.0f32.max_val(2.0), 5.0);
    }

    #[test]
    fn mul_add_matches_expression() {
        let (a, b, c) = (1.5f64, 2.0f64, 0.25f64);
        assert!((a.mul_add(b, c) - (a * b + c)).abs() < 1e-15);
    }

    #[test]
    fn finite_detection() {
        assert!(1.0f64.is_finite());
        assert!(!(f64::INFINITY).is_finite());
        assert!(!Scalar::is_finite(f64::NAN));
    }
}
