//! Batch shape descriptor.

use crate::{Error, Result};

/// The shape of a batch of equally-sized square linear systems.
///
/// Every batched object in the library (matrices, multivectors, solver
/// workspaces) carries one of these, mirroring Ginkgo's `batch_dim`. The
/// paper's XGC workload uses `num_systems` on the order of 10^2–10^4 and
/// `num_rows = 992` (a 32×31 two-dimensional velocity grid).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BatchDims {
    /// Number of independent systems in the batch.
    pub num_systems: usize,
    /// Rows of each (square) system.
    pub num_rows: usize,
}

impl BatchDims {
    /// Create a batch shape. Both components must be non-zero.
    pub fn new(num_systems: usize, num_rows: usize) -> Result<Self> {
        if num_systems == 0 || num_rows == 0 {
            return Err(Error::InvalidConfig(format!(
                "batch dims must be non-zero, got {num_systems} systems of {num_rows} rows"
            )));
        }
        Ok(BatchDims {
            num_systems,
            num_rows,
        })
    }

    /// Total number of scalar unknowns across the batch.
    #[inline]
    pub fn total_rows(&self) -> usize {
        self.num_systems * self.num_rows
    }

    /// Offset of system `i`'s data within a contiguous per-system-major array.
    #[inline]
    pub fn system_offset(&self, i: usize) -> usize {
        debug_assert!(i < self.num_systems);
        i * self.num_rows
    }

    /// Check that another batch shape matches, producing a descriptive error.
    pub fn ensure_same(&self, other: &BatchDims, op: &str) -> Result<()> {
        if self != other {
            return Err(crate::dim_mismatch!(
                "{op}: batch {}x{} vs {}x{}",
                self.num_systems,
                self.num_rows,
                other.num_systems,
                other.num_rows
            ));
        }
        Ok(())
    }
}

impl core::fmt::Display for BatchDims {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} systems of size {}", self.num_systems, self.num_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(BatchDims::new(0, 4).is_err());
        assert!(BatchDims::new(4, 0).is_err());
        let d = BatchDims::new(3, 5).unwrap();
        assert_eq!(d.total_rows(), 15);
        assert_eq!(d.system_offset(2), 10);
    }

    #[test]
    fn ensure_same_reports_shapes() {
        let a = BatchDims::new(2, 4).unwrap();
        let b = BatchDims::new(2, 5).unwrap();
        assert!(a.ensure_same(&a, "x").is_ok());
        let err = a.ensure_same(&b, "spmv").unwrap_err();
        assert!(err.to_string().contains("spmv"));
        assert!(err.to_string().contains("2x4"));
    }

    #[test]
    fn display_is_readable() {
        let d = BatchDims::new(10, 992).unwrap();
        assert_eq!(d.to_string(), "10 systems of size 992");
    }
}
