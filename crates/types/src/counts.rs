//! Operation-count instrumentation.
//!
//! Every numeric kernel in the library (SpMV per format, batched BLAS ops,
//! preconditioner applications) can report how much arithmetic it performed
//! and how many bytes it touched in each address space. The GPU execution
//! model in `batsolv-gpusim` prices these counts against a device
//! description (peak FP64 rate, memory bandwidth, cache sizes) to produce
//! simulated kernel times — this is how the paper's Figures 6–9 and
//! Table II are regenerated without GPU hardware.

use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul};

/// Arithmetic and memory-traffic counts for one (portion of a) kernel.
///
/// `lane_active` / `lane_total` track SIMD lane occupancy: for every warp
/// (or wavefront) instruction issued, `lane_total` grows by the warp width
/// and `lane_active` by the number of lanes doing useful work. Their ratio
/// is the "wavefront/warp use" column of the paper's Table II.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Floating-point operations (adds, multiplies; an FMA counts as two).
    pub flops: u64,
    /// Bytes requested from global memory by loads.
    pub global_read_bytes: u64,
    /// Bytes written to global memory by stores.
    pub global_write_bytes: u64,
    /// Bytes read from (simulated) local shared memory.
    pub shared_read_bytes: u64,
    /// Bytes written to (simulated) local shared memory.
    pub shared_write_bytes: u64,
    /// SIMD lanes that carried useful work, summed over issued warp-ops.
    pub lane_active: u64,
    /// SIMD lanes issued (active or idle), summed over issued warp-ops.
    pub lane_total: u64,
    /// Warp instructions that exchange data **across lanes** (shuffle /
    /// DPP steps of warp-parallel reductions). Priced separately: they
    /// are cheap on NVIDIA warps but markedly slower on AMD's 64-wide
    /// wavefronts — one reason `BatchCsr`'s warp-per-row reduction falls
    /// behind on the MI100 (paper Section V).
    pub cross_warp_ops: u64,
}

impl OpCounts {
    /// The zero count.
    pub const ZERO: OpCounts = OpCounts {
        flops: 0,
        global_read_bytes: 0,
        global_write_bytes: 0,
        shared_read_bytes: 0,
        shared_write_bytes: 0,
        lane_active: 0,
        lane_total: 0,
        cross_warp_ops: 0,
    };

    /// Fraction of issued lanes doing useful work, in `[0, 1]`.
    /// Returns 1.0 for an empty count (no instructions issued).
    pub fn lane_utilization(&self) -> f64 {
        if self.lane_total == 0 {
            1.0
        } else {
            self.lane_active as f64 / self.lane_total as f64
        }
    }

    /// Total bytes moving through the global memory system.
    pub fn global_bytes(&self) -> u64 {
        self.global_read_bytes + self.global_write_bytes
    }

    /// Record a warp-granular operation: `active` useful lanes out of warps
    /// covering `active` lanes with width `warp`.
    ///
    /// `ops` is the number of such warp instructions issued.
    pub fn record_lanes(&mut self, active: u64, warp: u64, ops: u64) {
        let warps = active.div_ceil(warp).max(1);
        self.lane_active += active * ops;
        self.lane_total += warps * warp * ops;
    }

    /// Arithmetic intensity in flops per global byte (`inf` if no traffic).
    pub fn arithmetic_intensity(&self) -> f64 {
        let b = self.global_bytes();
        if b == 0 {
            f64::INFINITY
        } else {
            self.flops as f64 / b as f64
        }
    }
}

impl Add for OpCounts {
    type Output = OpCounts;
    fn add(self, rhs: OpCounts) -> OpCounts {
        OpCounts {
            flops: self.flops + rhs.flops,
            global_read_bytes: self.global_read_bytes + rhs.global_read_bytes,
            global_write_bytes: self.global_write_bytes + rhs.global_write_bytes,
            shared_read_bytes: self.shared_read_bytes + rhs.shared_read_bytes,
            shared_write_bytes: self.shared_write_bytes + rhs.shared_write_bytes,
            lane_active: self.lane_active + rhs.lane_active,
            lane_total: self.lane_total + rhs.lane_total,
            cross_warp_ops: self.cross_warp_ops + rhs.cross_warp_ops,
        }
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for OpCounts {
    type Output = OpCounts;
    /// Scale every count by `k` (e.g. per-iteration counts × iterations).
    fn mul(self, k: u64) -> OpCounts {
        OpCounts {
            flops: self.flops * k,
            global_read_bytes: self.global_read_bytes * k,
            global_write_bytes: self.global_write_bytes * k,
            shared_read_bytes: self.shared_read_bytes * k,
            shared_write_bytes: self.shared_write_bytes * k,
            lane_active: self.lane_active * k,
            lane_total: self.lane_total * k,
            cross_warp_ops: self.cross_warp_ops * k,
        }
    }
}

impl Sum for OpCounts {
    fn sum<I: Iterator<Item = OpCounts>>(iter: I) -> OpCounts {
        iter.fold(OpCounts::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_identity() {
        let c = OpCounts {
            flops: 10,
            global_read_bytes: 80,
            ..OpCounts::ZERO
        };
        assert_eq!(c + OpCounts::ZERO, c);
    }

    #[test]
    fn lane_utilization_of_empty_is_full() {
        assert_eq!(OpCounts::ZERO.lane_utilization(), 1.0);
    }

    #[test]
    fn record_lanes_partial_warp() {
        // 9 active lanes on a 32-wide warp: one warp issued, 9/32 useful.
        let mut c = OpCounts::ZERO;
        c.record_lanes(9, 32, 1);
        assert_eq!(c.lane_active, 9);
        assert_eq!(c.lane_total, 32);
        assert!((c.lane_utilization() - 9.0 / 32.0).abs() < 1e-15);
    }

    #[test]
    fn record_lanes_multiple_warps() {
        // 992 active lanes over 32-wide warps: 31 warps, fully utilized.
        let mut c = OpCounts::ZERO;
        c.record_lanes(992, 32, 3);
        assert_eq!(c.lane_total, 992 * 3);
        assert_eq!(c.lane_utilization(), 1.0);
    }

    #[test]
    fn scaling_multiplies_everything() {
        let mut c = OpCounts::ZERO;
        c.flops = 3;
        c.global_write_bytes = 8;
        c.record_lanes(4, 32, 1);
        let s = c * 5;
        assert_eq!(s.flops, 15);
        assert_eq!(s.global_write_bytes, 40);
        assert_eq!(s.lane_active, 20);
        assert_eq!(s.lane_total, 160);
    }

    #[test]
    fn sum_accumulates() {
        let mk = |f| OpCounts {
            flops: f,
            ..OpCounts::ZERO
        };
        let total: OpCounts = [mk(1), mk(2), mk(3)].into_iter().sum();
        assert_eq!(total.flops, 6);
    }

    #[test]
    fn arithmetic_intensity() {
        let c = OpCounts {
            flops: 100,
            global_read_bytes: 40,
            global_write_bytes: 10,
            ..OpCounts::ZERO
        };
        assert!((c.arithmetic_intensity() - 2.0).abs() < 1e-15);
        assert!(OpCounts::ZERO.arithmetic_intensity().is_infinite());
    }
}
