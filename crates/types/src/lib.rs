//! Foundation types shared by every `batsolv` crate.
//!
//! This crate is deliberately dependency-free. It provides:
//!
//! * [`Scalar`] — the floating-point abstraction (`f32`/`f64`) used by all
//!   numeric kernels;
//! * [`Complex`] — a minimal complex number used by the eigenvalue solver
//!   (matrices in the collision kernel are nonsymmetric, so spectra are
//!   complex);
//! * [`BatchDims`] — the shape of a batch of equally-sized linear systems;
//! * [`Error`] / [`Result`] — the common error type.

pub mod complex;
pub mod counts;
pub mod dims;
pub mod error;
pub mod scalar;

pub use complex::Complex;
pub use counts::OpCounts;
pub use dims::BatchDims;
pub use error::{Error, Result};
pub use scalar::Scalar;
