//! The common error type for all `batsolv` crates.

use core::fmt;

/// Result alias using [`Error`].
pub type Result<T> = core::result::Result<T, Error>;

/// Errors produced anywhere in the batched-solver stack.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Operand shapes are incompatible. The message describes the operation
    /// and both shapes.
    DimensionMismatch(String),
    /// A matrix entry of the batch is (numerically) singular.
    SingularMatrix {
        /// Index of the offending system within the batch.
        batch_index: usize,
        /// Description of where the breakdown occurred (e.g. pivot row).
        detail: String,
    },
    /// An iterative solver hit its iteration limit before reaching the
    /// requested tolerance on at least one system of the batch.
    NotConverged {
        /// Index of the first non-converged system.
        batch_index: usize,
        /// Iterations performed.
        iterations: usize,
        /// Final residual norm of that system.
        residual: f64,
    },
    /// A Krylov method suffered an internal breakdown (e.g. `rho == 0` in
    /// BiCGSTAB) that restarting could not cure.
    Breakdown {
        /// Index of the offending system within the batch.
        batch_index: usize,
        /// Name of the quantity that vanished.
        quantity: &'static str,
    },
    /// Input data is not a valid instance of the requested format.
    InvalidFormat(String),
    /// A configuration value is out of range for the target device.
    InvalidConfig(String),
    /// Matrix Market (or other) I/O failed.
    Io(String),
    /// The device (or its simulator) failed to execute a launch. The whole
    /// fused batch is lost: per-system recovery inside a failed launch is
    /// impossible, so callers must retry or fail every member.
    DeviceFailure {
        /// Short machine-readable failure code (e.g. `launch_failure`).
        code: &'static str,
    },
    /// An index into a batch (or other indexed collection) is out of
    /// range. The structured form lets dynamic fan-out code report the
    /// failing lane instead of panicking in release builds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// Number of valid entries (valid indices are `0..len`).
        len: usize,
        /// What was being indexed (static description of the access site).
        context: &'static str,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            Error::SingularMatrix {
                batch_index,
                detail,
            } => {
                write!(f, "singular matrix in batch entry {batch_index}: {detail}")
            }
            Error::NotConverged {
                batch_index,
                iterations,
                residual,
            } => write!(
                f,
                "batch entry {batch_index} did not converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
            Error::Breakdown {
                batch_index,
                quantity,
            } => {
                write!(
                    f,
                    "Krylov breakdown ({quantity} vanished) in batch entry {batch_index}"
                )
            }
            Error::InvalidFormat(msg) => write!(f, "invalid matrix format: {msg}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Io(msg) => write!(f, "I/O error: {msg}"),
            Error::DeviceFailure { code } => {
                write!(f, "device failure ({code}): fused launch lost")
            }
            Error::IndexOutOfBounds {
                index,
                len,
                context,
            } => {
                write!(
                    f,
                    "index {index} out of bounds for {context} of length {len}"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

/// Construct a [`Error::DimensionMismatch`] with a formatted message.
#[macro_export]
macro_rules! dim_mismatch {
    ($($arg:tt)*) => {
        $crate::Error::DimensionMismatch(format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::NotConverged {
            batch_index: 3,
            iterations: 100,
            residual: 1.5e-3,
        };
        let msg = e.to_string();
        assert!(msg.contains("entry 3"));
        assert!(msg.contains("100 iterations"));
        assert!(msg.contains("1.500e-3"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing.mtx");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(ref m) if m.contains("missing.mtx")));
    }

    #[test]
    fn dim_mismatch_macro_formats() {
        let e = dim_mismatch!("spmv: matrix {}x{} vs vector {}", 4, 4, 5);
        assert_eq!(
            e.to_string(),
            "dimension mismatch: spmv: matrix 4x4 vs vector 5"
        );
    }

    #[test]
    fn index_out_of_bounds_names_the_access_site() {
        let e = Error::IndexOutOfBounds {
            index: 9,
            len: 4,
            context: "XGC workload systems",
        };
        let msg = e.to_string();
        assert!(msg.contains("index 9"));
        assert!(msg.contains("length 4"));
        assert!(msg.contains("XGC workload systems"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            Error::InvalidFormat("x".into()),
            Error::InvalidFormat("x".into())
        );
        assert_ne!(
            Error::InvalidFormat("x".into()),
            Error::InvalidConfig("x".into())
        );
    }
}
