//! Deterministic steal/chaos tests (fixed seeds, no wall-clock
//! assertions):
//!
//! 1. when one shard slow-fails every launch and its breaker trips
//!    while peers are stealing from its queue, every submitted request
//!    still gets exactly one terminal outcome;
//! 2. chunks executed by a thief produce *bitwise-identical* solutions
//!    to the same chunks executed without stealing — device placement
//!    changes simulated pricing, never numerics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use batsolv_fleet::{FleetConfig, FleetService};
use batsolv_formats::SparsityPattern;
use batsolv_gpusim::{DeviceSpec, LaunchDisruption, LaunchHook, NoDisruption};
use batsolv_runtime::{
    BatchItem, BreakerConfig, LadderEngine, SolveEngine, SolveError, SolveRequest,
};

fn dominant_values(pattern: &SparsityPattern, bump: f64) -> Vec<f64> {
    (0..pattern.num_rows())
        .flat_map(|r| {
            pattern
                .row_cols(r)
                .iter()
                .map(move |&c| if c as usize == r { 8.0 + bump } else { -1.0 })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Stalls every launch long enough for peers to raid the queue, then
/// fails it — the "sick device" a breaker exists for.
struct SlowFail {
    launches: AtomicU64,
}

impl LaunchHook for SlowFail {
    fn disrupt(&self, _ids: &[u64]) -> LaunchDisruption {
        self.launches.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(15));
        LaunchDisruption::DeviceFail {
            code: "sick_device",
        }
    }
}

/// Stalls shard 0 without failing it, so its queue backs up and peers
/// must steal to make progress.
struct Slow;

impl LaunchHook for Slow {
    fn disrupt(&self, _ids: &[u64]) -> LaunchDisruption {
        LaunchDisruption::Stall(Duration::from_millis(40))
    }
}

#[test]
fn every_request_gets_exactly_one_outcome_when_a_breaker_trips_mid_steal() {
    let pattern = Arc::new(SparsityPattern::stencil_2d(5, 5, false));
    let n = pattern.num_rows();
    let cfg = FleetConfig::new(3)
        .with_min_batch_size(2)
        .with_max_batch_size(8)
        .with_steal(true)
        .with_steal_seed(0xc4a05)
        // trip_after: 1 so the trip follows deterministically from the
        // sick shard failing its first chunk — how many chunks it pops
        // before peers drain its queue is a thread-timing race (release
        // builds drain faster than debug), and the test must not depend
        // on it.
        .with_breaker(BreakerConfig {
            trip_after: 1,
            cooldown: Duration::from_secs(60),
            max_backoff: Duration::from_secs(60),
            degraded_fraction: 0.5,
        });
    let hooks: Vec<Arc<dyn LaunchHook>> = vec![
        Arc::new(SlowFail {
            launches: AtomicU64::new(0),
        }),
        Arc::new(NoDisruption),
        Arc::new(NoDisruption),
    ];
    let service = FleetService::start_with_hooks(Arc::clone(&pattern), cfg, hooks).unwrap();

    // Aim every group at the sick shard; stealing and, after the trip,
    // dispatch-time breaker avoidance route around it.
    let groups = 12usize;
    let per_group = 8usize;
    let mut tickets = Vec::new();
    for _ in 0..groups {
        let group: Vec<SolveRequest> = (0..per_group)
            .map(|_| SolveRequest::new(dominant_values(&pattern, 0.0), vec![1.0; n]))
            .collect();
        tickets.push(service.submit_group(group, Some(0)).unwrap());
    }

    let mut ok = 0usize;
    let mut device_failures = 0usize;
    let mut other = 0usize;
    for t in tickets {
        let outcomes = t.wait_all();
        assert_eq!(outcomes.len(), per_group, "one terminal outcome each");
        for o in outcomes {
            match o {
                Ok(s) => {
                    assert!(s.residual <= 1e-8);
                    ok += 1;
                }
                Err(SolveError::DeviceFailure { code }) => {
                    assert_eq!(code, "sick_device");
                    device_failures += 1;
                }
                Err(_) => other += 1,
            }
        }
    }
    assert_eq!(ok + device_failures + other, groups * per_group);
    assert_eq!(other, 0, "only the injected fault fails requests");

    let snap = service.shutdown();
    // How the race between the sick shard's 15 ms stall-then-fail and
    // its peers' 2 ms steal polls resolves is thread-timing: in a
    // release build the thieves can drain the whole backlog before the
    // sick shard pops a second chunk — or even its first. The test
    // therefore asserts *invariants of the outcome*, never counts:
    // exactly one terminal outcome each (above), only the injected
    // fault kind, accounting equality, and the conditional guarantee
    // that any chunk the sick shard did execute tripped its breaker
    // (trip_after = 1 makes that deterministic).
    if device_failures > 0 {
        assert!(
            snap.shards[0].breaker_trips >= 1,
            "trip_after=1: a failed chunk on the sick shard must trip its breaker"
        );
    }
    assert_eq!(
        snap.completed() + snap.failed(),
        (groups * per_group) as u64,
        "fleet accounting matches delivered outcomes"
    );
}

#[test]
fn stolen_chunks_solve_bitwise_identical_to_unstolen_execution() {
    let pattern = Arc::new(SparsityPattern::stencil_2d(6, 6, false));
    let n = pattern.num_rows();
    let base_cfg = FleetConfig::new(2)
        .with_min_batch_size(4)
        .with_max_batch_size(16)
        .with_steal(true)
        .with_steal_seed(0x5eed);
    let ladder = base_cfg.ladder;
    let hooks: Vec<Arc<dyn LaunchHook>> = vec![Arc::new(Slow), Arc::new(NoDisruption)];
    let service = FleetService::start_with_hooks(Arc::clone(&pattern), base_cfg, hooks).unwrap();

    // Four single-chunk groups, all aimed at the stalled shard 0: it
    // absorbs one launch per 40 ms stall while shard 1 (2 ms poll)
    // steals the backlog.
    let groups: Vec<Vec<SolveRequest>> = (0..4)
        .map(|g| {
            (0..16)
                .map(|i| {
                    SolveRequest::new(
                        dominant_values(&pattern, (g * 16 + i) as f64 * 1e-3),
                        vec![1.0 + i as f64 * 0.25; n],
                    )
                })
                .collect()
        })
        .collect();
    let tickets: Vec<_> = groups
        .iter()
        .map(|g| service.submit_group(g.clone(), Some(0)).unwrap())
        .collect();
    let fleet_solutions: Vec<Vec<Vec<f64>>> = tickets
        .into_iter()
        .map(|t| t.wait_all().into_iter().map(|o| o.unwrap().x).collect())
        .collect();

    let snap = service.shutdown();
    assert!(
        snap.shards[1].steals_in >= 1,
        "the healthy shard stole from the stalled one (got {})",
        snap.shards[1].steals_in
    );

    // Reference: the same chunks through a lone engine, no fleet, no
    // stealing. Solver numerics are placement-independent, so every
    // component must match bit for bit.
    let reference = LadderEngine::new(DeviceSpec::v100(), Arc::clone(&pattern), ladder);
    for (g, group) in groups.iter().enumerate() {
        let items: Vec<BatchItem> = group
            .iter()
            .enumerate()
            .map(|(i, r)| BatchItem {
                id: i as u64,
                values: r.values.clone(),
                rhs: r.rhs.clone(),
                guess: r.guess.clone(),
                tolerance: r.tolerance,
            })
            .collect();
        let report = reference.solve_batch(&items).unwrap();
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(
                fleet_solutions[g][i], outcome.x,
                "group {g} item {i}: stolen execution must be bitwise identical"
            );
        }
    }
}
