//! The `MIN_BATCH_SIZE` boundary, end to end: a chunk of exactly
//! `min_batch_size` systems executes on a GPU shard; one system fewer
//! spills to the CPU banded-LU pool — and the trace events, the fleet
//! snapshot, and the Prometheus per-device labels all agree about it.

use std::sync::Arc;

use batsolv_fleet::{FleetConfig, FleetService};
use batsolv_formats::SparsityPattern;
use batsolv_runtime::{SolveMethod, SolveRequest};
use batsolv_trace::{parse_prom_value, EventKind, MemorySink, Tracer};

fn dominant_values(pattern: &SparsityPattern) -> Vec<f64> {
    (0..pattern.num_rows())
        .flat_map(|r| {
            pattern
                .row_cols(r)
                .iter()
                .map(move |&c| if c as usize == r { 8.0 } else { -1.0 })
                .collect::<Vec<_>>()
        })
        .collect()
}

fn group(pattern: &SparsityPattern, size: usize) -> Vec<SolveRequest> {
    (0..size)
        .map(|_| SolveRequest::new(dominant_values(pattern), vec![1.0; pattern.num_rows()]))
        .collect()
}

const MIN: usize = 8;

fn fleet_with_trace(pattern: &Arc<SparsityPattern>) -> (FleetService, Arc<MemorySink>) {
    let sink = Arc::new(MemorySink::new());
    let tracer = Tracer::new(Arc::clone(&sink) as Arc<dyn batsolv_trace::TraceSink>);
    let cfg = FleetConfig::new(2)
        .with_min_batch_size(MIN)
        .with_max_batch_size(64)
        .with_tracer(tracer);
    (FleetService::start(Arc::clone(pattern), cfg).unwrap(), sink)
}

#[test]
fn exactly_min_batch_size_executes_on_a_gpu_shard() {
    let pattern = Arc::new(SparsityPattern::stencil_2d(6, 6, false));
    let (service, sink) = fleet_with_trace(&pattern);

    let ticket = service.submit_group(group(&pattern, MIN), Some(0)).unwrap();
    for outcome in ticket.wait_all() {
        let s = outcome.unwrap();
        assert!(s.residual <= 1e-10);
        assert_ne!(
            s.method,
            SolveMethod::BandedLuFallback,
            "a min-size chunk stays on the GPU ladder, not the CPU pool"
        );
    }

    let snap = service.shutdown();
    assert_eq!(snap.spilled, 0, "nothing spilled at exactly MIN_BATCH_SIZE");
    assert_eq!(snap.cpu_pool.completed, 0);
    assert_eq!(
        snap.shards.iter().map(|s| s.completed).sum::<u64>(),
        MIN as u64
    );

    let events = sink.snapshot();
    let dispatches: Vec<_> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::ShardDispatch { shard, size, .. } => Some((shard, size)),
            _ => None,
        })
        .collect();
    assert_eq!(dispatches, vec![(0, MIN)], "one GPU dispatch, to shard 0");
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.kind, EventKind::CpuSpill { .. })),
        "no spill event at exactly MIN_BATCH_SIZE"
    );

    let page = batsolv_fleet::fleet_prometheus_text(&snap);
    assert_eq!(
        parse_prom_value(&page, "batsolv_fleet_spilled_systems_total"),
        Some(0.0)
    );
    assert!(
        page.contains(r#"batsolv_fleet_device_completed_total{device="cpu-pool""#),
        "cpu-pool series is exposed even when idle"
    );
}

#[test]
fn one_below_min_batch_size_spills_to_the_cpu_pool() {
    let pattern = Arc::new(SparsityPattern::stencil_2d(6, 6, false));
    let (service, sink) = fleet_with_trace(&pattern);

    let ticket = service
        .submit_group(group(&pattern, MIN - 1), Some(0))
        .unwrap();
    for outcome in ticket.wait_all() {
        let s = outcome.unwrap();
        assert!(s.residual <= 1e-8);
        assert_eq!(
            s.method,
            SolveMethod::BandedLuFallback,
            "spilled systems solve by banded LU on the CPU pool"
        );
    }

    let snap = service.shutdown();
    assert_eq!(snap.spilled, (MIN - 1) as u64);
    assert_eq!(snap.cpu_pool.completed, (MIN - 1) as u64);
    assert_eq!(
        snap.shards.iter().map(|s| s.completed).sum::<u64>(),
        0,
        "no GPU shard saw the group"
    );
    assert!(
        snap.cpu_pool.sim_time_s > 0.0,
        "the spill was priced on the host device profile"
    );

    let events = sink.snapshot();
    let spills: Vec<_> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::CpuSpill {
                size,
                min_batch_size,
            } => Some((size, min_batch_size)),
            _ => None,
        })
        .collect();
    assert_eq!(spills, vec![(MIN - 1, MIN)]);
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.kind, EventKind::ShardDispatch { .. })),
        "no GPU dispatch below the cutoff"
    );
    // The CPU pool's priced launch lands in its own per-device lane.
    let cpu_lane_launches = events
        .iter()
        .filter(|e| {
            matches!(e.kind, EventKind::KernelLaunch { shard, .. }
                if shard == snap.cpu_pool.shard)
        })
        .count();
    assert_eq!(cpu_lane_launches, 1);

    // Trace and Prometheus agree about where the work went.
    let page = batsolv_fleet::fleet_prometheus_text(&snap);
    assert_eq!(
        parse_prom_value(&page, "batsolv_fleet_spilled_systems_total"),
        Some((MIN - 1) as f64)
    );
    let cpu_completed = page
        .lines()
        .find(|l| l.starts_with(r#"batsolv_fleet_device_completed_total{device="cpu-pool""#))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap();
    assert_eq!(cpu_completed as u64, (MIN - 1) as u64);
}
