//! End-to-end fleet service behavior: group solving across shards,
//! atomic submit rejection, breaker-aware dispatch, and drain-on-
//! shutdown semantics.

use std::sync::Arc;
use std::time::Duration;

use batsolv_fleet::{DeviceProfile, FleetConfig, FleetService};
use batsolv_formats::SparsityPattern;
use batsolv_gpusim::{LaunchDisruption, LaunchHook, NoDisruption};
use batsolv_runtime::{BreakerConfig, SolveRequest, SubmitError};
use batsolv_trace::parse_prom_value;

fn dominant_values(pattern: &SparsityPattern) -> Vec<f64> {
    (0..pattern.num_rows())
        .flat_map(|r| {
            pattern
                .row_cols(r)
                .iter()
                .map(move |&c| if c as usize == r { 8.0 } else { -1.0 })
                .collect::<Vec<_>>()
        })
        .collect()
}

fn group(pattern: &SparsityPattern, size: usize) -> Vec<SolveRequest> {
    (0..size)
        .map(|_| SolveRequest::new(dominant_values(pattern), vec![1.0; pattern.num_rows()]))
        .collect()
}

#[test]
fn fleet_solves_groups_across_shards_and_rolls_up_stats() {
    let pattern = Arc::new(SparsityPattern::stencil_2d(6, 6, false));
    let cfg = FleetConfig::new(4)
        .with_profile(DeviceProfile::A100)
        .with_min_batch_size(4)
        .with_max_batch_size(16);
    let service = FleetService::start(Arc::clone(&pattern), cfg).unwrap();
    assert_eq!(service.num_devices(), 4);

    // 48 systems: three 16-wide chunks fanning out over shards.
    let ticket = service.submit_group(group(&pattern, 48), None).unwrap();
    assert_eq!(ticket.len(), 48);
    for outcome in ticket.wait_all() {
        assert!(outcome.unwrap().residual <= 1e-10);
    }

    let snap = service.snapshot();
    assert_eq!(snap.accepted, 48);
    assert_eq!(snap.completed(), 48);
    assert_eq!(snap.failed(), 0);
    assert_eq!(snap.gpu_chunks, 3);
    assert_eq!(snap.spilled, 0);
    let executed: u64 = snap.shards.iter().map(|s| s.chunks_executed).sum();
    assert_eq!(executed, 3);
    assert!(snap.makespan_s > 0.0);
    assert!(snap.sim_time_total_s >= snap.makespan_s);
    assert!(snap.latency_p99 >= snap.latency_p50);

    // The Prometheus page is a pure function of the snapshot.
    let page = batsolv_fleet::fleet_prometheus_text(&snap);
    assert_eq!(
        parse_prom_value(&page, "batsolv_fleet_requests_accepted_total"),
        Some(48.0)
    );
    for d in 0..4 {
        assert!(page.contains(&format!(
            r#"batsolv_fleet_device_chunks_total{{device="{d}",profile="NVIDIA A100-40GB"}}"#
        )));
    }

    // The human-readable page carries the per-shard breakdown.
    let rendered = snap.render();
    assert!(rendered.contains("shard  0"));
    assert!(rendered.contains("steals"));
    service.shutdown();
}

#[test]
fn submit_is_atomic_on_rejection() {
    let pattern = Arc::new(SparsityPattern::stencil_2d(4, 4, false));
    let service = FleetService::start(Arc::clone(&pattern), FleetConfig::new(2)).unwrap();

    // Shape errors reject before anything queues.
    let mut bad = group(&pattern, 4);
    bad[3].rhs.pop();
    match service.submit_group(bad, None) {
        Err(SubmitError::ShapeMismatch { field, .. }) => assert_eq!(field, "rhs"),
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
    match service.submit_group(Vec::new(), None) {
        Err(SubmitError::ShapeMismatch { field, .. }) => assert_eq!(field, "group"),
        other => panic!("expected empty-group rejection, got {other:?}"),
    }
    let snap = service.shutdown();
    assert_eq!(snap.accepted, 0, "rejected groups queued nothing");
    assert_eq!(snap.rejected, 1);
}

#[test]
fn dispatch_walks_past_a_tripped_breaker() {
    let pattern = Arc::new(SparsityPattern::stencil_2d(4, 4, false));
    struct AlwaysFail;
    impl LaunchHook for AlwaysFail {
        fn disrupt(&self, _ids: &[u64]) -> LaunchDisruption {
            LaunchDisruption::DeviceFail { code: "dead" }
        }
    }
    let cfg = FleetConfig::new(2)
        .with_min_batch_size(2)
        .with_max_batch_size(8)
        .with_steal(false)
        .with_breaker(BreakerConfig {
            trip_after: 1,
            cooldown: Duration::from_secs(60),
            max_backoff: Duration::from_secs(60),
            degraded_fraction: 0.5,
        });
    let hooks: Vec<Arc<dyn LaunchHook>> = vec![Arc::new(AlwaysFail), Arc::new(NoDisruption)];
    let service = FleetService::start_with_hooks(Arc::clone(&pattern), cfg, hooks).unwrap();

    // First group lands on shard 0, fails, trips the breaker.
    let t = service.submit_group(group(&pattern, 4), Some(0)).unwrap();
    for o in t.wait_all() {
        assert!(matches!(
            o,
            Err(batsolv_runtime::SolveError::DeviceFailure { code: "dead" })
        ));
    }

    // Subsequent groups hinted at the dead shard walk to the healthy one.
    let t = service.submit_group(group(&pattern, 4), Some(0)).unwrap();
    for o in t.wait_all() {
        assert!(o.is_ok(), "rerouted to the healthy shard");
    }

    let snap = service.shutdown();
    assert!(snap.shards[0].breaker_open, "shard 0 still cooling down");
    assert_eq!(snap.shards[0].breaker_trips, 1);
    assert_eq!(snap.shards[1].completed, 4);
}

#[test]
fn shutdown_drains_queued_work() {
    let pattern = Arc::new(SparsityPattern::stencil_2d(4, 4, false));
    let service = FleetService::start(
        Arc::clone(&pattern),
        FleetConfig::new(2)
            .with_min_batch_size(2)
            .with_max_batch_size(4),
    )
    .unwrap();
    let tickets: Vec<_> = (0..6)
        .map(|_| service.submit_group(group(&pattern, 4), None).unwrap())
        .collect();
    let snap = service.shutdown();
    assert_eq!(snap.completed(), 24, "queued chunks execute before exit");
    for t in tickets {
        for o in t.wait_all() {
            assert!(o.unwrap().residual <= 1e-10);
        }
    }
}

/// The CPU spill pool ignores the ladder's preconditioner: banded LU is
/// its only rung, so even with the heaviest ladder setting (ILU(0))
/// spilled chunks come back as unpreconditioned direct solves while the
/// GPU shards run the preconditioned ladder.
#[test]
fn cpu_spill_stays_unpreconditioned_banded_lu_under_an_ilu0_ladder() {
    use batsolv_runtime::{PrecondVariant, SolveMethod};

    let pattern = Arc::new(SparsityPattern::stencil_2d(6, 6, false));
    let mut cfg = FleetConfig::new(2)
        .with_profile(DeviceProfile::A100)
        .with_min_batch_size(8)
        .with_max_batch_size(16);
    cfg.ladder.precond = PrecondVariant::Ilu0;
    let service = FleetService::start(Arc::clone(&pattern), cfg).unwrap();

    // A 16-wide group rides the GPU shards (preconditioned ladder); a
    // 5-wide remainder falls below min_batch_size and spills to the CPU.
    let gpu_ticket = service.submit_group(group(&pattern, 16), None).unwrap();
    let spill_ticket = service.submit_group(group(&pattern, 5), None).unwrap();
    for outcome in gpu_ticket.wait_all() {
        let sol = outcome.unwrap();
        assert!(sol.residual <= 1e-8);
        assert_ne!(
            sol.method,
            SolveMethod::BandedLuFallback,
            "full-width chunks must ride the GPU iterative ladder"
        );
    }
    for outcome in spill_ticket.wait_all() {
        let sol = outcome.unwrap();
        assert!(sol.residual <= 1e-8);
        assert_eq!(sol.method, SolveMethod::BandedLuFallback);
        assert_eq!(
            sol.rungs.len(),
            1,
            "the spill pool never escalates: banded LU is its only rung"
        );
        assert_eq!(sol.rungs[0].method, SolveMethod::BandedLuFallback);
    }

    let snap = service.shutdown();
    assert_eq!(snap.spilled, 5);
    assert_eq!(snap.completed(), 21);
    assert_eq!(snap.failed(), 0);
}
