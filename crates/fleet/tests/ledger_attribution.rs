//! End-to-end latency attribution through the fleet: every winning
//! delivery — GPU chunk, CPU spill, group straggler — emits exactly one
//! phase ledger whose wall phases partition the submit → terminal
//! interval, the class tracker agrees with the Prometheus page, and
//! spilled systems record their solve time in the spill phase.

use std::sync::Arc;
use std::time::Duration;

use batsolv_fleet::{FleetConfig, FleetService};
use batsolv_formats::SparsityPattern;
use batsolv_runtime::SolveRequest;
use batsolv_trace::{parse_prom_labeled, EventKind, MemorySink, Tracer, WorkloadClass};

fn dominant_values(pattern: &SparsityPattern) -> Vec<f64> {
    (0..pattern.num_rows())
        .flat_map(|r| {
            pattern
                .row_cols(r)
                .iter()
                .map(move |&c| if c as usize == r { 8.0 } else { -1.0 })
                .collect::<Vec<_>>()
        })
        .collect()
}

fn group(pattern: &SparsityPattern, size: usize) -> Vec<SolveRequest> {
    (0..size)
        .map(|_| SolveRequest::new(dominant_values(pattern), vec![1.0; pattern.num_rows()]))
        .collect()
}

const MIN: usize = 8;

fn fleet_with_trace(pattern: &Arc<SparsityPattern>) -> (FleetService, Arc<MemorySink>) {
    let sink = Arc::new(MemorySink::new());
    let tracer = Tracer::new(Arc::clone(&sink) as Arc<dyn batsolv_trace::TraceSink>);
    let cfg = FleetConfig::new(2)
        .with_min_batch_size(MIN)
        .with_max_batch_size(16)
        .with_tracer(tracer);
    (FleetService::start(Arc::clone(pattern), cfg).unwrap(), sink)
}

#[test]
fn every_winning_delivery_carries_a_balanced_ledger() {
    let pattern = Arc::new(SparsityPattern::stencil_2d(6, 6, false));
    let (fleet, sink) = fleet_with_trace(&pattern);

    // Two chunks of 16 on GPU shards plus a sub-cutoff remainder of 3
    // that spills to the CPU pool.
    let total = 35usize;
    let ticket = fleet
        .submit_group(group(&pattern, total), None)
        .expect("group fits");
    for outcome in ticket.wait_all() {
        assert!(outcome.unwrap().residual <= 1e-10);
    }
    let snap = fleet.shutdown();

    let ledgers: Vec<_> = sink
        .snapshot()
        .into_iter()
        .filter_map(|ev| match ev.kind {
            EventKind::Ledger(l) => Some((ev.trace_id, l)),
            _ => None,
        })
        .collect();
    assert_eq!(
        ledgers.len(),
        total,
        "exactly one ledger per winning delivery"
    );
    for (trace_id, ledger) in &ledgers {
        assert!(trace_id.is_some(), "fleet ledgers are request-scoped");
        assert!(ledger.end_to_end_us > 0.0);
        assert!(
            ledger.balanced_within(1.0),
            "phase sum must match end-to-end: {ledger:?}"
        );
        assert!(
            ledger.solve_us > 0.0 || ledger.spill_us > 0.0,
            "every delivered request spent time in a solve pool"
        );
        assert_eq!(
            ledger.deadline, None,
            "no deadlines were carried by this group"
        );
        assert!(ledger.outcome.starts_with("converged"));
    }
    // The spilled remainder attributes its dispatch to the spill phase
    // (and never to solve); GPU chunks do the opposite.
    let spilled: Vec<_> = ledgers.iter().filter(|(_, l)| l.spill_us > 0.0).collect();
    assert_eq!(spilled.len() as u64, snap.spilled, "3 spilled systems");
    for (_, l) in &spilled {
        assert_eq!(l.solve_us, 0.0, "spill dispatch must not land in solve");
        assert!(
            l.sim_spmv_us + l.sim_reduction_us + l.sim_sync_us >= 0.0,
            "spill ledgers still carry the sim split"
        );
    }
    // Exactly one delivery completed the group: the straggler.
    let stragglers = ledgers.iter().filter(|(_, l)| l.straggler).count();
    assert_eq!(stragglers, 1, "one straggler per submission group");

    // The class tracker observed every delivery, and the diagonally
    // dominant stencil converges fast: all ion-like.
    assert_eq!(snap.classes.total(), total as u64);
    assert_eq!(snap.classes.get(WorkloadClass::IonLike).count, total as u64);
    // The human-readable render lists the populated class.
    assert!(snap.render().contains("ion-like"));
}

#[test]
fn prometheus_page_and_snapshot_agree_on_classes() {
    let pattern = Arc::new(SparsityPattern::stencil_2d(6, 6, false));
    let (fleet, _sink) = fleet_with_trace(&pattern);
    let ticket = fleet
        .submit_group(group(&pattern, 16), None)
        .expect("group fits");
    for outcome in ticket.wait_all() {
        outcome.unwrap();
    }
    let page = fleet.prometheus_text();
    let classes = fleet.classes();
    let ion = classes.get(WorkloadClass::IonLike);
    assert_eq!(ion.count, 16);
    assert_eq!(
        parse_prom_labeled(
            &page,
            "batsolv_fleet_class_requests_total",
            &[("class", "ion-like")],
        ),
        Some(ion.count as f64)
    );
    assert_eq!(
        parse_prom_labeled(
            &page,
            "batsolv_fleet_class_latency_us",
            &[("class", "ion-like"), ("quantile", "0.99")],
        ),
        Some(ion.p99_us as f64),
        "page p99 must match the snapshot p99"
    );
    batsolv_trace::check_prom_conformance(&page).expect("live fleet page must be conformant");
    let _ = fleet.shutdown();
}

#[test]
fn deadline_ledgers_report_hits_and_misses() {
    let pattern = Arc::new(SparsityPattern::stencil_2d(6, 6, false));
    let (fleet, sink) = fleet_with_trace(&pattern);
    // A generous deadline every system meets comfortably.
    let requests: Vec<SolveRequest> = group(&pattern, MIN)
        .into_iter()
        .map(|r| r.with_deadline(Duration::from_secs(60)))
        .collect();
    let ticket = fleet.submit_group(requests, None).expect("feasible group");
    for outcome in ticket.wait_all() {
        outcome.unwrap();
    }
    let _ = fleet.shutdown();
    let ledgers: Vec<_> = sink
        .snapshot()
        .into_iter()
        .filter_map(|ev| match ev.kind {
            EventKind::Ledger(l) => Some(l),
            _ => None,
        })
        .collect();
    assert_eq!(ledgers.len(), MIN);
    for l in &ledgers {
        assert_eq!(l.deadline, Some(true), "generous deadlines are hits");
        assert!(l.balanced_within(1.0));
    }
}
