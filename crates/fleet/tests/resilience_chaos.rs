//! Chaos tests for the fleet's robustness layers: deadline budgets,
//! retry-with-backoff, and hedged dispatch.
//!
//! The centerpiece is a retries × hedges × fault-type matrix (also run
//! combo-by-combo in CI via the `CHAOS_FAULT` / `CHAOS_RETRIES` /
//! `CHAOS_HEDGE` environment variables): under injected device
//! failures, stalls, and worker panics, every submitted system gets
//! *exactly one* terminal outcome, only the injected fault kind ever
//! fails a request, and fleet accounting (`completed + failed`)
//! matches delivered outcomes. With retries on, transient faults are
//! survived entirely: every system converges.

use std::sync::Arc;
use std::time::Duration;

use batsolv_faults::{FaultPlan, FaultRates, TransientFaults};
use batsolv_fleet::{FleetConfig, FleetService, HedgeConfig, RetryPolicy};
use batsolv_formats::SparsityPattern;
use batsolv_gpusim::{DeviceSpec, LaunchDisruption, LaunchHook, NoDisruption};
use batsolv_runtime::{
    BatchItem, LadderEngine, SolveEngine, SolveError, SolveRequest, SubmitError,
};
use batsolv_trace::{EventKind, MemorySink, TraceSink, Tracer};

fn dominant_values(pattern: &SparsityPattern, bump: f64) -> Vec<f64> {
    (0..pattern.num_rows())
        .flat_map(|r| {
            pattern
                .row_cols(r)
                .iter()
                .map(move |&c| if c as usize == r { 8.0 + bump } else { -1.0 })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Always stalls the launch (a straggler, not a failure).
struct Stall(Duration);

impl LaunchHook for Stall {
    fn disrupt(&self, _ids: &[u64]) -> LaunchDisruption {
        LaunchDisruption::Stall(self.0)
    }
}

/// One matrix cell: a transient fault of `fault` kind on shard 0 of a
/// 3-shard fleet, with the given retry/hedge policies. Returns nothing;
/// asserts the exactly-once and taxonomy invariants inside.
fn run_matrix_case(fault: &str, max_attempts: u32, hedge_on: bool) {
    let pattern = Arc::new(SparsityPattern::stencil_2d(5, 5, false));
    let n = pattern.num_rows();
    let rates = match fault {
        "device_fail" => FaultRates {
            device_fail: 1.0,
            ..Default::default()
        },
        "stall" => FaultRates {
            stall: 1.0,
            ..Default::default()
        },
        "panic" => FaultRates {
            panic: 1.0,
            ..Default::default()
        },
        other => panic!("unknown CHAOS_FAULT {other:?}"),
    };
    let plan = FaultPlan::new(0xc4a0_5000, rates).with_stall_duration(Duration::from_millis(25));
    let hedge = if hedge_on {
        HedgeConfig::enabled()
            .with_min_delay(Duration::from_millis(5))
            .with_p99_factor(3.0)
    } else {
        HedgeConfig::disabled()
    };
    let cfg = FleetConfig::new(3)
        .with_min_batch_size(2)
        .with_max_batch_size(8)
        .with_steal(true)
        .with_retry(RetryPolicy::new(max_attempts).with_seed(7))
        .with_hedge(hedge);
    let hooks: Vec<Arc<dyn LaunchHook>> = vec![
        Arc::new(TransientFaults::new(plan)),
        Arc::new(NoDisruption),
        Arc::new(NoDisruption),
    ];
    let service = FleetService::start_with_hooks(Arc::clone(&pattern), cfg, hooks).unwrap();

    let groups = 6usize;
    let per_group = 8usize;
    let mut tickets = Vec::new();
    for _ in 0..groups {
        let group: Vec<SolveRequest> = (0..per_group)
            .map(|_| SolveRequest::new(dominant_values(&pattern, 0.0), vec![1.0; n]))
            .collect();
        tickets.push(service.submit_group(group, Some(0)).unwrap());
    }

    let mut ok = 0usize;
    let mut injected = 0usize;
    for t in tickets {
        let outcomes = t.wait_all();
        assert_eq!(outcomes.len(), per_group, "one terminal outcome each");
        for o in outcomes {
            match o {
                Ok(s) => {
                    assert!(s.residual <= 1e-8);
                    ok += 1;
                }
                Err(SolveError::DeviceFailure { code }) => {
                    assert_eq!(code, "injected_launch_failure");
                    assert_eq!(fault, "device_fail", "fault kind matches the injection");
                    injected += 1;
                }
                Err(SolveError::WorkerPanic { .. }) => {
                    assert_eq!(fault, "panic", "fault kind matches the injection");
                    injected += 1;
                }
                Err(other) => panic!("unexpected terminal outcome: {other}"),
            }
        }
    }
    assert_eq!(ok + injected, groups * per_group);
    // A stall never fails a launch; and any transient fault is survived
    // entirely once retries are on (the re-route lands on a clean shard
    // or clears the first-sighting filter).
    if fault == "stall" || max_attempts > 1 {
        assert_eq!(
            injected, 0,
            "fault={fault} retries={max_attempts}: every system must converge"
        );
    }

    let snap = service.shutdown();
    assert_eq!(
        snap.completed() + snap.failed(),
        (groups * per_group) as u64,
        "exactly-once accounting: counters match delivered outcomes"
    );
    assert_eq!(snap.completed(), ok as u64);
    assert_eq!(snap.failed(), injected as u64);
}

/// Full retries × hedges × fault-type sweep, or a single cell when the
/// `CHAOS_*` environment variables narrow it (the CI matrix job).
#[test]
fn chaos_matrix_exactly_one_terminal_outcome_per_system() {
    let want_fault = std::env::var("CHAOS_FAULT").ok();
    let want_retries = std::env::var("CHAOS_RETRIES").ok();
    let want_hedge = std::env::var("CHAOS_HEDGE").ok();
    for fault in ["device_fail", "stall", "panic"] {
        if want_fault.as_deref().is_some_and(|w| w != fault) {
            continue;
        }
        for retries in [1u32, 3] {
            if want_retries
                .as_deref()
                .is_some_and(|w| w != retries.to_string())
            {
                continue;
            }
            for hedge in [false, true] {
                let label = if hedge { "on" } else { "off" };
                if want_hedge.as_deref().is_some_and(|w| w != label) {
                    continue;
                }
                eprintln!("matrix cell: fault={fault} retries={retries} hedge={label}");
                run_matrix_case(fault, retries, hedge);
            }
        }
    }
}

#[test]
fn hedged_winner_solutions_are_bitwise_identical_to_unhedged_execution() {
    let pattern = Arc::new(SparsityPattern::stencil_2d(6, 6, false));
    let n = pattern.num_rows();
    // Steal OFF: queued chunks stay behind the straggler, and the idle
    // peer's only way to help is a hedge of the in-flight chunk.
    let cfg = FleetConfig::new(2)
        .with_min_batch_size(4)
        .with_max_batch_size(16)
        .with_steal(false)
        .with_hedge(
            HedgeConfig::enabled()
                .with_min_delay(Duration::from_millis(5))
                .with_p99_factor(3.0),
        );
    let ladder = cfg.ladder;
    let hooks: Vec<Arc<dyn LaunchHook>> = vec![
        Arc::new(Stall(Duration::from_millis(40))),
        Arc::new(NoDisruption),
    ];
    let service = FleetService::start_with_hooks(Arc::clone(&pattern), cfg, hooks).unwrap();

    let groups: Vec<Vec<SolveRequest>> = (0..4)
        .map(|g| {
            (0..16)
                .map(|i| {
                    SolveRequest::new(
                        dominant_values(&pattern, (g * 16 + i) as f64 * 1e-3),
                        vec![1.0 + i as f64 * 0.25; n],
                    )
                })
                .collect()
        })
        .collect();
    let tickets: Vec<_> = groups
        .iter()
        .map(|g| service.submit_group(g.clone(), Some(0)).unwrap())
        .collect();
    let fleet_solutions: Vec<Vec<Vec<f64>>> = tickets
        .into_iter()
        .map(|t| t.wait_all().into_iter().map(|o| o.unwrap().x).collect())
        .collect();

    let snap = service.shutdown();
    assert!(
        snap.hedges_fired() >= 1,
        "the idle shard hedged the straggler (fired {})",
        snap.hedges_fired()
    );
    assert!(
        snap.hedges_won() >= 1,
        "a 40 ms stall loses to a clean duplicate (won {})",
        snap.hedges_won()
    );

    // Reference: the same chunks through a lone engine — no fleet, no
    // hedging. Solver numerics are placement- and duplication-
    // independent, so the hedged winners must match bit for bit.
    let reference = LadderEngine::new(DeviceSpec::v100(), Arc::clone(&pattern), ladder);
    for (g, group) in groups.iter().enumerate() {
        let items: Vec<BatchItem> = group
            .iter()
            .enumerate()
            .map(|(i, r)| BatchItem {
                id: i as u64,
                values: r.values.clone(),
                rhs: r.rhs.clone(),
                guess: r.guess.clone(),
                tolerance: r.tolerance,
            })
            .collect();
        let report = reference.solve_batch(&items).unwrap();
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(
                fleet_solutions[g][i], outcome.x,
                "group {g} item {i}: hedged execution must be bitwise identical"
            );
        }
    }
}

#[test]
fn budget_expiring_while_queued_sheds_instead_of_executing() {
    let pattern = Arc::new(SparsityPattern::stencil_2d(5, 5, false));
    let n = pattern.num_rows();
    let cfg = FleetConfig::new(1)
        .with_min_batch_size(2)
        .with_max_batch_size(8)
        .with_steal(false);
    let hooks: Vec<Arc<dyn LaunchHook>> = vec![Arc::new(Stall(Duration::from_millis(30)))];
    let service = FleetService::start_with_hooks(Arc::clone(&pattern), cfg, hooks).unwrap();

    // Group A (no deadline) occupies the lone shard for 30 ms; group B
    // carries a 10 ms budget that expires while it sits queued behind A.
    let group_a: Vec<SolveRequest> = (0..8)
        .map(|_| SolveRequest::new(dominant_values(&pattern, 0.0), vec![1.0; n]))
        .collect();
    let group_b: Vec<SolveRequest> = (0..8)
        .map(|_| {
            SolveRequest::new(dominant_values(&pattern, 0.0), vec![1.0; n])
                .with_deadline(Duration::from_millis(10))
        })
        .collect();
    let ticket_a = service.submit_group(group_a, Some(0)).unwrap();
    let ticket_b = service.submit_group(group_b, Some(0)).unwrap();

    for o in ticket_a.wait_all() {
        assert!(o.is_ok(), "undeadlined group solves despite the stall");
    }
    for o in ticket_b.wait_all() {
        match o {
            Err(SolveError::DeadlineExceeded { waited, deadline }) => {
                assert_eq!(deadline, Duration::from_millis(10));
                assert!(waited >= deadline, "budget was spent before dispatch");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    let snap = service.shutdown();
    assert_eq!(snap.shed(), 8, "every deadlined system was shed");
    assert_eq!(snap.completed(), 8);
    assert_eq!(snap.failed(), 8);
}

#[test]
fn infeasible_deadline_is_rejected_at_admission() {
    let pattern = Arc::new(SparsityPattern::stencil_2d(5, 5, false));
    let n = pattern.num_rows();
    let service = FleetService::start(
        Arc::clone(&pattern),
        FleetConfig::new(2).with_min_batch_size(2),
    )
    .unwrap();

    // A zero deadline can never cover the predicted chunk cost: the
    // whole group is fast-failed before anything queues.
    let group: Vec<SolveRequest> = (0..8)
        .map(|_| {
            SolveRequest::new(dominant_values(&pattern, 0.0), vec![1.0; n])
                .with_deadline(Duration::ZERO)
        })
        .collect();
    match service.submit_group(group, None) {
        Err(SubmitError::Infeasible { predicted, budget }) => {
            assert!(predicted > Duration::ZERO);
            assert_eq!(budget, Duration::ZERO);
        }
        other => panic!("expected Infeasible, got {other:?}"),
    }

    let snap = service.shutdown();
    assert_eq!(snap.rejected, 8, "the whole group counts as rejected");
    assert_eq!(snap.accepted, 0);
    assert_eq!(snap.gpu_chunks, 0, "nothing was queued");
    assert_eq!(snap.completed() + snap.failed(), 0);
}

#[test]
fn retry_reroutes_to_a_different_shard_with_attempt_attribution() {
    let pattern = Arc::new(SparsityPattern::stencil_2d(5, 5, false));
    let n = pattern.num_rows();
    let sink = Arc::new(MemorySink::new());
    let plan = FaultPlan::new(
        0xf1ee,
        FaultRates {
            device_fail: 1.0,
            ..Default::default()
        },
    );
    // Steal OFF so the first attempt definitely executes on the faulty
    // shard 0 rather than being rescued by a thief.
    let cfg = FleetConfig::new(2)
        .with_min_batch_size(2)
        .with_max_batch_size(8)
        .with_steal(false)
        .with_retry(RetryPolicy::new(2).with_seed(11))
        .with_tracer(Tracer::new(Arc::clone(&sink) as Arc<dyn TraceSink>));
    let hooks: Vec<Arc<dyn LaunchHook>> =
        vec![Arc::new(TransientFaults::new(plan)), Arc::new(NoDisruption)];
    let service = FleetService::start_with_hooks(Arc::clone(&pattern), cfg, hooks).unwrap();

    let group: Vec<SolveRequest> = (0..8)
        .map(|_| SolveRequest::new(dominant_values(&pattern, 0.0), vec![1.0; n]))
        .collect();
    let ticket = service.submit_group(group, Some(0)).unwrap();
    for o in ticket.wait_all() {
        assert!(o.is_ok(), "the retry on the clean shard succeeds: {o:?}");
    }

    let snap = service.shutdown();
    assert!(
        snap.shards[0].retries >= 1,
        "the faulty shard re-queued its failed chunk"
    );

    let events = sink.snapshot();
    let retry = events
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::RetryAttempt {
                from,
                to,
                attempt,
                reason,
                ..
            } => Some((*from, *to, *attempt, *reason)),
            _ => None,
        })
        .expect("a RetryAttempt event was traced");
    assert_eq!(retry.0, 0, "retry originates on the faulty shard");
    assert_eq!(retry.1, 1, "and re-routes to the other shard");
    assert_eq!(retry.2, 2, "attempt attribution: second execution");
    assert_eq!(retry.3, "device_failure");
}
