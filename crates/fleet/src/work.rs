//! Work items flowing through the fleet: pending systems, routed
//! chunks, and the group ticket callers redeem for outcomes.

use std::sync::mpsc;
use std::time::Instant;

use batsolv_runtime::{RequestId, SolveError, SolveOutcome};

/// One accepted system awaiting execution, with its reply channel.
pub(crate) struct Pending {
    /// Fleet-assigned request id (one namespace across shards).
    pub id: RequestId,
    /// CSR values over the fleet's shared pattern.
    pub values: Vec<f64>,
    /// Right-hand side.
    pub rhs: Vec<f64>,
    /// Optional warm-start guess.
    pub guess: Option<Vec<f64>>,
    /// Per-request tolerance override.
    pub tolerance: Option<f64>,
    /// When the system entered a queue (wait measurement).
    pub enqueued: Instant,
    /// Exactly-once outcome channel.
    pub tx: mpsc::Sender<SolveOutcome>,
}

/// A routed unit of execution: the systems of one placement, tagged
/// with the shard the scheduler assigned them to. A thief executing a
/// stolen chunk keeps `origin` so steals stay attributable.
pub(crate) struct Chunk {
    pub items: Vec<Pending>,
    /// The shard the scheduler originally dispatched the chunk to.
    pub origin: u32,
}

impl Chunk {
    pub fn len(&self) -> usize {
        self.items.len()
    }
}

/// Handle for one submitted group: redeem it for every member's
/// terminal outcome, in submission order.
#[derive(Debug)]
pub struct GroupTicket {
    pub(crate) ids: Vec<RequestId>,
    pub(crate) rxs: Vec<mpsc::Receiver<SolveOutcome>>,
}

impl GroupTicket {
    /// Request ids assigned to the group, in submission order.
    pub fn ids(&self) -> &[RequestId] {
        &self.ids
    }

    /// Systems in the group.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True for an empty group (never produced by a successful submit).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Block until every member reaches its terminal outcome.
    pub fn wait_all(self) -> Vec<SolveOutcome> {
        self.rxs
            .into_iter()
            .map(|rx| rx.recv().unwrap_or(Err(SolveError::ServiceShutdown)))
            .collect()
    }
}
