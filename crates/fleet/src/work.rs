//! Work items flowing through the fleet: pending systems, routed
//! chunks, and the group ticket callers redeem for outcomes.
//!
//! The exactly-once contract lives here. Every accepted system owns one
//! [`OutcomeSlot`]: an atomically claimed, single-shot outcome channel.
//! Retries and hedge duplicates mean a system can be *executed* more
//! than once, but only the first executor to reach a terminal outcome
//! wins the slot — every later delivery attempt is a no-op. Stats
//! counters (`completed`/`failed`) increment only on the winning
//! delivery, so accounting matches what the caller observes.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use batsolv_runtime::{DeadlineBudget, RequestId, SolveError, SolveOutcome};

/// Group-completion tracker for straggler attribution: the winning
/// delivery that drops `remaining` to zero finished the group, and its
/// phase ledger gets the `straggler` flag (only meaningful for groups
/// of more than one system).
pub(crate) struct GroupProgress {
    total: usize,
    remaining: AtomicUsize,
}

impl GroupProgress {
    pub fn new(total: usize) -> GroupProgress {
        GroupProgress {
            total,
            remaining: AtomicUsize::new(total),
        }
    }

    /// Record one terminal delivery; true iff it completed a group of
    /// more than one system (the group's straggler).
    pub fn finish_one(&self) -> bool {
        self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 && self.total > 1
    }
}

/// Single-shot, first-winner-wins outcome channel for one system.
///
/// `claimed` is the race arbiter: the first `deliver` to swap it true
/// takes the sender and sends; everyone else sees `false` back and
/// drops their outcome on the floor. The sender is consumed on the
/// winning delivery so the receiver's `recv` can also unblock via
/// disconnect if the service is torn down before any delivery.
pub(crate) struct OutcomeSlot {
    claimed: AtomicBool,
    tx: Mutex<Option<mpsc::Sender<SolveOutcome>>>,
}

impl OutcomeSlot {
    pub fn new(tx: mpsc::Sender<SolveOutcome>) -> OutcomeSlot {
        OutcomeSlot {
            claimed: AtomicBool::new(false),
            tx: Mutex::new(Some(tx)),
        }
    }

    /// Claim the slot, returning its sender to the winner. Losers get
    /// `None`. Winners update stats counters *before* sending, so a
    /// caller unblocked by the outcome always observes consistent
    /// snapshots.
    pub fn claim(&self) -> Option<mpsc::Sender<SolveOutcome>> {
        if self.claimed.swap(true, Ordering::AcqRel) {
            return None;
        }
        self.tx.lock().unwrap().take()
    }

    /// Deliver the terminal outcome if no one has yet. Returns true iff
    /// this call won the slot. Production paths use [`claim`] directly
    /// so counters land before the send; this wrapper keeps the race
    /// tests focused on the claim arbiter itself.
    ///
    /// [`claim`]: OutcomeSlot::claim
    #[cfg(test)]
    pub fn deliver(&self, outcome: SolveOutcome) -> bool {
        match self.claim() {
            Some(tx) => {
                // A dropped receiver is the caller's business, not ours.
                let _ = tx.send(outcome);
                true
            }
            None => false,
        }
    }

    /// True once some executor has won the slot. Advisory only — a
    /// false answer can be stale by the time the caller acts on it, so
    /// it gates *work avoidance*, never correctness.
    pub fn is_claimed(&self) -> bool {
        self.claimed.load(Ordering::Acquire)
    }
}

/// One accepted system awaiting execution, with its reply slot.
///
/// Clone-able because hedging duplicates in-flight work: the hedge
/// executor gets its own copy of the payload but shares the
/// [`OutcomeSlot`] through the `Arc`, which is what keeps the outcome
/// exactly-once.
#[derive(Clone)]
pub(crate) struct Pending {
    /// Fleet-assigned request id (one namespace across shards).
    pub id: RequestId,
    /// CSR values over the fleet's shared pattern.
    pub values: Vec<f64>,
    /// Right-hand side.
    pub rhs: Vec<f64>,
    /// Optional warm-start guess.
    pub guess: Option<Vec<f64>>,
    /// Per-request tolerance override.
    pub tolerance: Option<f64>,
    /// When the system entered a queue (wait measurement). Reset on
    /// retry re-queue so wait samples measure the current hop.
    pub enqueued: Instant,
    /// Remaining deadline budget, if the request carried a deadline.
    /// A value type: it rides the Pending through queues, steals, and
    /// retries, debited at each hop.
    pub budget: Option<DeadlineBudget>,
    /// 1-based execution attempt; bumped when the retry policy
    /// re-routes the system after a retryable failure.
    pub attempt: u32,
    /// Exactly-once outcome channel, shared with any hedge duplicate.
    pub slot: Arc<OutcomeSlot>,
    /// When the group entered `submit_group` — the end-to-end anchor of
    /// the phase ledger. Unlike `enqueued`, never reset.
    pub submitted: Instant,
    /// Validation and placement-planning time before the system entered
    /// its first queue, µs.
    pub admission_us: f64,
    /// Accumulated first-hop shard-queue wait, µs.
    pub queue_us: f64,
    /// Accumulated re-route hop wait (retry re-queues), µs.
    pub transit_us: f64,
    /// Accumulated retry backoff slept on this system's behalf, µs.
    pub backoff_us: f64,
    /// Wall time burned inside failed prior solve attempts, µs.
    pub solve_us: f64,
    /// Group-completion tracker shared by every member.
    pub group: Arc<GroupProgress>,
}

/// A routed unit of execution: the systems of one placement, tagged
/// with the shard the scheduler assigned them to. A thief executing a
/// stolen chunk keeps `origin` so steals stay attributable.
pub(crate) struct Chunk {
    pub items: Vec<Pending>,
    /// The shard the scheduler originally dispatched the chunk to.
    pub origin: u32,
}

impl Chunk {
    pub fn len(&self) -> usize {
        self.items.len()
    }
}

/// Handle for one submitted group: redeem it for every member's
/// terminal outcome, in submission order.
#[derive(Debug)]
pub struct GroupTicket {
    pub(crate) ids: Vec<RequestId>,
    pub(crate) rxs: Vec<mpsc::Receiver<SolveOutcome>>,
}

impl GroupTicket {
    /// Request ids assigned to the group, in submission order.
    pub fn ids(&self) -> &[RequestId] {
        &self.ids
    }

    /// Systems in the group.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True for an empty group (never produced by a successful submit).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Block until every member reaches its terminal outcome.
    pub fn wait_all(self) -> Vec<SolveOutcome> {
        self.rxs
            .into_iter()
            .map(|rx| rx.recv().unwrap_or(Err(SolveError::ServiceShutdown)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_delivers_exactly_once() {
        let (tx, rx) = mpsc::channel();
        let slot = OutcomeSlot::new(tx);
        assert!(!slot.is_claimed());
        assert!(slot.deliver(Err(SolveError::ServiceShutdown)));
        assert!(slot.is_claimed());
        // Second delivery loses the race and is dropped.
        assert!(!slot.deliver(Err(SolveError::DeviceFailure { code: "too_late" })));
        let got = rx.recv().unwrap();
        assert!(matches!(got, Err(SolveError::ServiceShutdown)));
        // Nothing else arrives: sender consumed, channel disconnected.
        assert!(rx.recv().is_err());
    }

    #[test]
    fn concurrent_deliveries_produce_one_winner() {
        for _ in 0..64 {
            let (tx, rx) = mpsc::channel();
            let slot = Arc::new(OutcomeSlot::new(tx));
            let wins: Vec<bool> = std::thread::scope(|s| {
                (0..4)
                    .map(|_| {
                        let slot = Arc::clone(&slot);
                        s.spawn(move || slot.deliver(Err(SolveError::ServiceShutdown)))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            assert_eq!(wins.iter().filter(|&&w| w).count(), 1);
            assert_eq!(rx.try_iter().count(), 1);
        }
    }
}
