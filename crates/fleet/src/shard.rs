//! One fleet shard: a bounded chunk queue, a worker thread driving an
//! escalation-ladder engine on the shard's own simulated device, a
//! per-shard circuit breaker, and per-shard stats.
//!
//! The worker's steal protocol: when its own queue stays empty past a
//! poll interval, it walks its fixed, seeded victim order and takes the
//! *oldest* queued chunk from the first victim with a backlog — the
//! chunk with the worst wait so far, which is what shortens the fleet's
//! tail. A steal is one atomic queue pop, so a chunk executes exactly
//! once no matter how thief, victim, and breaker interleave.
//!
//! Robustness layers on top of that base loop:
//!
//! * **Deadline budgets** — each pending system may carry a
//!   [`DeadlineBudget`]; the worker debits queue wait at dispatch and
//!   sheds systems whose budget is spent (or, at degradation level 2+,
//!   whose remaining budget cannot cover the predicted chunk cost).
//! * **Retry with backoff** — a retryable chunk failure (device fault,
//!   worker panic) re-queues the chunk on a *different* shard after a
//!   deterministic, seeded backoff, until `RetryPolicy::max_attempts`
//!   executions are spent; backoff time is debited from budgets.
//! * **Hedged dispatch** — an idle worker that finds nothing to steal
//!   duplicates a peer's in-flight chunk once its age exceeds the
//!   peer's p99-derived hedge delay. Primary and hedge share
//!   [`OutcomeSlot`]s, so the first terminal outcome wins and the
//!   loser's delivery is a no-op: outcomes stay exactly-once.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use batsolv_runtime::{
    BatchItem, CircuitBreaker, ClassTracker, DeadlineBudget, RequestId, Reservoir, SimSplit,
    Solution, SolveEngine, SolveError, SolveMethod, SolveOutcome,
};
use batsolv_trace::{classify, EventKind, PhaseLedger, Tracer};
use batsolv_types::Error;

use crate::config::{HedgeConfig, RetryPolicy};
use crate::degrade::DegradeState;
use crate::stats::percentile_us;
use crate::work::{Chunk, GroupProgress, Pending};

/// How long a worker waits on its empty queue before probing victims.
const POLL_INTERVAL: Duration = Duration::from_millis(2);

/// Result of a blocking pop.
pub(crate) enum Popped {
    Chunk(Chunk),
    TimedOut,
    /// Closed *and* drained — time to exit.
    Closed,
}

struct QueueState {
    chunks: VecDeque<Chunk>,
    closed: bool,
}

/// Bounded MPMC chunk queue. Push rejects when full (explicit
/// backpressure, like the service queue); `steal` pops the oldest
/// entry from any thread.
pub(crate) struct ChunkQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    capacity: usize,
}

impl ChunkQueue {
    pub fn new(capacity: usize) -> ChunkQueue {
        ChunkQueue {
            state: Mutex::new(QueueState {
                chunks: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Push a chunk; hands it back when the queue is full or closed.
    pub fn try_push(&self, chunk: Chunk) -> Result<(), Chunk> {
        let mut s = self.state.lock().unwrap();
        if s.closed || s.chunks.len() >= self.capacity {
            return Err(chunk);
        }
        s.chunks.push_back(chunk);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocking pop with a timeout. A closed queue drains before
    /// reporting [`Popped::Closed`], so accepted work always executes.
    pub fn pop_wait(&self, timeout: Duration) -> Popped {
        let deadline = Instant::now() + timeout;
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(chunk) = s.chunks.pop_front() {
                return Popped::Chunk(chunk);
            }
            if s.closed {
                return Popped::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return Popped::TimedOut;
            }
            let (guard, _) = self.cv.wait_timeout(s, deadline - now).unwrap();
            s = guard;
        }
    }

    /// Steal the oldest queued chunk (used by other shards' workers).
    pub fn steal(&self) -> Option<Chunk> {
        self.state.lock().unwrap().chunks.pop_front()
    }

    /// Queued chunks right now.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().chunks.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Close the queue: pushes fail, pops drain then report closed.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.cv.notify_all();
    }
}

#[derive(Default)]
pub(crate) struct SampledShardStats {
    pub wait_us: Reservoir,
    pub latency_us: Reservoir,
}

/// Per-shard counters; lock-free on the hot path, reservoirs for
/// percentile estimates.
pub(crate) struct ShardStats {
    pub chunks_executed: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub steals_in: AtomicU64,
    pub steals_out: AtomicU64,
    pub breaker_trips: AtomicU64,
    /// Chunks this shard re-queued elsewhere after a retryable failure.
    pub retries: AtomicU64,
    /// Hedge duplicates this shard launched against a peer's chunk.
    pub hedges_fired: AtomicU64,
    /// Hedge duplicates this shard won (delivered at least one outcome).
    pub hedges_won: AtomicU64,
    /// Systems shed at dispatch: budget spent, or sub-deadline under
    /// degradation level 2+.
    pub shed: AtomicU64,
    /// Simulated device time, nanoseconds (atomics hold no f64).
    pub sim_time_ns: AtomicU64,
    pub sampled: Mutex<SampledShardStats>,
}

impl ShardStats {
    pub fn new() -> ShardStats {
        ShardStats {
            chunks_executed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            steals_in: AtomicU64::new(0),
            steals_out: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            hedges_fired: AtomicU64::new(0),
            hedges_won: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            sim_time_ns: AtomicU64::new(0),
            sampled: Mutex::new(SampledShardStats::default()),
        }
    }

    fn add_sim_time(&self, seconds: f64) {
        let ns = (seconds * 1e9).max(0.0) as u64;
        self.sim_time_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

/// A chunk currently inside `solve_batch` on some shard, advertised so
/// idle peers can hedge it. `hedged` is the claim bit: only one peer
/// ever duplicates a given flight.
pub(crate) struct InflightChunk {
    pub started: Instant,
    pub origin: u32,
    /// The shard actually executing (differs from `origin` on steals).
    pub executor: u32,
    pub hedged: AtomicBool,
    /// Payload clones sharing the primaries' outcome slots.
    pub items: Vec<Pending>,
}

/// Everything a shard shares with the scheduler and with thieving
/// peers: its queue, breaker, stats, and identity.
pub(crate) struct ShardShared {
    pub id: u32,
    pub device_name: &'static str,
    pub queue: ChunkQueue,
    pub stats: ShardStats,
    pub breaker: CircuitBreaker,
    /// The chunk this shard's worker has in flight, if hedging is on.
    pub inflight: Mutex<Option<Arc<InflightChunk>>>,
}

/// Whether an execution is the scheduled flight or a hedge duplicate.
#[derive(Clone, Copy)]
pub(crate) enum ChunkRole {
    Primary,
    /// A duplicate of a chunk in flight on shard `primary`.
    Hedge {
        primary: u32,
    },
}

/// Everything one worker thread needs: its shard, its peers (for
/// steals, retries, and hedges), the engine, and the shared policies.
pub(crate) struct WorkerCtx {
    pub shard: Arc<ShardShared>,
    pub peers: Arc<Vec<Arc<ShardShared>>>,
    pub engine: Arc<dyn SolveEngine>,
    /// Fixed victim-visit order (empty disables stealing).
    pub victims: Vec<u32>,
    pub tracer: Tracer,
    pub retry: RetryPolicy,
    pub hedge: HedgeConfig,
    pub degrade: Arc<DegradeState>,
    /// Device-model prediction for one full chunk (admission and
    /// level-2 shedding both compare budgets against it).
    pub predicted_chunk_cost: Duration,
    /// Fleet-wide per-class latency/SLO tracker; every winning delivery
    /// feeds its phase ledger through here.
    pub classes: Arc<ClassTracker>,
    /// True for the CPU spill pool's worker: its dispatch wall time
    /// lands in the ledger's `spill` phase instead of `solve`.
    pub is_spill: bool,
}

/// Spawn one shard's worker loop.
pub(crate) fn spawn_shard_worker(ctx: WorkerCtx) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("fleet-shard-{}", ctx.shard.id))
        .spawn(move || loop {
            match ctx.shard.queue.pop_wait(POLL_INTERVAL) {
                Popped::Chunk(chunk) => {
                    execute_chunk(&ctx, chunk, ChunkRole::Primary);
                }
                Popped::Closed => break,
                Popped::TimedOut => {
                    // Raid greedily while idle: once a steal succeeds,
                    // keep taking chunks (re-checking our own queue
                    // between them) instead of paying the poll interval
                    // per stolen chunk.
                    let mut raided = false;
                    while ctx.shard.queue.is_empty() {
                        let mut stole = false;
                        for &v in &ctx.victims {
                            let victim = &ctx.peers[v as usize];
                            if let Some(chunk) = victim.queue.steal() {
                                victim.stats.steals_out.fetch_add(1, Ordering::Relaxed);
                                ctx.shard.stats.steals_in.fetch_add(1, Ordering::Relaxed);
                                ctx.tracer.emit(
                                    None,
                                    EventKind::ShardSteal {
                                        thief: ctx.shard.id,
                                        victim: chunk.origin,
                                        size: chunk.len(),
                                    },
                                );
                                execute_chunk(&ctx, chunk, ChunkRole::Primary);
                                stole = true;
                                raided = true;
                                break;
                            }
                        }
                        if !stole {
                            break;
                        }
                    }
                    // Nothing queued anywhere: consider hedging a
                    // straggling peer flight before going back to sleep.
                    if !raided {
                        try_hedge(&ctx);
                    }
                }
            }
        })
        .expect("spawn fleet shard worker")
}

/// Metadata retained per item across the solve call (the payload moves
/// into the [`BatchItem`]s). Carries the request's phase accumulators
/// with this hop's wait already attributed, so the terminal ledger can
/// be built from the meta alone.
#[derive(Clone)]
struct ItemMeta {
    id: RequestId,
    slot: Arc<crate::work::OutcomeSlot>,
    budget: Option<DeadlineBudget>,
    enqueued: Instant,
    wait: Duration,
    attempt: u32,
    submitted: Instant,
    admission_us: f64,
    queue_us: f64,
    transit_us: f64,
    backoff_us: f64,
    hedge_us: f64,
    /// Wall time burned in failed prior solve attempts.
    prior_solve_us: f64,
    group: Arc<GroupProgress>,
}

/// Build one fleet request's phase ledger at its terminal moment. Wall
/// phases partition `[submit_group entry, now]`: admission (validation
/// and placement planning), queue (first-hop shard queue), transit
/// (retry re-queue hops), backoff (retry sleeps), hedge (enqueue →
/// duplicate dispatch, on hedge-delivered requests), solve/spill (this
/// attempt's dispatch wall time, by executing pool), with prior failed
/// attempts' dispatch time folded into solve. `close()` pushes the
/// residual into `other` so the phase-sum invariant holds exactly.
#[allow(clippy::too_many_arguments)]
fn build_fleet_ledger(
    m: &ItemMeta,
    outcome: &'static str,
    iterations: u32,
    converged: bool,
    exec_us: f64,
    is_spill: bool,
    sim: Option<&SimSplit>,
    straggler: bool,
    now: Instant,
) -> PhaseLedger {
    let mut ledger = PhaseLedger {
        outcome,
        class: classify(iterations, converged),
        iterations,
        straggler,
        deadline: m.budget.as_ref().map(|_| outcome != "deadline_exceeded"),
        end_to_end_us: now.saturating_duration_since(m.submitted).as_secs_f64() * 1e6,
        admission_us: m.admission_us,
        queue_us: m.queue_us,
        transit_us: m.transit_us,
        backoff_us: m.backoff_us,
        hedge_us: m.hedge_us,
        solve_us: m.prior_solve_us,
        ..PhaseLedger::default()
    };
    if is_spill {
        ledger.spill_us += exec_us;
    } else {
        ledger.solve_us += exec_us;
    }
    if let Some(sim) = sim {
        ledger.sim_spmv_us = sim.spmv_us;
        ledger.sim_reduction_us = sim.reduction_us;
        ledger.sim_sync_us = sim.sync_us;
        ledger.sim_transfer_us = sim.transfer_us;
    }
    ledger.close();
    ledger
}

/// Emit the ledger event and feed the class tracker — the single point
/// every winning fleet delivery funnels through.
fn record_terminal(ctx: &WorkerCtx, id: RequestId, ledger: PhaseLedger) {
    ctx.classes.observe_ledger(Some(id), &ledger);
    ctx.tracer.emit(Some(id), EventKind::Ledger(ledger));
}

/// Ledger-building view of a rebuilt [`Pending`] (retry paths deliver
/// terminal failures from Pendings, not metas).
fn pending_meta(p: &Pending) -> ItemMeta {
    ItemMeta {
        id: p.id,
        slot: Arc::clone(&p.slot),
        budget: p.budget,
        enqueued: p.enqueued,
        wait: Duration::ZERO,
        attempt: p.attempt,
        submitted: p.submitted,
        admission_us: p.admission_us,
        queue_us: p.queue_us,
        transit_us: p.transit_us,
        backoff_us: p.backoff_us,
        hedge_us: 0.0,
        prior_solve_us: p.solve_us,
        group: Arc::clone(&p.group),
    }
}

/// Execute one chunk on this worker's engine. Terminal outcomes go
/// through each item's [`OutcomeSlot`](crate::work::OutcomeSlot), so no
/// path — success, shed, engine error, retry exhaustion, worker panic,
/// lost hedge race — ever delivers twice or drops an item.
pub(crate) fn execute_chunk(ctx: &WorkerCtx, chunk: Chunk, role: ChunkRole) {
    let shard = &ctx.shard;
    if chunk.len() == 0 {
        return;
    }
    let dispatch_start = Instant::now();
    let is_primary = matches!(role, ChunkRole::Primary);
    let register_hedge = is_primary && ctx.hedge.enabled && ctx.degrade.hedging_allowed();
    let origin = chunk.origin;

    let mut meta: Vec<ItemMeta> = Vec::with_capacity(chunk.len());
    let mut items: Vec<BatchItem> = Vec::with_capacity(chunk.len());
    let mut hedge_clones: Vec<Pending> = Vec::new();
    let mut shed = 0usize;

    for mut p in chunk.items {
        if p.slot.is_claimed() {
            // The other side of a hedge pair already delivered this
            // one; executing it again would be pure waste.
            continue;
        }
        // Clone for the hedge advertisement *before* attributing this
        // hop's wait: the duplicate measures its own enqueue → hedge
        // dispatch span as the hedge phase, so pre-charging the
        // primary's queue wait here would double-count the interval.
        if register_hedge {
            hedge_clones.push(p.clone());
        }
        let wait = dispatch_start.saturating_duration_since(p.enqueued);
        // Attribute this hop's wait to its phase: first-hop primary
        // dispatch is queueing, a retry re-queue is a transit hop, and
        // a hedge duplicate charges its whole enqueue → dispatch span
        // (queue plus the primary's partial flight) to the hedge phase.
        let wait_us = wait.as_secs_f64() * 1e6;
        let mut hedge_us = 0.0;
        match role {
            ChunkRole::Primary if p.attempt == 1 => p.queue_us += wait_us,
            ChunkRole::Primary => p.transit_us += wait_us,
            ChunkRole::Hedge { .. } => hedge_us = wait_us,
        }
        let mut shed_now = false;
        if is_primary {
            if let Some(budget) = p.budget.as_mut() {
                budget.debit(wait);
                shed_now = budget.is_exhausted()
                    || (ctx.degrade.shedding() && !budget.covers(ctx.predicted_chunk_cost));
            }
        }
        let m = ItemMeta {
            id: p.id,
            slot: Arc::clone(&p.slot),
            budget: p.budget,
            enqueued: p.enqueued,
            wait,
            attempt: p.attempt,
            submitted: p.submitted,
            admission_us: p.admission_us,
            queue_us: p.queue_us,
            transit_us: p.transit_us,
            backoff_us: p.backoff_us,
            hedge_us,
            prior_solve_us: p.solve_us,
            group: Arc::clone(&p.group),
        };
        if shed_now {
            if let Some(tx) = m.slot.claim() {
                shard.stats.failed.fetch_add(1, Ordering::Relaxed);
                shard.stats.shed.fetch_add(1, Ordering::Relaxed);
                shed += 1;
                let budget = m.budget.expect("shed implies a deadline budget");
                let straggler = m.group.finish_one();
                let ledger = build_fleet_ledger(
                    &m,
                    "deadline_exceeded",
                    0,
                    false,
                    0.0,
                    ctx.is_spill,
                    None,
                    straggler,
                    Instant::now(),
                );
                record_terminal(ctx, m.id, ledger);
                let _ = tx.send(Err(SolveError::DeadlineExceeded {
                    waited: budget.consumed(),
                    deadline: budget.total(),
                }));
            }
            continue;
        }
        meta.push(m);
        items.push(BatchItem {
            id: p.id,
            values: p.values,
            rhs: p.rhs,
            guess: p.guess,
            tolerance: p.tolerance,
        });
    }
    if shed > 0 {
        ctx.tracer.emit(
            None,
            EventKind::Shed {
                shard: shard.id,
                size: shed,
                level: ctx.degrade.level(),
            },
        );
    }
    let n = items.len();
    if n == 0 {
        return;
    }

    // Advertise the flight for hedging *before* the (possibly
    // stalling) solve, and retract it after.
    if register_hedge {
        let infl = Arc::new(InflightChunk {
            started: dispatch_start,
            origin,
            executor: shard.id,
            hedged: AtomicBool::new(false),
            items: hedge_clones,
        });
        *shard.inflight.lock().unwrap() = Some(infl);
    }

    let result = catch_unwind(AssertUnwindSafe(|| ctx.engine.solve_batch(&items)));
    shard.stats.chunks_executed.fetch_add(1, Ordering::Relaxed);
    if register_hedge {
        *shard.inflight.lock().unwrap() = None;
    }

    // Feed the breaker *before* outcomes go out: on_batch guards the
    // device, and a caller unblocked by a failure delivery must observe
    // the trip on its very next submit. (The breaker sees every
    // execution's health — including a losing hedge's — because it
    // guards the device, not the outcome slots.)
    let degraded = match &result {
        Ok(Ok(report)) => report
            .outcomes
            .iter()
            .filter(|o| !o.converged || o.method == SolveMethod::BandedLuFallback)
            .count(),
        _ => n,
    };
    if shard.breaker.on_batch(Instant::now(), n, degraded) {
        shard.stats.breaker_trips.fetch_add(1, Ordering::Relaxed);
        ctx.tracer.emit(None, EventKind::BreakerTrip);
    }

    match result {
        Ok(Ok(report)) => {
            shard.stats.add_sim_time(report.sim_time_s);
            let finished = Instant::now();
            let exec_us = finished.duration_since(dispatch_start).as_secs_f64() * 1e6;
            let item_sim = report.split.per_item(n);
            let mut delivered = 0usize;
            for (outcome, m) in report.outcomes.into_iter().zip(meta) {
                let outcome_tag = if outcome.converged {
                    match outcome.method {
                        SolveMethod::Bicgstab => "converged_bicgstab",
                        SolveMethod::Gmres => "converged_gmres",
                        SolveMethod::BandedLuFallback => "converged_banded_lu",
                    }
                } else {
                    "not_converged"
                };
                let terminal: SolveOutcome = if outcome.converged {
                    Ok(Solution {
                        x: outcome.x,
                        iterations: outcome.iterations,
                        residual: outcome.residual,
                        method: outcome.method,
                        batch_size: n,
                        queue_wait: m.wait,
                        rungs: outcome.rungs,
                    })
                } else {
                    Err(SolveError::NotConverged {
                        iterations: outcome.iterations,
                        residual: outcome.residual,
                        breakdown: outcome.breakdown,
                        rungs: outcome.rungs,
                    })
                };
                let won = outcome.converged;
                // Claim first, count second, send last: by the time the
                // caller's `wait_all` unblocks, every counter and sample
                // for this outcome has already landed.
                if let Some(tx) = m.slot.claim() {
                    delivered += 1;
                    if won {
                        shard.stats.completed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        shard.stats.failed.fetch_add(1, Ordering::Relaxed);
                    }
                    // Only the slot winner samples: the reservoirs then
                    // reflect the latency callers actually observed.
                    {
                        let mut s = shard.stats.sampled.lock().unwrap();
                        s.wait_us.push(m.wait.as_micros() as u64);
                        s.latency_us.push(m.enqueued.elapsed().as_micros() as u64);
                    }
                    let straggler = m.group.finish_one();
                    let ledger = build_fleet_ledger(
                        &m,
                        outcome_tag,
                        outcome.iterations,
                        outcome.converged,
                        exec_us,
                        ctx.is_spill,
                        Some(&item_sim),
                        straggler,
                        Instant::now(),
                    );
                    record_terminal(ctx, m.id, ledger);
                    let _ = tx.send(terminal);
                }
            }
            if let ChunkRole::Hedge { primary } = role {
                if delivered > 0 {
                    shard.stats.hedges_won.fetch_add(1, Ordering::Relaxed);
                    ctx.tracer.emit(
                        None,
                        EventKind::HedgeWon {
                            winner: shard.id,
                            loser: primary,
                            size: delivered,
                        },
                    );
                }
            }
        }
        Ok(Err(err)) => {
            // The engine failed the whole fused launch (e.g. a simulated
            // device fault): every member fails, none is lost.
            let code = match err {
                Error::DeviceFailure { code } => code,
                _ => "engine_error",
            };
            finish_failed(
                ctx,
                role,
                meta,
                items,
                SolveError::DeviceFailure { code },
                "device_failure",
                dispatch_start,
            );
        }
        Err(panic) => {
            let detail = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            finish_failed(
                ctx,
                role,
                meta,
                items,
                SolveError::WorkerPanic { detail },
                "worker_panic",
                dispatch_start,
            );
        }
    }
}

/// Failure epilogue: retry the chunk elsewhere if the policy allows,
/// otherwise deliver the terminal error to every still-unclaimed slot.
///
/// `SolveError::DeviceFailure` and `SolveError::WorkerPanic` are the
/// fleet's *retryable* class (mirroring `FailureClass` in
/// batsolv-faults): the fault hit the attempt, not the data, so a
/// different shard may well succeed. Data-level failures
/// (`NotConverged`) come through the success path above and are always
/// terminal.
#[allow(clippy::too_many_arguments)]
fn finish_failed(
    ctx: &WorkerCtx,
    role: ChunkRole,
    meta: Vec<ItemMeta>,
    items: Vec<BatchItem>,
    error: SolveError,
    reason: &'static str,
    dispatch_start: Instant,
) {
    let shard = &ctx.shard;

    // A hedge duplicate never delivers failures and never retries: the
    // primary flight still owns these items, and hedging exists to beat
    // stragglers, not to double-report faults.
    if matches!(role, ChunkRole::Hedge { .. }) {
        return;
    }

    // Wall time the failed attempt burned inside the dispatch; folded
    // into the solve phase of whatever terminal ledger follows.
    let attempt_us = dispatch_start.elapsed().as_secs_f64() * 1e6;
    let attempt = meta.first().map(|m| m.attempt).unwrap_or(1);
    if attempt < ctx.retry.max_attempts {
        // Deterministic backoff keyed by the chunk's lead request id.
        let next_attempt = attempt + 1;
        let lead_id = items.first().map(|i| i.id).unwrap_or(0);
        let backoff = ctx.retry.backoff(next_attempt, lead_id);

        // Rebuild pendings, debiting the backoff we are about to sleep
        // from every budget; systems the backoff would push past their
        // deadline fail now instead of burning a pointless attempt.
        let mut pendings: Vec<Pending> = Vec::with_capacity(items.len());
        for (item, m) in items.into_iter().zip(meta.iter()) {
            if m.slot.is_claimed() {
                continue;
            }
            let mut budget = m.budget;
            if let Some(b) = budget.as_mut() {
                b.debit(backoff);
                if b.is_exhausted() {
                    if let Some(tx) = m.slot.claim() {
                        shard.stats.failed.fetch_add(1, Ordering::Relaxed);
                        let mut lm = m.clone();
                        lm.backoff_us += backoff.as_secs_f64() * 1e6;
                        lm.prior_solve_us += attempt_us;
                        let straggler = lm.group.finish_one();
                        let ledger = build_fleet_ledger(
                            &lm,
                            "deadline_exceeded",
                            0,
                            false,
                            0.0,
                            ctx.is_spill,
                            None,
                            straggler,
                            Instant::now(),
                        );
                        record_terminal(ctx, lm.id, ledger);
                        let _ = tx.send(Err(SolveError::DeadlineExceeded {
                            waited: b.consumed(),
                            deadline: b.total(),
                        }));
                    }
                    continue;
                }
            }
            pendings.push(Pending {
                id: item.id,
                values: item.values,
                rhs: item.rhs,
                guess: item.guess,
                tolerance: item.tolerance,
                enqueued: Instant::now(),
                budget,
                attempt: next_attempt,
                slot: Arc::clone(&m.slot),
                submitted: m.submitted,
                admission_us: m.admission_us,
                queue_us: m.queue_us,
                transit_us: m.transit_us,
                backoff_us: m.backoff_us + backoff.as_secs_f64() * 1e6,
                solve_us: m.prior_solve_us + attempt_us,
                group: Arc::clone(&m.group),
            });
        }

        if !pendings.is_empty() {
            std::thread::sleep(backoff);
            // Walk the other shards first (self only as a last resort,
            // when the fleet has a single GPU shard): a fault that hit
            // this device should not greet the retry too.
            let devices = ctx.peers.len();
            let mut chunk = Some(Chunk {
                items: pendings,
                origin: shard.id,
            });
            for k in 1..=devices {
                let target = &ctx.peers[(shard.id as usize + k) % devices];
                if target.breaker.check(Instant::now()).is_err() {
                    continue;
                }
                let mut c = chunk.take().unwrap();
                c.origin = target.id;
                let size = c.len();
                match target.queue.try_push(c) {
                    Ok(()) => {
                        shard.stats.retries.fetch_add(1, Ordering::Relaxed);
                        ctx.tracer.emit(
                            None,
                            EventKind::RetryAttempt {
                                from: shard.id,
                                to: target.id,
                                size,
                                attempt: next_attempt,
                                backoff_us: backoff.as_micros() as u64,
                                reason,
                            },
                        );
                        return;
                    }
                    Err(back) => chunk = Some(back),
                }
            }
            // Every queue full or breaker open: terminal after all.
            if let Some(c) = chunk {
                for p in c.items {
                    if let Some(tx) = p.slot.claim() {
                        shard.stats.failed.fetch_add(1, Ordering::Relaxed);
                        let pm = pending_meta(&p);
                        let straggler = pm.group.finish_one();
                        let ledger = build_fleet_ledger(
                            &pm,
                            reason,
                            0,
                            false,
                            0.0,
                            ctx.is_spill,
                            None,
                            straggler,
                            Instant::now(),
                        );
                        record_terminal(ctx, p.id, ledger);
                        let _ = tx.send(Err(error.clone()));
                    }
                }
            }
            return;
        }
        return;
    }

    // Attempts exhausted (or retries off): terminal delivery.
    for m in meta {
        if let Some(tx) = m.slot.claim() {
            shard.stats.failed.fetch_add(1, Ordering::Relaxed);
            let mut lm = m.clone();
            lm.prior_solve_us += attempt_us;
            let straggler = lm.group.finish_one();
            let ledger = build_fleet_ledger(
                &lm,
                reason,
                0,
                false,
                0.0,
                ctx.is_spill,
                None,
                straggler,
                Instant::now(),
            );
            record_terminal(ctx, m.id, ledger);
            let _ = tx.send(Err(error.clone()));
        }
    }
}

/// The hedge delay for duplicating `victim`'s flight: the larger of
/// the configured floor and `p99_factor` times the victim's observed
/// p99 chunk latency (cold reservoirs fall back to the floor alone).
fn hedge_delay(ctx: &WorkerCtx, victim: &ShardShared) -> Duration {
    let p99 = {
        let s = victim.stats.sampled.lock().unwrap();
        let mut samples: Vec<u64> = s.latency_us.samples().to_vec();
        samples.sort_unstable();
        percentile_us(&samples, 0.99)
    };
    ctx.hedge.min_delay.max(p99.mul_f64(ctx.hedge.p99_factor))
}

/// Idle-path hedging: scan peers for a flight older than its hedge
/// delay, claim it (one hedge per flight), and execute the duplicate.
/// Returns true if a hedge ran.
fn try_hedge(ctx: &WorkerCtx) -> bool {
    if !ctx.hedge.enabled || !ctx.degrade.hedging_allowed() {
        return false;
    }
    for peer in ctx.peers.iter() {
        if peer.id == ctx.shard.id {
            continue;
        }
        let infl = match peer.inflight.lock().unwrap().clone() {
            Some(i) => i,
            None => continue,
        };
        let age = infl.started.elapsed();
        if age < hedge_delay(ctx, peer) {
            continue;
        }
        if infl.hedged.swap(true, Ordering::AcqRel) {
            continue; // someone else already duplicated this flight
        }
        let items: Vec<Pending> = infl
            .items
            .iter()
            .filter(|p| !p.slot.is_claimed())
            .cloned()
            .collect();
        if items.is_empty() {
            continue;
        }
        let size = items.len();
        ctx.shard.stats.hedges_fired.fetch_add(1, Ordering::Relaxed);
        ctx.tracer.emit(
            None,
            EventKind::HedgeFired {
                primary: infl.executor,
                hedge: ctx.shard.id,
                size,
                age_us: age.as_micros() as u64,
            },
        );
        execute_chunk(
            ctx,
            Chunk {
                items,
                origin: infl.origin,
            },
            ChunkRole::Hedge {
                primary: infl.executor,
            },
        );
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_chunk() -> Chunk {
        Chunk {
            items: Vec::new(),
            origin: 0,
        }
    }

    #[test]
    fn queue_backpressure_and_drain_on_close() {
        let q = ChunkQueue::new(2);
        assert!(q.try_push(empty_chunk()).is_ok());
        assert!(q.try_push(empty_chunk()).is_ok());
        assert!(q.try_push(empty_chunk()).is_err(), "full queue rejects");
        q.close();
        assert!(q.try_push(empty_chunk()).is_err(), "closed queue rejects");
        // Drain-first: both queued chunks come out before Closed.
        assert!(matches!(
            q.pop_wait(Duration::from_millis(1)),
            Popped::Chunk(_)
        ));
        assert!(matches!(
            q.pop_wait(Duration::from_millis(1)),
            Popped::Chunk(_)
        ));
        assert!(matches!(
            q.pop_wait(Duration::from_millis(1)),
            Popped::Closed
        ));
    }

    #[test]
    fn steal_takes_the_oldest_chunk() {
        let q = ChunkQueue::new(8);
        q.try_push(Chunk {
            items: Vec::new(),
            origin: 7,
        })
        .map_err(|_| ())
        .unwrap();
        q.try_push(Chunk {
            items: Vec::new(),
            origin: 9,
        })
        .map_err(|_| ())
        .unwrap();
        assert_eq!(q.steal().unwrap().origin, 7, "FIFO steal");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_steal_returns_none() {
        let q = ChunkQueue::new(1);
        assert!(q.steal().is_none());
    }
}
