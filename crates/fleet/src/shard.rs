//! One fleet shard: a bounded chunk queue, a worker thread driving an
//! escalation-ladder engine on the shard's own simulated device, a
//! per-shard circuit breaker, and per-shard stats.
//!
//! The worker's steal protocol: when its own queue stays empty past a
//! poll interval, it walks its fixed, seeded victim order and takes the
//! *oldest* queued chunk from the first victim with a backlog — the
//! chunk with the worst wait so far, which is what shortens the fleet's
//! tail. A steal is one atomic queue pop, so a chunk executes exactly
//! once no matter how thief, victim, and breaker interleave.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use batsolv_runtime::{
    BatchItem, CircuitBreaker, Reservoir, Solution, SolveEngine, SolveError, SolveMethod,
};
use batsolv_trace::{EventKind, Tracer};
use batsolv_types::Error;

use crate::work::Chunk;

/// How long a worker waits on its empty queue before probing victims.
const POLL_INTERVAL: Duration = Duration::from_millis(2);

/// Result of a blocking pop.
pub(crate) enum Popped {
    Chunk(Chunk),
    TimedOut,
    /// Closed *and* drained — time to exit.
    Closed,
}

struct QueueState {
    chunks: VecDeque<Chunk>,
    closed: bool,
}

/// Bounded MPMC chunk queue. Push rejects when full (explicit
/// backpressure, like the service queue); `steal` pops the oldest
/// entry from any thread.
pub(crate) struct ChunkQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    capacity: usize,
}

impl ChunkQueue {
    pub fn new(capacity: usize) -> ChunkQueue {
        ChunkQueue {
            state: Mutex::new(QueueState {
                chunks: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Push a chunk; hands it back when the queue is full or closed.
    pub fn try_push(&self, chunk: Chunk) -> Result<(), Chunk> {
        let mut s = self.state.lock().unwrap();
        if s.closed || s.chunks.len() >= self.capacity {
            return Err(chunk);
        }
        s.chunks.push_back(chunk);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocking pop with a timeout. A closed queue drains before
    /// reporting [`Popped::Closed`], so accepted work always executes.
    pub fn pop_wait(&self, timeout: Duration) -> Popped {
        let deadline = Instant::now() + timeout;
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(chunk) = s.chunks.pop_front() {
                return Popped::Chunk(chunk);
            }
            if s.closed {
                return Popped::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return Popped::TimedOut;
            }
            let (guard, _) = self.cv.wait_timeout(s, deadline - now).unwrap();
            s = guard;
        }
    }

    /// Steal the oldest queued chunk (used by other shards' workers).
    pub fn steal(&self) -> Option<Chunk> {
        self.state.lock().unwrap().chunks.pop_front()
    }

    /// Queued chunks right now.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().chunks.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Close the queue: pushes fail, pops drain then report closed.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.cv.notify_all();
    }
}

#[derive(Default)]
pub(crate) struct SampledShardStats {
    pub wait_us: Reservoir,
    pub latency_us: Reservoir,
}

/// Per-shard counters; lock-free on the hot path, reservoirs for
/// percentile estimates.
pub(crate) struct ShardStats {
    pub chunks_executed: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub steals_in: AtomicU64,
    pub steals_out: AtomicU64,
    pub breaker_trips: AtomicU64,
    /// Simulated device time, nanoseconds (atomics hold no f64).
    pub sim_time_ns: AtomicU64,
    pub sampled: Mutex<SampledShardStats>,
}

impl ShardStats {
    pub fn new() -> ShardStats {
        ShardStats {
            chunks_executed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            steals_in: AtomicU64::new(0),
            steals_out: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            sim_time_ns: AtomicU64::new(0),
            sampled: Mutex::new(SampledShardStats::default()),
        }
    }

    fn add_sim_time(&self, seconds: f64) {
        let ns = (seconds * 1e9).max(0.0) as u64;
        self.sim_time_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

/// Everything a shard shares with the scheduler and with thieving
/// peers: its queue, breaker, stats, and identity.
pub(crate) struct ShardShared {
    pub id: u32,
    pub device_name: &'static str,
    pub queue: ChunkQueue,
    pub stats: ShardStats,
    pub breaker: CircuitBreaker,
}

/// Spawn one shard's worker loop.
///
/// `victims` is this thief's fixed victim-visit order (empty disables
/// stealing); `peers` indexes every GPU shard by id.
pub(crate) fn spawn_shard_worker(
    shard: Arc<ShardShared>,
    peers: Arc<Vec<Arc<ShardShared>>>,
    engine: Arc<dyn SolveEngine>,
    victims: Vec<u32>,
    tracer: Tracer,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("fleet-shard-{}", shard.id))
        .spawn(move || loop {
            match shard.queue.pop_wait(POLL_INTERVAL) {
                Popped::Chunk(chunk) => {
                    execute_chunk(engine.as_ref(), &shard, chunk, &tracer);
                }
                Popped::Closed => break,
                Popped::TimedOut => {
                    // Raid greedily while idle: once a steal succeeds,
                    // keep taking chunks (re-checking our own queue
                    // between them) instead of paying the poll interval
                    // per stolen chunk.
                    while shard.queue.is_empty() {
                        let mut stole = false;
                        for &v in &victims {
                            let victim = &peers[v as usize];
                            if let Some(chunk) = victim.queue.steal() {
                                victim.stats.steals_out.fetch_add(1, Ordering::Relaxed);
                                shard.stats.steals_in.fetch_add(1, Ordering::Relaxed);
                                tracer.emit(
                                    None,
                                    EventKind::ShardSteal {
                                        thief: shard.id,
                                        victim: chunk.origin,
                                        size: chunk.len(),
                                    },
                                );
                                execute_chunk(engine.as_ref(), &shard, chunk, &tracer);
                                stole = true;
                                break;
                            }
                        }
                        if !stole {
                            break;
                        }
                    }
                }
            }
        })
        .expect("spawn fleet shard worker")
}

/// Execute one chunk on `shard`'s engine and deliver exactly one
/// terminal outcome per item — through every path, including an engine
/// error or a worker panic.
pub(crate) fn execute_chunk(
    engine: &dyn SolveEngine,
    shard: &ShardShared,
    chunk: Chunk,
    tracer: &Tracer,
) {
    let n = chunk.len();
    if n == 0 {
        return;
    }
    let dispatch_start = Instant::now();
    let mut meta = Vec::with_capacity(n);
    let mut items = Vec::with_capacity(n);
    for p in chunk.items {
        let wait = dispatch_start.saturating_duration_since(p.enqueued);
        meta.push((p.id, p.tx, p.enqueued, wait));
        items.push(BatchItem {
            id: p.id,
            values: p.values,
            rhs: p.rhs,
            guess: p.guess,
            tolerance: p.tolerance,
        });
    }

    let result = catch_unwind(AssertUnwindSafe(|| engine.solve_batch(&items)));
    shard.stats.chunks_executed.fetch_add(1, Ordering::Relaxed);

    let mut degraded = 0usize;
    match result {
        Ok(Ok(report)) => {
            shard.stats.add_sim_time(report.sim_time_s);
            {
                let mut s = shard.stats.sampled.lock().unwrap();
                for (_, _, enqueued, wait) in &meta {
                    s.wait_us.push(wait.as_micros() as u64);
                    s.latency_us.push(enqueued.elapsed().as_micros() as u64);
                }
            }
            for (outcome, (_, tx, _, wait)) in report.outcomes.into_iter().zip(meta) {
                if outcome.converged {
                    if outcome.method == SolveMethod::BandedLuFallback {
                        degraded += 1;
                    }
                    shard.stats.completed.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(Ok(Solution {
                        x: outcome.x,
                        iterations: outcome.iterations,
                        residual: outcome.residual,
                        method: outcome.method,
                        batch_size: n,
                        queue_wait: wait,
                        rungs: outcome.rungs,
                    }));
                } else {
                    degraded += 1;
                    shard.stats.failed.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(Err(SolveError::NotConverged {
                        iterations: outcome.iterations,
                        residual: outcome.residual,
                        breakdown: outcome.breakdown,
                        rungs: outcome.rungs,
                    }));
                }
            }
        }
        Ok(Err(err)) => {
            // The engine failed the whole fused launch (e.g. a simulated
            // device fault): every member fails, none is lost.
            degraded = n;
            let code = match err {
                Error::DeviceFailure { code } => code,
                _ => "engine_error",
            };
            shard.stats.failed.fetch_add(n as u64, Ordering::Relaxed);
            for (_, tx, _, _) in meta {
                let _ = tx.send(Err(SolveError::DeviceFailure { code }));
            }
        }
        Err(panic) => {
            degraded = n;
            let detail = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            shard.stats.failed.fetch_add(n as u64, Ordering::Relaxed);
            for (_, tx, _, _) in meta {
                let _ = tx.send(Err(SolveError::WorkerPanic {
                    detail: detail.clone(),
                }));
            }
        }
    }

    if shard.breaker.on_batch(Instant::now(), n, degraded) {
        shard.stats.breaker_trips.fetch_add(1, Ordering::Relaxed);
        tracer.emit(None, EventKind::BreakerTrip);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_chunk() -> Chunk {
        Chunk {
            items: Vec::new(),
            origin: 0,
        }
    }

    #[test]
    fn queue_backpressure_and_drain_on_close() {
        let q = ChunkQueue::new(2);
        assert!(q.try_push(empty_chunk()).is_ok());
        assert!(q.try_push(empty_chunk()).is_ok());
        assert!(q.try_push(empty_chunk()).is_err(), "full queue rejects");
        q.close();
        assert!(q.try_push(empty_chunk()).is_err(), "closed queue rejects");
        // Drain-first: both queued chunks come out before Closed.
        assert!(matches!(
            q.pop_wait(Duration::from_millis(1)),
            Popped::Chunk(_)
        ));
        assert!(matches!(
            q.pop_wait(Duration::from_millis(1)),
            Popped::Chunk(_)
        ));
        assert!(matches!(
            q.pop_wait(Duration::from_millis(1)),
            Popped::Closed
        ));
    }

    #[test]
    fn steal_takes_the_oldest_chunk() {
        let q = ChunkQueue::new(8);
        q.try_push(Chunk {
            items: Vec::new(),
            origin: 7,
        })
        .map_err(|_| ())
        .unwrap();
        q.try_push(Chunk {
            items: Vec::new(),
            origin: 9,
        })
        .map_err(|_| ())
        .unwrap();
        assert_eq!(q.steal().unwrap().origin, 7, "FIFO steal");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_steal_returns_none() {
        let q = ChunkQueue::new(1);
        assert!(q.steal().is_none());
    }
}
