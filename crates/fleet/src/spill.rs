//! The CPU spill pool: sub-`min_batch_size` chunks run as banded-LU
//! direct solves on the paper's dual-socket Skylake baseline instead of
//! paying a GPU launch they cannot amortize.
//!
//! The pool is just another shard to the rest of the fleet — same
//! queue, same stats, same exactly-once outcome delivery — with a
//! [`SolveEngine`] that prices work on [`DeviceSpec::skylake_node`]
//! (its compute units model the 38 Kokkos solve workers) rather than a
//! GPU profile, and never escalates: banded LU *is* its only rung.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use batsolv_formats::{BatchBanded, BatchCsr, BatchVectors, SparsityPattern};
use batsolv_gpusim::{kernel_launch_event, DeviceSpec};
use batsolv_runtime::{
    BatchItem, BatchReport, ItemOutcome, RungAttempt, SimSplit, SolveEngine, SolveMethod,
};
use batsolv_solvers::direct::BatchBandedLu;
use batsolv_trace::Tracer;
use batsolv_types::{BatchDims, Result};

/// Banded-LU engine on the Skylake host node, tagged with the CPU
/// pool's shard id so its kernel reports land in their own trace lane.
pub(crate) struct CpuLuEngine {
    pattern: Arc<SparsityPattern>,
    device: DeviceSpec,
    shard: u32,
    tracer: Tracer,
    seq: AtomicU64,
}

impl CpuLuEngine {
    /// Build the pool's engine. `workers` overrides the node's solve
    /// worker count (the paper's baseline uses 38).
    pub fn new(
        pattern: Arc<SparsityPattern>,
        workers: usize,
        shard: u32,
        tracer: Tracer,
    ) -> CpuLuEngine {
        let mut device = DeviceSpec::skylake_node();
        device.num_cus = workers as u32;
        CpuLuEngine {
            pattern,
            device,
            shard,
            tracer,
            seq: AtomicU64::new(0),
        }
    }
}

impl SolveEngine for CpuLuEngine {
    fn solve_batch(&self, items: &[BatchItem]) -> Result<BatchReport> {
        let n = self.pattern.num_rows();
        let values: Vec<Vec<f64>> = items.iter().map(|it| it.values.clone()).collect();
        let a = BatchCsr::from_system_values(Arc::clone(&self.pattern), &values)?;
        let banded = BatchBanded::from_csr(&a)?;
        let dims = BatchDims::new(items.len(), n)?;
        let mut rhs = Vec::with_capacity(items.len() * n);
        for it in items {
            rhs.extend_from_slice(&it.rhs);
        }
        let b = BatchVectors::from_values(dims, rhs)?;
        let mut x = BatchVectors::zeros(dims);
        let report = BatchBandedLu.solve(&self.device, &banded, &b, &mut x)?;

        if self.tracer.is_enabled() {
            self.tracer.emit(
                None,
                kernel_launch_event(
                    self.seq.fetch_add(1, Ordering::Relaxed),
                    report.solver,
                    &self.device,
                    items.len(),
                    report.shared_per_block,
                    report.global_vector_bytes,
                    report.syncs_per_iteration,
                    &report.kernel,
                )
                .with_shard(self.shard),
            );
        }

        let outcomes = items
            .iter()
            .enumerate()
            .map(|(k, it)| {
                let r = &report.per_system[k];
                ItemOutcome {
                    id: it.id,
                    x: x.system(k).to_vec(),
                    iterations: r.iterations,
                    residual: r.residual,
                    converged: r.converged,
                    method: SolveMethod::BandedLuFallback,
                    breakdown: r.breakdown,
                    rungs: vec![RungAttempt {
                        method: SolveMethod::BandedLuFallback,
                        iterations: r.iterations,
                        residual: r.residual,
                        converged: r.converged,
                        breakdown: r.breakdown,
                    }],
                }
            })
            .collect();

        let mut split = SimSplit::default();
        split.add_kernel(&report);
        Ok(BatchReport {
            outcomes,
            sim_time_s: report.time_s(),
            syncs: report.syncs(),
            reductions: report.reductions(),
            solver: report.solver,
            split,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dominant_values(pattern: &SparsityPattern) -> Vec<f64> {
        (0..pattern.num_rows())
            .flat_map(|r| {
                pattern
                    .row_cols(r)
                    .iter()
                    .map(move |&c| if c as usize == r { 8.0 } else { -1.0 })
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    #[test]
    fn cpu_engine_solves_on_the_skylake_profile() {
        let pattern = Arc::new(SparsityPattern::stencil_2d(4, 4, false));
        let n = pattern.num_rows();
        let engine = CpuLuEngine::new(Arc::clone(&pattern), 38, 4, Tracer::disabled());
        assert_eq!(engine.device.num_cus, 38);
        let items: Vec<BatchItem> = (0..3)
            .map(|i| BatchItem {
                id: i as u64,
                values: dominant_values(&pattern),
                rhs: vec![1.0; n],
                guess: None,
                tolerance: None,
            })
            .collect();
        let report = engine.solve_batch(&items).unwrap();
        assert_eq!(report.outcomes.len(), 3);
        for o in &report.outcomes {
            assert!(o.converged);
            assert_eq!(o.method, SolveMethod::BandedLuFallback);
            assert_eq!(o.rungs.len(), 1, "the pool never escalates");
        }
        assert!(report.sim_time_s > 0.0, "host dispatch is still priced");
    }
}
