//! [`FleetService`]: sharded multi-device serving with size-aware
//! dispatch, work stealing, and CPU spill.
//!
//! One service owns `devices` GPU shards — each a simulated device, a
//! bounded chunk queue, a worker thread, a circuit breaker, and stats —
//! plus the CPU banded-LU spill pool. Groups submitted through
//! [`FleetService::submit_group`] are routed by the [`DeviceRange`]
//! policy and placed *atomically*: a submit lock serializes placement
//! planning, and workers only ever drain queues, so a group either
//! lands whole or is rejected whole (no half-dispatched groups whose
//! orphaned members never resolve).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use batsolv_formats::SparsityPattern;
use batsolv_gpusim::{LaunchHook, NoDisruption};
use batsolv_runtime::{
    CircuitBreaker, ClassTracker, ClassesSnapshot, DeadlineBudget, LadderEngine, SolveEngine,
    SolveRequest, SubmitError,
};
use batsolv_trace::{EventKind, Tracer};
use batsolv_types::Result;

use crate::config::{FleetConfig, HedgeConfig};
use crate::degrade::DegradeState;
use crate::metrics::fleet_prometheus_text;
use crate::range::{victim_order, DeviceRange, Route};
use crate::shard::{spawn_shard_worker, ChunkQueue, ShardShared, ShardStats, WorkerCtx};
use crate::spill::CpuLuEngine;
use crate::stats::{percentile_us, snapshot_shard, FleetSnapshot};
use crate::work::{Chunk, GroupProgress, GroupTicket, OutcomeSlot, Pending};

/// Iteration count assumed by admission-time cost prediction: the
/// paper's Table III electron-species solves land near 40 iterations,
/// which makes the predicted chunk cost a realistic (not worst-case)
/// feasibility bar for deadline budgets.
const PREDICT_ITERS: u32 = 40;

/// A running fleet: GPU shards plus the CPU spill pool.
pub struct FleetService {
    range: DeviceRange,
    /// The range used at degradation level 3: the CPU spill cutoff is
    /// doubled, so marginal chunks widen onto the spill pool instead of
    /// deepening saturated GPU queues.
    wide_range: DeviceRange,
    shards: Arc<Vec<Arc<ShardShared>>>,
    cpu: Arc<ShardShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Serializes placement planning against concurrent submitters and
    /// shutdown, making group placement all-or-nothing.
    submit_lock: Mutex<()>,
    shutting_down: AtomicBool,
    next_id: AtomicU64,
    round_robin: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    gpu_chunks: AtomicU64,
    spilled: AtomicU64,
    queue_capacity: usize,
    nnz: usize,
    n: usize,
    degrade: Arc<DegradeState>,
    /// Device-model prediction for one full chunk, the admission
    /// feasibility bar for deadline-carrying requests.
    predicted_chunk_cost: Duration,
    tracer: Tracer,
    /// Fleet-wide per-class latency/SLO tracker, fed by every winning
    /// delivery's phase ledger.
    classes: Arc<ClassTracker>,
}

impl FleetService {
    /// Start a fleet over `pattern` with the given knobs.
    pub fn start(pattern: Arc<SparsityPattern>, cfg: FleetConfig) -> Result<FleetService> {
        let hooks = vec![Arc::new(NoDisruption) as Arc<dyn LaunchHook>; cfg.devices];
        FleetService::start_with_hooks(pattern, cfg, hooks)
    }

    /// Start a fleet with a chaos [`LaunchHook`] per GPU shard
    /// (`hooks[i]` disrupts shard `i`) — the seam the deterministic
    /// fault-injection tests drive.
    pub fn start_with_hooks(
        pattern: Arc<SparsityPattern>,
        cfg: FleetConfig,
        hooks: Vec<Arc<dyn LaunchHook>>,
    ) -> Result<FleetService> {
        cfg.validate()?;
        assert_eq!(hooks.len(), cfg.devices, "one hook per GPU shard");
        let range = DeviceRange::new(cfg.devices, cfg.min_batch_size, cfg.max_batch_size);
        let wide_range = DeviceRange::new(
            cfg.devices,
            (cfg.min_batch_size * 2).min(cfg.max_batch_size),
            cfg.max_batch_size,
        );
        let degrade = Arc::new(DegradeState::new(cfg.degrade));
        let classes = Arc::new(ClassTracker::new());
        let spec = cfg.profile.spec();
        let predicted_chunk_cost = Duration::from_secs_f64(spec.predict_chunk_seconds(
            pattern.num_rows(),
            pattern.nnz(),
            cfg.max_batch_size,
            PREDICT_ITERS,
        ));

        let shards: Arc<Vec<Arc<ShardShared>>> = Arc::new(
            (0..cfg.devices as u32)
                .map(|id| {
                    Arc::new(ShardShared {
                        id,
                        device_name: cfg.profile.spec().name,
                        queue: ChunkQueue::new(cfg.queue_capacity),
                        stats: ShardStats::new(),
                        breaker: CircuitBreaker::new(cfg.breaker),
                        inflight: Mutex::new(None),
                    })
                })
                .collect(),
        );
        let cpu = Arc::new(ShardShared {
            id: range.cpu_shard(),
            device_name: batsolv_gpusim::DeviceSpec::skylake_node().name,
            queue: ChunkQueue::new(cfg.queue_capacity),
            stats: ShardStats::new(),
            breaker: CircuitBreaker::new(cfg.breaker),
            inflight: Mutex::new(None),
        });

        let mut workers = Vec::with_capacity(cfg.devices + 1);
        for (i, shard) in shards.iter().enumerate() {
            let engine: Arc<dyn SolveEngine> = Arc::new(
                LadderEngine::with_hook(
                    cfg.profile.spec(),
                    Arc::clone(&pattern),
                    cfg.ladder,
                    Arc::clone(&hooks[i]),
                )
                .with_tracer(cfg.tracer.clone())
                .with_shard(shard.id),
            );
            let victims = if cfg.steal {
                victim_order(cfg.devices, shard.id, cfg.steal_seed)
            } else {
                Vec::new()
            };
            workers.push(spawn_shard_worker(WorkerCtx {
                shard: Arc::clone(shard),
                peers: Arc::clone(&shards),
                engine,
                victims,
                tracer: cfg.tracer.clone(),
                retry: cfg.retry,
                hedge: cfg.hedge,
                degrade: Arc::clone(&degrade),
                predicted_chunk_cost,
                classes: Arc::clone(&classes),
                is_spill: false,
            }));
        }
        // The CPU pool is one more worker over the same machinery: a
        // banded-LU engine instead of the ladder, and it never steals
        // (GPU backlogs would defeat the size cutoff that routed work
        // away from it) and never hedges (its chunks are the small spill
        // tail, not fused straggler candidates).
        let cpu_engine: Arc<dyn SolveEngine> = Arc::new(CpuLuEngine::new(
            Arc::clone(&pattern),
            cfg.cpu_workers,
            range.cpu_shard(),
            cfg.tracer.clone(),
        ));
        workers.push(spawn_shard_worker(WorkerCtx {
            shard: Arc::clone(&cpu),
            peers: Arc::clone(&shards),
            engine: cpu_engine,
            victims: Vec::new(),
            tracer: cfg.tracer.clone(),
            retry: cfg.retry,
            hedge: HedgeConfig::disabled(),
            degrade: Arc::clone(&degrade),
            predicted_chunk_cost,
            classes: Arc::clone(&classes),
            is_spill: true,
        }));

        Ok(FleetService {
            range,
            wide_range,
            shards,
            cpu,
            workers: Mutex::new(workers),
            submit_lock: Mutex::new(()),
            shutting_down: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            round_robin: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            gpu_chunks: AtomicU64::new(0),
            spilled: AtomicU64::new(0),
            queue_capacity: cfg.queue_capacity,
            nnz: pattern.nnz(),
            n: pattern.num_rows(),
            degrade,
            predicted_chunk_cost,
            tracer: cfg.tracer,
            classes,
        })
    }

    /// Number of GPU shards.
    pub fn num_devices(&self) -> usize {
        self.range.num_devices()
    }

    /// The dispatch policy in force.
    pub fn range(&self) -> &DeviceRange {
        &self.range
    }

    /// Submit a group of systems over the fleet's shared pattern.
    ///
    /// `hint` is an optional placement affinity (e.g. a mesh-partition
    /// id); absent one, groups round-robin across shards. The group is
    /// routed by [`DeviceRange::route_group`] and placed atomically:
    /// either every chunk is queued (`Ok`) or none is (`Err`). Chunks
    /// aimed at a breaker-open or full shard walk the range to the next
    /// healthy one; only when every GPU shard refuses does the submit
    /// fail with [`SubmitError::CircuitOpen`] (all breakers open) or
    /// [`SubmitError::QueueFull`].
    pub fn submit_group(
        &self,
        requests: Vec<SolveRequest>,
        hint: Option<u32>,
    ) -> std::result::Result<GroupTicket, SubmitError> {
        // Phase-ledger anchor: everything between here and the first
        // queue push is the admission phase (validation, degradation
        // bookkeeping, feasibility, placement planning).
        let submit_started = Instant::now();
        if requests.is_empty() {
            return Err(SubmitError::ShapeMismatch {
                field: "group",
                expected: 1,
                got: 0,
            });
        }
        for r in &requests {
            if r.values.len() != self.nnz {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::ShapeMismatch {
                    field: "values",
                    expected: self.nnz,
                    got: r.values.len(),
                });
            }
            if r.rhs.len() != self.n {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::ShapeMismatch {
                    field: "rhs",
                    expected: self.n,
                    got: r.rhs.len(),
                });
            }
            if let Some(g) = &r.guess {
                if g.len() != self.n {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(SubmitError::ShapeMismatch {
                        field: "guess",
                        expected: self.n,
                        got: g.len(),
                    });
                }
            }
        }

        let _placement = self.submit_lock.lock().unwrap();
        if self.shutting_down.load(Ordering::Relaxed) {
            return Err(SubmitError::ShuttingDown);
        }

        // Re-evaluate the degradation ladder on fleet-wide GPU queue
        // occupancy (serialized here under the submit lock).
        let queued: usize = self.shards.iter().map(|s| s.queue.len()).sum();
        let capacity = (self.range.num_devices() * self.queue_capacity).max(1);
        if let Some((from, to)) = self.degrade.observe(queued as f64 / capacity as f64) {
            self.tracer.emit(None, EventKind::DegradeShift { from, to });
        }

        // Deadline feasibility: if the device model already prices one
        // chunk above a request's whole budget, queueing it would only
        // burn queue slots on work guaranteed to miss. Fast-fail the
        // group instead with a structured reject.
        for r in &requests {
            if let Some(deadline) = r.deadline {
                if self.predicted_chunk_cost > deadline {
                    self.rejected
                        .fetch_add(requests.len() as u64, Ordering::Relaxed);
                    return Err(SubmitError::Infeasible {
                        predicted: self.predicted_chunk_cost,
                        budget: deadline,
                    });
                }
            }
        }

        // Plan every chunk's destination before queueing anything. At
        // degradation level 3 the wide range (doubled spill cutoff)
        // diverts marginal chunks to the CPU pool.
        let range = if self.degrade.widen_spill() {
            &self.wide_range
        } else {
            &self.range
        };
        let first = range.pick_shard(hint, self.round_robin.fetch_add(1, Ordering::Relaxed));
        let placements = range.route_group(requests.len(), first);
        let now = Instant::now();
        let devices = self.range.num_devices();
        let mut planned = vec![0usize; devices + 1]; // [devices] = CPU pool
        let mut targets: Vec<Route> = Vec::with_capacity(placements.len());
        for p in &placements {
            match p.route {
                Route::CpuPool => {
                    if self.cpu.queue.len() + planned[devices] >= self.queue_capacity {
                        self.rejected
                            .fetch_add(requests.len() as u64, Ordering::Relaxed);
                        return Err(SubmitError::QueueFull {
                            capacity: self.queue_capacity,
                        });
                    }
                    planned[devices] += 1;
                    targets.push(Route::CpuPool);
                }
                Route::Shard(s) => {
                    let mut chosen = None;
                    let mut open_retry: Option<Duration> = None;
                    let mut cur = s;
                    for _ in 0..devices {
                        let shard = &self.shards[cur as usize];
                        match shard.breaker.check(now) {
                            Err(retry) => {
                                open_retry =
                                    Some(open_retry.map_or(retry, |r: Duration| r.min(retry)));
                            }
                            Ok(()) => {
                                if shard.queue.len() + planned[cur as usize] < self.queue_capacity {
                                    chosen = Some(cur);
                                    break;
                                }
                            }
                        }
                        cur = range.next_shard(cur);
                    }
                    match chosen {
                        Some(c) => {
                            planned[c as usize] += 1;
                            targets.push(Route::Shard(c));
                        }
                        None => {
                            self.rejected
                                .fetch_add(requests.len() as u64, Ordering::Relaxed);
                            return Err(match open_retry {
                                Some(retry_after) => SubmitError::CircuitOpen { retry_after },
                                None => SubmitError::QueueFull {
                                    capacity: self.queue_capacity,
                                },
                            });
                        }
                    }
                }
            }
        }

        // Placement is feasible: mint ids, build the ticket, queue every
        // chunk. Pushes cannot fail now — capacity was planned under the
        // submit lock and workers only drain.
        let total = requests.len();
        let base = self.next_id.fetch_add(total as u64, Ordering::Relaxed);
        let enqueued = Instant::now();
        let admission_us = enqueued.duration_since(submit_started).as_secs_f64() * 1e6;
        let group = Arc::new(GroupProgress::new(total));
        let mut ids = Vec::with_capacity(total);
        let mut rxs = Vec::with_capacity(total);
        let mut pendings = Vec::with_capacity(total);
        for (k, r) in requests.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            let id = base + k as u64;
            ids.push(id);
            rxs.push(rx);
            pendings.push(Pending {
                id,
                values: r.values,
                rhs: r.rhs,
                guess: r.guess,
                tolerance: r.tolerance,
                enqueued,
                budget: r.deadline.map(DeadlineBudget::new),
                attempt: 1,
                slot: Arc::new(OutcomeSlot::new(tx)),
                submitted: submit_started,
                admission_us,
                queue_us: 0.0,
                transit_us: 0.0,
                backoff_us: 0.0,
                solve_us: 0.0,
                group: Arc::clone(&group),
            });
        }

        let mut rest = pendings;
        for (p, target) in placements.iter().zip(targets) {
            let tail = rest.split_off(p.end - p.start);
            let items = rest;
            rest = tail;
            let size = items.len();
            match target {
                Route::Shard(s) => {
                    let shard = &self.shards[s as usize];
                    shard
                        .queue
                        .try_push(Chunk { items, origin: s })
                        .ok()
                        .expect("planned GPU chunk placement cannot fail");
                    self.gpu_chunks.fetch_add(1, Ordering::Relaxed);
                    self.tracer.emit(
                        None,
                        EventKind::ShardDispatch {
                            shard: s,
                            device: shard.device_name,
                            size,
                            queue_depth: shard.queue.len(),
                        },
                    );
                }
                Route::CpuPool => {
                    self.cpu
                        .queue
                        .try_push(Chunk {
                            items,
                            origin: self.cpu.id,
                        })
                        .ok()
                        .expect("planned CPU chunk placement cannot fail");
                    self.spilled.fetch_add(size as u64, Ordering::Relaxed);
                    self.tracer.emit(
                        None,
                        EventKind::CpuSpill {
                            size,
                            min_batch_size: range.min_batch_size,
                        },
                    );
                }
            }
        }
        debug_assert!(rest.is_empty());
        self.accepted.fetch_add(total as u64, Ordering::Relaxed);
        Ok(GroupTicket { ids, rxs })
    }

    /// Point-in-time fleet rollup: every shard, the CPU pool, merged
    /// percentiles, and scheduler counters.
    pub fn snapshot(&self) -> FleetSnapshot {
        let now = Instant::now();
        let mut wait_us = Vec::new();
        let mut latency_us = Vec::new();
        let shards: Vec<_> = self
            .shards
            .iter()
            .map(|s| snapshot_shard(s, now, &mut wait_us, &mut latency_us))
            .collect();
        let cpu_pool = snapshot_shard(&self.cpu, now, &mut wait_us, &mut latency_us);
        wait_us.sort_unstable();
        latency_us.sort_unstable();
        let makespan_s = shards
            .iter()
            .map(|s| s.sim_time_s)
            .chain(std::iter::once(cpu_pool.sim_time_s))
            .fold(0.0f64, f64::max);
        let sim_time_total_s =
            shards.iter().map(|s| s.sim_time_s).sum::<f64>() + cpu_pool.sim_time_s;
        FleetSnapshot {
            wait_p50: percentile_us(&wait_us, 0.50),
            wait_p99: percentile_us(&wait_us, 0.99),
            latency_p50: percentile_us(&latency_us, 0.50),
            latency_p99: percentile_us(&latency_us, 0.99),
            shards,
            cpu_pool,
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            gpu_chunks: self.gpu_chunks.load(Ordering::Relaxed),
            spilled: self.spilled.load(Ordering::Relaxed),
            makespan_s,
            sim_time_total_s,
            degrade_level: self.degrade.level(),
            classes: self.classes.snapshot(),
        }
    }

    /// Point-in-time per-workload-class statistics.
    pub fn classes(&self) -> ClassesSnapshot {
        self.classes.snapshot()
    }

    /// Render the current snapshot as a Prometheus metrics page with
    /// per-device labels.
    pub fn prometheus_text(&self) -> String {
        fleet_prometheus_text(&self.snapshot())
    }

    /// Drain every queue, stop every worker, and return the final
    /// rollup. Queued work still executes: queues drain before closing.
    pub fn shutdown(self) -> FleetSnapshot {
        {
            let _placement = self.submit_lock.lock().unwrap();
            self.shutting_down.store(true, Ordering::Relaxed);
            for s in self.shards.iter() {
                s.queue.close();
            }
            self.cpu.queue.close();
        }
        let workers = std::mem::take(&mut *self.workers.lock().unwrap());
        for w in workers {
            let _ = w.join();
        }
        self.snapshot()
    }
}
