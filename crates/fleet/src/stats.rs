//! Fleet observability: per-shard snapshots rolled up into a
//! fleet-wide view with merged percentiles.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use batsolv_runtime::ClassesSnapshot;

use crate::shard::ShardShared;

/// Point-in-time copy of one shard's counters and percentiles. The CPU
/// spill pool reports through the same shape (its `shard` id is one
/// past the GPU range, its `device` is the Skylake node).
#[derive(Clone, Debug)]
pub struct ShardSnapshot {
    /// Shard id (GPU shards `0..devices`; the CPU pool is `devices`).
    pub shard: u32,
    /// Simulated device behind the shard.
    pub device: &'static str,
    /// Chunks queued right now.
    pub queue_depth: usize,
    /// Whether the shard's circuit breaker is open right now.
    pub breaker_open: bool,
    /// Chunks this shard's worker executed (own plus stolen).
    pub chunks_executed: u64,
    /// Systems that reached a converged solution here.
    pub completed: u64,
    /// Systems that reached a terminal failure here.
    pub failed: u64,
    /// Chunks this shard stole from loaded peers.
    pub steals_in: u64,
    /// Chunks loaded peers stole from this shard's queue.
    pub steals_out: u64,
    /// Times this shard's breaker tripped open.
    pub breaker_trips: u64,
    /// Chunks this shard re-queued elsewhere after a retryable failure.
    pub retries: u64,
    /// Hedge duplicates this shard launched against peer flights.
    pub hedges_fired: u64,
    /// Hedge duplicates this shard won (delivered at least one outcome).
    pub hedges_won: u64,
    /// Systems shed at dispatch (budget spent or sub-deadline under
    /// degradation).
    pub shed: u64,
    /// Simulated device time this shard accumulated, seconds.
    pub sim_time_s: f64,
    /// Median queue wait of systems executed here.
    pub wait_p50: Duration,
    /// 99th-percentile queue wait of systems executed here.
    pub wait_p99: Duration,
    /// Median submit-to-outcome latency of systems executed here.
    pub latency_p50: Duration,
    /// 99th-percentile submit-to-outcome latency.
    pub latency_p99: Duration,
}

/// Fleet-wide rollup: every shard's snapshot plus merged percentiles
/// and scheduler counters.
#[derive(Clone, Debug)]
pub struct FleetSnapshot {
    /// GPU shards, ordered by id.
    pub shards: Vec<ShardSnapshot>,
    /// The CPU banded-LU spill pool.
    pub cpu_pool: ShardSnapshot,
    /// Systems accepted by the scheduler.
    pub accepted: u64,
    /// Systems rejected at submit (shape, backpressure, breaker).
    pub rejected: u64,
    /// Chunks dispatched to GPU shards.
    pub gpu_chunks: u64,
    /// Systems spilled to the CPU pool (sub-`min_batch_size` chunks).
    pub spilled: u64,
    /// Fleet-wide median queue wait (samples merged across shards).
    pub wait_p50: Duration,
    /// Fleet-wide 99th-percentile queue wait.
    pub wait_p99: Duration,
    /// Fleet-wide median submit-to-outcome latency.
    pub latency_p50: Duration,
    /// Fleet-wide 99th-percentile submit-to-outcome latency.
    pub latency_p99: Duration,
    /// Fleet makespan: the busiest device's simulated time, seconds.
    pub makespan_s: f64,
    /// Sum of simulated device time across the fleet, seconds.
    pub sim_time_total_s: f64,
    /// Graceful-degradation ladder level (0 = normal; 1 = hedges off;
    /// 2 = + sub-deadline shedding; 3 = + widened CPU spill).
    pub degrade_level: u8,
    /// Per-workload-class latency and SLO statistics, fed by every
    /// winning delivery's phase ledger.
    pub classes: ClassesSnapshot,
}

impl FleetSnapshot {
    /// Systems that reached a converged solution anywhere.
    pub fn completed(&self) -> u64 {
        self.shards.iter().map(|s| s.completed).sum::<u64>() + self.cpu_pool.completed
    }

    /// Systems that reached a terminal failure anywhere.
    pub fn failed(&self) -> u64 {
        self.shards.iter().map(|s| s.failed).sum::<u64>() + self.cpu_pool.failed
    }

    /// Total steals across the fleet (each steal counts once).
    pub fn steals(&self) -> u64 {
        self.shards.iter().map(|s| s.steals_in).sum()
    }

    /// Total breaker trips across the fleet.
    pub fn breaker_trips(&self) -> u64 {
        self.shards.iter().map(|s| s.breaker_trips).sum()
    }

    /// Total retry re-queues across the fleet (CPU pool included).
    pub fn retries(&self) -> u64 {
        self.shards.iter().map(|s| s.retries).sum::<u64>() + self.cpu_pool.retries
    }

    /// Total hedge duplicates fired across the fleet.
    pub fn hedges_fired(&self) -> u64 {
        self.shards.iter().map(|s| s.hedges_fired).sum()
    }

    /// Total hedge duplicates that won their race.
    pub fn hedges_won(&self) -> u64 {
        self.shards.iter().map(|s| s.hedges_won).sum()
    }

    /// Total systems shed at dispatch across the fleet.
    pub fn shed(&self) -> u64 {
        self.shards.iter().map(|s| s.shed).sum::<u64>() + self.cpu_pool.shed
    }

    /// Human-readable multi-line report with a per-shard breakdown —
    /// the periodic stats page of `batsolv-serve --devices N`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fleet stats: {} accepted, {} rejected, {} completed, {} failed, \
             {} steals, {} spilled systems, {} retries, {}/{} hedges won/fired, \
             {} shed, degrade level {}\n",
            self.accepted,
            self.rejected,
            self.completed(),
            self.failed(),
            self.steals(),
            self.spilled,
            self.retries(),
            self.hedges_won(),
            self.hedges_fired(),
            self.shed(),
            self.degrade_level,
        ));
        out.push_str(&format!(
            "  fleet    : wait p50 {:?} p99 {:?} | latency p50 {:?} p99 {:?} | \
             makespan {:.6}s of {:.6}s total sim\n",
            self.wait_p50,
            self.wait_p99,
            self.latency_p50,
            self.latency_p99,
            self.makespan_s,
            self.sim_time_total_s,
        ));
        for s in self.shards.iter().chain(std::iter::once(&self.cpu_pool)) {
            out.push_str(&format!(
                "  shard {:>2} : {} | queue {} | breaker {} | {} chunks, {} ok, {} failed, \
                 steals {}/{} in/out | wait p50 {:?} p99 {:?} | sim {:.6}s\n",
                s.shard,
                s.device,
                s.queue_depth,
                if s.breaker_open { "OPEN" } else { "closed" },
                s.chunks_executed,
                s.completed,
                s.failed,
                s.steals_in,
                s.steals_out,
                s.wait_p50,
                s.wait_p99,
                s.sim_time_s,
            ));
        }
        out.push_str(&self.classes.render());
        out
    }
}

/// Percentile over a *sorted* µs sample slice — same nearest-rank
/// convention as the runtime stats registry.
pub(crate) fn percentile_us(sorted: &[u64], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    Duration::from_micros(sorted[idx])
}

/// Snapshot one shard, appending its raw samples to the fleet-wide
/// merge vectors.
pub(crate) fn snapshot_shard(
    shared: &ShardShared,
    now: Instant,
    merged_wait_us: &mut Vec<u64>,
    merged_latency_us: &mut Vec<u64>,
) -> ShardSnapshot {
    let (mut wait, mut latency) = {
        let s = shared.stats.sampled.lock().unwrap();
        (
            s.wait_us.samples().to_vec(),
            s.latency_us.samples().to_vec(),
        )
    };
    merged_wait_us.extend_from_slice(&wait);
    merged_latency_us.extend_from_slice(&latency);
    wait.sort_unstable();
    latency.sort_unstable();
    ShardSnapshot {
        shard: shared.id,
        device: shared.device_name,
        queue_depth: shared.queue.len(),
        breaker_open: shared.breaker.is_open(now),
        chunks_executed: shared.stats.chunks_executed.load(Ordering::Relaxed),
        completed: shared.stats.completed.load(Ordering::Relaxed),
        failed: shared.stats.failed.load(Ordering::Relaxed),
        steals_in: shared.stats.steals_in.load(Ordering::Relaxed),
        steals_out: shared.stats.steals_out.load(Ordering::Relaxed),
        breaker_trips: shared.stats.breaker_trips.load(Ordering::Relaxed),
        retries: shared.stats.retries.load(Ordering::Relaxed),
        hedges_fired: shared.stats.hedges_fired.load(Ordering::Relaxed),
        hedges_won: shared.stats.hedges_won.load(Ordering::Relaxed),
        shed: shared.stats.shed.load(Ordering::Relaxed),
        sim_time_s: shared.stats.sim_time_ns.load(Ordering::Relaxed) as f64 / 1e9,
        wait_p50: percentile_us(&wait, 0.50),
        wait_p99: percentile_us(&wait, 0.99),
        latency_p50: percentile_us(&latency, 0.50),
        latency_p99: percentile_us(&latency, 0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_follows_the_runtime_convention() {
        assert_eq!(percentile_us(&[], 0.99), Duration::ZERO);
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&sorted, 0.50), Duration::from_micros(51));
        assert_eq!(percentile_us(&sorted, 0.99), Duration::from_micros(99));
        assert_eq!(percentile_us(&[7], 0.99), Duration::from_micros(7));
    }
}
