//! `batsolv-fleet` — multi-device sharded serving with work stealing
//! and CPU spill.
//!
//! The paper benchmarks one GPU against one 38-worker Skylake node; a
//! production collision-operator service gets a *node* of devices and a
//! stream of irregularly sized batches. This crate adds the serving
//! layer for that setting on top of the single-device runtime:
//!
//! * a **[`DeviceRange`] scheduler** — size-aware dispatch over a
//!   contiguous range of device shards: groups are split into chunks of
//!   at most `max_batch_size` systems, chunks of at least
//!   `min_batch_size` land on GPU shards, and sub-cutoff remainders
//!   **spill to a CPU banded-LU pool** modeled on the paper's Skylake
//!   baseline (below the cutoff the GPU launch cannot amortize and
//!   dgbsv wins);
//! * **per-shard isolation** — every shard owns its simulated device,
//!   bounded queue, worker thread, circuit breaker, and stats, so one
//!   faulty device sheds load without stalling its peers;
//! * **deterministic work stealing** — an idle shard probes peers in a
//!   seeded, fixed victim order and steals the *oldest* queued chunk;
//!   solver numerics are device-placement-independent, so a stolen
//!   chunk's solutions are bitwise identical to unstolen execution;
//! * **deadline budgets** — a request's deadline becomes a
//!   `DeadlineBudget` debited at every hop (queueing, steals, retry
//!   backoff); admission fast-fails with `SubmitError::Infeasible` when
//!   the device model already prices a chunk above the whole budget,
//!   and spent budgets shed at dispatch instead of executing;
//! * **retry with backoff and hedged dispatch** — retryable chunk
//!   failures (device faults, worker panics) re-queue on a *different*
//!   shard after a deterministic seeded backoff; idle shards duplicate
//!   straggling peer flights after a p99-derived delay, with shared
//!   outcome slots keeping delivery exactly-once; a graceful-degradation
//!   ladder (hedges off → shedding → widened spill) keeps overload from
//!   amplifying itself;
//! * **fleet observability** — per-shard [`StatsSnapshot`-style]
//!   snapshots roll up into a [`FleetSnapshot`] with per-shard and
//!   fleet-wide wait/latency percentiles, trace events carry the shard
//!   id end to end (one chrome-trace device lane per shard), and the
//!   Prometheus page labels every series by device.
//!
//! ```
//! use std::sync::Arc;
//! use batsolv_fleet::{FleetConfig, FleetService};
//! use batsolv_formats::SparsityPattern;
//! use batsolv_runtime::SolveRequest;
//!
//! let pattern = Arc::new(SparsityPattern::stencil_2d(8, 8, false));
//! let values: Vec<f64> = (0..pattern.num_rows())
//!     .flat_map(|r| {
//!         pattern.row_cols(r).iter().map(move |&c| {
//!             if c as usize == r { 8.0 } else { -1.0 }
//!         })
//!     })
//!     .collect();
//! let service =
//!     FleetService::start(Arc::clone(&pattern), FleetConfig::new(2)).unwrap();
//! let group: Vec<SolveRequest> = (0..16)
//!     .map(|_| SolveRequest::new(values.clone(), vec![1.0; pattern.num_rows()]))
//!     .collect();
//! let ticket = service.submit_group(group, None).unwrap();
//! for outcome in ticket.wait_all() {
//!     assert!(outcome.unwrap().residual <= 1e-10);
//! }
//! let snap = service.shutdown();
//! assert_eq!(snap.completed(), 16);
//! ```

pub mod config;
mod degrade;
pub mod metrics;
pub mod range;
pub mod service;
mod shard;
mod spill;
pub mod stats;
mod work;

pub use config::{
    DegradeConfig, DeviceProfile, FleetConfig, HedgeConfig, RetryPolicy, DEFAULT_CPU_WORKERS,
    DEFAULT_MAX_BATCH_SIZE, DEFAULT_MIN_BATCH_SIZE,
};
pub use metrics::fleet_prometheus_text;
pub use range::{victim_order, DeviceRange, Placement, Route};
pub use service::FleetService;
pub use stats::{FleetSnapshot, ShardSnapshot};
pub use work::GroupTicket;
