//! Prometheus text-exposition rendering of a [`FleetSnapshot`], with
//! per-device labels.
//!
//! Every per-shard series carries `device="N"` (the shard id) plus
//! `profile` (the simulated hardware behind it); the CPU spill pool
//! exposes the same series under `device="cpu-pool"`, so a dashboard
//! can stack GPU shards against the spill path without a second metric
//! namespace. Rendering goes through the typed
//! [`MetricsRegistry`](batsolv_trace::MetricsRegistry) — the same
//! conformance-by-construction builder as the runtime page — so
//! HELP/TYPE pairing, name/label charsets, and series uniqueness are
//! asserted at build time, and the per-class series reuse the
//! runtime's exact schema under the `batsolv_fleet` prefix. Pure
//! function of the snapshot: a scrape and a [`FleetSnapshot::render`]
//! page taken at the same instant can never disagree.

use batsolv_runtime::render_class_series;
use batsolv_trace::MetricsRegistry;

use crate::stats::{FleetSnapshot, ShardSnapshot};

fn device_label(s: &ShardSnapshot, gpu_shards: usize) -> String {
    if (s.shard as usize) < gpu_shards {
        s.shard.to_string()
    } else {
        "cpu-pool".to_string()
    }
}

/// Render the fleet snapshot as a Prometheus text-format metrics page.
pub fn fleet_prometheus_text(f: &FleetSnapshot) -> String {
    let gpu_shards = f.shards.len();
    let mut m = MetricsRegistry::new();

    m.counter(
        "batsolv_fleet_requests_accepted_total",
        "Systems accepted by the fleet scheduler.",
        &[],
        f.accepted as f64,
    );
    m.counter(
        "batsolv_fleet_requests_rejected_total",
        "Systems rejected at submit (shape, backpressure, breaker).",
        &[],
        f.rejected as f64,
    );
    m.counter(
        "batsolv_fleet_gpu_chunks_total",
        "Chunks dispatched to GPU shards.",
        &[],
        f.gpu_chunks as f64,
    );
    m.counter(
        "batsolv_fleet_spilled_systems_total",
        "Systems spilled to the CPU banded-LU pool.",
        &[],
        f.spilled as f64,
    );
    m.gauge(
        "batsolv_fleet_makespan_seconds",
        "Busiest device's simulated time.",
        &[],
        f.makespan_s,
    );
    m.gauge(
        "batsolv_fleet_sim_time_seconds_total",
        "Simulated device time summed across the fleet.",
        &[],
        f.sim_time_total_s,
    );
    m.gauge(
        "batsolv_fleet_degrade_level",
        "Graceful-degradation ladder level (0 normal .. 3 widened spill).",
        &[],
        f.degrade_level as f64,
    );
    for (q, v) in [("0.5", f.wait_p50), ("0.99", f.wait_p99)] {
        m.gauge(
            "batsolv_fleet_wait_seconds",
            "Fleet-wide queue-wait percentiles, merged across shards.",
            &[("quantile", q)],
            v.as_secs_f64(),
        );
    }
    for (q, v) in [("0.5", f.latency_p50), ("0.99", f.latency_p99)] {
        m.gauge(
            "batsolv_fleet_latency_seconds",
            "Fleet-wide submit-to-outcome latency percentiles.",
            &[("quantile", q)],
            v.as_secs_f64(),
        );
    }

    let all: Vec<&ShardSnapshot> = f
        .shards
        .iter()
        .chain(std::iter::once(&f.cpu_pool))
        .collect();

    type DeviceCounter = (&'static str, &'static str, fn(&ShardSnapshot) -> u64);
    let per_device_counters: [DeviceCounter; 10] = [
        (
            "batsolv_fleet_device_chunks_total",
            "Chunks executed per device (own plus stolen).",
            |s| s.chunks_executed,
        ),
        (
            "batsolv_fleet_device_completed_total",
            "Systems converged per device.",
            |s| s.completed,
        ),
        (
            "batsolv_fleet_device_failed_total",
            "Systems terminally failed per device.",
            |s| s.failed,
        ),
        (
            "batsolv_fleet_device_steals_in_total",
            "Chunks this device stole from loaded peers.",
            |s| s.steals_in,
        ),
        (
            "batsolv_fleet_device_steals_out_total",
            "Chunks loaded peers stole from this device's queue.",
            |s| s.steals_out,
        ),
        (
            "batsolv_fleet_device_breaker_trips_total",
            "Circuit-breaker trips per device.",
            |s| s.breaker_trips,
        ),
        (
            "batsolv_fleet_device_retries_total",
            "Chunks re-queued elsewhere after a retryable failure, per device.",
            |s| s.retries,
        ),
        (
            "batsolv_fleet_device_hedges_fired_total",
            "Hedge duplicates launched against peer flights, per device.",
            |s| s.hedges_fired,
        ),
        (
            "batsolv_fleet_device_hedges_won_total",
            "Hedge duplicates that delivered first, per device.",
            |s| s.hedges_won,
        ),
        (
            "batsolv_fleet_device_shed_total",
            "Systems shed at dispatch (budget spent or sub-deadline), per device.",
            |s| s.shed,
        ),
    ];
    for (name, help, get) in per_device_counters {
        for s in &all {
            let dev = device_label(s, gpu_shards);
            m.counter(
                name,
                help,
                &[("device", dev.as_str()), ("profile", s.device)],
                get(s) as f64,
            );
        }
    }

    for s in &all {
        let dev = device_label(s, gpu_shards);
        m.gauge(
            "batsolv_fleet_device_queue_depth",
            "Chunks queued per device right now.",
            &[("device", dev.as_str()), ("profile", s.device)],
            s.queue_depth as f64,
        );
    }
    for s in &all {
        let dev = device_label(s, gpu_shards);
        m.gauge(
            "batsolv_fleet_device_breaker_open",
            "Whether the device's circuit breaker is open (1) or closed (0).",
            &[("device", dev.as_str()), ("profile", s.device)],
            if s.breaker_open { 1.0 } else { 0.0 },
        );
    }
    for s in &all {
        let dev = device_label(s, gpu_shards);
        m.gauge(
            "batsolv_fleet_device_sim_time_seconds",
            "Simulated device time accumulated per device.",
            &[("device", dev.as_str()), ("profile", s.device)],
            s.sim_time_s,
        );
    }
    for s in &all {
        let dev = device_label(s, gpu_shards);
        for (q, v) in [("0.5", s.wait_p50), ("0.99", s.wait_p99)] {
            m.gauge(
                "batsolv_fleet_device_wait_seconds",
                "Per-device queue-wait percentiles.",
                &[("device", dev.as_str()), ("quantile", q)],
                v.as_secs_f64(),
            );
        }
    }
    for s in &all {
        let dev = device_label(s, gpu_shards);
        for (q, v) in [("0.5", s.latency_p50), ("0.99", s.latency_p99)] {
            m.gauge(
                "batsolv_fleet_device_latency_seconds",
                "Per-device submit-to-outcome latency percentiles.",
                &[("device", dev.as_str()), ("quantile", q)],
                v.as_secs_f64(),
            );
        }
    }

    // Per-class series under the fleet prefix — the identical schema the
    // runtime page exposes under `batsolv`, rendered by the same code.
    render_class_series(&mut m, "batsolv_fleet", &f.classes);

    m.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use batsolv_runtime::{ClassTracker, ClassesSnapshot};
    use batsolv_trace::{check_prom_conformance, parse_prom_labeled, WorkloadClass};
    use std::time::Duration;

    fn shard(id: u32, device: &'static str) -> ShardSnapshot {
        ShardSnapshot {
            shard: id,
            device,
            queue_depth: id as usize,
            breaker_open: id == 1,
            chunks_executed: 10 + id as u64,
            completed: 100 * (id as u64 + 1),
            failed: id as u64,
            steals_in: 2,
            steals_out: 3,
            breaker_trips: 0,
            retries: id as u64,
            hedges_fired: 2 * id as u64,
            hedges_won: id as u64,
            shed: 0,
            sim_time_s: 0.5 * (id as f64 + 1.0),
            wait_p50: Duration::from_micros(100),
            wait_p99: Duration::from_micros(900),
            latency_p50: Duration::from_micros(200),
            latency_p99: Duration::from_micros(1800),
        }
    }

    fn classes() -> ClassesSnapshot {
        let t = ClassTracker::new();
        t.observe(WorkloadClass::IonLike, 120, Some(3), Some(true));
        t.observe(WorkloadClass::IonLike, 450, Some(4), Some(true));
        t.observe(WorkloadClass::ElectronLike, 5_000, Some(5), Some(false));
        t.snapshot()
    }

    fn snapshot() -> FleetSnapshot {
        FleetSnapshot {
            shards: vec![shard(0, "NVIDIA V100-16GB"), shard(1, "NVIDIA V100-16GB")],
            cpu_pool: shard(2, "2x Intel Xeon Gold 6148 (38 worker cores)"),
            accepted: 640,
            rejected: 3,
            gpu_chunks: 20,
            spilled: 11,
            wait_p50: Duration::from_micros(150),
            wait_p99: Duration::from_micros(950),
            latency_p50: Duration::from_micros(250),
            latency_p99: Duration::from_micros(1900),
            makespan_s: 1.0,
            sim_time_total_s: 2.5,
            degrade_level: 1,
            classes: classes(),
        }
    }

    #[test]
    fn per_device_labels_cover_gpu_shards_and_cpu_pool() {
        let page = fleet_prometheus_text(&snapshot());
        assert!(page.contains("batsolv_fleet_device_completed_total{device=\"0\""));
        assert!(page.contains("batsolv_fleet_device_completed_total{device=\"1\""));
        assert!(page.contains("batsolv_fleet_device_completed_total{device=\"cpu-pool\""));
        assert!(page.contains("profile=\"2x Intel Xeon Gold 6148 (38 worker cores)\""));
        assert!(page.contains("batsolv_fleet_spilled_systems_total 11"));
        assert!(page.contains("batsolv_fleet_device_breaker_open{device=\"1\""));
        assert!(page.contains("batsolv_fleet_device_retries_total{device=\"1\""));
        assert!(page.contains("batsolv_fleet_device_hedges_fired_total{device=\"0\""));
        assert!(page.contains("batsolv_fleet_device_hedges_won_total{device=\"cpu-pool\""));
        assert!(page.contains("batsolv_fleet_device_shed_total{device=\"0\""));
        assert!(page.contains("batsolv_fleet_degrade_level 1"));
    }

    #[test]
    fn page_agrees_with_the_snapshot() {
        let f = snapshot();
        let page = fleet_prometheus_text(&f);
        let accepted =
            batsolv_trace::parse_prom_value(&page, "batsolv_fleet_requests_accepted_total")
                .unwrap();
        assert_eq!(accepted as u64, f.accepted);
        let makespan =
            batsolv_trace::parse_prom_value(&page, "batsolv_fleet_makespan_seconds").unwrap();
        assert!((makespan - f.makespan_s).abs() < 1e-12);
    }

    #[test]
    fn page_is_exposition_conformant() {
        check_prom_conformance(&fleet_prometheus_text(&snapshot()))
            .expect("fleet page must be exposition-conformant");
    }

    #[test]
    fn class_series_match_the_runtime_schema_under_the_fleet_prefix() {
        let f = snapshot();
        let page = fleet_prometheus_text(&f);
        assert_eq!(
            parse_prom_labeled(
                &page,
                "batsolv_fleet_class_requests_total",
                &[("class", "ion-like")],
            ),
            Some(2.0)
        );
        let ion = f.classes.get(WorkloadClass::IonLike);
        assert_eq!(
            parse_prom_labeled(
                &page,
                "batsolv_fleet_class_latency_us",
                &[("class", "ion-like"), ("quantile", "0.99")],
            ),
            Some(ion.p99_us as f64)
        );
        assert_eq!(
            parse_prom_labeled(
                &page,
                "batsolv_fleet_class_deadline_hit_ratio",
                &[("class", "electron-like")],
            ),
            Some(0.0)
        );
        assert!(
            parse_prom_labeled(
                &page,
                "batsolv_fleet_slo_burn_rate",
                &[("class", "electron-like"), ("window", "1m")],
            )
            .unwrap()
                > 1.0,
            "every electron request missed: the 1m window must be burning"
        );
        // The tail exemplar links the histogram to the slowest trace.
        assert!(page.contains("trace_id=\"4\""));
    }
}
