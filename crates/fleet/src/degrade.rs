//! The graceful-degradation ladder.
//!
//! One fleet-wide level, driven by GPU queue occupancy observed at
//! admission (under the submit lock, so transitions are serialized):
//!
//! | level | behavior shed                                   |
//! |-------|-------------------------------------------------|
//! | 0     | normal operation                                |
//! | 1     | hedging disabled (no duplicate work under load) |
//! | 2     | + sub-deadline chunks shed at dispatch          |
//! | 3     | + CPU spill cutoff widens (2x `min_batch_size`) |
//!
//! Each behavior is *additive*: level 3 implies 1 and 2. Workers read
//! the level lock-free on their hot path; the admission path publishes
//! transitions as `DegradeShift` trace events and the level rides every
//! [`FleetSnapshot`](crate::FleetSnapshot).

use std::sync::atomic::{AtomicU8, Ordering};

use crate::config::DegradeConfig;

/// Shared, lock-free view of the ladder level.
pub(crate) struct DegradeState {
    level: AtomicU8,
    cfg: DegradeConfig,
}

impl DegradeState {
    pub fn new(cfg: DegradeConfig) -> DegradeState {
        DegradeState {
            level: AtomicU8::new(0),
            cfg,
        }
    }

    /// Current ladder level.
    pub fn level(&self) -> u8 {
        self.level.load(Ordering::Acquire)
    }

    /// Re-evaluate the level for a fresh occupancy observation.
    /// Returns `Some((from, to))` on a transition. Callers serialize
    /// observations (the fleet calls this under its submit lock).
    pub fn observe(&self, occupancy: f64) -> Option<(u8, u8)> {
        let to = self.cfg.level_for(occupancy);
        let from = self.level.swap(to, Ordering::AcqRel);
        (from != to).then_some((from, to))
    }

    /// Hedging allowed only at level 0.
    pub fn hedging_allowed(&self) -> bool {
        self.level() < 1
    }

    /// Sub-deadline shedding from level 2.
    pub fn shedding(&self) -> bool {
        self.level() >= 2
    }

    /// Widened CPU spill from level 3.
    pub fn widen_spill(&self) -> bool {
        self.level() >= 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_transitions_are_reported_once() {
        let state = DegradeState::new(DegradeConfig::default());
        assert_eq!(state.level(), 0);
        assert!(state.hedging_allowed());
        assert_eq!(state.observe(0.2), None, "no transition below hedge_off");
        assert_eq!(state.observe(0.6), Some((0, 1)));
        assert!(!state.hedging_allowed());
        assert_eq!(state.observe(0.6), None, "steady level reports nothing");
        assert_eq!(state.observe(0.95), Some((1, 3)));
        assert!(state.shedding());
        assert!(state.widen_spill());
        // Recovery steps back down.
        assert_eq!(state.observe(0.1), Some((3, 0)));
        assert!(state.hedging_allowed());
    }
}
