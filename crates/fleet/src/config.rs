//! Fleet configuration.

use batsolv_gpusim::DeviceSpec;
use batsolv_runtime::{BreakerConfig, LadderConfig, SolverVariant};
use batsolv_trace::Tracer;
use batsolv_types::{Error, Result};

/// Default minimum batch size before a chunk spills to the CPU pool —
/// below this the GPU launch overhead dominates and the paper's Skylake
/// banded-LU baseline wins (the SPH-EXA `MIN_BATCH_SIZE` cutoff, scaled
/// to the service's chunk sizes).
pub const DEFAULT_MIN_BATCH_SIZE: usize = 8;

/// Default maximum systems per dispatched chunk (the SPH-EXA
/// `MAX_BATCH_SIZE` cutoff): larger groups are split so no single shard
/// absorbs an unbounded launch.
pub const DEFAULT_MAX_BATCH_SIZE: usize = 256;

/// Worker count of the CPU spill pool: the paper's dual-socket Skylake
/// baseline runs Kokkos with 38 solve workers.
pub const DEFAULT_CPU_WORKERS: usize = 38;

/// Which simulated GPU stands behind every shard of the fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceProfile {
    /// NVIDIA V100-16GB (Summit).
    V100,
    /// NVIDIA A100-40GB.
    A100,
    /// AMD MI100-32GB.
    Mi100,
}

impl DeviceProfile {
    /// Parse a `--device-profile` value.
    pub fn parse(s: &str) -> Option<DeviceProfile> {
        match s {
            "v100" => Some(DeviceProfile::V100),
            "a100" => Some(DeviceProfile::A100),
            "mi100" => Some(DeviceProfile::Mi100),
            _ => None,
        }
    }

    /// The flag spelling this profile parses from.
    pub fn name(self) -> &'static str {
        match self {
            DeviceProfile::V100 => "v100",
            DeviceProfile::A100 => "a100",
            DeviceProfile::Mi100 => "mi100",
        }
    }

    /// The gpusim device spec for one shard.
    pub fn spec(self) -> DeviceSpec {
        match self {
            DeviceProfile::V100 => DeviceSpec::v100(),
            DeviceProfile::A100 => DeviceSpec::a100(),
            DeviceProfile::Mi100 => DeviceSpec::mi100(),
        }
    }

    /// Every accepted `--device-profile` value.
    pub const NAMES: &'static [&'static str] = &["v100", "a100", "mi100"];
}

/// Knobs of a fleet service.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of GPU shards (simulated devices).
    pub devices: usize,
    /// Device profile behind every shard (homogeneous fleet; the
    /// scheduler itself is profile-agnostic).
    pub profile: DeviceProfile,
    /// Chunks smaller than this spill to the CPU banded-LU pool; a
    /// chunk of exactly this size stays on a GPU shard.
    pub min_batch_size: usize,
    /// Groups are split into chunks of at most this many systems.
    pub max_batch_size: usize,
    /// Bounded per-shard queue capacity, in chunks.
    pub queue_capacity: usize,
    /// Whether idle shards steal queued chunks from loaded ones.
    pub steal: bool,
    /// Seed fixing every thief's victim-visit order (deterministic
    /// steal schedules for tests).
    pub steal_seed: u64,
    /// Escalation-ladder knobs applied by every shard's engine.
    pub ladder: LadderConfig,
    /// Per-shard circuit-breaker knobs.
    pub breaker: BreakerConfig,
    /// Solve workers modeled in the CPU spill pool.
    pub cpu_workers: usize,
    /// Tracer every shard (and the scheduler) emits into.
    pub tracer: Tracer,
}

impl FleetConfig {
    /// A fleet of `devices` shards with the defaults: V100 profile,
    /// min/max cutoffs [`DEFAULT_MIN_BATCH_SIZE`] /
    /// [`DEFAULT_MAX_BATCH_SIZE`], stealing on, 38-worker CPU pool.
    pub fn new(devices: usize) -> FleetConfig {
        FleetConfig {
            devices,
            profile: DeviceProfile::V100,
            min_batch_size: DEFAULT_MIN_BATCH_SIZE,
            max_batch_size: DEFAULT_MAX_BATCH_SIZE,
            queue_capacity: 256,
            steal: true,
            steal_seed: 0x5eed_f1ee,
            ladder: LadderConfig {
                default_tolerance: 1e-10,
                max_iters: 500,
                enable_gmres: true,
                gmres_restart: 30,
                gmres_max_iters: 300,
                enable_fallback: true,
                solver: SolverVariant::BicgstabFused,
            },
            breaker: BreakerConfig::default(),
            cpu_workers: DEFAULT_CPU_WORKERS,
            tracer: Tracer::disabled(),
        }
    }

    /// Set the device profile behind every shard.
    pub fn with_profile(mut self, profile: DeviceProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Set the CPU-spill cutoff.
    pub fn with_min_batch_size(mut self, min: usize) -> Self {
        self.min_batch_size = min;
        self
    }

    /// Set the chunking ceiling.
    pub fn with_max_batch_size(mut self, max: usize) -> Self {
        self.max_batch_size = max;
        self
    }

    /// Set the per-shard queue bound (in chunks).
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap;
        self
    }

    /// Enable or disable work stealing.
    pub fn with_steal(mut self, steal: bool) -> Self {
        self.steal = steal;
        self
    }

    /// Fix the steal victim-order seed.
    pub fn with_steal_seed(mut self, seed: u64) -> Self {
        self.steal_seed = seed;
        self
    }

    /// Override the ladder knobs.
    pub fn with_ladder(mut self, ladder: LadderConfig) -> Self {
        self.ladder = ladder;
        self
    }

    /// Override the per-shard breaker knobs.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Attach a tracer.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Reject nonsensical knob combinations before any thread spawns.
    pub fn validate(&self) -> Result<()> {
        if self.devices == 0 {
            return Err(Error::InvalidConfig(
                "fleet needs at least one device shard".into(),
            ));
        }
        if self.min_batch_size == 0 {
            return Err(Error::InvalidConfig("min_batch_size must be >= 1".into()));
        }
        if self.max_batch_size < self.min_batch_size {
            return Err(Error::InvalidConfig(
                "max_batch_size must be >= min_batch_size (the dispatch window)".into(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(Error::InvalidConfig("queue_capacity must be >= 1".into()));
        }
        if self.cpu_workers == 0 {
            return Err(Error::InvalidConfig("cpu_workers must be >= 1".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_parse_roundtrip() {
        for name in DeviceProfile::NAMES {
            let p = DeviceProfile::parse(name).unwrap();
            assert_eq!(p.name(), *name);
        }
        assert!(DeviceProfile::parse("h100").is_none());
        assert_eq!(DeviceProfile::V100.spec().name, "NVIDIA V100-16GB");
    }

    #[test]
    fn validation_rejects_inverted_cutoffs() {
        assert!(FleetConfig::new(4).validate().is_ok());
        assert!(FleetConfig::new(0).validate().is_err());
        assert!(FleetConfig::new(2)
            .with_min_batch_size(0)
            .validate()
            .is_err());
        assert!(FleetConfig::new(2)
            .with_min_batch_size(64)
            .with_max_batch_size(32)
            .validate()
            .is_err());
        assert!(FleetConfig::new(2)
            .with_queue_capacity(0)
            .validate()
            .is_err());
    }
}
