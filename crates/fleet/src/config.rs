//! Fleet configuration.

use std::time::Duration;

use batsolv_gpusim::DeviceSpec;
use batsolv_runtime::{BreakerConfig, LadderConfig, PrecondVariant, SolverVariant};
use batsolv_trace::Tracer;
use batsolv_types::{Error, Result};

/// Default minimum batch size before a chunk spills to the CPU pool —
/// below this the GPU launch overhead dominates and the paper's Skylake
/// banded-LU baseline wins (the SPH-EXA `MIN_BATCH_SIZE` cutoff, scaled
/// to the service's chunk sizes).
pub const DEFAULT_MIN_BATCH_SIZE: usize = 8;

/// Default maximum systems per dispatched chunk (the SPH-EXA
/// `MAX_BATCH_SIZE` cutoff): larger groups are split so no single shard
/// absorbs an unbounded launch.
pub const DEFAULT_MAX_BATCH_SIZE: usize = 256;

/// Worker count of the CPU spill pool: the paper's dual-socket Skylake
/// baseline runs Kokkos with 38 solve workers.
pub const DEFAULT_CPU_WORKERS: usize = 38;

/// Which simulated GPU stands behind every shard of the fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceProfile {
    /// NVIDIA V100-16GB (Summit).
    V100,
    /// NVIDIA A100-40GB.
    A100,
    /// AMD MI100-32GB.
    Mi100,
}

impl DeviceProfile {
    /// Parse a `--device-profile` value.
    pub fn parse(s: &str) -> Option<DeviceProfile> {
        match s {
            "v100" => Some(DeviceProfile::V100),
            "a100" => Some(DeviceProfile::A100),
            "mi100" => Some(DeviceProfile::Mi100),
            _ => None,
        }
    }

    /// The flag spelling this profile parses from.
    pub fn name(self) -> &'static str {
        match self {
            DeviceProfile::V100 => "v100",
            DeviceProfile::A100 => "a100",
            DeviceProfile::Mi100 => "mi100",
        }
    }

    /// The gpusim device spec for one shard.
    pub fn spec(self) -> DeviceSpec {
        match self {
            DeviceProfile::V100 => DeviceSpec::v100(),
            DeviceProfile::A100 => DeviceSpec::a100(),
            DeviceProfile::Mi100 => DeviceSpec::mi100(),
        }
    }

    /// Every accepted `--device-profile` value.
    pub const NAMES: &'static [&'static str] = &["v100", "a100", "mi100"];
}

/// Retry policy for retryable chunk failures (device failures and
/// worker panics — see `FailureClass` in `batsolv-faults`).
///
/// Backoff is exponential with deterministic, seeded jitter: the delay
/// for `(attempt, id)` is a pure function of the policy, so chaos tests
/// replaying a seed observe identical retry schedules. `max_attempts`
/// counts *executions*, not re-tries: 1 means a chunk runs once and a
/// retryable failure is terminal (today's behavior, and the default).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total execution attempts per chunk (1 = retries off).
    pub max_attempts: u32,
    /// Backoff before attempt 2 (doubles each further attempt).
    pub base_backoff: Duration,
    /// Ceiling on any single backoff, jitter included.
    pub max_backoff: Duration,
    /// Jitter fraction: the delay is scaled by `1.0 + jitter * u` with
    /// `u` uniform in `[0, 1)` drawn from the seeded hash.
    pub jitter: f64,
    /// Seed for the jitter hash.
    pub seed: u64,
}

impl RetryPolicy {
    /// Retries off: one attempt, retryable failures become terminal.
    pub fn disabled() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
            jitter: 0.25,
            seed: 0x5eed_4e77,
        }
    }

    /// Retries on with `max_attempts` total executions and the default
    /// 1 ms base / 100 ms cap / 25% jitter schedule.
    pub fn new(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::disabled()
        }
    }

    /// Fix the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Deterministic backoff before executing `attempt` (2-based: the
    /// first retry is attempt 2) of the chunk whose lead request id is
    /// `id`. Pure in `(self, attempt, id)`.
    pub fn backoff(&self, attempt: u32, id: u64) -> Duration {
        // Exponent for the retry ordinal; clamp so the shift is defined.
        let exp = attempt.saturating_sub(2).min(20);
        let base = self
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff);
        // splitmix64 over (seed, id, attempt) for the jitter draw.
        let mut z = self
            .seed
            .wrapping_add(id.rotate_left(17))
            .wrapping_add(attempt as u64)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        let scaled = base.mul_f64(1.0 + self.jitter.max(0.0) * u);
        scaled.min(self.max_backoff)
    }
}

/// Straggler-hedging policy: once a primary chunk has been in flight
/// longer than its shard class's hedge delay, an idle shard duplicates
/// it and the first terminal outcome wins the shared outcome slots.
#[derive(Clone, Copy, Debug)]
pub struct HedgeConfig {
    /// Master switch (also forced off at degradation level >= 1).
    pub enabled: bool,
    /// Floor on the hedge delay, so cold reservoirs (no latency
    /// samples yet) do not hedge instantly.
    pub min_delay: Duration,
    /// Hedge when the in-flight age exceeds this multiple of the
    /// executing shard's observed p99 chunk latency.
    pub p99_factor: f64,
}

impl HedgeConfig {
    /// Hedging off (the default).
    pub fn disabled() -> HedgeConfig {
        HedgeConfig {
            enabled: false,
            min_delay: Duration::from_millis(20),
            p99_factor: 2.0,
        }
    }

    /// Hedging on with the default 20 ms floor and 2x p99 trigger.
    pub fn enabled() -> HedgeConfig {
        HedgeConfig {
            enabled: true,
            ..HedgeConfig::disabled()
        }
    }

    /// Set the hedge-delay floor.
    pub fn with_min_delay(mut self, d: Duration) -> Self {
        self.min_delay = d;
        self
    }

    /// Set the p99 multiple that triggers a hedge.
    pub fn with_p99_factor(mut self, f: f64) -> Self {
        self.p99_factor = f;
        self
    }
}

/// Queue-occupancy thresholds of the graceful-degradation ladder.
///
/// The fraction is fleet-wide GPU queue occupancy (queued chunks over
/// total capacity). Crossing a threshold upward raises the level;
/// falling back below lowers it. Levels: 0 normal, 1 hedges disabled,
/// 2 sub-deadline shedding, 3 CPU-spill widening.
#[derive(Clone, Copy, Debug)]
pub struct DegradeConfig {
    /// Occupancy at which hedging turns off (level 1).
    pub hedge_off: f64,
    /// Occupancy at which sub-deadline work is shed (level 2).
    pub shed: f64,
    /// Occupancy at which the CPU spill cutoff widens (level 3).
    pub widen_spill: f64,
}

impl Default for DegradeConfig {
    fn default() -> DegradeConfig {
        DegradeConfig {
            hedge_off: 0.50,
            shed: 0.75,
            widen_spill: 0.90,
        }
    }
}

impl DegradeConfig {
    /// The ladder level for an occupancy fraction.
    pub fn level_for(&self, occupancy: f64) -> u8 {
        if occupancy >= self.widen_spill {
            3
        } else if occupancy >= self.shed {
            2
        } else if occupancy >= self.hedge_off {
            1
        } else {
            0
        }
    }
}

/// Knobs of a fleet service.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of GPU shards (simulated devices).
    pub devices: usize,
    /// Device profile behind every shard (homogeneous fleet; the
    /// scheduler itself is profile-agnostic).
    pub profile: DeviceProfile,
    /// Chunks smaller than this spill to the CPU banded-LU pool; a
    /// chunk of exactly this size stays on a GPU shard.
    pub min_batch_size: usize,
    /// Groups are split into chunks of at most this many systems.
    pub max_batch_size: usize,
    /// Bounded per-shard queue capacity, in chunks.
    pub queue_capacity: usize,
    /// Whether idle shards steal queued chunks from loaded ones.
    pub steal: bool,
    /// Seed fixing every thief's victim-visit order (deterministic
    /// steal schedules for tests).
    pub steal_seed: u64,
    /// Escalation-ladder knobs applied by every shard's engine.
    pub ladder: LadderConfig,
    /// Per-shard circuit-breaker knobs.
    pub breaker: BreakerConfig,
    /// Solve workers modeled in the CPU spill pool.
    pub cpu_workers: usize,
    /// Retry policy for retryable chunk failures.
    pub retry: RetryPolicy,
    /// Straggler-hedging policy.
    pub hedge: HedgeConfig,
    /// Graceful-degradation ladder thresholds.
    pub degrade: DegradeConfig,
    /// Tracer every shard (and the scheduler) emits into.
    pub tracer: Tracer,
}

impl FleetConfig {
    /// A fleet of `devices` shards with the defaults: V100 profile,
    /// min/max cutoffs [`DEFAULT_MIN_BATCH_SIZE`] /
    /// [`DEFAULT_MAX_BATCH_SIZE`], stealing on, 38-worker CPU pool.
    pub fn new(devices: usize) -> FleetConfig {
        FleetConfig {
            devices,
            profile: DeviceProfile::V100,
            min_batch_size: DEFAULT_MIN_BATCH_SIZE,
            max_batch_size: DEFAULT_MAX_BATCH_SIZE,
            queue_capacity: 256,
            steal: true,
            steal_seed: 0x5eed_f1ee,
            ladder: LadderConfig {
                default_tolerance: 1e-10,
                max_iters: 500,
                enable_gmres: true,
                gmres_restart: 30,
                gmres_max_iters: 300,
                enable_fallback: true,
                solver: SolverVariant::BicgstabFused,
                precond: PrecondVariant::Jacobi,
            },
            breaker: BreakerConfig::default(),
            cpu_workers: DEFAULT_CPU_WORKERS,
            retry: RetryPolicy::disabled(),
            hedge: HedgeConfig::disabled(),
            degrade: DegradeConfig::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Set the device profile behind every shard.
    pub fn with_profile(mut self, profile: DeviceProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Set the CPU-spill cutoff.
    pub fn with_min_batch_size(mut self, min: usize) -> Self {
        self.min_batch_size = min;
        self
    }

    /// Set the chunking ceiling.
    pub fn with_max_batch_size(mut self, max: usize) -> Self {
        self.max_batch_size = max;
        self
    }

    /// Set the per-shard queue bound (in chunks).
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap;
        self
    }

    /// Enable or disable work stealing.
    pub fn with_steal(mut self, steal: bool) -> Self {
        self.steal = steal;
        self
    }

    /// Fix the steal victim-order seed.
    pub fn with_steal_seed(mut self, seed: u64) -> Self {
        self.steal_seed = seed;
        self
    }

    /// Override the ladder knobs.
    pub fn with_ladder(mut self, ladder: LadderConfig) -> Self {
        self.ladder = ladder;
        self
    }

    /// Override the per-shard breaker knobs.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Override the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Override the hedging policy.
    pub fn with_hedge(mut self, hedge: HedgeConfig) -> Self {
        self.hedge = hedge;
        self
    }

    /// Override the degradation-ladder thresholds.
    pub fn with_degrade(mut self, degrade: DegradeConfig) -> Self {
        self.degrade = degrade;
        self
    }

    /// Attach a tracer.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Reject nonsensical knob combinations before any thread spawns.
    pub fn validate(&self) -> Result<()> {
        if self.devices == 0 {
            return Err(Error::InvalidConfig(
                "fleet needs at least one device shard".into(),
            ));
        }
        if self.min_batch_size == 0 {
            return Err(Error::InvalidConfig("min_batch_size must be >= 1".into()));
        }
        if self.max_batch_size < self.min_batch_size {
            return Err(Error::InvalidConfig(
                "max_batch_size must be >= min_batch_size (the dispatch window)".into(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(Error::InvalidConfig("queue_capacity must be >= 1".into()));
        }
        if self.cpu_workers == 0 {
            return Err(Error::InvalidConfig("cpu_workers must be >= 1".into()));
        }
        if self.retry.max_attempts == 0 {
            return Err(Error::InvalidConfig(
                "retry.max_attempts must be >= 1 (1 means retries off)".into(),
            ));
        }
        if !self.hedge.p99_factor.is_finite() || self.hedge.p99_factor <= 0.0 {
            return Err(Error::InvalidConfig(
                "hedge.p99_factor must be positive and finite".into(),
            ));
        }
        let d = &self.degrade;
        if d.hedge_off > d.shed || d.shed > d.widen_spill {
            return Err(Error::InvalidConfig(
                "degrade thresholds must be ordered hedge_off <= shed <= widen_spill".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_parse_roundtrip() {
        for name in DeviceProfile::NAMES {
            let p = DeviceProfile::parse(name).unwrap();
            assert_eq!(p.name(), *name);
        }
        assert!(DeviceProfile::parse("h100").is_none());
        assert_eq!(DeviceProfile::V100.spec().name, "NVIDIA V100-16GB");
    }

    #[test]
    fn validation_rejects_inverted_cutoffs() {
        assert!(FleetConfig::new(4).validate().is_ok());
        assert!(FleetConfig::new(0).validate().is_err());
        assert!(FleetConfig::new(2)
            .with_min_batch_size(0)
            .validate()
            .is_err());
        assert!(FleetConfig::new(2)
            .with_min_batch_size(64)
            .with_max_batch_size(32)
            .validate()
            .is_err());
        assert!(FleetConfig::new(2)
            .with_queue_capacity(0)
            .validate()
            .is_err());
        assert!(FleetConfig::new(2)
            .with_retry(RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::disabled()
            })
            .validate()
            .is_err());
        assert!(FleetConfig::new(2)
            .with_hedge(HedgeConfig {
                p99_factor: 0.0,
                ..HedgeConfig::disabled()
            })
            .validate()
            .is_err());
        assert!(FleetConfig::new(2)
            .with_degrade(DegradeConfig {
                hedge_off: 0.9,
                shed: 0.5,
                widen_spill: 0.95,
            })
            .validate()
            .is_err());
    }

    #[test]
    fn backoff_is_deterministic_under_a_fixed_seed() {
        let policy = RetryPolicy::new(5).with_seed(42);
        let again = RetryPolicy::new(5).with_seed(42);
        for attempt in 2..=5u32 {
            for id in [0u64, 1, 17, 1 << 40] {
                assert_eq!(
                    policy.backoff(attempt, id),
                    again.backoff(attempt, id),
                    "pure function of (policy, attempt, id)"
                );
            }
        }
        // A different seed shifts the jitter for at least one cell.
        let other = RetryPolicy::new(5).with_seed(43);
        assert_ne!(policy.backoff(2, 17), other.backoff(2, 17));
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::new(40)
        };
        // No jitter: attempt 2 = base, attempt 3 = 2x base, ...
        assert_eq!(policy.backoff(2, 9), Duration::from_millis(1));
        assert_eq!(policy.backoff(3, 9), Duration::from_millis(2));
        assert_eq!(policy.backoff(4, 9), Duration::from_millis(4));
        // Deep attempts saturate at the cap instead of overflowing.
        assert_eq!(policy.backoff(40, 9), policy.max_backoff);
        // Jitter never exceeds the cap either.
        let jittered = RetryPolicy::new(40);
        assert!(jittered.backoff(40, 9) <= jittered.max_backoff);
    }

    #[test]
    fn degrade_levels_follow_the_thresholds() {
        let d = DegradeConfig::default();
        assert_eq!(d.level_for(0.0), 0);
        assert_eq!(d.level_for(0.49), 0);
        assert_eq!(d.level_for(0.50), 1);
        assert_eq!(d.level_for(0.75), 2);
        assert_eq!(d.level_for(0.90), 3);
        assert_eq!(d.level_for(1.0), 3);
    }
}
