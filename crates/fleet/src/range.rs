//! The `DeviceRange` scheduler: size-aware routing of batches across
//! the fleet's device shards.
//!
//! Mirrors the SPH-EXA batch solver's dispatch shape: a contiguous range
//! of device ids (`device_begin .. device_end`) absorbs batches in
//! chunks of at most `MAX_BATCH_SIZE`, and anything smaller than
//! `MIN_BATCH_SIZE` falls back to the CPU solver — here the paper's
//! 38-worker Skylake banded-LU pool. The boundary is inclusive on the
//! GPU side: a chunk of *exactly* `min_batch_size` systems stays on a
//! GPU shard; only `min_batch_size - 1` and below spill (an off-by-one
//! here silently shifts the paper's CPU/GPU crossover).
//!
//! Routing is pure arithmetic over sizes — no queues, no clocks — so
//! every policy decision is unit-testable in isolation from the
//! threaded service around it.

/// Where one chunk of systems executes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Route {
    /// On the GPU shard with this id.
    Shard(u32),
    /// On the CPU banded-LU spill pool.
    CpuPool,
}

/// One routed chunk: a half-open range into the submitted group plus
/// its destination.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Start index into the group (inclusive).
    pub start: usize,
    /// End index into the group (exclusive).
    pub end: usize,
    /// Where the chunk goes.
    pub route: Route,
}

/// Size-aware dispatch policy over a contiguous device-id range.
#[derive(Clone, Debug)]
pub struct DeviceRange {
    /// First GPU shard id (inclusive).
    pub device_begin: u32,
    /// One past the last GPU shard id.
    pub device_end: u32,
    /// Chunks below this spill to the CPU pool.
    pub min_batch_size: usize,
    /// Chunks never exceed this.
    pub max_batch_size: usize,
}

impl DeviceRange {
    /// A range over shards `0..devices` with the given cutoffs.
    pub fn new(devices: usize, min_batch_size: usize, max_batch_size: usize) -> DeviceRange {
        assert!(devices >= 1 && min_batch_size >= 1 && max_batch_size >= min_batch_size);
        DeviceRange {
            device_begin: 0,
            device_end: devices as u32,
            min_batch_size,
            max_batch_size,
        }
    }

    /// Number of GPU shards in the range.
    pub fn num_devices(&self) -> usize {
        (self.device_end - self.device_begin) as usize
    }

    /// The shard id of the CPU spill pool: one past the GPU range, so
    /// per-device trace lanes and Prometheus labels stay disjoint.
    pub fn cpu_shard(&self) -> u32 {
        self.device_end
    }

    /// Map a caller affinity hint (e.g. a mesh-partition id) or, absent
    /// one, a round-robin counter onto a shard of the range.
    pub fn pick_shard(&self, hint: Option<u32>, round_robin: u64) -> u32 {
        let n = self.num_devices() as u64;
        match hint {
            Some(h) => self.device_begin + (h as u64 % n) as u32,
            None => self.device_begin + (round_robin % n) as u32,
        }
    }

    /// Split a group of `size` systems into routed chunks.
    ///
    /// Greedy chunking: full `max_batch_size` chunks first, then the
    /// remainder. Each chunk of at least `min_batch_size` systems lands
    /// on a GPU shard (starting at the picked shard, then walking the
    /// range so one group fans out); a sub-`min_batch_size` remainder —
    /// including a group that is entirely below the cutoff — spills to
    /// the CPU pool.
    pub fn route_group(&self, size: usize, first_shard: u32) -> Vec<Placement> {
        let mut placements = Vec::new();
        let mut start = 0usize;
        let mut shard = first_shard;
        while start < size {
            let end = (start + self.max_batch_size).min(size);
            let route = if end - start >= self.min_batch_size {
                let r = Route::Shard(shard);
                shard = self.next_shard(shard);
                r
            } else {
                Route::CpuPool
            };
            placements.push(Placement { start, end, route });
            start = end;
        }
        placements
    }

    /// The shard after `shard`, wrapping inside the range.
    pub fn next_shard(&self, shard: u32) -> u32 {
        let next = shard + 1;
        if next >= self.device_end {
            self.device_begin
        } else {
            next
        }
    }
}

/// The deterministic victim-visit order for one thief: a seeded
/// Fisher–Yates shuffle of every other shard in the range. Fixing the
/// permutation at startup makes steal schedules reproducible — the same
/// seed and shard count always probe victims in the same order.
pub fn victim_order(devices: usize, thief: u32, seed: u64) -> Vec<u32> {
    let mut order: Vec<u32> = (0..devices as u32).filter(|&s| s != thief).collect();
    let mut state = seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(thief as u64 + 1));
    let mut next = || {
        // splitmix64, as in the stats reservoir.
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..order.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_min_batch_size_goes_to_a_gpu_shard() {
        let range = DeviceRange::new(4, 8, 64);
        let routed = range.route_group(8, 0);
        assert_eq!(
            routed,
            vec![Placement {
                start: 0,
                end: 8,
                route: Route::Shard(0)
            }]
        );
    }

    #[test]
    fn one_below_min_batch_size_spills_to_the_cpu_pool() {
        let range = DeviceRange::new(4, 8, 64);
        let routed = range.route_group(7, 0);
        assert_eq!(
            routed,
            vec![Placement {
                start: 0,
                end: 7,
                route: Route::CpuPool
            }]
        );
    }

    #[test]
    fn large_groups_chunk_at_max_and_fan_out_across_shards() {
        let range = DeviceRange::new(3, 8, 64);
        let routed = range.route_group(200, 1);
        // 64 + 64 + 64 + 8: the remainder is exactly min, so it stays
        // on a GPU shard too.
        assert_eq!(routed.len(), 4);
        assert_eq!(
            routed.iter().map(|p| p.end - p.start).collect::<Vec<_>>(),
            vec![64, 64, 64, 8]
        );
        assert_eq!(
            routed.iter().map(|p| p.route.clone()).collect::<Vec<_>>(),
            vec![
                Route::Shard(1),
                Route::Shard(2),
                Route::Shard(0),
                Route::Shard(1)
            ]
        );
    }

    #[test]
    fn sub_min_remainder_of_a_large_group_spills() {
        let range = DeviceRange::new(2, 8, 64);
        let routed = range.route_group(70, 0);
        assert_eq!(routed.len(), 2);
        assert_eq!(routed[0].route, Route::Shard(0));
        assert_eq!(routed[1].end - routed[1].start, 6);
        assert_eq!(routed[1].route, Route::CpuPool);
    }

    #[test]
    fn pick_shard_wraps_hints_and_round_robin() {
        let range = DeviceRange::new(4, 8, 64);
        assert_eq!(range.pick_shard(Some(6), 0), 2);
        assert_eq!(range.pick_shard(None, 9), 1);
        assert_eq!(range.cpu_shard(), 4);
    }

    #[test]
    fn victim_order_is_seeded_and_excludes_the_thief() {
        let a = victim_order(6, 2, 42);
        let b = victim_order(6, 2, 42);
        assert_eq!(a, b, "same seed, same order");
        assert_eq!(a.len(), 5);
        assert!(!a.contains(&2));
        let c = victim_order(6, 2, 43);
        assert_ne!(a, c, "different seed shuffles differently");
        // Thieves probe in different orders so they do not stampede the
        // same victim.
        let d = victim_order(6, 3, 42);
        assert!(!d.contains(&3));
    }
}
