//! Gershgorin disk bounds.
//!
//! A cheap a-priori localization of the spectrum: every eigenvalue lies
//! in at least one disk centered at a diagonal entry with radius equal to
//! the off-diagonal row sum. The XGC conditioning argument (Figure 2)
//! can be sanity-checked without a full eigensolve this way.

use batsolv_formats::BatchMatrix;
use batsolv_types::Scalar;

/// A Gershgorin disk: center (the diagonal entry) and radius.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Disk {
    /// Disk center on the real axis.
    pub center: f64,
    /// Disk radius.
    pub radius: f64,
}

impl Disk {
    /// Leftmost real point of the disk.
    pub fn min_re(&self) -> f64 {
        self.center - self.radius
    }

    /// Rightmost real point of the disk.
    pub fn max_re(&self) -> f64 {
        self.center + self.radius
    }
}

/// Gershgorin disks of system `i` of a batch matrix.
pub fn gershgorin_disks<T: Scalar, M: BatchMatrix<T> + ?Sized>(a: &M, i: usize) -> Vec<Disk> {
    let n = a.dims().num_rows;
    let mut diag = vec![T::ZERO; n];
    a.extract_diagonal(i, &mut diag);
    // Row sums via SpMV against all-ones minus diagonal contribution is
    // wrong for signed entries; fetch rows via `entry` is O(n²). Use the
    // absolute row-sum trick: |A| ones = Σ|a_ij| requires |A|, so walk
    // entries directly (acceptable: diagnostics path).
    (0..n)
        .map(|r| {
            let mut radius = 0.0f64;
            for c in 0..n {
                if c != r {
                    radius += a.entry(i, r, c).to_f64().abs();
                }
            }
            Disk {
                center: diag[r].to_f64(),
                radius,
            }
        })
        .collect()
}

/// Enclosing real interval of all disks (a bound on the real parts).
pub fn spectrum_bounds(disks: &[Disk]) -> (f64, f64) {
    let lo = disks.iter().map(Disk::min_re).fold(f64::INFINITY, f64::min);
    let hi = disks
        .iter()
        .map(Disk::max_re)
        .fold(f64::NEG_INFINITY, f64::max);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use batsolv_eigen_test_helpers::*;

    // Local helper module (kept inside the crate to avoid a test-utils crate).
    mod batsolv_eigen_test_helpers {
        use batsolv_formats::{BatchCsr, SparsityPattern};
        use std::sync::Arc;

        pub fn stencil(diag: f64, off: f64) -> BatchCsr<f64> {
            let p = Arc::new(SparsityPattern::stencil_2d(4, 4, true));
            let mut m = BatchCsr::zeros(1, p).unwrap();
            m.fill_system(0, |r, c| if r == c { diag } else { off });
            m
        }
    }

    #[test]
    fn disks_of_stencil_matrix() {
        let m = stencil(9.0, -1.0);
        let disks = gershgorin_disks(&m, 0);
        assert_eq!(disks.len(), 16);
        // Interior row: 8 neighbours of magnitude 1.
        let interior = &disks[5];
        assert_eq!(interior.center, 9.0);
        assert_eq!(interior.radius, 8.0);
        // Corner row: 3 neighbours.
        assert_eq!(disks[0].radius, 3.0);
    }

    #[test]
    fn diagonally_dominant_excludes_zero() {
        let m = stencil(9.0, -1.0);
        let disks = gershgorin_disks(&m, 0);
        let (lo, _hi) = spectrum_bounds(&disks);
        assert!(lo > 0.0, "dominant matrix disks stay right of zero: {lo}");
    }

    #[test]
    fn bounds_contain_actual_eigenvalues() {
        let m = stencil(5.0, -0.4);
        let dense = batsolv_formats::BatchDense::from_csr(&m);
        let eig = crate::hqr::eigenvalues(16, dense.matrix_of(0)).unwrap();
        let disks = gershgorin_disks(&m, 0);
        let (lo, hi) = spectrum_bounds(&disks);
        for e in eig {
            assert!(
                e.re >= lo - 1e-10 && e.re <= hi + 1e-10,
                "{e} outside [{lo}, {hi}]"
            );
        }
    }
}
