#![allow(clippy::needless_range_loop)] // indexed loops are the clearest idiom for stencil/linear-algebra kernels
//! Dense nonsymmetric eigenvalue computation.
//!
//! The paper's Figure 2 plots the eigenvalue clouds of the ion and
//! electron collision matrices to argue they are well-conditioned enough
//! for iterative solvers (ion eigenvalues clustered near 1, electron
//! eigenvalues spread over a wider real range, neither with very large or
//! very small magnitudes). Reproducing that figure needs a real
//! nonsymmetric eigensolver, so this crate implements the classic
//! pipeline:
//!
//! * [`hessenberg()`](hessenberg::hessenberg) — Householder reduction to upper Hessenberg form;
//! * [`hqr()`](hqr::hqr) — the Francis double-shift QR iteration on the Hessenberg
//!   matrix (the EISPACK `hqr` algorithm), returning complex eigenvalues;
//! * [`gershgorin`] — cheap disk bounds;
//! * [`power`] — power iteration for the spectral radius;
//! * [`spectrum`] — summary statistics used by the Figure 2 bench and
//!   the XGC conditioning tests.

pub mod condition;
pub mod gershgorin;
pub mod hessenberg;
pub mod hqr;
pub mod power;
pub mod spectrum;

pub use condition::condition_estimate;
pub use gershgorin::gershgorin_disks;
pub use hessenberg::hessenberg;
pub use hqr::{eigenvalues, hqr};
pub use power::spectral_radius;
pub use spectrum::SpectrumSummary;
