//! Francis double-shift QR iteration on a Hessenberg matrix.
//!
//! The classic EISPACK `hqr` algorithm: finds all eigenvalues of a real
//! upper Hessenberg matrix, returning complex conjugate pairs for 2×2
//! blocks that do not split. Destroys the input.

use batsolv_types::{Complex, Error, Result};

use crate::hessenberg::hessenberg;

/// Eigenvalues of a general real row-major `n × n` matrix.
pub fn eigenvalues(n: usize, a: &[f64]) -> Result<Vec<Complex>> {
    let mut h = a.to_vec();
    hessenberg(n, &mut h);
    hqr(n, &mut h)
}

/// Eigenvalues of an upper Hessenberg matrix (destroyed in place).
pub fn hqr(n: usize, a: &mut [f64]) -> Result<Vec<Complex>> {
    debug_assert_eq!(a.len(), n * n);
    if n == 0 {
        return Ok(vec![]);
    }
    let at = |a: &[f64], i: usize, j: usize| a[i * n + j];
    let eps = f64::EPSILON;
    let mut eig = vec![Complex::ZERO; n];

    // Overall matrix norm for the zero-subdiagonal test.
    let mut anorm = 0.0f64;
    for i in 0..n {
        for j in i.saturating_sub(1)..n {
            anorm += at(a, i, j).abs();
        }
    }
    if anorm == 0.0 {
        return Ok(eig); // the zero matrix
    }

    let mut nn = n as isize - 1;
    let mut t = 0.0f64;
    while nn >= 0 {
        let mut its = 0;
        loop {
            // Look for a single small subdiagonal element.
            let mut l = nn;
            while l >= 1 {
                let s = {
                    let s = at(a, (l - 1) as usize, (l - 1) as usize).abs()
                        + at(a, l as usize, l as usize).abs();
                    if s == 0.0 {
                        anorm
                    } else {
                        s
                    }
                };
                if at(a, l as usize, (l - 1) as usize).abs() <= eps * s {
                    a[l as usize * n + (l - 1) as usize] = 0.0;
                    break;
                }
                l -= 1;
            }
            let x = at(a, nn as usize, nn as usize);
            if l == nn {
                // One root found.
                eig[nn as usize] = Complex::from_real(x + t);
                nn -= 1;
                break;
            }
            let y = at(a, (nn - 1) as usize, (nn - 1) as usize);
            let w = at(a, nn as usize, (nn - 1) as usize) * at(a, (nn - 1) as usize, nn as usize);
            if l == nn - 1 {
                // Two roots found: solve the trailing 2×2.
                let p = 0.5 * (y - x);
                let q = p * p + w;
                let z = q.abs().sqrt();
                let x_sh = x + t;
                if q >= 0.0 {
                    let z = p + if p >= 0.0 { z } else { -z };
                    let r1 = x_sh + z;
                    let r2 = if z != 0.0 { x_sh - w / z } else { r1 };
                    eig[(nn - 1) as usize] = Complex::from_real(r1);
                    eig[nn as usize] = Complex::from_real(r2);
                } else {
                    eig[(nn - 1) as usize] = Complex::new(x_sh + p, z);
                    eig[nn as usize] = Complex::new(x_sh + p, -z);
                }
                nn -= 2;
                break;
            }
            // No root yet: QR sweep.
            if its == 60 {
                return Err(Error::NotConverged {
                    batch_index: 0,
                    iterations: its,
                    residual: at(a, nn as usize, (nn - 1) as usize).abs(),
                });
            }
            let (mut x, mut y, mut w) = (x, y, w);
            if its == 10 || its == 20 || its == 30 || its == 40 || its == 50 {
                // Exceptional shift.
                t += x;
                for i in 0..=nn as usize {
                    a[i * n + i] -= x;
                }
                let s = at(a, nn as usize, (nn - 1) as usize).abs()
                    + at(a, (nn - 1) as usize, (nn - 2) as usize).abs();
                x = 0.75 * s;
                y = x;
                w = -0.4375 * s * s;
            }
            its += 1;
            // Find two consecutive small subdiagonals (start of the bulge).
            let mut m = nn - 2;
            let (mut p, mut q, mut r) = (0.0f64, 0.0f64, 0.0f64);
            while m >= l {
                let z = at(a, m as usize, m as usize);
                let rr = x - z;
                let ss = y - z;
                p = (rr * ss - w) / at(a, (m + 1) as usize, m as usize)
                    + at(a, m as usize, (m + 1) as usize);
                q = at(a, (m + 1) as usize, (m + 1) as usize) - z - rr - ss;
                r = at(a, (m + 2) as usize, (m + 1) as usize);
                let s = p.abs() + q.abs() + r.abs();
                p /= s;
                q /= s;
                r /= s;
                if m == l {
                    break;
                }
                let u = at(a, m as usize, (m - 1) as usize).abs() * (q.abs() + r.abs());
                let v = p.abs()
                    * (at(a, (m - 1) as usize, (m - 1) as usize).abs()
                        + z.abs()
                        + at(a, (m + 1) as usize, (m + 1) as usize).abs());
                if u <= eps * v {
                    break;
                }
                m -= 1;
            }
            for i in (m + 2)..=nn {
                a[i as usize * n + (i - 2) as usize] = 0.0;
                if i > m + 2 {
                    a[i as usize * n + (i - 3) as usize] = 0.0;
                }
            }
            // Double QR step (bulge chase) on rows/columns l..nn.
            for k in m..=nn - 1 {
                if k != m {
                    p = at(a, k as usize, (k - 1) as usize);
                    q = at(a, (k + 1) as usize, (k - 1) as usize);
                    r = if k != nn - 1 {
                        at(a, (k + 2) as usize, (k - 1) as usize)
                    } else {
                        0.0
                    };
                    x = p.abs() + q.abs() + r.abs();
                    if x != 0.0 {
                        p /= x;
                        q /= x;
                        r /= x;
                    }
                }
                let s_mag = (p * p + q * q + r * r).sqrt();
                let s = if p >= 0.0 { s_mag } else { -s_mag };
                if s == 0.0 {
                    continue;
                }
                if k == m {
                    if l != m {
                        a[k as usize * n + (k - 1) as usize] = -at(a, k as usize, (k - 1) as usize);
                    }
                } else {
                    a[k as usize * n + (k - 1) as usize] = -s * x;
                }
                p += s;
                x = p / s;
                y = q / s;
                let z = r / s;
                q /= p;
                r /= p;
                // Row modification.
                for j in (k as usize)..=(nn as usize) {
                    let mut pp = at(a, k as usize, j) + q * at(a, (k + 1) as usize, j);
                    if k != nn - 1 {
                        pp += r * at(a, (k + 2) as usize, j);
                        a[(k + 2) as usize * n + j] -= pp * z;
                    }
                    a[(k + 1) as usize * n + j] -= pp * y;
                    a[k as usize * n + j] -= pp * x;
                }
                // Column modification.
                let mmin = if nn < k + 3 { nn } else { k + 3 };
                for i in (l as usize)..=(mmin as usize) {
                    let mut pp = x * at(a, i, k as usize) + y * at(a, i, (k + 1) as usize);
                    if k != nn - 1 {
                        pp += z * at(a, i, (k + 2) as usize);
                    }
                    if k != nn - 1 {
                        a[i * n + (k + 2) as usize] -= pp * r;
                    }
                    a[i * n + (k + 1) as usize] -= pp * q;
                    a[i * n + k as usize] -= pp;
                }
            }
        }
    }
    Ok(eig)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sort_by_re_im(mut v: Vec<Complex>) -> Vec<Complex> {
        v.sort_by(|a, b| {
            a.re.partial_cmp(&b.re)
                .unwrap()
                .then(a.im.partial_cmp(&b.im).unwrap())
        });
        v
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let n = 5;
        let mut a = vec![0.0; n * n];
        for (i, v) in [3.0, -1.0, 7.5, 0.25, 2.0].iter().enumerate() {
            a[i * n + i] = *v;
        }
        let eig = sort_by_re_im(eigenvalues(n, &a).unwrap());
        let expect = [-1.0, 0.25, 2.0, 3.0, 7.5];
        for (e, x) in eig.iter().zip(expect.iter()) {
            assert!((e.re - x).abs() < 1e-12 && e.im.abs() < 1e-12, "{e}");
        }
    }

    #[test]
    fn rotation_block_gives_complex_pair() {
        // [[cos, -sin], [sin, cos]] has eigenvalues cos ± i·sin.
        let th = 0.7f64;
        let a = [th.cos(), -th.sin(), th.sin(), th.cos()];
        let eig = eigenvalues(2, &a).unwrap();
        let mut ims: Vec<f64> = eig.iter().map(|e| e.im).collect();
        ims.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((ims[0] + th.sin()).abs() < 1e-12);
        assert!((ims[1] - th.sin()).abs() < 1e-12);
        for e in &eig {
            assert!((e.re - th.cos()).abs() < 1e-12);
        }
    }

    #[test]
    fn tridiagonal_laplacian_spectrum() {
        // Known eigenvalues: 2 - 2 cos(kπ/(n+1)), k = 1..n.
        let n = 16;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 2.0;
            if i > 0 {
                a[i * n + i - 1] = -1.0;
            }
            if i + 1 < n {
                a[i * n + i + 1] = -1.0;
            }
        }
        let eig = sort_by_re_im(eigenvalues(n, &a).unwrap());
        for (k, e) in eig.iter().enumerate() {
            let expect =
                2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!(
                (e.re - expect).abs() < 1e-9 && e.im.abs() < 1e-9,
                "k={k}: {} vs {}",
                e.re,
                expect
            );
        }
    }

    #[test]
    fn trace_invariants_on_random_nonsymmetric() {
        let n = 24;
        let mut state = 12345u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a: Vec<f64> = (0..n * n).map(|_| next()).collect();
        let eig = eigenvalues(n, &a).unwrap();
        // Σλ = tr A (real since conjugate pairs cancel).
        let tr: f64 = (0..n).map(|i| a[i * n + i]).sum();
        let sum_re: f64 = eig.iter().map(|e| e.re).sum();
        let sum_im: f64 = eig.iter().map(|e| e.im).sum();
        assert!((sum_re - tr).abs() < 1e-8, "{sum_re} vs {tr}");
        assert!(sum_im.abs() < 1e-8);
        // Σλ² = tr A².
        let mut tr2 = 0.0;
        for i in 0..n {
            for j in 0..n {
                tr2 += a[i * n + j] * a[j * n + i];
            }
        }
        let sum2: f64 = eig.iter().map(|e| (*e * *e).re).sum();
        assert!((sum2 - tr2).abs() < 1e-6, "{sum2} vs {tr2}");
    }

    #[test]
    fn conjugate_pairs_come_in_pairs() {
        let n = 15;
        let mut state = 999u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a: Vec<f64> = (0..n * n).map(|_| next()).collect();
        let eig = eigenvalues(n, &a).unwrap();
        let mut complex: Vec<&Complex> = eig.iter().filter(|e| e.im.abs() > 1e-10).collect();
        assert!(complex.len().is_multiple_of(2));
        complex.sort_by(|x, y| {
            x.re.partial_cmp(&y.re)
                .unwrap()
                .then(x.im.abs().partial_cmp(&y.im.abs()).unwrap())
        });
        // Pairs have matching real parts and opposite imaginary parts.
        for pair in complex.chunks(2) {
            assert!((pair[0].re - pair[1].re).abs() < 1e-8);
            assert!((pair[0].im + pair[1].im).abs() < 1e-8);
        }
    }

    #[test]
    fn zero_and_identity() {
        let eig = eigenvalues(3, &[0.0; 9]).unwrap();
        assert!(eig.iter().all(|e| e.abs() < 1e-14));
        let mut id = [0.0; 9];
        for i in 0..3 {
            id[i * 3 + i] = 1.0;
        }
        let eig = eigenvalues(3, &id).unwrap();
        assert!(eig
            .iter()
            .all(|e| (e.re - 1.0).abs() < 1e-14 && e.im == 0.0));
    }

    #[test]
    fn empty_matrix() {
        assert!(eigenvalues(0, &[]).unwrap().is_empty());
    }
}
