//! Power iteration for the spectral radius.

use batsolv_formats::BatchMatrix;
use batsolv_types::Scalar;

/// Estimate the spectral radius of system `i` by power iteration.
///
/// Returns the magnitude of the dominant eigenvalue. Deterministic start
/// vector; converges geometrically in `|λ₂/λ₁|`, so a few hundred
/// iterations suffice for diagnostics.
pub fn spectral_radius<T: Scalar, M: BatchMatrix<T> + ?Sized>(
    a: &M,
    i: usize,
    max_iters: usize,
    tol: f64,
) -> f64 {
    let n = a.dims().num_rows;
    let mut x: Vec<T> = (0..n)
        .map(|k| T::from_f64(1.0 + 0.3 * ((k * 37 % 11) as f64 / 11.0)))
        .collect();
    let mut y = vec![T::ZERO; n];
    let mut lambda = 0.0f64;
    for _ in 0..max_iters {
        a.spmv_system(i, &x, &mut y);
        let norm = y
            .iter()
            .map(|&v| v * v)
            .fold(T::ZERO, |acc, v| acc + v)
            .sqrt()
            .to_f64();
        if norm == 0.0 {
            return 0.0;
        }
        let new_lambda = norm;
        let inv = T::from_f64(1.0 / norm);
        for k in 0..n {
            x[k] = y[k] * inv;
        }
        if (new_lambda - lambda).abs() <= tol * new_lambda.abs() {
            return new_lambda;
        }
        lambda = new_lambda;
    }
    lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use batsolv_formats::{BatchCsr, SparsityPattern};
    use std::sync::Arc;

    #[test]
    fn diagonal_matrix_dominant_entry() {
        let p = Arc::new(SparsityPattern::from_coords(3, &[(0, 0), (1, 1), (2, 2)]).unwrap());
        let mut m = BatchCsr::<f64>::zeros(1, p).unwrap();
        m.set(0, 0, 0, 2.0).unwrap();
        m.set(0, 1, 1, -5.0).unwrap();
        m.set(0, 2, 2, 1.0).unwrap();
        let rho = spectral_radius(&m, 0, 500, 1e-12);
        assert!((rho - 5.0).abs() < 1e-8, "rho = {rho}");
    }

    #[test]
    fn laplacian_radius_below_gershgorin_bound() {
        let p = Arc::new(SparsityPattern::stencil_2d(6, 6, false));
        let mut m = BatchCsr::<f64>::zeros(1, p).unwrap();
        m.fill_system(0, |r, c| if r == c { 4.0 } else { -1.0 });
        let rho = spectral_radius(&m, 0, 2000, 1e-12);
        // 2-D Laplacian: λmax = 4 + 4·cos(π/7)-ish < 8 (Gershgorin).
        assert!(rho < 8.0 && rho > 4.0, "rho = {rho}");
    }

    #[test]
    fn zero_matrix_radius_zero() {
        let p = Arc::new(SparsityPattern::from_coords(2, &[(0, 0), (1, 1)]).unwrap());
        let m = BatchCsr::<f64>::zeros(1, p).unwrap();
        assert_eq!(spectral_radius(&m, 0, 10, 1e-10), 0.0);
    }
}
