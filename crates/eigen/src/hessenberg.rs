//! Householder reduction to upper Hessenberg form.
//!
//! A similarity transform `H = Qᵀ A Q` that zeroes everything below the
//! first subdiagonal; the QR eigenvalue iteration then costs `O(n²)` per
//! sweep instead of `O(n³)`.

/// Reduce the row-major `n × n` matrix `a` to upper Hessenberg form in
/// place (entries below the first subdiagonal become zero). The transform
/// is orthogonal, so eigenvalues are preserved.
pub fn hessenberg(n: usize, a: &mut [f64]) {
    debug_assert_eq!(a.len(), n * n);
    if n < 3 {
        return;
    }
    let mut v = vec![0.0f64; n];
    for k in 0..n - 2 {
        // Householder vector for column k, rows k+1..n.
        let mut alpha = 0.0f64;
        for i in (k + 1)..n {
            alpha += a[i * n + k] * a[i * n + k];
        }
        alpha = alpha.sqrt();
        if alpha == 0.0 {
            continue;
        }
        if a[(k + 1) * n + k] > 0.0 {
            alpha = -alpha;
        }
        let mut vnorm2 = 0.0f64;
        for i in (k + 1)..n {
            v[i] = a[i * n + k];
            if i == k + 1 {
                v[i] -= alpha;
            }
            vnorm2 += v[i] * v[i];
        }
        if vnorm2 == 0.0 {
            continue;
        }
        let beta = 2.0 / vnorm2;
        // A ← (I − β v vᵀ) A : update rows k+1..n, all columns.
        for j in 0..n {
            let mut dot = 0.0;
            for i in (k + 1)..n {
                dot += v[i] * a[i * n + j];
            }
            let s = beta * dot;
            for i in (k + 1)..n {
                a[i * n + j] -= s * v[i];
            }
        }
        // A ← A (I − β v vᵀ) : update all rows, columns k+1..n.
        for i in 0..n {
            let mut dot = 0.0;
            for j in (k + 1)..n {
                dot += a[i * n + j] * v[j];
            }
            let s = beta * dot;
            for j in (k + 1)..n {
                a[i * n + j] -= s * v[j];
            }
        }
        // Clean the annihilated entries exactly.
        a[(k + 1) * n + k] = alpha;
        for i in (k + 2)..n {
            a[i * n + k] = 0.0;
        }
    }
}

/// True if `a` is upper Hessenberg to tolerance `tol`.
pub fn is_hessenberg(n: usize, a: &[f64], tol: f64) -> bool {
    for i in 0..n {
        for j in 0..i.saturating_sub(1) {
            if a[i * n + j].abs() > tol {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_matrix(n: usize, seed: u64) -> Vec<f64> {
        // Deterministic LCG fill.
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        (0..n * n).map(|_| next()).collect()
    }

    fn trace(n: usize, a: &[f64]) -> f64 {
        (0..n).map(|i| a[i * n + i]).sum()
    }

    fn trace_sq(n: usize, a: &[f64]) -> f64 {
        // tr(A²) = Σ_ij a_ij a_ji — invariant under similarity.
        let mut t = 0.0;
        for i in 0..n {
            for j in 0..n {
                t += a[i * n + j] * a[j * n + i];
            }
        }
        t
    }

    #[test]
    fn produces_hessenberg_form() {
        let n = 12;
        let mut a = random_matrix(n, 42);
        hessenberg(n, &mut a);
        assert!(is_hessenberg(n, &a, 1e-12));
    }

    #[test]
    fn preserves_similarity_invariants() {
        let n = 10;
        let a0 = random_matrix(n, 7);
        let mut a = a0.clone();
        hessenberg(n, &mut a);
        assert!((trace(n, &a) - trace(n, &a0)).abs() < 1e-10);
        assert!((trace_sq(n, &a) - trace_sq(n, &a0)).abs() < 1e-8);
    }

    #[test]
    fn small_matrices_untouched() {
        let mut a = [1.0, 2.0, 3.0, 4.0];
        hessenberg(2, &mut a);
        assert_eq!(a, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn already_hessenberg_is_stable() {
        let n = 6;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in i.saturating_sub(1)..n {
                a[i * n + j] = (i + 2 * j + 1) as f64;
            }
        }
        let before = a.clone();
        hessenberg(n, &mut a);
        assert!(is_hessenberg(n, &a, 1e-12));
        // Invariants still preserved even if entries shuffle.
        assert!((trace(n, &a) - trace(n, &before)).abs() < 1e-10);
    }
}
