//! Condition-number estimation.
//!
//! The paper's premise is that the XGC matrices have "low condition
//! numbers". This module puts a number on that: `cond₂(A) ≈ σmax/σmin`
//! estimated by power iteration on `AᵀA` (largest singular value) and
//! inverse iteration through a banded LU factorization (smallest), so it
//! works directly on the batch formats without densifying.

use batsolv_formats::{BatchBanded, BatchCsr, BatchMatrix};
use batsolv_solvers::direct::banded_lu::{gbtrf, gbtrs};
use batsolv_types::{Result, Scalar};

/// Estimate the 2-norm condition number of system `i` of a CSR batch.
///
/// `iters` power/inverse-iteration steps (a few dozen suffice for the
/// well-separated spectra at hand).
pub fn condition_estimate<T: Scalar>(a: &BatchCsr<T>, i: usize, iters: usize) -> Result<f64> {
    let n = a.dims().num_rows;
    let smax = largest_singular_value(a, i, iters);

    // Smallest singular value via inverse iteration on AᵀA:
    // x ← normalize(A⁻ᵀ A⁻¹ x), using one banded LU of A (solve with A,
    // then with Aᵀ — realized by solving the transposed band system).
    let banded = BatchBanded::from_csr(a)?;
    let (kl, ku, ldab) = (banded.kl(), banded.ku(), banded.ldab());
    let mut lu = banded.ab_of(i).to_vec();
    let mut piv = vec![0usize; n];
    gbtrf(n, kl, ku, ldab, &mut lu, &mut piv)?;

    // Transpose as its own banded matrix (kl and ku swap).
    let mut at = BatchBanded::<T>::zeros(1, n, ku, kl)?;
    for r in 0..n {
        for c in r.saturating_sub(kl)..=(r + ku).min(n - 1) {
            let v = banded.at(i, r, c);
            if v != T::ZERO {
                *at.at_mut(0, c, r) = v;
            }
        }
    }
    let mut lu_t = at.ab_of(0).to_vec();
    let mut piv_t = vec![0usize; n];
    gbtrf(n, ku, kl, at.ldab(), &mut lu_t, &mut piv_t)?;

    let mut x: Vec<T> = (0..n)
        .map(|k| T::from_f64(1.0 + ((k * 29) % 13) as f64 / 13.0))
        .collect();
    let mut sigma_min_inv = 0.0f64;
    for _ in 0..iters {
        // y = A⁻¹ x ; z = A⁻ᵀ y.
        gbtrs(n, kl, ku, ldab, &lu, &piv, &mut x);
        gbtrs(n, ku, kl, at.ldab(), &lu_t, &piv_t, &mut x);
        let norm = norm2(&x);
        if norm == 0.0 {
            break;
        }
        sigma_min_inv = norm; // ρ((AᵀA)⁻¹) estimate after normalization
        let inv = T::from_f64(1.0 / norm);
        for v in x.iter_mut() {
            *v *= inv;
        }
    }
    let smin = if sigma_min_inv > 0.0 {
        (1.0 / sigma_min_inv).sqrt()
    } else {
        0.0
    };
    Ok(if smin > 0.0 {
        smax / smin
    } else {
        f64::INFINITY
    })
}

/// Largest singular value by power iteration on `AᵀA` (the Aᵀ product is
/// applied through an explicit gather over the pattern).
fn largest_singular_value<T: Scalar>(a: &BatchCsr<T>, i: usize, iters: usize) -> f64 {
    let n = a.dims().num_rows;
    let mut x: Vec<T> = (0..n)
        .map(|k| T::from_f64(1.0 + ((k * 37) % 11) as f64 / 11.0))
        .collect();
    let mut ax = vec![T::ZERO; n];
    let mut sigma2 = 0.0f64;
    for _ in 0..iters {
        a.spmv_system(i, &x, &mut ax);
        // x ← Aᵀ (A x): scatter through the pattern.
        x.iter_mut().for_each(|v| *v = T::ZERO);
        let p = a.pattern();
        let vals = a.values_of(i);
        for r in 0..n {
            let (b, e) = p.row_range(r);
            for k in b..e {
                let c = p.col_idxs()[k] as usize;
                x[c] = vals[k].mul_add(ax[r], x[c]);
            }
        }
        let norm = norm2(&x);
        if norm == 0.0 {
            return 0.0;
        }
        sigma2 = norm;
        let inv = T::from_f64(1.0 / norm);
        for v in x.iter_mut() {
            *v *= inv;
        }
    }
    sigma2.sqrt()
}

fn norm2<T: Scalar>(x: &[T]) -> f64 {
    x.iter()
        .map(|&v| v.to_f64() * v.to_f64())
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use batsolv_formats::SparsityPattern;
    use std::sync::Arc;

    #[test]
    fn identity_has_condition_one() {
        let coords: Vec<(usize, usize)> = (0..8).map(|k| (k, k)).collect();
        let p = Arc::new(SparsityPattern::from_coords(8, &coords).unwrap());
        let mut m = BatchCsr::<f64>::zeros(1, p).unwrap();
        for k in 0..8 {
            m.set(0, k, k, 1.0).unwrap();
        }
        let c = condition_estimate(&m, 0, 50).unwrap();
        assert!((c - 1.0).abs() < 1e-6, "cond {c}");
    }

    #[test]
    fn diagonal_matrix_condition_is_ratio_of_extremes() {
        let coords: Vec<(usize, usize)> = (0..6).map(|k| (k, k)).collect();
        let p = Arc::new(SparsityPattern::from_coords(6, &coords).unwrap());
        let mut m = BatchCsr::<f64>::zeros(1, p).unwrap();
        for (k, &d) in [4.0, 2.0, 8.0, 1.0, 5.0, 2.5].iter().enumerate() {
            m.set(0, k, k, d).unwrap();
        }
        let c = condition_estimate(&m, 0, 200).unwrap();
        assert!((c - 8.0).abs() < 0.05, "cond {c} (expect 8)");
    }

    #[test]
    fn xgc_matrices_are_well_conditioned() {
        // The paper's Figure 2 claim with a number attached: both
        // species' matrices have modest condition numbers.
        use batsolv_xgc_like::assemble;
        let (ion, electron) = assemble();
        let c_ion = condition_estimate(&ion, 0, 100).unwrap();
        let c_ele = condition_estimate(&electron, 0, 100).unwrap();
        assert!(c_ion < 10.0, "ion condition {c_ion}");
        assert!(c_ele < 200.0, "electron condition {c_ele}");
        assert!(c_ion < c_ele);
    }

    /// Minimal stand-in for the XGC assembly (the real one lives in
    /// `batsolv-xgc`, which depends on this crate's siblings — avoid the
    /// cycle by assembling comparable stencil matrices here).
    mod batsolv_xgc_like {
        use super::*;

        pub fn assemble() -> (BatchCsr<f64>, BatchCsr<f64>) {
            let p = Arc::new(SparsityPattern::stencil_2d(12, 11, true));
            let build = |strength: f64| {
                let mut m = BatchCsr::<f64>::zeros(1, Arc::clone(&p)).unwrap();
                m.fill_system(0, |r, c| {
                    if r == c {
                        1.0 + 8.0 * strength
                    } else {
                        -strength
                    }
                });
                m
            };
            (build(0.02), build(1.0))
        }
    }
}
