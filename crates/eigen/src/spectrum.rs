//! Spectrum summary statistics (the Figure 2 story in numbers).
//!
//! The paper's conditioning argument: ion eigenvalues cluster tightly
//! around 1.0; electron eigenvalues have a wider range of real parts;
//! neither species has very large or very small magnitudes. This module
//! condenses an eigenvalue cloud into the quantities that argument
//! needs, so benches and tests can assert it.

use batsolv_types::Complex;

/// Summary of an eigenvalue cloud.
#[derive(Clone, Debug, PartialEq)]
pub struct SpectrumSummary {
    /// Number of eigenvalues.
    pub count: usize,
    /// Smallest real part.
    pub min_re: f64,
    /// Largest real part.
    pub max_re: f64,
    /// Largest imaginary magnitude.
    pub max_im: f64,
    /// Smallest eigenvalue magnitude.
    pub min_abs: f64,
    /// Largest eigenvalue magnitude.
    pub max_abs: f64,
    /// Fraction of eigenvalues with |λ − 1| < 0.1 (the "clustered around
    /// 1.0" measure for the ion matrices).
    pub cluster_at_one: f64,
}

impl SpectrumSummary {
    /// Summarize a cloud of eigenvalues.
    pub fn from_eigenvalues(eig: &[Complex]) -> SpectrumSummary {
        let mut s = SpectrumSummary {
            count: eig.len(),
            min_re: f64::INFINITY,
            max_re: f64::NEG_INFINITY,
            max_im: 0.0,
            min_abs: f64::INFINITY,
            max_abs: 0.0,
            cluster_at_one: 0.0,
        };
        if eig.is_empty() {
            return s;
        }
        let mut clustered = 0usize;
        for e in eig {
            s.min_re = s.min_re.min(e.re);
            s.max_re = s.max_re.max(e.re);
            s.max_im = s.max_im.max(e.im.abs());
            let m = e.abs();
            s.min_abs = s.min_abs.min(m);
            s.max_abs = s.max_abs.max(m);
            if (*e - Complex::ONE).abs() < 0.1 {
                clustered += 1;
            }
        }
        s.cluster_at_one = clustered as f64 / eig.len() as f64;
        s
    }

    /// Ratio of largest to smallest eigenvalue magnitude — a (crude)
    /// conditioning proxy for these diagonalizable-ish matrices.
    pub fn magnitude_spread(&self) -> f64 {
        if self.min_abs == 0.0 {
            f64::INFINITY
        } else {
            self.max_abs / self.min_abs
        }
    }

    /// The paper's well-conditioned test: no very large or very small
    /// eigenvalues (spread below `threshold`).
    pub fn is_well_conditioned(&self, threshold: f64) -> bool {
        self.min_abs > 0.0 && self.magnitude_spread() < threshold
    }

    /// Render as the CSV row used by the `repro fig2` output.
    pub fn csv_row(&self, label: &str) -> String {
        format!(
            "{label},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.4}",
            self.count,
            self.min_re,
            self.max_re,
            self.max_im,
            self.min_abs,
            self.max_abs,
            self.cluster_at_one
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_clustered_cloud() {
        let eig: Vec<Complex> = (0..10)
            .map(|k| Complex::new(1.0 + 0.01 * k as f64, 0.005 * k as f64))
            .collect();
        let s = SpectrumSummary::from_eigenvalues(&eig);
        assert_eq!(s.count, 10);
        assert!(s.cluster_at_one >= 0.9);
        assert!(s.is_well_conditioned(10.0));
        assert!((s.max_re - 1.09).abs() < 1e-12);
    }

    #[test]
    fn summary_of_spread_cloud() {
        let eig = vec![
            Complex::new(0.5, 0.0),
            Complex::new(5.0, 1.0),
            Complex::new(2.0, -1.0),
        ];
        let s = SpectrumSummary::from_eigenvalues(&eig);
        assert!(s.cluster_at_one < 0.4);
        assert!(s.magnitude_spread() > 5.0);
        assert_eq!(s.max_im, 1.0);
    }

    #[test]
    fn zero_eigenvalue_means_ill_conditioned() {
        let s = SpectrumSummary::from_eigenvalues(&[Complex::ZERO, Complex::ONE]);
        assert!(!s.is_well_conditioned(1e6));
        assert!(s.magnitude_spread().is_infinite());
    }

    #[test]
    fn empty_cloud() {
        let s = SpectrumSummary::from_eigenvalues(&[]);
        assert_eq!(s.count, 0);
    }

    #[test]
    fn csv_row_contains_label_and_count() {
        let s = SpectrumSummary::from_eigenvalues(&[Complex::ONE]);
        let row = s.csv_row("ion");
        assert!(row.starts_with("ion,1,"));
    }
}
