//! Property-based tests of the eigensolver pipeline.

use batsolv_eigen::hessenberg::{hessenberg, is_hessenberg};
use batsolv_eigen::{eigenvalues, gershgorin_disks, spectral_radius};
use batsolv_formats::BatchCsr;
use batsolv_formats::SparsityPattern;
use proptest::prelude::*;
use std::sync::Arc;

fn random_matrix(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    (0..n * n).map(|_| next()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hessenberg_form_and_invariants(n in 3usize..20, seed in 0u64..100_000) {
        let a0 = random_matrix(n, seed);
        let mut a = a0.clone();
        hessenberg(n, &mut a);
        prop_assert!(is_hessenberg(n, &a, 1e-11));
        // Trace preserved by similarity.
        let tr0: f64 = (0..n).map(|i| a0[i * n + i]).sum();
        let tr1: f64 = (0..n).map(|i| a[i * n + i]).sum();
        prop_assert!((tr0 - tr1).abs() < 1e-8 * (1.0 + tr0.abs()));
    }

    #[test]
    fn eigenvalue_sums_match_traces(n in 2usize..16, seed in 0u64..100_000) {
        let a = random_matrix(n, seed);
        let eig = eigenvalues(n, &a).unwrap();
        prop_assert_eq!(eig.len(), n);
        let tr: f64 = (0..n).map(|i| a[i * n + i]).sum();
        let sum_re: f64 = eig.iter().map(|e| e.re).sum();
        prop_assert!((sum_re - tr).abs() < 1e-6 * (1.0 + tr.abs()));
        // Complex eigenvalues pair up: imaginary parts cancel.
        let sum_im: f64 = eig.iter().map(|e| e.im).sum();
        prop_assert!(sum_im.abs() < 1e-7);
        // Second invariant: Σλ² = tr(A²).
        let mut tr2 = 0.0;
        for i in 0..n {
            for j in 0..n {
                tr2 += a[i * n + j] * a[j * n + i];
            }
        }
        let sum2: f64 = eig.iter().map(|e| (*e * *e).re).sum();
        prop_assert!((sum2 - tr2).abs() < 1e-5 * (1.0 + tr2.abs()), "{sum2} vs {tr2}");
    }

    #[test]
    fn gershgorin_contains_spectrum(nx in 2usize..6, ny in 2usize..6, seed in 0u64..10_000) {
        let n = nx * ny;
        let p = Arc::new(SparsityPattern::stencil_2d(nx, ny, true));
        let mut m = BatchCsr::<f64>::zeros(1, p).unwrap();
        let h = |k: usize| ((seed as usize + k * 97) % 100) as f64 / 100.0;
        m.fill_system(0, |r, c| if r == c { 6.0 + h(r) } else { h(r * 31 + c) - 0.5 });
        let dense = batsolv_formats::BatchDense::from_csr(&m);
        let eig = eigenvalues(n, dense.matrix_of(0)).unwrap();
        let disks = gershgorin_disks(&m, 0);
        for e in eig {
            // Every eigenvalue lies in at least one disk (real projection
            // check plus imaginary bound by disk radius).
            let inside = disks.iter().any(|d| {
                let dr = e.re - d.center;
                (dr * dr + e.im * e.im).sqrt() <= d.radius + 1e-8
            });
            prop_assert!(inside, "{e} escapes all disks");
        }
    }

    #[test]
    fn power_iteration_bounded_by_hqr(n in 2usize..10, seed in 0u64..10_000) {
        // Spectral radius from power iteration ≤ max |λ| from hqr (+tol),
        // on matrices with a dominant eigenvalue (diagonal shifted).
        let mut a = random_matrix(n, seed);
        for i in 0..n {
            a[i * n + i] += 4.0 + i as f64;
        }
        let eig = eigenvalues(n, &a).unwrap();
        let rho_true = eig.iter().map(|e| e.abs()).fold(0.0f64, f64::max);
        // Wrap into a dense batch to reuse the BatchMatrix-based API.
        let p = Arc::new(SparsityPattern::dense(n));
        let mut m = BatchCsr::<f64>::zeros(1, p).unwrap();
        m.fill_system(0, |r, c| a[r * n + c]);
        let rho_pow = spectral_radius(&m, 0, 5000, 1e-10);
        // Non-normal matrices let the Rayleigh-style quotient overshoot
        // ρ(A) transiently, so only a two-sided band is guaranteed.
        prop_assert!(rho_pow <= 1.3 * rho_true, "{rho_pow} vs {rho_true}");
        prop_assert!(rho_pow >= 0.3 * rho_true, "power iteration too small: {rho_pow} vs {rho_true}");
    }
}
