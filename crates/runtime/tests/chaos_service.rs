//! Chaos suite: seeded fault scenarios driven through the full service.
//!
//! The core invariant under every scenario (fault type × rate × batch
//! size): **every submitted request gets exactly one structured
//! outcome** — a solution, a structured solve error, or a structured
//! submission rejection — and **no healthy request's solution is
//! perturbed by a faulty batchmate**. The `FaultPlan` is a pure function
//! of `(seed, kind, id)`, so the test can predict exactly which requests
//! are faulty and check the service's failure taxonomy against the
//! prediction.

use std::sync::{Arc, Once};
use std::time::Duration;

use batsolv_faults::{FaultKind, FaultPlan, FaultRates};
use batsolv_formats::SparsityPattern;
use batsolv_gpusim::DeviceSpec;
use batsolv_runtime::{
    BreakerConfig, PrecondVariant, RuntimeConfig, SolveError, SolveMethod, SolveOutcome,
    SolveRequest, SolveService, SubmitError,
};

/// Silence panic backtraces from the supervised worker (injected panics
/// are expected there); panics on any other thread still print.
fn quiet_worker_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let worker = std::thread::current()
                .name()
                .is_some_and(|n| n == "batsolv-runtime-supervisor");
            if !worker {
                default(info);
            }
        }));
    });
}

fn tridiag_pattern(n: usize) -> Arc<SparsityPattern> {
    let mut coords = Vec::new();
    for r in 0..n {
        if r > 0 {
            coords.push((r, r - 1));
        }
        coords.push((r, r));
        if r + 1 < n {
            coords.push((r, r + 1));
        }
    }
    Arc::new(SparsityPattern::from_coords(n, &coords).unwrap())
}

/// Diagonally dominant system varying with `i` so every request is a
/// distinct numerical instance.
fn clean_system(pattern: &SparsityPattern, i: usize) -> (Vec<f64>, Vec<f64>) {
    let n = pattern.num_rows();
    let mut values = Vec::with_capacity(pattern.nnz());
    for r in 0..n {
        for &c in pattern.row_cols(r) {
            if c as usize == r {
                values.push(5.0 + 0.01 * (i % 17) as f64 + 0.001 * (r % 5) as f64);
            } else {
                values.push(-1.0);
            }
        }
    }
    let rhs: Vec<f64> = (0..n).map(|r| 1.0 + 0.1 * ((i + r) % 7) as f64).collect();
    (values, rhs)
}

fn base_config(batch_target: usize) -> RuntimeConfig {
    RuntimeConfig::new(DeviceSpec::v100())
        .with_batch_target(batch_target)
        .with_linger(Duration::from_millis(1))
        .with_queue_capacity(4096)
        // The matrix scenarios account for every outcome themselves;
        // breaker shedding is covered by its own test below.
        .with_breaker(None)
        .with_watchdog(None)
}

const OUTCOME_TIMEOUT: Duration = Duration::from_secs(60);

/// Everything a chaos run produces, for invariant checking.
struct ChaosRun {
    /// (submission index, outcome) for accepted requests.
    outcomes: Vec<(usize, SolveOutcome)>,
    /// Submission indices rejected at admission.
    rejected: Vec<usize>,
    stats: batsolv_runtime::StatsSnapshot,
}

/// Drive `count` seeded requests through a service wired to `plan`.
/// Data faults are applied pre-submission (keyed by submission index);
/// launch faults fire inside the engine (keyed by service request id).
fn run_chaos(plan: &FaultPlan, batch_target: usize, count: usize, admission: bool) -> ChaosRun {
    run_chaos_with(plan, batch_target, count, admission, PrecondVariant::Jacobi)
}

/// [`run_chaos`] with an explicit ladder preconditioner, so the chaos
/// matrix can drive poisoned systems through the ILU(0) factorization.
fn run_chaos_with(
    plan: &FaultPlan,
    batch_target: usize,
    count: usize,
    admission: bool,
    precond: PrecondVariant,
) -> ChaosRun {
    quiet_worker_panics();
    let pattern = tridiag_pattern(24);
    let config = base_config(batch_target)
        .with_admission(admission)
        .with_precond(precond);
    let service =
        SolveService::start_with_hook(Arc::clone(&pattern), config, Arc::new(plan.clone()))
            .unwrap();

    let mut tickets = Vec::new();
    let mut rejected = Vec::new();
    for i in 0..count {
        let (mut values, mut rhs) = clean_system(&pattern, i);
        let _ = plan.corrupt_system(i as u64, &pattern, &mut values, &mut rhs);
        if let Some(delay) = plan.queue_delay(i as u64) {
            std::thread::sleep(delay);
        }
        match service.submit(SolveRequest::new(values, rhs)) {
            Ok(t) => tickets.push((i, t)),
            Err(SubmitError::Rejected { .. }) => rejected.push(i),
            Err(other) => panic!("request {i}: unexpected submit error {other}"),
        }
    }

    let mut outcomes = Vec::new();
    for (i, t) in tickets {
        let outcome = t
            .wait_timeout(OUTCOME_TIMEOUT)
            .unwrap_or_else(|| panic!("request {i} never resolved: outcome leaked"));
        outcomes.push((i, outcome));
    }
    let stats = service.shutdown();
    ChaosRun {
        outcomes,
        rejected,
        stats,
    }
}

/// Assert the exactly-one-outcome invariant and that every outcome is
/// structured (finite x on success, a typed error otherwise).
fn assert_invariants(run: &ChaosRun, count: usize) {
    assert_eq!(
        run.outcomes.len() + run.rejected.len(),
        count,
        "every submission must be accounted for"
    );
    for (i, outcome) in &run.outcomes {
        match outcome {
            Ok(sol) => assert!(
                sol.x.iter().all(|v| v.is_finite()),
                "request {i}: converged solution contains non-finite entries"
            ),
            Err(
                SolveError::NotConverged { .. }
                | SolveError::WorkerPanic { .. }
                | SolveError::DeviceFailure { .. },
            ) => {}
            Err(other) => panic!("request {i}: unexpected error {other}"),
        }
    }
    // Completed = accepted: no request is double-counted or dropped by
    // the taxonomy either.
    assert_eq!(run.stats.accepted as usize, run.outcomes.len());
}

/// The scenario matrix of the acceptance criteria: each fault family at
/// 1–20% rates, across batch sizes 1/4/16/100.
#[test]
fn chaos_matrix_exactly_one_outcome_per_request() {
    let poison = FaultRates {
        nan_values: 0.05,
        inf_values: 0.03,
        nan_rhs: 0.05,
        zero_diagonal: 0.04,
        near_zero_diagonal: 0.01,
        singular_row: 0.05,
        ..Default::default()
    };
    let launch = FaultRates {
        stall: 0.05,
        panic: 0.08,
        device_fail: 0.08,
        queue_delay: 0.03,
        ..Default::default()
    };
    let everything = FaultRates {
        nan_values: 0.05,
        inf_values: 0.02,
        nan_rhs: 0.04,
        zero_diagonal: 0.03,
        near_zero_diagonal: 0.01,
        singular_row: 0.04,
        stall: 0.03,
        panic: 0.10,
        device_fail: 0.10,
        queue_delay: 0.02,
        ..Default::default()
    };
    let scenarios: [(&str, FaultRates, bool); 4] = [
        ("poison-admitted", poison, false),
        ("poison-gated", poison, true),
        ("launch-faults", launch, true),
        ("everything", everything, true),
    ];
    for &batch in &[1usize, 4, 16, 100] {
        let count = if batch >= 100 { 120 } else { 48 };
        for (name, rates, admission) in &scenarios {
            let plan = FaultPlan::new(0xC0FFEE ^ batch as u64, *rates)
                .with_stall_duration(Duration::from_millis(3))
                .with_delay_duration(Duration::from_micros(200));
            let run = run_chaos(&plan, batch, count, *admission);
            assert_invariants(&run, count);
            // Gated scenarios: the reject counters must match the
            // plan's own prediction exactly.
            if *admission {
                let mut nonfinite = 0u64;
                let mut zero_diag = 0u64;
                for i in 0..count as u64 {
                    match plan.data_fault_for(i) {
                        Some(FaultKind::NanValues | FaultKind::InfValues | FaultKind::NanRhs) => {
                            nonfinite += 1
                        }
                        Some(FaultKind::ZeroDiagonal | FaultKind::SingularRow) => zero_diag += 1,
                        _ => {}
                    }
                }
                assert_eq!(
                    run.stats.rejected_nonfinite, nonfinite,
                    "{name}/batch {batch}: non-finite reject count"
                );
                assert_eq!(
                    run.stats.rejected_zero_diag, zero_diag,
                    "{name}/batch {batch}: zero-diagonal reject count"
                );
                assert_eq!(run.rejected.len() as u64, nonfinite + zero_diag);
            }
        }
    }
}

/// Healthy requests solved next to faulty batchmates produce bitwise the
/// same solution as the identical requests on a fault-free service.
#[test]
fn healthy_solutions_bitwise_unaffected_by_faulty_neighbors() {
    let rates = FaultRates {
        nan_values: 0.10,
        singular_row: 0.10,
        panic: 0.10,
        device_fail: 0.08,
        ..Default::default()
    };
    let count = 40;
    let plan = FaultPlan::new(7, rates);
    let chaotic = run_chaos(&plan, 8, count, false);
    let clean = run_chaos(&FaultPlan::disabled(), 8, count, false);

    let clean_x: Vec<Option<Vec<f64>>> = (0..count)
        .map(|i| {
            clean
                .outcomes
                .iter()
                .find(|(j, _)| *j == i)
                .and_then(|(_, o)| o.as_ref().ok().map(|s| s.x.clone()))
        })
        .collect();
    let mut compared = 0;
    for (i, outcome) in &chaotic.outcomes {
        if plan.data_fault_for(*i as u64).is_some() {
            continue; // corrupted payload: not a healthy request
        }
        if let Ok(sol) = outcome {
            let reference = clean_x[*i]
                .as_ref()
                .expect("clean run must converge every healthy request");
            assert_eq!(
                &sol.x, reference,
                "request {i}: healthy solution perturbed by faulty batchmates"
            );
            compared += 1;
        }
    }
    assert!(
        compared >= count / 2,
        "scenario must leave enough healthy converged requests ({compared})"
    );
}

/// An injected worker panic is attributed to the request that provokes
/// it; every neighbor in the panicked fused batch still gets a solution.
#[test]
fn panic_is_isolated_to_the_guilty_request() {
    quiet_worker_panics();
    let rates = FaultRates {
        panic: 0.2,
        ..Default::default()
    };
    let plan = FaultPlan::new(21, rates);
    // Service ids are assigned in submission order, so the plan predicts
    // exactly which requests panic their launch.
    let count = 12;
    let guilty: Vec<u64> = (0..count as u64)
        .filter(|&i| plan.rolls(FaultKind::Panic, i))
        .collect();
    assert!(
        !guilty.is_empty() && guilty.len() < count,
        "seed must give a mixed batch (guilty: {guilty:?})"
    );

    let run = run_chaos(&plan, count, count, true);
    for (i, outcome) in &run.outcomes {
        if guilty.contains(&(*i as u64)) {
            match outcome {
                Err(SolveError::WorkerPanic { detail }) => {
                    assert!(
                        detail.contains(&format!("request {i}")),
                        "panic detail must name the guilty request: {detail}"
                    );
                }
                other => panic!("request {i} should panic its singleton retry, got {other:?}"),
            }
        } else {
            let sol = outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("innocent request {i} failed: {e}"));
            assert!(sol.residual <= 1e-10);
        }
    }
    assert_eq!(run.stats.failed_panic, guilty.len() as u64);
    assert_eq!(
        run.stats.completed(),
        run.stats.accepted,
        "panic must not lose or duplicate outcomes"
    );
}

/// Same isolation story for simulated device failures.
#[test]
fn device_failure_is_isolated_to_the_guilty_request() {
    let rates = FaultRates {
        device_fail: 0.2,
        ..Default::default()
    };
    let plan = FaultPlan::new(33, rates);
    let count = 12;
    let guilty: Vec<u64> = (0..count as u64)
        .filter(|&i| plan.rolls(FaultKind::DeviceFail, i))
        .collect();
    assert!(!guilty.is_empty() && guilty.len() < count);

    let run = run_chaos(&plan, count, count, true);
    for (i, outcome) in &run.outcomes {
        if guilty.contains(&(*i as u64)) {
            assert!(
                matches!(outcome, Err(SolveError::DeviceFailure { .. })),
                "request {i} should fail its singleton retry, got {outcome:?}"
            );
        } else {
            assert!(outcome.is_ok(), "innocent request {i}: {outcome:?}");
        }
    }
    assert_eq!(run.stats.failed_device, guilty.len() as u64);
}

/// The acceptance-criteria ladder demo: one mixed workload produces
/// outcomes at all three rungs plus admission rejects, with counters
/// matching the constructed workload exactly.
#[test]
fn mixed_workload_exercises_all_three_rungs_and_rejects() {
    let pattern = tridiag_pattern(32);
    let n = pattern.num_rows();
    // max_iters 1 starves BiCGSTAB; GMRES gets enough room to converge
    // a 4-eigenvalue system exactly but nothing harder.
    let config = base_config(1)
        .with_max_iters(1)
        .with_gmres_limits(6, 6)
        .with_tolerance(1e-8);
    let service = SolveService::start(Arc::clone(&pattern), config).unwrap();

    // Rung 1: easy system submitted with its exact solution as warm
    // guess — BiCGSTAB converges immediately.
    let (values, rhs) = clean_system(&pattern, 0);
    let exact = {
        // Solve once through a throwaway default service to get x*.
        let solver =
            SolveService::start(Arc::clone(&pattern), base_config(1).with_tolerance(1e-12))
                .unwrap();
        let t = solver
            .submit(SolveRequest::new(values.clone(), rhs.clone()))
            .unwrap();
        t.wait().unwrap().x
    };
    let rung1 = service
        .submit(SolveRequest::new(values.clone(), rhs.clone()).with_guess(exact))
        .unwrap();

    // Rung 2: a matrix whose Jacobi-preconditioned form has exactly 4
    // distinct eigenvalues (alternating 2x2 blocks) — full GMRES
    // converges at iteration 4; one BiCGSTAB iteration cannot.
    let mut block_values = vec![0.0; pattern.nnz()];
    for r in 0..n {
        let (a, b) = if (r / 2) % 2 == 0 {
            (4.0, 1.0)
        } else {
            (5.0, 2.0)
        };
        let partner = if r % 2 == 0 { r + 1 } else { r - 1 };
        for (k, &c) in pattern.row_cols(r).iter().enumerate() {
            let (lo, _) = pattern.row_range(r);
            let c = c as usize;
            block_values[lo + k] = if c == r {
                a
            } else if c == partner {
                b
            } else {
                0.0
            };
        }
    }
    let rung2 = service
        .submit(SolveRequest::new(block_values, vec![1.0; n]))
        .unwrap();

    // Rung 3: easy system, cold start — 1 BiCGSTAB iteration and 6 GMRES
    // iterations are both insufficient at 1e-8; banded LU rescues it.
    let rung3 = service
        .submit(SolveRequest::new(values.clone(), rhs.clone()))
        .unwrap();

    // Rejects: a NaN payload and a zero-diagonal payload.
    let mut nan_values = values.clone();
    nan_values[3] = f64::NAN;
    assert!(matches!(
        service.submit(SolveRequest::new(nan_values, rhs.clone())),
        Err(SubmitError::Rejected { .. })
    ));
    let mut sing_values = values.clone();
    let diag_idx = pattern.find(2, 2).unwrap();
    sing_values[diag_idx] = 0.0;
    assert!(matches!(
        service.submit(SolveRequest::new(sing_values, rhs.clone())),
        Err(SubmitError::Rejected { .. })
    ));

    let s1 = rung1.wait().unwrap();
    assert_eq!(s1.method, SolveMethod::Bicgstab, "rung 1: {:?}", s1.rungs);
    assert_eq!(s1.rungs.len(), 1);

    let s2 = rung2.wait().unwrap();
    assert_eq!(s2.method, SolveMethod::Gmres, "rung 2: {:?}", s2.rungs);
    assert_eq!(s2.rungs.len(), 2);

    let s3 = rung3.wait().unwrap();
    assert_eq!(
        s3.method,
        SolveMethod::BandedLuFallback,
        "rung 3: {:?}",
        s3.rungs
    );
    assert_eq!(s3.rungs.len(), 3);

    let stats = service.shutdown();
    assert_eq!(stats.converged_iterative, 1);
    assert_eq!(stats.converged_gmres, 1);
    assert_eq!(stats.converged_fallback, 1);
    assert_eq!(stats.rejected_nonfinite, 1);
    assert_eq!(stats.rejected_zero_diag, 1);
    assert_eq!(stats.rung_hist, [1, 1, 1]);
}

/// Circuit breaker: a storm of device failures trips it, submissions are
/// shed with `CircuitOpen`, and a half-open probe re-opens it on failure.
#[test]
fn breaker_trips_sheds_and_half_opens() {
    let rates = FaultRates {
        device_fail: 1.0,
        ..Default::default()
    };
    let plan = FaultPlan::new(1, rates);
    let pattern = tridiag_pattern(24);
    let config = base_config(1).with_breaker(Some(BreakerConfig {
        trip_after: 2,
        cooldown: Duration::from_millis(30),
        max_backoff: Duration::from_secs(1),
        degraded_fraction: 0.5,
    }));
    let service =
        SolveService::start_with_hook(Arc::clone(&pattern), config, Arc::new(plan)).unwrap();

    let submit_one = |i: usize| {
        let (values, rhs) = clean_system(&pattern, i);
        service.submit(SolveRequest::new(values, rhs))
    };

    // Two degraded batches in a row trip the breaker.
    for i in 0..2 {
        let t = submit_one(i).unwrap();
        assert!(matches!(
            t.wait_timeout(OUTCOME_TIMEOUT),
            Some(Err(SolveError::DeviceFailure { .. }))
        ));
    }
    let shed = match submit_one(2) {
        Err(SubmitError::CircuitOpen { retry_after }) => retry_after,
        other => panic!("expected CircuitOpen, got {other:?}"),
    };
    assert!(shed > Duration::ZERO);

    // After the cooldown a half-open probe is admitted; it fails, so the
    // breaker re-opens immediately for the next submission.
    std::thread::sleep(Duration::from_millis(40));
    let probe = submit_one(3).expect("half-open must admit one probe");
    assert!(matches!(
        probe.wait_timeout(OUTCOME_TIMEOUT),
        Some(Err(SolveError::DeviceFailure { .. }))
    ));
    assert!(matches!(
        submit_one(4),
        Err(SubmitError::CircuitOpen { .. })
    ));

    let stats = service.shutdown();
    assert!(stats.breaker_trips >= 2, "trips {}", stats.breaker_trips);
    assert!(stats.rejected_circuit_open >= 2);
}

/// Watchdog: an injected stall past the dispatch budget is counted.
#[test]
fn watchdog_counts_stalled_dispatches() {
    let rates = FaultRates {
        stall: 1.0,
        ..Default::default()
    };
    let plan = FaultPlan::new(2, rates).with_stall_duration(Duration::from_millis(60));
    let pattern = tridiag_pattern(16);
    let config = base_config(1).with_watchdog(Some(Duration::from_millis(5)));
    let service =
        SolveService::start_with_hook(Arc::clone(&pattern), config, Arc::new(plan)).unwrap();
    let (values, rhs) = clean_system(&pattern, 0);
    let t = service.submit(SolveRequest::new(values, rhs)).unwrap();
    let sol = t.wait_timeout(OUTCOME_TIMEOUT).unwrap();
    assert!(sol.is_ok(), "a stalled launch still completes: {sol:?}");
    let stats = service.shutdown();
    assert!(
        stats.watchdog_stalls >= 1,
        "stall must be flagged (stalls {})",
        stats.watchdog_stalls
    );
}

/// Regression (satellite): a poisoned XGC mesh node — NaN smuggled into
/// the RHS of a `SystemView` — must be caught at submission, not fused
/// into a launch with 41k healthy nodes.
#[test]
fn poisoned_xgc_node_is_rejected_at_submission() {
    use batsolv_xgc::{Species, VelocityGrid, XgcWorkload};
    let workload =
        XgcWorkload::generate_single_species(VelocityGrid::small(8, 7), Species::ion(), 4, 9)
            .unwrap();
    let config = RuntimeConfig::new(DeviceSpec::v100())
        .with_batch_target(4)
        .with_linger(Duration::from_millis(1));
    let service = SolveService::start(Arc::clone(workload.pattern()), config).unwrap();

    let mut tickets = Vec::new();
    let mut rejects = 0;
    for sys in workload.systems() {
        let mut rhs = sys.rhs.to_vec();
        if sys.index == 2 {
            rhs[5] = f64::NAN; // the poisoned mesh node
            assert_eq!(sys.first_non_finite(), None, "workload itself is clean");
        }
        match service.submit(SolveRequest::new(sys.values.to_vec(), rhs)) {
            Ok(t) => tickets.push(t),
            Err(SubmitError::Rejected { reason }) => {
                assert!(reason.to_string().contains("rhs"), "reason: {reason}");
                rejects += 1;
            }
            Err(other) => panic!("unexpected submit error {other}"),
        }
    }
    assert_eq!(rejects, 1, "exactly the poisoned node is rejected");
    for t in tickets {
        let sol = t.wait_timeout(OUTCOME_TIMEOUT).expect("must resolve");
        assert!(sol.is_ok(), "healthy nodes still solve: {sol:?}");
    }
    let stats = service.shutdown();
    assert_eq!(stats.rejected_nonfinite, 1);
    assert_eq!(stats.accepted, 3);
}

/// Flight recorder: an injected stall trips the watchdog, which dumps
/// the ring — and the dump contains the guilty request's trace id
/// (carried in by its `submitted`/`dequeued` events, which precede the
/// stalled launch).
#[test]
fn watchdog_stall_dumps_flight_recorder_with_guilty_trace() {
    use batsolv_trace::{FlightRecorder, MemorySink, Tracer};
    let rates = FaultRates {
        stall: 1.0,
        ..Default::default()
    };
    let plan = FaultPlan::new(2, rates).with_stall_duration(Duration::from_millis(60));
    let pattern = tridiag_pattern(16);
    let sink = Arc::new(MemorySink::new());
    let recorder = Arc::new(FlightRecorder::new(256));
    let config = base_config(1)
        .with_watchdog(Some(Duration::from_millis(5)))
        .with_tracer(Tracer::with_flight_recorder(
            sink.clone(),
            Arc::clone(&recorder),
        ));
    let service =
        SolveService::start_with_hook(Arc::clone(&pattern), config, Arc::new(plan)).unwrap();
    let (values, rhs) = clean_system(&pattern, 0);
    let t = service.submit(SolveRequest::new(values, rhs)).unwrap();
    let sol = t.wait_timeout(OUTCOME_TIMEOUT).unwrap();
    assert!(sol.is_ok(), "a stalled launch still completes: {sol:?}");
    let stats = service.shutdown();
    assert!(stats.watchdog_stalls >= 1, "stall must be flagged");
    let dump = recorder
        .last_dump()
        .expect("watchdog stall must dump the flight recorder");
    assert_eq!(dump.reason, "watchdog_stall");
    assert!(
        dump.contains_trace(0),
        "dump must contain the stalled request's trace id"
    );
    // The dump marker also reached the ordinary sink.
    use batsolv_trace::EventKind;
    assert!(sink
        .snapshot()
        .iter()
        .any(|e| matches!(e.kind, EventKind::FlightDump { .. })));
}

/// NaN and (near-)zero-diagonal poison driven through the ILU(0)
/// factorization: the in-pattern elimination hits an unusable pivot or
/// non-finite multiplier, reports a structured preconditioner breakdown
/// (never a panic, never silent garbage), and the system falls down the
/// ladder to GMRES and then the unpreconditioned banded-LU direct rung.
/// The exactly-one-outcome invariant must survive, and every clean
/// batchmate must still converge.
#[test]
fn ilu0_factorization_breakdown_falls_down_the_ladder() {
    let rates = FaultRates {
        nan_values: 0.08,
        inf_values: 0.04,
        zero_diagonal: 0.06,
        near_zero_diagonal: 0.06,
        singular_row: 0.05,
        ..Default::default()
    };
    for &batch in &[1usize, 16] {
        let count = 48;
        let plan = FaultPlan::new(0x110_0 ^ batch as u64, rates);
        let run = run_chaos_with(&plan, batch, count, false, PrecondVariant::Ilu0);
        assert_invariants(&run, count);
        assert!(run.rejected.is_empty(), "admission gate was disabled");
        // Clean systems are tridiagonal and diagonally dominant, so
        // ILU(0) on them is the exact factorization: every non-faulted
        // request must converge even with poisoned batchmates.
        for (i, outcome) in &run.outcomes {
            if plan.data_fault_for(*i as u64).is_none() {
                assert!(
                    outcome.is_ok(),
                    "clean request {i} failed next to poisoned batchmates: {:?}",
                    outcome.as_ref().err()
                );
            }
        }
    }
}
