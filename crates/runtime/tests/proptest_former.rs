//! Property tests for the batch former's flush policy.
//!
//! The former is pure over virtual time, so randomized interleavings of
//! pushes, polls, and time advances can be driven exhaustively:
//!
//! 1. **Conservation** — every pushed request is flushed exactly once
//!    (no loss, no double-solve), in FIFO order.
//! 2. **Size discipline** — no batch exceeds the target; target-reached
//!    batches are exactly the target size.
//! 3. **Linger bound** — after polling to exhaustion at time `t`, no
//!    pending request has aged past the linger time.

use batsolv_runtime::{BatchFormer, FlushReason};
use proptest::prelude::*;

/// One scripted event: advance virtual time, then maybe act.
#[derive(Clone, Copy, Debug)]
enum Event {
    Push,
    Poll,
    Tick,
}

fn decode(op: u8) -> Event {
    match op % 4 {
        0 | 1 => Event::Push,
        2 => Event::Poll,
        _ => Event::Tick,
    }
}

/// Drive a former through the scripted events; returns flushed batches.
fn run_script(
    target: usize,
    linger_ns: u64,
    script: &[(u64, u8)],
) -> (Vec<(Vec<u64>, FlushReason)>, usize) {
    let mut former: BatchFormer<u64> = BatchFormer::new(target, linger_ns);
    let mut now: u64 = 0;
    let mut next_id: u64 = 0;
    let mut flushed = Vec::new();
    for &(delta, op) in script {
        now += delta;
        match decode(op) {
            Event::Push => {
                former.push(next_id, now);
                next_id += 1;
            }
            Event::Poll => {
                while let Some(batch) = former.poll(now) {
                    flushed.push(batch);
                }
                // Linger bound: anything older than linger was flushed.
                if let Some(age) = former.oldest_age_ns(now) {
                    assert!(
                        age < linger_ns,
                        "pending request aged {age} ns past linger {linger_ns} ns"
                    );
                }
                assert!(former.len() < target, "a full former must have flushed");
            }
            Event::Tick => {}
        }
    }
    while let Some(batch) = former.drain() {
        flushed.push(batch);
    }
    assert!(former.is_empty(), "drain must empty the former");
    (flushed, next_id as usize)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn no_request_lost_or_double_solved(
        target in 1usize..12,
        linger in 0u64..5_000,
        script in proptest::collection::vec((0u64..2_000, 0u8..4), 0..120),
    ) {
        let (flushed, pushed) = run_script(target, linger, &script);
        // Conservation + FIFO: concatenating the batches reproduces the
        // submission sequence 0, 1, 2, ... exactly once each.
        let replay: Vec<u64> = flushed.iter().flat_map(|(b, _)| b.iter().copied()).collect();
        let expected: Vec<u64> = (0..pushed as u64).collect();
        prop_assert_eq!(replay, expected);
    }

    #[test]
    fn batches_respect_target_size(
        target in 1usize..12,
        linger in 0u64..5_000,
        script in proptest::collection::vec((0u64..2_000, 0u8..4), 0..120),
    ) {
        let (flushed, _) = run_script(target, linger, &script);
        for (batch, reason) in &flushed {
            prop_assert!(!batch.is_empty(), "empty batch flushed");
            prop_assert!(batch.len() <= target, "batch of {} exceeds target {}", batch.len(), target);
            if *reason == FlushReason::TargetReached {
                prop_assert_eq!(batch.len(), target);
            }
        }
    }

    #[test]
    fn linger_flush_bounds_queue_age_under_continuous_polling(
        linger in 1u64..2_000,
        deltas in proptest::collection::vec(0u64..500, 1..80),
    ) {
        // Target high enough that only the linger trigger fires: poll
        // after every arrival, like a worker that is never busy.
        let mut former: BatchFormer<usize> = BatchFormer::new(usize::MAX >> 1, linger);
        let mut now = 0u64;
        for (i, &d) in deltas.iter().enumerate() {
            now += d;
            former.push(i, now);
            while former.poll(now).is_some() {}
            if let Some(age) = former.oldest_age_ns(now) {
                prop_assert!(age < linger);
            }
        }
    }
}
