//! End-to-end trace assertions through the full service.
//!
//! The acceptance contract of the tracing layer, checked on a real run:
//! every accepted request has exactly one `terminal` event; every rung
//! span nests inside its request's `submitted → terminal` window; queue
//! waits surface as `dequeued` events; and the Prometheus exporter
//! agrees with the `StatsSnapshot` it renders.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use batsolv_formats::SparsityPattern;
use batsolv_gpusim::DeviceSpec;
use batsolv_runtime::{prometheus_text, RuntimeConfig, SolveRequest, SolveService};
use batsolv_trace::{parse_prom_value, EventKind, MemorySink, TraceEvent, Tracer};

fn tridiag_pattern(n: usize) -> Arc<SparsityPattern> {
    let mut coords = Vec::new();
    for r in 0..n {
        if r > 0 {
            coords.push((r, r - 1));
        }
        coords.push((r, r));
        if r + 1 < n {
            coords.push((r, r + 1));
        }
    }
    Arc::new(SparsityPattern::from_coords(n, &coords).unwrap())
}

fn clean_system(pattern: &SparsityPattern, i: usize) -> (Vec<f64>, Vec<f64>) {
    let n = pattern.num_rows();
    let mut values = Vec::with_capacity(pattern.nnz());
    for r in 0..n {
        for &c in pattern.row_cols(r) {
            if c as usize == r {
                values.push(5.0 + 0.01 * (i % 17) as f64);
            } else {
                values.push(-1.0);
            }
        }
    }
    let rhs: Vec<f64> = (0..n).map(|r| 1.0 + 0.1 * ((i + r) % 7) as f64).collect();
    (values, rhs)
}

/// Drive `count` requests through a traced service and return the events
/// plus the final snapshot.
fn run_traced(count: usize) -> (Vec<TraceEvent>, batsolv_runtime::StatsSnapshot) {
    let pattern = tridiag_pattern(24);
    let sink = Arc::new(MemorySink::new());
    let config = RuntimeConfig::new(DeviceSpec::v100())
        .with_batch_target(4)
        .with_linger(Duration::from_millis(1))
        .with_tracer(Tracer::new(sink.clone()));
    let service = SolveService::start(Arc::clone(&pattern), config).unwrap();
    let tickets: Vec<_> = (0..count)
        .map(|i| {
            let (values, rhs) = clean_system(&pattern, i);
            service.submit(SolveRequest::new(values, rhs)).unwrap()
        })
        .collect();
    for t in tickets {
        t.wait().unwrap();
    }
    let stats = service.shutdown();
    (sink.snapshot(), stats)
}

#[test]
fn every_accepted_request_has_exactly_one_terminal_event() {
    let (events, stats) = run_traced(10);
    let mut submitted: HashMap<u64, usize> = HashMap::new();
    let mut terminal: HashMap<u64, usize> = HashMap::new();
    for e in &events {
        match e.kind {
            EventKind::Submitted { .. } => {
                *submitted.entry(e.trace_id.unwrap()).or_insert(0) += 1;
            }
            EventKind::Terminal { .. } => {
                *terminal.entry(e.trace_id.unwrap()).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    assert_eq!(submitted.len(), 10);
    assert_eq!(stats.accepted, 10);
    for (id, &n) in &submitted {
        assert_eq!(n, 1, "request {id} submitted more than once");
        assert_eq!(
            terminal.get(id),
            Some(&1),
            "request {id} must reach exactly one terminal event"
        );
    }
    assert_eq!(terminal.len(), submitted.len(), "no orphan terminals");
}

#[test]
fn rung_spans_nest_inside_the_request_span() {
    let (events, _) = run_traced(6);
    // Per request: t(submitted) <= t(dequeued) <= t(rung_begin) <=
    // t(rung_end) <= t(terminal), and rung begins/ends pair up.
    let mut windows: HashMap<u64, (u64, u64)> = HashMap::new();
    for e in &events {
        match e.kind {
            EventKind::Submitted { .. } => {
                windows.entry(e.trace_id.unwrap()).or_insert((e.t_us, 0)).0 = e.t_us;
            }
            EventKind::Terminal { .. } => {
                windows.entry(e.trace_id.unwrap()).or_insert((0, e.t_us)).1 = e.t_us;
            }
            _ => {}
        }
    }
    let mut saw_rungs = 0usize;
    for e in &events {
        let (open, rung) = match e.kind {
            EventKind::RungBegin { rung, .. } => (true, rung),
            EventKind::RungEnd { rung, .. } => (false, rung),
            _ => continue,
        };
        saw_rungs += 1;
        let id = e.trace_id.expect("rung events are request-scoped");
        let &(start, end) = windows
            .get(&id)
            .unwrap_or_else(|| panic!("rung event for unknown request {id}"));
        assert!(
            e.t_us >= start && e.t_us <= end,
            "rung {rung} {} at {} outside request {id} span [{start}, {end}]",
            if open { "begin" } else { "end" },
            e.t_us
        );
    }
    assert!(saw_rungs >= 12, "6 requests × ≥1 rung × begin+end");
    // Every dequeued event carries the wait and belongs to a request.
    let dequeued: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Dequeued { .. }))
        .collect();
    assert_eq!(dequeued.len(), 6);
    assert!(dequeued.iter().all(|e| e.trace_id.is_some()));
}

#[test]
fn batches_and_launches_are_recorded() {
    let (events, stats) = run_traced(8);
    let formed: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::BatchFormed { seq, .. } => Some(seq),
            _ => None,
        })
        .collect();
    assert_eq!(formed.len() as u64, stats.batches_formed);
    // Sequence numbers are unique and start at 0.
    let mut sorted = formed.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), formed.len());
    assert_eq!(sorted.first(), Some(&0));
    // At least one fused launch and its paired transfers made it out.
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::KernelLaunch { blocks, .. } if blocks >= 1)));
    assert!(events.iter().any(|e| matches!(
        e.kind,
        EventKind::Transfer {
            direction: "h2d",
            ..
        }
    )));
    assert!(events.iter().any(|e| matches!(
        e.kind,
        EventKind::Transfer {
            direction: "d2h",
            ..
        }
    )));
}

#[test]
fn prometheus_page_agrees_with_the_snapshot() {
    let (_, stats) = run_traced(10);
    let page = prometheus_text(&stats);
    assert_eq!(
        parse_prom_value(&page, "batsolv_requests_accepted_total"),
        Some(stats.accepted as f64)
    );
    assert_eq!(
        parse_prom_value(&page, "batsolv_requests_completed_total"),
        Some(stats.completed() as f64)
    );
    assert_eq!(
        parse_prom_value(&page, "batsolv_batches_formed_total"),
        Some(stats.batches_formed as f64)
    );
    assert_eq!(
        parse_prom_value(&page, "batsolv_solver_iterations_total"),
        Some(stats.solver_iterations_total as f64)
    );
    assert_eq!(
        parse_prom_value(&page, "batsolv_queue_wait_p50_us"),
        Some(stats.queue_wait_p50.as_secs_f64() * 1e6)
    );
    assert_eq!(
        parse_prom_value(&page, "batsolv_outcomes_total"),
        Some(stats.converged_iterative as f64),
        "first outcomes sample is the converged_bicgstab label"
    );
}

#[test]
fn untraced_service_emits_nothing_and_still_solves() {
    let pattern = tridiag_pattern(16);
    let config = RuntimeConfig::new(DeviceSpec::v100())
        .with_batch_target(2)
        .with_linger(Duration::from_millis(1));
    assert!(!config.tracer.is_enabled(), "default tracer is disabled");
    let service = SolveService::start(Arc::clone(&pattern), config).unwrap();
    let (values, rhs) = clean_system(&pattern, 0);
    let t = service.submit(SolveRequest::new(values, rhs)).unwrap();
    assert!(t.wait().is_ok());
    assert_eq!(service.shutdown().accepted, 1);
}

/// A tridiagonal system whose diagonal dominance controls which
/// iteration band it converges in: strongly dominant rows land ion-like,
/// weakly dominant ones electron-like.
fn graded_system(pattern: &SparsityPattern, i: usize, dominance: f64) -> (Vec<f64>, Vec<f64>) {
    let n = pattern.num_rows();
    let mut values = Vec::with_capacity(pattern.nnz());
    for r in 0..n {
        for &c in pattern.row_cols(r) {
            if c as usize == r {
                values.push(dominance + 0.01 * (i % 17) as f64);
            } else {
                values.push(-1.0);
            }
        }
    }
    let rhs: Vec<f64> = (0..n).map(|r| 1.0 + 0.1 * ((i + r) % 7) as f64).collect();
    (values, rhs)
}

/// The autotuner's per-class choice must read identically on every
/// surface it is exported through: the `AutotuneDecision` trace events,
/// the Prometheus `batsolv_autotune_*` series, and the `--profile-out`
/// ledger report's `autotune` JSON section.
#[test]
fn autotune_choices_agree_across_trace_prometheus_and_ledger_report() {
    use batsolv_runtime::AutoTunerConfig;
    use batsolv_trace::{parse_prom_labeled, LedgerAggregator, WorkloadClass};

    let pattern = tridiag_pattern(48);
    let sink = Arc::new(MemorySink::new());
    let config = RuntimeConfig::new(DeviceSpec::v100())
        .with_batch_target(4)
        .with_linger(Duration::from_millis(1))
        .with_autotune(Some(AutoTunerConfig { window: 4, seed: 0 }))
        .with_tracer(Tracer::new(sink.clone()));
    let service = SolveService::start(Arc::clone(&pattern), config).unwrap();

    // Mixed workload: even requests are strongly dominant (ion band),
    // odd ones weakly dominant (electron band).
    let tickets: Vec<_> = (0..24)
        .map(|i| {
            let dominance = if i % 2 == 0 { 5.0 } else { 2.002 };
            let (values, rhs) = graded_system(&pattern, i, dominance);
            service.submit(SolveRequest::new(values, rhs)).unwrap()
        })
        .collect();
    for t in tickets {
        t.wait().unwrap();
    }

    // Capture all three surfaces at the same instant, before shutdown.
    let choices = service.autotune_choices();
    let page = service.prometheus();
    let report = LedgerAggregator::build(&sink.snapshot())
        .report(1.0)
        .with_autotune(choices.clone())
        .to_json();
    service.shutdown();
    let events = sink.snapshot();

    assert!(
        choices.iter().any(|c| c.class == WorkloadClass::IonLike),
        "strongly dominant systems must produce an ion-like choice"
    );
    assert!(
        choices.len() >= 2,
        "mixed workload must tune at least two classes, got {choices:?}"
    );

    for c in &choices {
        let name = c.class.name();
        // Surface 1: the newest AutotuneDecision trace event of the
        // class carries the same (solver, precond, revision). (Its
        // observation count may lag the live choice: unchanged window
        // recommits are deliberately silent.)
        let last = events
            .iter()
            .rev()
            .find_map(|e| match e.kind {
                EventKind::AutotuneDecision {
                    class,
                    solver,
                    precond,
                    revision,
                    ..
                } if class == name => Some((solver, precond, revision)),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no AutotuneDecision trace event for class {name}"));
        assert_eq!(
            last,
            (c.solver, c.precond, c.revision),
            "trace disagrees for {name}"
        );

        // Surface 2: the Prometheus page exports the identical choice.
        assert_eq!(
            parse_prom_labeled(
                &page,
                "batsolv_autotune_info",
                &[
                    ("class", name),
                    ("solver", c.solver),
                    ("precond", c.precond)
                ],
            ),
            Some(1.0),
            "prometheus info series disagrees for {name}"
        );
        assert_eq!(
            parse_prom_labeled(
                &page,
                "batsolv_autotune_observations_total",
                &[("class", name)]
            ),
            Some(c.observations as f64)
        );
        assert_eq!(
            parse_prom_labeled(&page, "batsolv_autotune_revision", &[("class", name)]),
            Some(c.revision as f64)
        );

        // Surface 3: the ledger report renders the identical choice in
        // its `autotune` section.
        let expected = format!(
            "\"{name}\":{{\"solver\":\"{}\",\"precond\":\"{}\",\
             \"observations\":{},\"revision\":{}}}",
            c.solver, c.precond, c.observations, c.revision
        );
        assert!(
            report.contains(&expected),
            "ledger report disagrees for {name}: wanted {expected} in {report}"
        );
    }
}
