//! Integration tests of the full service: backpressure, deadlines,
//! shutdown draining, and the real-solver paths (convergence and the
//! banded-LU fallback) on XGC workloads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use batsolv_formats::SparsityPattern;
use batsolv_gpusim::DeviceSpec;
use batsolv_runtime::{
    BatchItem, BatchReport, ItemOutcome, RuntimeConfig, SolveEngine, SolveError, SolveMethod,
    SolveRequest, SolveService, SubmitError,
};
use batsolv_trace::{EventKind, MemorySink, Tracer, WorkloadClass};
use batsolv_types::Result;
use batsolv_xgc::{Species, VelocityGrid, XgcWorkload};

/// Trivial test engine: "solves" by echoing the RHS. When `gate` is set,
/// each dispatch blocks until the gate is released, which lets tests
/// hold the worker busy and fill the queue deterministically.
struct EchoEngine {
    gate: Option<Arc<(Mutex<bool>, Condvar)>>,
    dispatched_batches: AtomicUsize,
}

impl EchoEngine {
    fn new() -> EchoEngine {
        EchoEngine {
            gate: None,
            dispatched_batches: AtomicUsize::new(0),
        }
    }

    fn gated(gate: Arc<(Mutex<bool>, Condvar)>) -> EchoEngine {
        EchoEngine {
            gate: Some(gate),
            dispatched_batches: AtomicUsize::new(0),
        }
    }
}

fn release(gate: &(Mutex<bool>, Condvar)) {
    *gate.0.lock().unwrap() = true;
    gate.1.notify_all();
}

impl SolveEngine for EchoEngine {
    fn solve_batch(&self, items: &[BatchItem]) -> Result<BatchReport> {
        if let Some(gate) = &self.gate {
            let (lock, cvar) = &**gate;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cvar.wait(open).unwrap();
            }
        }
        self.dispatched_batches.fetch_add(1, Ordering::SeqCst);
        Ok(BatchReport {
            outcomes: items
                .iter()
                .map(|it| ItemOutcome {
                    id: it.id,
                    x: it.rhs.clone(),
                    iterations: 1,
                    residual: 0.0,
                    converged: true,
                    method: SolveMethod::Bicgstab,
                    breakdown: None,
                    rungs: vec![],
                })
                .collect(),
            sim_time_s: 1e-6,
            syncs: 0,
            reductions: 0,
            solver: "echo",
            split: batsolv_runtime::dispatcher::SimSplit::default(),
        })
    }
}

fn tiny_pattern() -> Arc<SparsityPattern> {
    Arc::new(SparsityPattern::dense(2))
}

fn tiny_request() -> SolveRequest {
    SolveRequest::new(vec![1.0, 0.0, 0.0, 1.0], vec![1.0, 2.0])
}

#[test]
fn queue_full_rejects_with_structured_error() {
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let engine = Arc::new(EchoEngine::gated(Arc::clone(&gate)));
    let config = RuntimeConfig::new(DeviceSpec::v100())
        .with_queue_capacity(2)
        .with_batch_target(1)
        .with_linger(Duration::ZERO);
    let service = SolveService::start_with_engine(tiny_pattern(), config, engine).unwrap();

    // First request reaches the (blocked) engine; give the worker time
    // to pop it out of the queue.
    let t0 = service.submit(tiny_request()).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    // The next two fill the queue; the one after bounces.
    let t1 = service.submit(tiny_request()).unwrap();
    let t2 = service.submit(tiny_request()).unwrap();
    match service.submit(tiny_request()) {
        Err(SubmitError::QueueFull { capacity }) => assert_eq!(capacity, 2),
        other => panic!("expected QueueFull, got {other:?}"),
    }

    release(&gate);
    for t in [t0, t1, t2] {
        assert!(t.wait().is_ok(), "accepted requests must still resolve");
    }
    let stats = service.shutdown();
    assert_eq!(stats.accepted, 3);
    assert_eq!(stats.rejected_queue_full, 1);
    assert_eq!(stats.converged_iterative, 3);
}

#[test]
fn expired_deadline_returns_structured_error() {
    let engine = Arc::new(EchoEngine::new());
    // Target 2 with a long linger: the first request sits in the former
    // until the second arrives, guaranteeing its zero deadline expires.
    let config = RuntimeConfig::new(DeviceSpec::v100())
        .with_batch_target(2)
        .with_linger(Duration::from_secs(3600));
    let service = SolveService::start_with_engine(tiny_pattern(), config, engine).unwrap();

    let doomed = service
        .submit(tiny_request().with_deadline(Duration::ZERO))
        .unwrap();
    std::thread::sleep(Duration::from_millis(10));
    let healthy = service.submit(tiny_request()).unwrap();

    match doomed.wait() {
        Err(SolveError::DeadlineExceeded { waited, deadline }) => {
            assert_eq!(deadline, Duration::ZERO);
            assert!(waited > Duration::ZERO);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(healthy.wait().is_ok());
    let stats = service.shutdown();
    assert_eq!(stats.failed_deadline, 1);
    assert_eq!(stats.converged_iterative, 1);
}

#[test]
fn shutdown_drains_partial_batches() {
    let engine = Arc::new(EchoEngine::new());
    // Target far above the submission count and an hour of linger: only
    // the shutdown drain can flush these.
    let config = RuntimeConfig::new(DeviceSpec::v100())
        .with_batch_target(1000)
        .with_linger(Duration::from_secs(3600));
    let service = SolveService::start_with_engine(tiny_pattern(), config, engine).unwrap();
    let tickets: Vec<_> = (0..5)
        .map(|_| service.submit(tiny_request()).unwrap())
        .collect();
    let stats = service.shutdown();
    for t in tickets {
        assert!(t.wait().is_ok(), "drained requests must resolve");
    }
    assert_eq!(stats.converged_iterative, 5);
    assert_eq!(stats.batches_formed, 1, "one drain batch expected");
}

#[test]
fn shape_mismatch_rejected_at_submission() {
    let engine = Arc::new(EchoEngine::new());
    let config = RuntimeConfig::new(DeviceSpec::v100());
    let service = SolveService::start_with_engine(tiny_pattern(), config, engine).unwrap();
    match service.submit(SolveRequest::new(vec![1.0; 3], vec![1.0, 2.0])) {
        Err(SubmitError::ShapeMismatch {
            field: "values",
            expected: 4,
            got: 3,
        }) => {}
        other => panic!("expected values ShapeMismatch, got {other:?}"),
    }
    match service.submit(SolveRequest::new(vec![1.0; 4], vec![1.0])) {
        Err(SubmitError::ShapeMismatch { field: "rhs", .. }) => {}
        other => panic!("expected rhs ShapeMismatch, got {other:?}"),
    }
    assert_eq!(service.stats().rejected_shape, 2);
}

#[test]
fn wait_timeout_reports_pending_then_resolves() {
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let engine = Arc::new(EchoEngine::gated(Arc::clone(&gate)));
    let config = RuntimeConfig::new(DeviceSpec::v100())
        .with_batch_target(1)
        .with_linger(Duration::ZERO);
    let service = SolveService::start_with_engine(tiny_pattern(), config, engine).unwrap();
    let ticket = service.submit(tiny_request()).unwrap();
    assert!(
        ticket.wait_timeout(Duration::from_millis(20)).is_none(),
        "outcome must not be ready while the engine is gated"
    );
    release(&gate);
    assert!(ticket.wait().is_ok());
    let _ = service.shutdown();
}

#[test]
fn real_engine_solves_ion_workload() {
    let workload =
        XgcWorkload::generate_single_species(VelocityGrid::small(8, 7), Species::ion(), 12, 3)
            .unwrap();
    let config = RuntimeConfig::new(DeviceSpec::v100())
        .with_batch_target(4)
        .with_linger(Duration::from_millis(1));
    let service = SolveService::start(Arc::clone(workload.pattern()), config).unwrap();
    let tickets: Vec<_> = workload
        .systems()
        .map(|sys| {
            service
                .submit(
                    SolveRequest::new(sys.values.to_vec(), sys.rhs.to_vec())
                        .with_guess(sys.warm_guess.to_vec()),
                )
                .unwrap()
        })
        .collect();
    let stats = service.shutdown();
    for t in tickets {
        let sol = t.wait().expect("ion system must converge");
        assert!(sol.residual <= 1e-10);
        assert_eq!(sol.method, SolveMethod::Bicgstab);
        assert!(sol.batch_size >= 1);
    }
    assert_eq!(stats.converged_iterative, 12);
    assert_eq!(stats.failed_not_converged, 0);
}

#[test]
fn starved_iterations_fall_back_to_banded_lu() {
    // One BiCGSTAB iteration cannot reach 1e-12 on an electron system:
    // the request must come back converged via the direct fallback, not
    // as a panic or a lost ticket.
    let workload =
        XgcWorkload::generate_single_species(VelocityGrid::small(8, 7), Species::electron(), 3, 5)
            .unwrap();
    let config = RuntimeConfig::new(DeviceSpec::v100())
        .with_batch_target(3)
        .with_linger(Duration::from_millis(1))
        .with_tolerance(1e-12)
        .with_max_iters(1)
        .with_gmres(false);
    let service = SolveService::start(Arc::clone(workload.pattern()), config).unwrap();
    let tickets: Vec<_> = workload
        .systems()
        .map(|sys| {
            service
                .submit(SolveRequest::new(sys.values.to_vec(), sys.rhs.to_vec()))
                .unwrap()
        })
        .collect();
    let stats = service.shutdown();
    for t in tickets {
        let sol = t.wait().expect("fallback must rescue the request");
        assert_eq!(sol.method, SolveMethod::BandedLuFallback);
        assert!(sol.residual < 1e-8, "direct residual {}", sol.residual);
    }
    assert_eq!(stats.converged_fallback, 3);
    assert_eq!(stats.converged_iterative, 0);
}

#[test]
fn fallback_disabled_yields_not_converged_error() {
    let workload =
        XgcWorkload::generate_single_species(VelocityGrid::small(8, 7), Species::electron(), 1, 5)
            .unwrap();
    let config = RuntimeConfig::new(DeviceSpec::v100())
        .with_batch_target(1)
        .with_linger(Duration::ZERO)
        .with_tolerance(1e-12)
        .with_max_iters(1)
        .with_gmres(false)
        .with_fallback(false);
    let service = SolveService::start(Arc::clone(workload.pattern()), config).unwrap();
    let sys = workload.system(0);
    let ticket = service
        .submit(SolveRequest::new(sys.values.to_vec(), sys.rhs.to_vec()))
        .unwrap();
    match ticket.wait() {
        Err(SolveError::NotConverged {
            iterations,
            residual,
            ..
        }) => {
            assert_eq!(iterations, 1);
            assert!(residual > 1e-12);
        }
        other => panic!("expected NotConverged, got {other:?}"),
    }
    let stats = service.shutdown();
    assert_eq!(stats.failed_not_converged, 1);
}

#[test]
fn every_terminal_outcome_carries_a_balanced_ledger() {
    let sink = Arc::new(MemorySink::new());
    let engine = Arc::new(EchoEngine::new());
    let config = RuntimeConfig::new(DeviceSpec::v100())
        .with_batch_target(2)
        .with_linger(Duration::from_millis(1))
        .with_tracer(Tracer::new(sink.clone()));
    let service = SolveService::start_with_engine(tiny_pattern(), config, engine).unwrap();

    let plain = service.submit(tiny_request()).unwrap();
    let bounded = service
        .submit(tiny_request().with_deadline(Duration::from_secs(60)))
        .unwrap();
    assert!(plain.wait().is_ok());
    assert!(bounded.wait().is_ok());

    // Terminal requests land in the class tracker and the Prometheus page
    // agrees with the snapshot it renders from.
    let classes = service.classes();
    assert_eq!(classes.total(), 2);
    let ion = classes.get(WorkloadClass::IonLike);
    assert_eq!(ion.count, 2, "echo engine converges in 1 iter: ion-like");
    let page = service.prometheus();
    assert_eq!(
        batsolv_trace::parse_prom_labeled(
            &page,
            "batsolv_class_requests_total",
            &[("class", "ion-like")],
        ),
        Some(2.0)
    );
    assert_eq!(
        batsolv_trace::parse_prom_labeled(
            &page,
            "batsolv_class_latency_us",
            &[("class", "ion-like"), ("quantile", "0.99")],
        ),
        Some(ion.p99_us as f64),
        "page p99 must match the snapshot p99"
    );

    let _ = service.shutdown();
    let ledgers: Vec<_> = sink
        .snapshot()
        .into_iter()
        .filter_map(|ev| match ev.kind {
            EventKind::Ledger(l) => Some((ev.trace_id, l)),
            _ => None,
        })
        .collect();
    assert_eq!(ledgers.len(), 2, "exactly one ledger per terminal request");
    for (trace_id, ledger) in &ledgers {
        assert!(trace_id.is_some(), "ledgers are request-scoped");
        assert!(ledger.end_to_end_us > 0.0);
        assert!(
            ledger.solve_us > 0.0,
            "dispatched requests spend solve time"
        );
        assert!(
            ledger.balanced_within(1.0),
            "phase sum must match end-to-end: {ledger:?}"
        );
        assert_eq!(ledger.class, WorkloadClass::IonLike);
        assert_eq!(ledger.iterations, 1);
    }
    // Exactly one request carried a deadline, and it met it.
    let hits: Vec<_> = ledgers.iter().filter_map(|(_, l)| l.deadline).collect();
    assert_eq!(hits, vec![true]);
}

#[test]
fn expired_deadline_emits_an_undispatched_ledger() {
    let sink = Arc::new(MemorySink::new());
    let engine = Arc::new(EchoEngine::new());
    // Same shape as `expired_deadline_returns_structured_error`: the
    // doomed request lingers until the healthy one completes the batch.
    let config = RuntimeConfig::new(DeviceSpec::v100())
        .with_batch_target(2)
        .with_linger(Duration::from_secs(3600))
        .with_tracer(Tracer::new(sink.clone()));
    let service = SolveService::start_with_engine(tiny_pattern(), config, engine).unwrap();

    let doomed = service
        .submit(tiny_request().with_deadline(Duration::ZERO))
        .unwrap();
    std::thread::sleep(Duration::from_millis(10));
    let healthy = service.submit(tiny_request()).unwrap();
    assert!(doomed.wait().is_err());
    assert!(healthy.wait().is_ok());
    let _ = service.shutdown();

    let ledgers: Vec<_> = sink
        .snapshot()
        .into_iter()
        .filter_map(|ev| match ev.kind {
            EventKind::Ledger(l) => Some(l),
            _ => None,
        })
        .collect();
    assert_eq!(ledgers.len(), 2);
    let expired = ledgers
        .iter()
        .find(|l| l.outcome == "deadline_exceeded")
        .expect("the doomed request must still get a ledger");
    assert_eq!(expired.deadline, Some(false));
    assert_eq!(expired.solve_us, 0.0, "never dispatched: no solve phase");
    assert!(expired.queue_us > 0.0, "the wait happened in the queue");
    assert!(expired.balanced_within(1.0), "unbalanced: {expired:?}");
    assert!(ledgers.iter().any(|l| l.outcome != "deadline_exceeded"));
}
