//! Admission gate: structured validation at the service boundary.
//!
//! A fused batched launch has no way to excuse one poisoned member: a
//! single NaN in any system's values propagates through the shared
//! reductions of the batch dispatch machinery, and a zero Jacobi diagonal
//! turns the preconditioner into a NaN factory. The gate therefore
//! rejects bad requests *at submission*, before they can share a launch
//! with healthy work, with a structured [`RejectReason`] instead of a
//! generic error string.
//!
//! The diagonal positions are precomputed once from the service's
//! [`SparsityPattern`], so the per-request cost is one linear scan over
//! the payload the service is about to copy anyway.

use batsolv_formats::SparsityPattern;

/// Why the admission gate refused a request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RejectReason {
    /// A payload entry is NaN or infinite.
    NonFinite {
        /// Which field (`"values"`, `"rhs"`, `"guess"`).
        field: &'static str,
        /// Index of the first offending entry.
        index: usize,
    },
    /// A diagonal entry is missing from the pattern, exactly zero, or
    /// below the configured magnitude floor — the Jacobi preconditioner
    /// would divide by it.
    ZeroDiagonal {
        /// The offending row.
        row: usize,
        /// The diagonal value found (0.0 when the pattern has no
        /// diagonal entry in this row).
        value: f64,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::NonFinite { field, index } => {
                write!(f, "{field}[{index}] is not finite")
            }
            RejectReason::ZeroDiagonal { row, value } => {
                write!(
                    f,
                    "diagonal of row {row} is {value:e}, unusable as a Jacobi pivot"
                )
            }
        }
    }
}

/// The precomputed gate: diagonal positions plus the magnitude floor.
#[derive(Clone, Debug)]
pub struct AdmissionGate {
    /// `diag_idx[r]` is the CSR value index of `(r, r)`, if present.
    diag_idx: Vec<Option<usize>>,
    /// Diagonal magnitudes at or below this are rejected. The default of
    /// `0.0` rejects exactly-zero pivots while still admitting merely
    /// ill-conditioned systems (those are the escalation ladder's job).
    min_diag_abs: f64,
}

impl AdmissionGate {
    /// Build the gate for `pattern`.
    pub fn new(pattern: &SparsityPattern, min_diag_abs: f64) -> AdmissionGate {
        let diag_idx = (0..pattern.num_rows())
            .map(|r| pattern.find(r, r))
            .collect();
        AdmissionGate {
            diag_idx,
            min_diag_abs,
        }
    }

    /// Validate one request's payload (shapes are checked upstream).
    pub fn check(
        &self,
        values: &[f64],
        rhs: &[f64],
        guess: Option<&[f64]>,
    ) -> Result<(), RejectReason> {
        for (field, data) in [("values", values), ("rhs", rhs)]
            .into_iter()
            .chain(guess.map(|g| ("guess", g)))
        {
            if let Some(index) = data.iter().position(|v| !v.is_finite()) {
                return Err(RejectReason::NonFinite { field, index });
            }
        }
        for (row, idx) in self.diag_idx.iter().enumerate() {
            let value = idx.map_or(0.0, |k| values[k]);
            if value.abs() <= self.min_diag_abs {
                return Err(RejectReason::ZeroDiagonal { row, value });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn gate() -> (Arc<SparsityPattern>, AdmissionGate) {
        let p = Arc::new(SparsityPattern::dense(3));
        let g = AdmissionGate::new(&p, 0.0);
        (p, g)
    }

    fn identity_values(n: usize) -> Vec<f64> {
        let mut v = vec![0.1; n * n];
        for r in 0..n {
            v[r * n + r] = 1.0;
        }
        v
    }

    #[test]
    fn clean_request_passes() {
        let (_, g) = gate();
        assert_eq!(g.check(&identity_values(3), &[1.0; 3], None), Ok(()));
        assert_eq!(
            g.check(&identity_values(3), &[1.0; 3], Some(&[0.0; 3])),
            Ok(())
        );
    }

    #[test]
    fn non_finite_entries_are_located() {
        let (_, g) = gate();
        let mut v = identity_values(3);
        v[5] = f64::NAN;
        assert_eq!(
            g.check(&v, &[1.0; 3], None),
            Err(RejectReason::NonFinite {
                field: "values",
                index: 5
            })
        );
        let mut rhs = [1.0; 3];
        rhs[2] = f64::INFINITY;
        assert_eq!(
            g.check(&identity_values(3), &rhs, None),
            Err(RejectReason::NonFinite {
                field: "rhs",
                index: 2
            })
        );
        let guess = [0.0, f64::NEG_INFINITY, 0.0];
        assert_eq!(
            g.check(&identity_values(3), &[1.0; 3], Some(&guess)),
            Err(RejectReason::NonFinite {
                field: "guess",
                index: 1
            })
        );
    }

    #[test]
    fn zero_diagonal_is_rejected_near_zero_admitted() {
        let (_, g) = gate();
        let mut v = identity_values(3);
        v[4] = 0.0; // diagonal of row 1 in dense(3)
        assert_eq!(
            g.check(&v, &[1.0; 3], None),
            Err(RejectReason::ZeroDiagonal { row: 1, value: 0.0 })
        );
        // A tiny-but-nonzero pivot passes the default gate: conditioning
        // problems belong to the escalation ladder, not the gate.
        v[4] = 1e-300;
        assert_eq!(g.check(&v, &[1.0; 3], None), Ok(()));
    }

    #[test]
    fn magnitude_floor_is_configurable() {
        let p = SparsityPattern::dense(2);
        let g = AdmissionGate::new(&p, 1e-8);
        let mut v = vec![0.0, 0.5, 0.5, 0.0];
        v[0] = 1.0;
        v[3] = 1e-9;
        assert_eq!(
            g.check(&v, &[1.0; 2], None),
            Err(RejectReason::ZeroDiagonal {
                row: 1,
                value: 1e-9
            })
        );
    }

    #[test]
    fn missing_diagonal_entry_counts_as_zero() {
        // Pattern with no (1,1) entry at all.
        let p = SparsityPattern::from_coords(2, &[(0, 0), (0, 1), (1, 0)]).unwrap();
        let g = AdmissionGate::new(&p, 0.0);
        assert_eq!(
            g.check(&[1.0, 1.0, 1.0], &[1.0; 2], None),
            Err(RejectReason::ZeroDiagonal { row: 1, value: 0.0 })
        );
    }
}
