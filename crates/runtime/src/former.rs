//! The batch former: groups pending requests into dispatchable batches.
//!
//! Pure data structure over virtual time (u64 nanoseconds) so the flush
//! policy is testable without real clocks — the property tests drive it
//! with randomized interleavings of pushes and polls.
//!
//! Two flush triggers, exactly like a continuous-batching inference
//! scheduler:
//! 1. **Target reached** — `target` requests are pending; cut a full
//!    batch immediately.
//! 2. **Linger expired** — the oldest pending request has waited
//!    `linger_ns`; cut whatever is pending so latency stays bounded even
//!    under trickle load.

use std::collections::VecDeque;

/// Why a batch was cut.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// The target batch size was reached.
    TargetReached,
    /// The oldest pending request aged past the linger time.
    LingerExpired,
    /// The former was drained at shutdown.
    Drain,
}

/// FIFO accumulator with the two-trigger flush policy.
#[derive(Debug)]
pub struct BatchFormer<T> {
    target: usize,
    linger_ns: u64,
    pending: VecDeque<(T, u64)>,
}

impl<T> BatchFormer<T> {
    /// A former cutting batches of `target`, holding the oldest request
    /// at most `linger_ns` nanoseconds.
    pub fn new(target: usize, linger_ns: u64) -> BatchFormer<T> {
        assert!(target > 0, "batch target must be at least 1");
        BatchFormer {
            target,
            linger_ns,
            pending: VecDeque::new(),
        }
    }

    /// Number of pending (not yet flushed) requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Enqueue an item stamped with its arrival time.
    ///
    /// Arrival times must be non-decreasing across pushes (FIFO order is
    /// assumed, not sorted).
    pub fn push(&mut self, item: T, now_ns: u64) {
        self.pending.push_back((item, now_ns));
    }

    /// Virtual time at which the linger trigger for the current oldest
    /// request fires; `None` when nothing is pending. A full batch
    /// (`len() >= target`) is flushable *now*, so this also returns
    /// `Some(0)` in that case to mean "immediately".
    pub fn next_flush_at(&self) -> Option<u64> {
        if self.pending.len() >= self.target {
            return Some(0);
        }
        self.pending
            .front()
            .map(|(_, t)| t.saturating_add(self.linger_ns))
    }

    /// Age of the oldest pending request at `now_ns`, if any.
    pub fn oldest_age_ns(&self, now_ns: u64) -> Option<u64> {
        self.pending.front().map(|(_, t)| now_ns.saturating_sub(*t))
    }

    /// Cut at most one batch if a trigger has fired. Call in a loop to
    /// drain a backlog of more than `target` requests.
    ///
    /// Returns the flushed items in arrival order together with the
    /// trigger that fired, or `None` when no trigger has fired yet.
    pub fn poll(&mut self, now_ns: u64) -> Option<(Vec<T>, FlushReason)> {
        if self.pending.len() >= self.target {
            return Some((self.take(self.target), FlushReason::TargetReached));
        }
        match self.pending.front() {
            Some((_, t)) if now_ns.saturating_sub(*t) >= self.linger_ns => {
                let n = self.pending.len();
                Some((self.take(n), FlushReason::LingerExpired))
            }
            _ => None,
        }
    }

    /// Flush pending requests regardless of triggers (shutdown path).
    /// Batches stay bounded by the target — call in a loop until `None`.
    pub fn drain(&mut self) -> Option<(Vec<T>, FlushReason)> {
        if self.pending.is_empty() {
            return None;
        }
        let n = self.pending.len().min(self.target);
        Some((self.take(n), FlushReason::Drain))
    }

    fn take(&mut self, n: usize) -> Vec<T> {
        self.pending.drain(..n).map(|(item, _)| item).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_trigger_cuts_full_batch() {
        let mut f = BatchFormer::new(3, 1_000_000);
        f.push(1, 0);
        f.push(2, 10);
        assert!(f.poll(20).is_none());
        f.push(3, 20);
        let (batch, reason) = f.poll(20).unwrap();
        assert_eq!(batch, vec![1, 2, 3]);
        assert_eq!(reason, FlushReason::TargetReached);
        assert!(f.is_empty());
    }

    #[test]
    fn linger_trigger_cuts_partial_batch() {
        let mut f = BatchFormer::new(100, 1_000);
        f.push("a", 0);
        f.push("b", 500);
        assert!(f.poll(999).is_none());
        let (batch, reason) = f.poll(1_000).unwrap();
        assert_eq!(batch, vec!["a", "b"]);
        assert_eq!(reason, FlushReason::LingerExpired);
    }

    #[test]
    fn backlog_yields_multiple_target_batches() {
        let mut f = BatchFormer::new(2, u64::MAX);
        for i in 0..5 {
            f.push(i, 0);
        }
        let (b1, r1) = f.poll(0).unwrap();
        let (b2, r2) = f.poll(0).unwrap();
        assert_eq!((b1, r1), (vec![0, 1], FlushReason::TargetReached));
        assert_eq!((b2, r2), (vec![2, 3], FlushReason::TargetReached));
        assert!(f.poll(0).is_none(), "leftover below target must wait");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn next_flush_at_tracks_oldest() {
        let mut f = BatchFormer::new(10, 1_000);
        assert_eq!(f.next_flush_at(), None);
        f.push(1, 100);
        f.push(2, 400);
        assert_eq!(f.next_flush_at(), Some(1_100));
        assert_eq!(f.oldest_age_ns(600), Some(500));
        let _ = f.poll(1_100).unwrap();
        assert_eq!(f.next_flush_at(), None);
    }

    #[test]
    fn full_former_flushes_immediately() {
        let mut f = BatchFormer::new(2, u64::MAX);
        f.push(1, 0);
        f.push(2, 0);
        assert_eq!(f.next_flush_at(), Some(0));
    }

    #[test]
    fn drain_takes_everything() {
        let mut f = BatchFormer::new(100, u64::MAX);
        assert!(f.drain().is_none());
        f.push(1, 0);
        f.push(2, 0);
        let (batch, reason) = f.drain().unwrap();
        assert_eq!(batch, vec![1, 2]);
        assert_eq!(reason, FlushReason::Drain);
        assert!(f.is_empty());
    }

    #[test]
    fn drain_batches_stay_bounded_by_target() {
        let mut f = BatchFormer::new(2, u64::MAX);
        // Below target, so poll never fires; drain must chunk.
        for i in 0..5 {
            f.push(i, 0);
        }
        let _ = f.poll(0).map(|_| ()); // consume the two full batches
        let _ = f.poll(0).map(|_| ());
        let (batch, reason) = f.drain().unwrap();
        assert_eq!(batch, vec![4]);
        assert_eq!(reason, FlushReason::Drain);
        assert!(f.drain().is_none());
    }

    #[test]
    fn zero_linger_flushes_on_first_poll() {
        let mut f = BatchFormer::new(100, 0);
        f.push(7, 42);
        let (batch, reason) = f.poll(42).unwrap();
        assert_eq!(batch, vec![7]);
        assert_eq!(reason, FlushReason::LingerExpired);
    }
}
