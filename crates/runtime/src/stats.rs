//! Service counters and latency statistics.
//!
//! Hot-path counters are atomics; the batch-size histogram and the
//! queue-wait samples live behind a mutex touched once per *batch* (not
//! per request), so contention stays negligible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of power-of-two histogram buckets: bucket `k` counts batches
/// of size in `[2^k, 2^(k+1))`, so bucket 0 is size 1, bucket 10 covers
/// 1024..2047, and everything larger lands in the last bucket.
const HIST_BUCKETS: usize = 12;

#[derive(Debug, Default)]
struct Sampled {
    batch_size_hist: [u64; HIST_BUCKETS],
    /// Queue-wait samples in microseconds, one per dispatched request.
    wait_samples_us: Vec<u64>,
    iterations_total: u64,
    iterations_max: u64,
    sim_time_total_s: f64,
}

/// Shared counter registry written by the service, read via
/// [`StatsRegistry::snapshot`].
#[derive(Debug, Default)]
pub struct StatsRegistry {
    accepted: AtomicU64,
    rejected_full: AtomicU64,
    rejected_shape: AtomicU64,
    converged_iterative: AtomicU64,
    converged_fallback: AtomicU64,
    failed_not_converged: AtomicU64,
    failed_deadline: AtomicU64,
    batches_formed: AtomicU64,
    sampled: Mutex<Sampled>,
}

impl StatsRegistry {
    /// Fresh registry, all zeros.
    pub fn new() -> StatsRegistry {
        StatsRegistry::default()
    }

    pub(crate) fn on_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_rejected_full(&self) {
        self.rejected_full.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_rejected_shape(&self) {
        self.rejected_shape.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_deadline_exceeded(&self) {
        self.failed_deadline.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one dispatched batch: its size, per-request queue waits,
    /// per-request outcomes, and the simulated kernel time it cost.
    pub(crate) fn on_batch(
        &self,
        batch_size: usize,
        waits: &[Duration],
        iterations: &[u32],
        outcomes: BatchOutcomes,
        sim_time_s: f64,
    ) {
        self.batches_formed.fetch_add(1, Ordering::Relaxed);
        self.converged_iterative
            .fetch_add(outcomes.converged_iterative, Ordering::Relaxed);
        self.converged_fallback
            .fetch_add(outcomes.converged_fallback, Ordering::Relaxed);
        self.failed_not_converged
            .fetch_add(outcomes.failed, Ordering::Relaxed);
        let mut s = self.sampled.lock().unwrap();
        let bucket = usize::try_from(batch_size.max(1).ilog2())
            .unwrap()
            .min(HIST_BUCKETS - 1);
        s.batch_size_hist[bucket] += 1;
        s.wait_samples_us
            .extend(waits.iter().map(|w| w.as_micros() as u64));
        for &it in iterations {
            s.iterations_total += u64::from(it);
            s.iterations_max = s.iterations_max.max(u64::from(it));
        }
        s.sim_time_total_s += sim_time_s;
    }

    /// Consistent point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let s = self.sampled.lock().unwrap();
        let mut waits = s.wait_samples_us.clone();
        waits.sort_unstable();
        let pct = |p: f64| -> Duration {
            if waits.is_empty() {
                return Duration::ZERO;
            }
            let idx = ((waits.len() as f64 - 1.0) * p).round() as usize;
            Duration::from_micros(waits[idx])
        };
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_full.load(Ordering::Relaxed),
            rejected_shape: self.rejected_shape.load(Ordering::Relaxed),
            converged_iterative: self.converged_iterative.load(Ordering::Relaxed),
            converged_fallback: self.converged_fallback.load(Ordering::Relaxed),
            failed_not_converged: self.failed_not_converged.load(Ordering::Relaxed),
            failed_deadline: self.failed_deadline.load(Ordering::Relaxed),
            batches_formed: self.batches_formed.load(Ordering::Relaxed),
            batch_size_hist: s.batch_size_hist,
            queue_wait_p50: pct(0.50),
            queue_wait_p99: pct(0.99),
            solver_iterations_total: s.iterations_total,
            solver_iterations_max: s.iterations_max,
            sim_time_total_s: s.sim_time_total_s,
        }
    }
}

/// Per-batch outcome tallies handed to [`StatsRegistry::on_batch`].
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct BatchOutcomes {
    /// Requests converged by the iterative solver.
    pub converged_iterative: u64,
    /// Requests converged by the banded-LU fallback.
    pub converged_fallback: u64,
    /// Requests that failed to converge.
    pub failed: u64,
}

/// Point-in-time copy of the service counters.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests rejected with [`crate::SubmitError::QueueFull`].
    pub rejected_queue_full: u64,
    /// Requests rejected with [`crate::SubmitError::ShapeMismatch`].
    pub rejected_shape: u64,
    /// Requests converged by the iterative solver.
    pub converged_iterative: u64,
    /// Requests converged by the banded-LU fallback.
    pub converged_fallback: u64,
    /// Requests that failed to converge on every path.
    pub failed_not_converged: u64,
    /// Requests abandoned past their queue-wait deadline.
    pub failed_deadline: u64,
    /// Fused batches dispatched.
    pub batches_formed: u64,
    /// Power-of-two batch-size histogram; bucket `k` counts batches of
    /// size `[2^k, 2^(k+1))`.
    pub batch_size_hist: [u64; HIST_BUCKETS],
    /// Median queue wait across dispatched requests.
    pub queue_wait_p50: Duration,
    /// 99th-percentile queue wait across dispatched requests.
    pub queue_wait_p99: Duration,
    /// Total iterative-solver iterations spent.
    pub solver_iterations_total: u64,
    /// Worst single-system iteration count.
    pub solver_iterations_max: u64,
    /// Total simulated kernel time across dispatched batches, seconds.
    pub sim_time_total_s: f64,
}

impl StatsSnapshot {
    /// Requests that reached any terminal outcome.
    pub fn completed(&self) -> u64 {
        self.converged_iterative
            + self.converged_fallback
            + self.failed_not_converged
            + self.failed_deadline
    }

    /// Mean batch size across dispatched batches.
    pub fn mean_batch_size(&self) -> f64 {
        let dispatched =
            self.converged_iterative + self.converged_fallback + self.failed_not_converged;
        if self.batches_formed == 0 {
            0.0
        } else {
            dispatched as f64 / self.batches_formed as f64
        }
    }

    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("solve service stats\n");
        out.push_str(&format!(
            "  requests : {} accepted, {} rejected (queue full), {} rejected (shape)\n",
            self.accepted, self.rejected_queue_full, self.rejected_shape
        ));
        out.push_str(&format!(
            "  outcomes : {} converged (iterative), {} converged (LU fallback), {} not converged, {} deadline exceeded\n",
            self.converged_iterative,
            self.converged_fallback,
            self.failed_not_converged,
            self.failed_deadline
        ));
        out.push_str(&format!(
            "  batching : {} batches, mean size {:.1}\n",
            self.batches_formed,
            self.mean_batch_size()
        ));
        out.push_str("  batch-size histogram:\n");
        for (k, &count) in self.batch_size_hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let lo = 1u64 << k;
            let hi = (1u64 << (k + 1)) - 1;
            let label = if k == self.batch_size_hist.len() - 1 {
                format!("{lo}+")
            } else if lo == hi {
                format!("{lo}")
            } else {
                format!("{lo}-{hi}")
            };
            out.push_str(&format!("    [{label:>7}] {count}\n"));
        }
        out.push_str(&format!(
            "  queue wait: p50 {:.3} ms, p99 {:.3} ms\n",
            self.queue_wait_p50.as_secs_f64() * 1e3,
            self.queue_wait_p99.as_secs_f64() * 1e3
        ));
        out.push_str(&format!(
            "  solver   : {} iterations total, {} max per system, {:.3} ms simulated kernel time\n",
            self.solver_iterations_total,
            self.solver_iterations_max,
            self.sim_time_total_s * 1e3
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = StatsRegistry::new();
        r.on_accepted();
        r.on_accepted();
        r.on_rejected_full();
        r.on_deadline_exceeded();
        r.on_batch(
            2,
            &[Duration::from_micros(100), Duration::from_micros(300)],
            &[10, 20],
            BatchOutcomes {
                converged_iterative: 2,
                ..Default::default()
            },
            1.5e-4,
        );
        let s = r.snapshot();
        assert_eq!(s.accepted, 2);
        assert_eq!(s.rejected_queue_full, 1);
        assert_eq!(s.failed_deadline, 1);
        assert_eq!(s.batches_formed, 1);
        assert_eq!(s.converged_iterative, 2);
        assert_eq!(s.solver_iterations_total, 30);
        assert_eq!(s.solver_iterations_max, 20);
        assert_eq!(s.batch_size_hist[1], 1); // size 2 → bucket 1
        assert!((s.sim_time_total_s - 1.5e-4).abs() < 1e-12);
        assert_eq!(s.completed(), 3);
    }

    #[test]
    fn percentiles_from_samples() {
        let r = StatsRegistry::new();
        let waits: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let iters = vec![1u32; 100];
        r.on_batch(
            100,
            &waits,
            &iters,
            BatchOutcomes {
                converged_iterative: 100,
                ..Default::default()
            },
            0.0,
        );
        let s = r.snapshot();
        // Index round((100-1)*0.5) = 50 → the 51 µs sample.
        assert_eq!(s.queue_wait_p50, Duration::from_micros(51));
        assert_eq!(s.queue_wait_p99, Duration::from_micros(99));
        assert_eq!(s.batch_size_hist[6], 1); // size 100 → bucket 6 (64-127)
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = StatsRegistry::new().snapshot();
        assert_eq!(s.completed(), 0);
        assert_eq!(s.queue_wait_p50, Duration::ZERO);
        assert_eq!(s.mean_batch_size(), 0.0);
        assert!(s.render().contains("0 accepted"));
    }

    #[test]
    fn render_mentions_every_section() {
        let r = StatsRegistry::new();
        r.on_batch(
            1,
            &[Duration::from_micros(5)],
            &[3],
            BatchOutcomes {
                converged_fallback: 1,
                ..Default::default()
            },
            1e-6,
        );
        let text = r.snapshot().render();
        assert!(text.contains("batch-size histogram"));
        assert!(text.contains("LU fallback"));
        assert!(text.contains("queue wait"));
    }
}
