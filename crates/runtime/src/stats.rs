//! Service counters, latency statistics, and the failure taxonomy.
//!
//! Hot-path counters are atomics; the batch-size histogram, breakdown
//! taxonomy, and the queue-wait samples live behind a mutex touched once
//! per *batch* (not per request), so contention stays negligible.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::reservoir::Reservoir;

/// Number of power-of-two histogram buckets: bucket `k` counts batches
/// of size in `[2^k, 2^(k+1))`, so bucket 0 is size 1, bucket 10 covers
/// 1024..2047, and everything larger lands in the last bucket.
const HIST_BUCKETS: usize = 12;

/// Escalation-ladder depth buckets: requests whose dispatch attempted
/// 1, 2, or 3 rungs.
pub const RUNG_BUCKETS: usize = 3;

#[derive(Debug, Default)]
struct Sampled {
    batch_size_hist: [u64; HIST_BUCKETS],
    /// Queue-wait samples in microseconds, one per dispatched request.
    /// Bounded: a fixed-capacity reservoir (Algorithm R, seeded), so a
    /// long-running service never grows the registry without limit while
    /// percentiles stay exact under the cap and representative above it.
    wait_samples_us: Reservoir,
    iterations_total: u64,
    iterations_max: u64,
    sim_time_total_s: f64,
    /// Breakdown tag → occurrence count (terminal breakdowns only).
    breakdowns: BTreeMap<&'static str, u64>,
    /// `rung_hist[k]` counts requests whose dispatch attempted `k+1`
    /// ladder rungs.
    rung_hist: [u64; RUNG_BUCKETS],
    /// Name of the configured rung-1 solver variant ("" until set).
    solver: &'static str,
    /// Name of the configured ladder preconditioner ("" until set).
    precond: &'static str,
}

/// Shared counter registry written by the service, read via
/// [`StatsRegistry::snapshot`].
#[derive(Debug, Default)]
pub struct StatsRegistry {
    accepted: AtomicU64,
    rejected_full: AtomicU64,
    rejected_shape: AtomicU64,
    rejected_nonfinite: AtomicU64,
    rejected_zero_diag: AtomicU64,
    rejected_circuit_open: AtomicU64,
    converged_iterative: AtomicU64,
    converged_gmres: AtomicU64,
    converged_fallback: AtomicU64,
    failed_not_converged: AtomicU64,
    failed_deadline: AtomicU64,
    failed_device: AtomicU64,
    failed_panic: AtomicU64,
    batches_formed: AtomicU64,
    breaker_trips: AtomicU64,
    watchdog_stalls: AtomicU64,
    worker_respawns: AtomicU64,
    sim_syncs_total: AtomicU64,
    sim_reductions_total: AtomicU64,
    sampled: Mutex<Sampled>,
}

impl StatsRegistry {
    /// Fresh registry, all zeros.
    pub fn new() -> StatsRegistry {
        StatsRegistry::default()
    }

    pub(crate) fn on_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_rejected_full(&self) {
        self.rejected_full.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_rejected_shape(&self) {
        self.rejected_shape.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_rejected_nonfinite(&self) {
        self.rejected_nonfinite.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_rejected_zero_diag(&self) {
        self.rejected_zero_diag.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_rejected_circuit_open(&self) {
        self.rejected_circuit_open.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_deadline_exceeded(&self) {
        self.failed_deadline.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_device_failure(&self) {
        self.failed_device.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_worker_panic_outcome(&self) {
        self.failed_panic.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_watchdog_stall(&self) {
        self.watchdog_stalls.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_worker_respawn(&self) {
        self.worker_respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the configured rung-1 solver variant (once, at startup).
    pub(crate) fn set_solver(&self, name: &'static str) {
        self.sampled.lock().unwrap().solver = name;
    }

    /// Record the configured ladder preconditioner (once, at startup).
    pub(crate) fn set_precond(&self, name: &'static str) {
        self.sampled.lock().unwrap().precond = name;
    }

    /// Accumulate one dispatch's simulated synchronization counters.
    pub(crate) fn on_sync_counts(&self, syncs: u64, reductions: u64) {
        self.sim_syncs_total.fetch_add(syncs, Ordering::Relaxed);
        self.sim_reductions_total
            .fetch_add(reductions, Ordering::Relaxed);
    }

    /// Record one dispatched batch: its size, per-request queue waits,
    /// per-request outcomes, and the simulated kernel time it cost.
    pub(crate) fn on_batch(
        &self,
        batch_size: usize,
        waits: &[Duration],
        iterations: &[u32],
        outcomes: BatchOutcomes,
        sim_time_s: f64,
    ) {
        self.batches_formed.fetch_add(1, Ordering::Relaxed);
        self.converged_iterative
            .fetch_add(outcomes.converged_iterative, Ordering::Relaxed);
        self.converged_gmres
            .fetch_add(outcomes.converged_gmres, Ordering::Relaxed);
        self.converged_fallback
            .fetch_add(outcomes.converged_fallback, Ordering::Relaxed);
        self.failed_not_converged
            .fetch_add(outcomes.failed, Ordering::Relaxed);
        let mut s = self.sampled.lock().unwrap();
        let bucket = usize::try_from(batch_size.max(1).ilog2())
            .unwrap()
            .min(HIST_BUCKETS - 1);
        s.batch_size_hist[bucket] += 1;
        for w in waits {
            s.wait_samples_us.push(w.as_micros() as u64);
        }
        for &it in iterations {
            s.iterations_total += u64::from(it);
            s.iterations_max = s.iterations_max.max(u64::from(it));
        }
        s.sim_time_total_s += sim_time_s;
        for &tag in &outcomes.breakdowns {
            *s.breakdowns.entry(tag).or_insert(0) += 1;
        }
        for &rungs in &outcomes.rungs_attempted {
            s.rung_hist[rungs.clamp(1, RUNG_BUCKETS) - 1] += 1;
        }
    }

    /// Consistent point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let s = self.sampled.lock().unwrap();
        let mut waits = s.wait_samples_us.samples().to_vec();
        waits.sort_unstable();
        let pct = |p: f64| Duration::from_micros(crate::reservoir::percentile_us(&waits, p));
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_full.load(Ordering::Relaxed),
            rejected_shape: self.rejected_shape.load(Ordering::Relaxed),
            rejected_nonfinite: self.rejected_nonfinite.load(Ordering::Relaxed),
            rejected_zero_diag: self.rejected_zero_diag.load(Ordering::Relaxed),
            rejected_circuit_open: self.rejected_circuit_open.load(Ordering::Relaxed),
            converged_iterative: self.converged_iterative.load(Ordering::Relaxed),
            converged_gmres: self.converged_gmres.load(Ordering::Relaxed),
            converged_fallback: self.converged_fallback.load(Ordering::Relaxed),
            failed_not_converged: self.failed_not_converged.load(Ordering::Relaxed),
            failed_deadline: self.failed_deadline.load(Ordering::Relaxed),
            failed_device: self.failed_device.load(Ordering::Relaxed),
            failed_panic: self.failed_panic.load(Ordering::Relaxed),
            batches_formed: self.batches_formed.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            watchdog_stalls: self.watchdog_stalls.load(Ordering::Relaxed),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            batch_size_hist: s.batch_size_hist,
            rung_hist: s.rung_hist,
            breakdowns: s.breakdowns.clone(),
            queue_wait_p50: pct(0.50),
            queue_wait_p99: pct(0.99),
            solver_iterations_total: s.iterations_total,
            solver_iterations_max: s.iterations_max,
            sim_time_total_s: s.sim_time_total_s,
            sim_syncs_total: self.sim_syncs_total.load(Ordering::Relaxed),
            sim_reductions_total: self.sim_reductions_total.load(Ordering::Relaxed),
            solver: s.solver,
            precond: s.precond,
        }
    }
}

/// Per-batch outcome tallies handed to [`StatsRegistry::on_batch`].
#[derive(Clone, Debug, Default)]
pub(crate) struct BatchOutcomes {
    /// Requests converged by BiCGSTAB (rung 1).
    pub converged_iterative: u64,
    /// Requests converged by GMRES (rung 2).
    pub converged_gmres: u64,
    /// Requests converged by the banded-LU fallback (rung 3).
    pub converged_fallback: u64,
    /// Requests that failed to converge.
    pub failed: u64,
    /// Terminal breakdown tags across the batch (one per request that
    /// ended with a breakdown).
    pub breakdowns: Vec<&'static str>,
    /// Ladder rungs attempted per dispatched request.
    pub rungs_attempted: Vec<usize>,
}

/// Point-in-time copy of the service counters.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests rejected with [`crate::SubmitError::QueueFull`].
    pub rejected_queue_full: u64,
    /// Requests rejected with [`crate::SubmitError::ShapeMismatch`].
    pub rejected_shape: u64,
    /// Requests rejected by the admission gate for non-finite payloads.
    pub rejected_nonfinite: u64,
    /// Requests rejected by the admission gate for unusable diagonals.
    pub rejected_zero_diag: u64,
    /// Requests shed with [`crate::SubmitError::CircuitOpen`].
    pub rejected_circuit_open: u64,
    /// Requests converged by BiCGSTAB (rung 1).
    pub converged_iterative: u64,
    /// Requests converged by GMRES (rung 2).
    pub converged_gmres: u64,
    /// Requests converged by the banded-LU fallback (rung 3).
    pub converged_fallback: u64,
    /// Requests that failed to converge on every rung.
    pub failed_not_converged: u64,
    /// Requests abandoned past their queue-wait deadline.
    pub failed_deadline: u64,
    /// Requests failed by a device/launch failure.
    pub failed_device: u64,
    /// Requests failed by a worker panic attributed to them.
    pub failed_panic: u64,
    /// Fused batches dispatched.
    pub batches_formed: u64,
    /// Circuit-breaker trips (closed/half-open → open transitions).
    pub breaker_trips: u64,
    /// Dispatches flagged by the watchdog as exceeding the time budget.
    pub watchdog_stalls: u64,
    /// Times the supervisor respawned a panicked worker.
    pub worker_respawns: u64,
    /// Power-of-two batch-size histogram; bucket `k` counts batches of
    /// size `[2^k, 2^(k+1))`.
    pub batch_size_hist: [u64; HIST_BUCKETS],
    /// `rung_hist[k]` counts requests whose dispatch attempted `k+1`
    /// escalation rungs.
    pub rung_hist: [u64; RUNG_BUCKETS],
    /// Terminal breakdown tag → occurrence count.
    pub breakdowns: BTreeMap<&'static str, u64>,
    /// Median queue wait across dispatched requests.
    pub queue_wait_p50: Duration,
    /// 99th-percentile queue wait across dispatched requests.
    pub queue_wait_p99: Duration,
    /// Total iterative-solver iterations spent.
    pub solver_iterations_total: u64,
    /// Worst single-system iteration count.
    pub solver_iterations_max: u64,
    /// Total simulated kernel time across dispatched batches, seconds.
    pub sim_time_total_s: f64,
    /// Total simulated synchronization points across dispatched batches.
    pub sim_syncs_total: u64,
    /// Total simulated reduction trees (exposed + hidden) across
    /// dispatched batches.
    pub sim_reductions_total: u64,
    /// Configured rung-1 solver variant ("" until the service sets it).
    pub solver: &'static str,
    /// Configured ladder preconditioner ("" until the service sets it).
    pub precond: &'static str,
}

impl StatsSnapshot {
    /// Requests that reached any terminal outcome.
    pub fn completed(&self) -> u64 {
        self.converged_iterative
            + self.converged_gmres
            + self.converged_fallback
            + self.failed_not_converged
            + self.failed_deadline
            + self.failed_device
            + self.failed_panic
    }

    /// Requests rejected before entering the queue, all causes.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_queue_full
            + self.rejected_shape
            + self.rejected_nonfinite
            + self.rejected_zero_diag
            + self.rejected_circuit_open
    }

    /// Mean batch size across dispatched batches.
    pub fn mean_batch_size(&self) -> f64 {
        let dispatched = self.converged_iterative
            + self.converged_gmres
            + self.converged_fallback
            + self.failed_not_converged;
        if self.batches_formed == 0 {
            0.0
        } else {
            dispatched as f64 / self.batches_formed as f64
        }
    }

    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("solve service stats\n");
        out.push_str(&format!(
            "  requests : {} accepted, {} rejected (queue full), {} rejected (shape)\n",
            self.accepted, self.rejected_queue_full, self.rejected_shape
        ));
        out.push_str(&format!(
            "  admission: {} rejected (non-finite), {} rejected (zero diagonal), \
             {} shed (circuit open)\n",
            self.rejected_nonfinite, self.rejected_zero_diag, self.rejected_circuit_open
        ));
        out.push_str(&format!(
            "  outcomes : {} converged (bicgstab), {} converged (gmres), \
             {} converged (LU fallback), {} not converged, {} deadline exceeded\n",
            self.converged_iterative,
            self.converged_gmres,
            self.converged_fallback,
            self.failed_not_converged,
            self.failed_deadline
        ));
        out.push_str(&format!(
            "  faults   : {} device failures, {} worker panics, {} worker respawns, \
             {} breaker trips, {} watchdog stalls\n",
            self.failed_device,
            self.failed_panic,
            self.worker_respawns,
            self.breaker_trips,
            self.watchdog_stalls
        ));
        if !self.breakdowns.is_empty() {
            out.push_str("  breakdowns by kind:\n");
            for (tag, count) in &self.breakdowns {
                out.push_str(&format!("    [{tag:>14}] {count}\n"));
            }
        }
        out.push_str(&format!(
            "  batching : {} batches, mean size {:.1}\n",
            self.batches_formed,
            self.mean_batch_size()
        ));
        out.push_str("  batch-size histogram:\n");
        for (k, &count) in self.batch_size_hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let lo = 1u64 << k;
            let hi = (1u64 << (k + 1)) - 1;
            let label = if k == self.batch_size_hist.len() - 1 {
                format!("{lo}+")
            } else if lo == hi {
                format!("{lo}")
            } else {
                format!("{lo}-{hi}")
            };
            out.push_str(&format!("    [{label:>7}] {count}\n"));
        }
        if self.rung_hist.iter().any(|&c| c > 0) {
            out.push_str("  escalation rungs attempted:\n");
            for (k, &count) in self.rung_hist.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                out.push_str(&format!("    [{} rung(s)] {count}\n", k + 1));
            }
        }
        out.push_str(&format!(
            "  queue wait: p50 {:.3} ms, p99 {:.3} ms\n",
            self.queue_wait_p50.as_secs_f64() * 1e3,
            self.queue_wait_p99.as_secs_f64() * 1e3
        ));
        out.push_str(&format!(
            "  solver   : {} iterations total, {} max per system, {:.3} ms simulated kernel time\n",
            self.solver_iterations_total,
            self.solver_iterations_max,
            self.sim_time_total_s * 1e3
        ));
        if !self.solver.is_empty() {
            out.push_str(&format!(
                "  variant  : {} ({} syncs, {} reductions simulated)\n",
                self.solver, self.sim_syncs_total, self.sim_reductions_total
            ));
        }
        if !self.precond.is_empty() {
            out.push_str(&format!("  precond  : {}\n", self.precond));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = StatsRegistry::new();
        r.on_accepted();
        r.on_accepted();
        r.on_rejected_full();
        r.on_deadline_exceeded();
        r.on_batch(
            2,
            &[Duration::from_micros(100), Duration::from_micros(300)],
            &[10, 20],
            BatchOutcomes {
                converged_iterative: 2,
                rungs_attempted: vec![1, 1],
                ..Default::default()
            },
            1.5e-4,
        );
        let s = r.snapshot();
        assert_eq!(s.accepted, 2);
        assert_eq!(s.rejected_queue_full, 1);
        assert_eq!(s.failed_deadline, 1);
        assert_eq!(s.batches_formed, 1);
        assert_eq!(s.converged_iterative, 2);
        assert_eq!(s.solver_iterations_total, 30);
        assert_eq!(s.solver_iterations_max, 20);
        assert_eq!(s.batch_size_hist[1], 1); // size 2 → bucket 1
        assert_eq!(s.rung_hist, [2, 0, 0]);
        assert!((s.sim_time_total_s - 1.5e-4).abs() < 1e-12);
        assert_eq!(s.completed(), 3);
    }

    #[test]
    fn percentiles_from_samples() {
        let r = StatsRegistry::new();
        let waits: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let iters = vec![1u32; 100];
        r.on_batch(
            100,
            &waits,
            &iters,
            BatchOutcomes {
                converged_iterative: 100,
                ..Default::default()
            },
            0.0,
        );
        let s = r.snapshot();
        // Index round((100-1)*0.5) = 50 → the 51 µs sample.
        assert_eq!(s.queue_wait_p50, Duration::from_micros(51));
        assert_eq!(s.queue_wait_p99, Duration::from_micros(99));
        assert_eq!(s.batch_size_hist[6], 1); // size 100 → bucket 6 (64-127)
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = StatsRegistry::new().snapshot();
        assert_eq!(s.completed(), 0);
        assert_eq!(s.rejected_total(), 0);
        assert_eq!(s.queue_wait_p50, Duration::ZERO);
        assert_eq!(s.mean_batch_size(), 0.0);
        assert!(s.render().contains("0 accepted"));
    }

    #[test]
    fn render_mentions_every_section() {
        let r = StatsRegistry::new();
        r.on_batch(
            1,
            &[Duration::from_micros(5)],
            &[3],
            BatchOutcomes {
                converged_fallback: 1,
                breakdowns: vec!["divergence"],
                rungs_attempted: vec![3],
                ..Default::default()
            },
            1e-6,
        );
        let text = r.snapshot().render();
        assert!(text.contains("batch-size histogram"));
        assert!(text.contains("LU fallback"));
        assert!(text.contains("queue wait"));
        assert!(text.contains("divergence"));
        assert!(text.contains("escalation rungs"));
        assert!(text.contains("breaker trips"));
    }

    #[test]
    fn failure_taxonomy_counters() {
        let r = StatsRegistry::new();
        r.on_rejected_nonfinite();
        r.on_rejected_nonfinite();
        r.on_rejected_zero_diag();
        r.on_rejected_circuit_open();
        r.on_device_failure();
        r.on_worker_panic_outcome();
        r.on_breaker_trip();
        r.on_watchdog_stall();
        r.on_worker_respawn();
        let s = r.snapshot();
        assert_eq!(s.rejected_nonfinite, 2);
        assert_eq!(s.rejected_zero_diag, 1);
        assert_eq!(s.rejected_circuit_open, 1);
        assert_eq!(s.failed_device, 1);
        assert_eq!(s.failed_panic, 1);
        assert_eq!(s.breaker_trips, 1);
        assert_eq!(s.watchdog_stalls, 1);
        assert_eq!(s.worker_respawns, 1);
        assert_eq!(s.rejected_total(), 4);
        assert_eq!(s.completed(), 2, "device + panic count as terminal");
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let r = StatsRegistry::new();
        r.on_batch(
            1,
            &[Duration::from_micros(777)],
            &[1],
            BatchOutcomes {
                converged_iterative: 1,
                rungs_attempted: vec![1],
                ..Default::default()
            },
            0.0,
        );
        let s = r.snapshot();
        assert_eq!(s.queue_wait_p50, Duration::from_micros(777));
        assert_eq!(s.queue_wait_p99, Duration::from_micros(777));
        assert_eq!(s.batch_size_hist[0], 1); // size 1 → bucket 0
    }

    #[test]
    fn histogram_buckets_at_power_of_two_boundaries() {
        // Sizes 2^k land in bucket k; 2^k − 1 lands in bucket k − 1.
        for (size, bucket) in [
            (1, 0),
            (2, 1),
            (3, 1),
            (4, 2),
            (7, 2),
            (8, 3),
            (1 << 11, 11),
        ] {
            let r = StatsRegistry::new();
            r.on_batch(size, &[], &[], BatchOutcomes::default(), 0.0);
            let s = r.snapshot();
            assert_eq!(
                s.batch_size_hist[bucket], 1,
                "size {size} should land in bucket {bucket}"
            );
            assert_eq!(s.batch_size_hist.iter().sum::<u64>(), 1);
        }
        // Oversized batches clamp into the last bucket.
        let r = StatsRegistry::new();
        r.on_batch(1 << 13, &[], &[], BatchOutcomes::default(), 0.0);
        assert_eq!(r.snapshot().batch_size_hist[HIST_BUCKETS - 1], 1);
    }

    #[test]
    fn percentiles_at_power_of_two_sample_counts() {
        // n = 2^k and n = 2^k − 1 exercise both parities of the
        // round((n−1)·p) index formula.
        for n in [1u64, 2, 4, 8, 16, 3, 7, 15] {
            let r = StatsRegistry::new();
            let waits: Vec<Duration> = (1..=n).map(Duration::from_micros).collect();
            let iters = vec![1u32; n as usize];
            r.on_batch(n as usize, &waits, &iters, BatchOutcomes::default(), 0.0);
            let s = r.snapshot();
            let idx = ((n - 1) as f64 * 0.5).round() as u64;
            assert_eq!(
                s.queue_wait_p50,
                Duration::from_micros(idx + 1),
                "p50 of 1..={n}"
            );
            assert_eq!(s.queue_wait_p99, Duration::from_micros(n), "p99 of 1..={n}");
        }
    }

    #[test]
    fn wait_samples_stay_bounded_and_percentiles_stable() {
        use crate::reservoir::DEFAULT_RESERVOIR_CAPACITY;
        let r = StatsRegistry::new();
        // Feed far more samples than the reservoir holds, all 500 µs.
        let waits = vec![Duration::from_micros(500); 4096];
        let iters = vec![1u32; 4096];
        for _ in 0..8 {
            r.on_batch(4096, &waits, &iters, BatchOutcomes::default(), 0.0);
        }
        let s = r.snapshot();
        // 32k offered, at most DEFAULT_RESERVOIR_CAPACITY retained — and
        // a uniform subsample of a constant stream has exact percentiles.
        assert_eq!(s.queue_wait_p50, Duration::from_micros(500));
        assert_eq!(s.queue_wait_p99, Duration::from_micros(500));
        let retained = {
            let sampled = r.sampled.lock().unwrap();
            sampled.wait_samples_us.len()
        };
        assert!(retained <= DEFAULT_RESERVOIR_CAPACITY);
        assert_eq!(retained, DEFAULT_RESERVOIR_CAPACITY);
    }

    #[test]
    fn reservoir_percentiles_track_a_skewed_stream() {
        // 90% fast (100 µs), 10% slow (10 ms): after heavy subsampling
        // p50 must stay fast and p99 must stay slow.
        let r = StatsRegistry::new();
        let mut waits = vec![Duration::from_micros(100); 900];
        waits.extend(vec![Duration::from_micros(10_000); 100]);
        let iters = vec![1u32; 1000];
        for _ in 0..40 {
            r.on_batch(1000, &waits, &iters, BatchOutcomes::default(), 0.0);
        }
        let s = r.snapshot();
        assert_eq!(s.queue_wait_p50, Duration::from_micros(100));
        assert_eq!(s.queue_wait_p99, Duration::from_micros(10_000));
    }

    #[test]
    fn breakdowns_aggregate_by_tag() {
        let r = StatsRegistry::new();
        for tags in [vec!["rho", "singular"], vec!["rho"]] {
            r.on_batch(
                2,
                &[],
                &[],
                BatchOutcomes {
                    failed: tags.len() as u64,
                    breakdowns: tags,
                    rungs_attempted: vec![3, 3],
                    ..Default::default()
                },
                0.0,
            );
        }
        let s = r.snapshot();
        assert_eq!(s.breakdowns.get("rho"), Some(&2));
        assert_eq!(s.breakdowns.get("singular"), Some(&1));
        assert_eq!(s.rung_hist, [0, 0, 4]);
    }
}
