//! Prometheus text-exposition rendering of a [`StatsSnapshot`].
//!
//! Pure function of the snapshot: every exposed series is derived from
//! snapshot fields only, so a scrape and a [`StatsSnapshot::render`] call
//! taken at the same instant can never disagree. `parse_prom_value` (from
//! the trace crate) reads the page back, which the integration tests and
//! the `ext-trace` experiment use to assert exporter/snapshot agreement.

use batsolv_trace::PromText;

use crate::stats::StatsSnapshot;

/// Render the snapshot as a Prometheus text-format metrics page.
pub fn prometheus_text(s: &StatsSnapshot) -> String {
    let mut p = PromText::new();
    p.counter(
        "batsolv_requests_accepted_total",
        "Requests admitted to the queue.",
        s.accepted,
    );

    p.family(
        "batsolv_requests_rejected_total",
        "counter",
        "Requests rejected before entering the queue, by reason.",
    );
    for (reason, count) in [
        ("queue_full", s.rejected_queue_full),
        ("shape", s.rejected_shape),
        ("nonfinite", s.rejected_nonfinite),
        ("zero_diag", s.rejected_zero_diag),
        ("circuit_open", s.rejected_circuit_open),
    ] {
        p.sample(
            "batsolv_requests_rejected_total",
            &[("reason", reason)],
            count as f64,
        );
    }

    p.family(
        "batsolv_outcomes_total",
        "counter",
        "Terminal request outcomes, by kind.",
    );
    for (outcome, count) in [
        ("converged_bicgstab", s.converged_iterative),
        ("converged_gmres", s.converged_gmres),
        ("converged_banded_lu", s.converged_fallback),
        ("not_converged", s.failed_not_converged),
        ("deadline_exceeded", s.failed_deadline),
        ("device_failure", s.failed_device),
        ("worker_panic", s.failed_panic),
    ] {
        p.sample(
            "batsolv_outcomes_total",
            &[("outcome", outcome)],
            count as f64,
        );
    }
    p.counter(
        "batsolv_requests_completed_total",
        "Requests that reached any terminal outcome.",
        s.completed(),
    );

    p.counter(
        "batsolv_batches_formed_total",
        "Fused batches dispatched.",
        s.batches_formed,
    );
    p.gauge(
        "batsolv_batch_size_mean",
        "Mean batch size across dispatched batches.",
        s.mean_batch_size(),
    );
    p.family(
        "batsolv_batch_size_bucket",
        "histogram",
        "Power-of-two batch-size histogram (bucket k counts sizes in [2^k, 2^(k+1))).",
    );
    for (k, &count) in s.batch_size_hist.iter().enumerate() {
        let le = format!("{}", (1u64 << (k + 1)) - 1);
        p.sample("batsolv_batch_size_bucket", &[("le", &le)], count as f64);
    }

    p.family(
        "batsolv_rungs_attempted_total",
        "counter",
        "Requests by number of escalation rungs their dispatch attempted.",
    );
    for (k, &count) in s.rung_hist.iter().enumerate() {
        let rungs = format!("{}", k + 1);
        p.sample(
            "batsolv_rungs_attempted_total",
            &[("rungs", &rungs)],
            count as f64,
        );
    }

    if !s.breakdowns.is_empty() {
        p.family(
            "batsolv_breakdowns_total",
            "counter",
            "Terminal solver breakdowns, by tag.",
        );
        for (tag, &count) in &s.breakdowns {
            p.sample("batsolv_breakdowns_total", &[("kind", tag)], count as f64);
        }
    }

    p.counter(
        "batsolv_breaker_trips_total",
        "Circuit-breaker trips (closed/half-open to open transitions).",
        s.breaker_trips,
    );
    p.counter(
        "batsolv_watchdog_stalls_total",
        "Dispatches flagged by the watchdog as exceeding the time budget.",
        s.watchdog_stalls,
    );
    p.counter(
        "batsolv_worker_respawns_total",
        "Times the supervisor respawned a panicked worker.",
        s.worker_respawns,
    );

    p.gauge(
        "batsolv_queue_wait_p50_us",
        "Median queue wait across dispatched requests, microseconds.",
        s.queue_wait_p50.as_secs_f64() * 1e6,
    );
    p.gauge(
        "batsolv_queue_wait_p99_us",
        "99th-percentile queue wait across dispatched requests, microseconds.",
        s.queue_wait_p99.as_secs_f64() * 1e6,
    );
    p.counter(
        "batsolv_solver_iterations_total",
        "Total iterative-solver iterations spent.",
        s.solver_iterations_total,
    );
    p.gauge(
        "batsolv_solver_iterations_max",
        "Worst single-system iteration count.",
        s.solver_iterations_max as f64,
    );
    p.gauge(
        "batsolv_sim_kernel_time_seconds",
        "Total simulated kernel time across dispatched batches.",
        s.sim_time_total_s,
    );
    p.counter(
        "batsolv_sim_syncs_total",
        "Total simulated synchronization points across dispatched batches.",
        s.sim_syncs_total,
    );
    p.counter(
        "batsolv_sim_reductions_total",
        "Total simulated reduction trees (exposed + hidden) across dispatched batches.",
        s.sim_reductions_total,
    );
    if !s.solver.is_empty() {
        p.family(
            "batsolv_solver_info",
            "gauge",
            "Configured rung-1 solver variant (constant 1, variant in the label).",
        );
        p.sample("batsolv_solver_info", &[("solver", s.solver)], 1.0);
    }
    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::StatsRegistry;
    use batsolv_trace::parse_prom_value;
    use std::time::Duration;

    #[test]
    fn page_agrees_with_the_snapshot() {
        let r = StatsRegistry::new();
        r.on_accepted();
        r.on_accepted();
        r.on_rejected_full();
        r.on_breaker_trip();
        r.on_batch(
            2,
            &[Duration::from_micros(40), Duration::from_micros(60)],
            &[7, 9],
            crate::stats::BatchOutcomes {
                converged_iterative: 1,
                converged_fallback: 1,
                breakdowns: vec!["rho"],
                rungs_attempted: vec![1, 3],
                ..Default::default()
            },
            2.5e-4,
        );
        let s = r.snapshot();
        let page = prometheus_text(&s);
        assert_eq!(
            parse_prom_value(&page, "batsolv_requests_accepted_total"),
            Some(s.accepted as f64)
        );
        assert_eq!(
            parse_prom_value(&page, "batsolv_requests_rejected_total"),
            Some(s.rejected_queue_full as f64),
            "first rejected sample is the queue_full label"
        );
        assert_eq!(
            parse_prom_value(&page, "batsolv_requests_completed_total"),
            Some(s.completed() as f64)
        );
        assert_eq!(
            parse_prom_value(&page, "batsolv_batches_formed_total"),
            Some(1.0)
        );
        assert_eq!(
            parse_prom_value(&page, "batsolv_solver_iterations_total"),
            Some(16.0)
        );
        assert_eq!(
            parse_prom_value(&page, "batsolv_queue_wait_p50_us"),
            Some(s.queue_wait_p50.as_secs_f64() * 1e6)
        );
        assert!(
            (parse_prom_value(&page, "batsolv_sim_kernel_time_seconds").unwrap() - 2.5e-4).abs()
                < 1e-12
        );
        assert!(page.contains("batsolv_breakdowns_total{kind=\"rho\"} 1\n"));
        assert!(page.contains("batsolv_rungs_attempted_total{rungs=\"3\"} 1\n"));
        assert_eq!(
            parse_prom_value(&page, "batsolv_breaker_trips_total"),
            Some(1.0)
        );
    }

    #[test]
    fn empty_snapshot_renders_a_complete_page() {
        let page = prometheus_text(&StatsRegistry::new().snapshot());
        for name in [
            "batsolv_requests_accepted_total",
            "batsolv_requests_rejected_total",
            "batsolv_outcomes_total",
            "batsolv_batches_formed_total",
            "batsolv_batch_size_bucket",
            "batsolv_queue_wait_p50_us",
            "batsolv_sim_kernel_time_seconds",
        ] {
            assert!(
                page.contains(&format!("# TYPE {name} ")),
                "{name} family missing"
            );
        }
        // No samples: breakdowns are omitted, everything else is zero.
        assert!(!page.contains("batsolv_breakdowns_total"));
        assert_eq!(
            parse_prom_value(&page, "batsolv_requests_accepted_total"),
            Some(0.0)
        );
    }
}
