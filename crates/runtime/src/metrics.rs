//! Prometheus text-exposition rendering of a [`StatsSnapshot`].
//!
//! Built on the trace crate's typed [`MetricsRegistry`] so conformance
//! (matching `# HELP`/`# TYPE` per family, valid name charset, no
//! duplicate series) holds by construction instead of by hand. Every
//! exposed series is a pure function of the snapshot (and the optional
//! class snapshot), so a scrape and a [`StatsSnapshot::render`] call
//! taken at the same instant can never disagree. `parse_prom_value` /
//! `parse_prom_labeled` read the page back, which the integration tests
//! and the `ext-trace` experiment use to assert exporter/snapshot
//! agreement.

use batsolv_trace::{AutotuneChoice, MetricsRegistry, SLO_WINDOWS};

use crate::classes::ClassesSnapshot;
use crate::stats::StatsSnapshot;

/// Render the snapshot as a Prometheus text-format metrics page.
pub fn prometheus_text(s: &StatsSnapshot) -> String {
    prometheus_text_full(s, None, &[])
}

/// Render the snapshot plus the per-class latency/SLO series.
pub fn prometheus_text_with_classes(
    s: &StatsSnapshot,
    classes: Option<&ClassesSnapshot>,
) -> String {
    prometheus_text_full(s, classes, &[])
}

/// Render the snapshot, the per-class latency/SLO series, and the
/// autotuner's current per-class (solver, preconditioner) choices.
pub fn prometheus_text_full(
    s: &StatsSnapshot,
    classes: Option<&ClassesSnapshot>,
    autotune: &[AutotuneChoice],
) -> String {
    let mut m = MetricsRegistry::new();
    m.counter(
        "batsolv_requests_accepted_total",
        "Requests admitted to the queue.",
        &[],
        s.accepted as f64,
    );

    for (reason, count) in [
        ("queue_full", s.rejected_queue_full),
        ("shape", s.rejected_shape),
        ("nonfinite", s.rejected_nonfinite),
        ("zero_diag", s.rejected_zero_diag),
        ("circuit_open", s.rejected_circuit_open),
    ] {
        m.counter(
            "batsolv_requests_rejected_total",
            "Requests rejected before entering the queue, by reason.",
            &[("reason", reason)],
            count as f64,
        );
    }

    for (outcome, count) in [
        ("converged_bicgstab", s.converged_iterative),
        ("converged_gmres", s.converged_gmres),
        ("converged_banded_lu", s.converged_fallback),
        ("not_converged", s.failed_not_converged),
        ("deadline_exceeded", s.failed_deadline),
        ("device_failure", s.failed_device),
        ("worker_panic", s.failed_panic),
    ] {
        m.counter(
            "batsolv_outcomes_total",
            "Terminal request outcomes, by kind.",
            &[("outcome", outcome)],
            count as f64,
        );
    }
    m.counter(
        "batsolv_requests_completed_total",
        "Requests that reached any terminal outcome.",
        &[],
        s.completed() as f64,
    );

    m.counter(
        "batsolv_batches_formed_total",
        "Fused batches dispatched.",
        &[],
        s.batches_formed as f64,
    )
    .gauge(
        "batsolv_batch_size_mean",
        "Mean batch size across dispatched batches.",
        &[],
        s.mean_batch_size(),
    );

    // Proper cumulative histogram over the power-of-two batch-size
    // buckets. The sum of sizes across batches equals the number of
    // dispatched requests, which the snapshot tracks exactly.
    let dispatched =
        s.converged_iterative + s.converged_gmres + s.converged_fallback + s.failed_not_converged;
    let les: Vec<String> = (0..s.batch_size_hist.len())
        .map(|k| format!("{}", (1u64 << (k + 1)) - 1))
        .collect();
    let mut cum = 0.0;
    let cumulative: Vec<(&str, f64)> = s
        .batch_size_hist
        .iter()
        .zip(&les)
        .map(|(&count, le)| {
            cum += count as f64;
            (le.as_str(), cum)
        })
        .collect();
    m.histogram_from_buckets(
        "batsolv_batch_size",
        "Batch sizes of dispatched fused launches (power-of-two buckets).",
        &[],
        &cumulative,
        s.batches_formed as f64,
        dispatched as f64,
    );

    for (k, &count) in s.rung_hist.iter().enumerate() {
        let rungs = format!("{}", k + 1);
        m.counter(
            "batsolv_rungs_attempted_total",
            "Requests by number of escalation rungs their dispatch attempted.",
            &[("rungs", rungs.as_str())],
            count as f64,
        );
    }

    if !s.breakdowns.is_empty() {
        for (tag, &count) in &s.breakdowns {
            m.counter(
                "batsolv_breakdowns_total",
                "Terminal solver breakdowns, by tag.",
                &[("kind", tag)],
                count as f64,
            );
        }
    }

    m.counter(
        "batsolv_breaker_trips_total",
        "Circuit-breaker trips (closed/half-open to open transitions).",
        &[],
        s.breaker_trips as f64,
    )
    .counter(
        "batsolv_watchdog_stalls_total",
        "Dispatches flagged by the watchdog as exceeding the time budget.",
        &[],
        s.watchdog_stalls as f64,
    )
    .counter(
        "batsolv_worker_respawns_total",
        "Times the supervisor respawned a panicked worker.",
        &[],
        s.worker_respawns as f64,
    );

    m.gauge(
        "batsolv_queue_wait_p50_us",
        "Median queue wait across dispatched requests, microseconds.",
        &[],
        s.queue_wait_p50.as_secs_f64() * 1e6,
    )
    .gauge(
        "batsolv_queue_wait_p99_us",
        "99th-percentile queue wait across dispatched requests, microseconds.",
        &[],
        s.queue_wait_p99.as_secs_f64() * 1e6,
    )
    .counter(
        "batsolv_solver_iterations_total",
        "Total iterative-solver iterations spent.",
        &[],
        s.solver_iterations_total as f64,
    )
    .gauge(
        "batsolv_solver_iterations_max",
        "Worst single-system iteration count.",
        &[],
        s.solver_iterations_max as f64,
    )
    .gauge(
        "batsolv_sim_kernel_time_seconds",
        "Total simulated kernel time across dispatched batches.",
        &[],
        s.sim_time_total_s,
    )
    .counter(
        "batsolv_sim_syncs_total",
        "Total simulated synchronization points across dispatched batches.",
        &[],
        s.sim_syncs_total as f64,
    )
    .counter(
        "batsolv_sim_reductions_total",
        "Total simulated reduction trees (exposed + hidden) across dispatched batches.",
        &[],
        s.sim_reductions_total as f64,
    );
    if !s.solver.is_empty() {
        m.gauge(
            "batsolv_solver_info",
            "Configured rung-1 solver variant (constant 1, variant in the label).",
            &[("solver", s.solver)],
            1.0,
        );
    }
    if !s.precond.is_empty() {
        m.gauge(
            "batsolv_precond_info",
            "Configured ladder preconditioner (constant 1, name in the label).",
            &[("precond", s.precond)],
            1.0,
        );
    }

    for a in autotune {
        let class = a.class.name();
        m.gauge(
            "batsolv_autotune_info",
            "Autotuner per-class solver/preconditioner choice (constant 1, \
             choice in the labels).",
            &[
                ("class", class),
                ("solver", a.solver),
                ("precond", a.precond),
            ],
            1.0,
        )
        .counter(
            "batsolv_autotune_observations_total",
            "Terminal convergence records the autotuner observed per class.",
            &[("class", class)],
            a.observations as f64,
        )
        .gauge(
            "batsolv_autotune_revision",
            "Times the autotuner changed a class's choice (0 = first choice).",
            &[("class", class)],
            a.revision as f64,
        );
    }

    if let Some(classes) = classes {
        render_class_series(&mut m, "batsolv", classes);
    }
    m.render()
}

/// Append the per-class request/latency/SLO series under `prefix`.
/// Shared with the fleet exporter (prefix `batsolv_fleet`) so both
/// surfaces expose the identical per-class schema.
pub fn render_class_series(m: &mut MetricsRegistry, prefix: &str, classes: &ClassesSnapshot) {
    let requests = format!("{prefix}_class_requests_total");
    let latency = format!("{prefix}_class_latency_us");
    let hist = format!("{prefix}_class_latency_histogram_us");
    let hit_ratio = format!("{prefix}_class_deadline_hit_ratio");
    let burn = format!("{prefix}_slo_burn_rate");
    for c in &classes.classes {
        let name = c.class.name();
        m.counter(
            &requests,
            "Terminal requests per workload class.",
            &[("class", name)],
            c.count as f64,
        );
        for (q, v) in [("0.5", c.p50_us), ("0.99", c.p99_us)] {
            m.gauge(
                &latency,
                "End-to-end latency quantiles per workload class, microseconds.",
                &[("class", name), ("quantile", q)],
                v as f64,
            );
        }
        m.gauge(
            &hit_ratio,
            "Fraction of deadline-carrying requests that met their deadline.",
            &[("class", name)],
            c.deadline_hit_ratio(),
        );
        for (&(window, _), &rate) in SLO_WINDOWS.iter().zip(&c.burn_rates) {
            m.gauge(
                &burn,
                "Deadline-SLO burn rate (miss rate over error budget) per window.",
                &[("class", name), ("window", window)],
                rate,
            );
        }
        if !c.samples_us.is_empty() {
            m.log_histogram_us(
                &hist,
                "End-to-end latency per workload class (power-of-two buckets, \
                 microseconds); the tail bucket carries the slowest request's \
                 trace id as an exemplar.",
                &[("class", name)],
                &c.samples_us,
                c.slowest,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::ClassTracker;
    use crate::stats::StatsRegistry;
    use batsolv_trace::{
        check_prom_conformance, parse_prom_labeled, parse_prom_value, WorkloadClass,
    };
    use std::time::Duration;

    #[test]
    fn page_agrees_with_the_snapshot() {
        let r = StatsRegistry::new();
        r.on_accepted();
        r.on_accepted();
        r.on_rejected_full();
        r.on_breaker_trip();
        r.on_batch(
            2,
            &[Duration::from_micros(40), Duration::from_micros(60)],
            &[7, 9],
            crate::stats::BatchOutcomes {
                converged_iterative: 1,
                converged_fallback: 1,
                breakdowns: vec!["rho"],
                rungs_attempted: vec![1, 3],
                ..Default::default()
            },
            2.5e-4,
        );
        let s = r.snapshot();
        let page = prometheus_text(&s);
        assert_eq!(
            parse_prom_value(&page, "batsolv_requests_accepted_total"),
            Some(s.accepted as f64)
        );
        assert_eq!(
            parse_prom_value(&page, "batsolv_requests_rejected_total"),
            Some(s.rejected_queue_full as f64),
            "first rejected sample is the queue_full label"
        );
        assert_eq!(
            parse_prom_value(&page, "batsolv_requests_completed_total"),
            Some(s.completed() as f64)
        );
        assert_eq!(
            parse_prom_value(&page, "batsolv_batches_formed_total"),
            Some(1.0)
        );
        assert_eq!(
            parse_prom_value(&page, "batsolv_solver_iterations_total"),
            Some(16.0)
        );
        assert_eq!(
            parse_prom_value(&page, "batsolv_queue_wait_p50_us"),
            Some(s.queue_wait_p50.as_secs_f64() * 1e6)
        );
        assert!(
            (parse_prom_value(&page, "batsolv_sim_kernel_time_seconds").unwrap() - 2.5e-4).abs()
                < 1e-12
        );
        assert!(page.contains("batsolv_breakdowns_total{kind=\"rho\"} 1\n"));
        assert!(page.contains("batsolv_rungs_attempted_total{rungs=\"3\"} 1\n"));
        assert_eq!(
            parse_prom_value(&page, "batsolv_breaker_trips_total"),
            Some(1.0)
        );
        // Batch-size histogram: size 2 lands in the le="3" bucket and the
        // buckets are cumulative.
        assert_eq!(
            parse_prom_labeled(&page, "batsolv_batch_size_bucket", &[("le", "1")]),
            Some(0.0)
        );
        assert_eq!(
            parse_prom_labeled(&page, "batsolv_batch_size_bucket", &[("le", "3")]),
            Some(1.0)
        );
        assert_eq!(
            parse_prom_labeled(&page, "batsolv_batch_size_bucket", &[("le", "+Inf")]),
            Some(1.0)
        );
        assert_eq!(parse_prom_value(&page, "batsolv_batch_size_sum"), Some(2.0));
    }

    #[test]
    fn empty_snapshot_renders_a_complete_page() {
        let page = prometheus_text(&StatsRegistry::new().snapshot());
        for name in [
            "batsolv_requests_accepted_total",
            "batsolv_requests_rejected_total",
            "batsolv_outcomes_total",
            "batsolv_batches_formed_total",
            "batsolv_batch_size",
            "batsolv_queue_wait_p50_us",
            "batsolv_sim_kernel_time_seconds",
        ] {
            assert!(
                page.contains(&format!("# TYPE {name} ")),
                "{name} family missing"
            );
        }
        // No samples: breakdowns are omitted, everything else is zero.
        assert!(!page.contains("batsolv_breakdowns_total"));
        assert_eq!(
            parse_prom_value(&page, "batsolv_requests_accepted_total"),
            Some(0.0)
        );
    }

    #[test]
    fn page_is_exposition_conformant_with_and_without_classes() {
        let r = StatsRegistry::new();
        r.on_accepted();
        r.on_batch(
            1,
            &[Duration::from_micros(10)],
            &[5],
            crate::stats::BatchOutcomes {
                converged_iterative: 1,
                rungs_attempted: vec![1],
                ..Default::default()
            },
            1e-6,
        );
        let s = r.snapshot();
        check_prom_conformance(&prometheus_text(&s)).expect("classless page conforms");

        let t = ClassTracker::new();
        t.observe(WorkloadClass::IonLike, 120, Some(3), Some(true));
        t.observe(WorkloadClass::ElectronLike, 9_000, Some(4), Some(false));
        let page = prometheus_text_with_classes(&s, Some(&t.snapshot()));
        check_prom_conformance(&page).expect("class page conforms");
        assert_eq!(
            parse_prom_labeled(
                &page,
                "batsolv_class_requests_total",
                &[("class", "ion-like")]
            ),
            Some(1.0)
        );
        assert_eq!(
            parse_prom_labeled(
                &page,
                "batsolv_class_latency_us",
                &[("class", "ion-like"), ("quantile", "0.99")]
            ),
            Some(120.0)
        );
        assert_eq!(
            parse_prom_labeled(
                &page,
                "batsolv_class_deadline_hit_ratio",
                &[("class", "electron-like")]
            ),
            Some(0.0)
        );
        assert!(
            parse_prom_labeled(
                &page,
                "batsolv_slo_burn_rate",
                &[("class", "electron-like"), ("window", "1m")]
            )
            .unwrap()
                > 1.0
        );
        // The slow request's trace id rides the tail bucket as an exemplar.
        assert!(page.contains("trace_id=\"4\""), "{page}");
    }

    #[test]
    fn precond_and_autotune_series_render_and_conform() {
        let r = StatsRegistry::new();
        r.set_precond("ilu0");
        let choices = vec![
            AutotuneChoice {
                class: WorkloadClass::IonLike,
                solver: "bicgstab-fused",
                precond: "jacobi",
                observations: 17,
                revision: 0,
            },
            AutotuneChoice {
                class: WorkloadClass::ElectronLike,
                solver: "bicgstab",
                precond: "ilu0",
                observations: 40,
                revision: 2,
            },
        ];
        let page = prometheus_text_full(&r.snapshot(), None, &choices);
        check_prom_conformance(&page).expect("autotune page conforms");
        assert_eq!(
            parse_prom_labeled(&page, "batsolv_precond_info", &[("precond", "ilu0")]),
            Some(1.0)
        );
        for c in &choices {
            assert_eq!(
                parse_prom_labeled(
                    &page,
                    "batsolv_autotune_info",
                    &[
                        ("class", c.class.name()),
                        ("solver", c.solver),
                        ("precond", c.precond),
                    ],
                ),
                Some(1.0)
            );
            assert_eq!(
                parse_prom_labeled(
                    &page,
                    "batsolv_autotune_observations_total",
                    &[("class", c.class.name())],
                ),
                Some(c.observations as f64)
            );
            assert_eq!(
                parse_prom_labeled(
                    &page,
                    "batsolv_autotune_revision",
                    &[("class", c.class.name())],
                ),
                Some(c.revision as f64)
            );
        }
        // No autotuner, no autotune families.
        let bare = prometheus_text(&r.snapshot());
        assert!(!bare.contains("batsolv_autotune_"));
    }
}
