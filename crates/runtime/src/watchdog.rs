//! Dispatch watchdog: detects batches stuck past a time budget.
//!
//! A fused launch cannot be cancelled from outside (the kernel owns its
//! thread blocks until it returns), so the watchdog does the next best
//! thing: it *observes*. The worker stamps a lock-free [`WatchState`]
//! around every dispatch; a separate watchdog thread polls it and flags
//! each dispatch that exceeds the budget exactly once. The flag feeds the
//! stats taxonomy (`watchdog_stalls`), turning a silent multi-second hang
//! into a visible, countable event.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Lock-free dispatch progress record shared between the worker and the
/// watchdog thread.
#[derive(Debug)]
pub struct WatchState {
    epoch: Instant,
    /// Nanoseconds since `epoch` when the in-flight dispatch started;
    /// 0 = no dispatch in flight (the epoch offset starts at 1).
    started_ns: AtomicU64,
    /// Monotonic dispatch counter, incremented at each begin.
    seq: AtomicU64,
    /// Highest `seq` the watchdog has already flagged as stalled.
    flagged: AtomicU64,
}

impl WatchState {
    /// Fresh state, no dispatch in flight.
    pub fn new() -> WatchState {
        WatchState {
            epoch: Instant::now(),
            started_ns: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            flagged: AtomicU64::new(0),
        }
    }

    fn now_ns(&self) -> u64 {
        // +1 so a dispatch starting exactly at the epoch is not confused
        // with the idle sentinel 0.
        u64::try_from(self.epoch.elapsed().as_nanos())
            .unwrap_or(u64::MAX - 1)
            .saturating_add(1)
    }

    /// Worker: a dispatch is starting now.
    pub fn begin(&self) {
        self.seq.fetch_add(1, Ordering::Relaxed);
        self.started_ns.store(self.now_ns(), Ordering::Release);
    }

    /// Worker: the in-flight dispatch finished.
    pub fn end(&self) {
        self.started_ns.store(0, Ordering::Release);
    }

    /// Watchdog: if the in-flight dispatch has been running longer than
    /// `budget` and has not been flagged yet, flag it and return `true`.
    pub fn check_stalled(&self, budget: Duration) -> bool {
        let started = self.started_ns.load(Ordering::Acquire);
        if started == 0 {
            return false;
        }
        let elapsed_ns = self.now_ns().saturating_sub(started);
        if Duration::from_nanos(elapsed_ns) <= budget {
            return false;
        }
        // Flag each dispatch at most once, even across many poll rounds.
        // Only the watchdog thread writes `flagged`, so load+store is
        // race-free.
        let seq = self.seq.load(Ordering::Relaxed);
        if self.flagged.load(Ordering::Relaxed) >= seq {
            return false;
        }
        self.flagged.store(seq, Ordering::Relaxed);
        true
    }
}

impl Default for WatchState {
    fn default() -> Self {
        WatchState::new()
    }
}

/// Spawn the watchdog thread. It polls at `budget / 4` (at least 1 ms)
/// and calls `on_stall` once per dispatch that exceeds `budget`. The
/// thread exits promptly once `stop` is set.
pub fn spawn_watchdog<F>(
    state: Arc<WatchState>,
    budget: Duration,
    stop: Arc<AtomicBool>,
    on_stall: F,
) -> thread::JoinHandle<()>
where
    F: Fn() + Send + 'static,
{
    let poll = (budget / 4).max(Duration::from_millis(1));
    // Sleep in short slices so a long budget does not delay shutdown:
    // `stop` is rechecked between slices, bounding join latency.
    let slice = poll.min(Duration::from_millis(20));
    thread::Builder::new()
        .name("batsolv-runtime-watchdog".into())
        .spawn(move || {
            let mut last_poll = Instant::now();
            while !stop.load(Ordering::Acquire) {
                if last_poll.elapsed() >= poll {
                    last_poll = Instant::now();
                    if state.check_stalled(budget) {
                        on_stall();
                    }
                }
                thread::sleep(slice);
            }
        })
        .expect("spawn watchdog thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn idle_state_never_stalls() {
        let s = WatchState::new();
        assert!(!s.check_stalled(Duration::ZERO));
        s.begin();
        s.end();
        assert!(!s.check_stalled(Duration::ZERO));
    }

    #[test]
    fn long_dispatch_is_flagged_exactly_once() {
        let s = WatchState::new();
        s.begin();
        thread::sleep(Duration::from_millis(5));
        assert!(s.check_stalled(Duration::from_millis(1)));
        assert!(
            !s.check_stalled(Duration::from_millis(1)),
            "the same dispatch must not be flagged twice"
        );
        s.end();
        // The next dispatch is flaggable again.
        s.begin();
        thread::sleep(Duration::from_millis(5));
        assert!(s.check_stalled(Duration::from_millis(1)));
        s.end();
    }

    #[test]
    fn fast_dispatch_is_not_flagged() {
        let s = WatchState::new();
        s.begin();
        assert!(!s.check_stalled(Duration::from_secs(60)));
        s.end();
    }

    #[test]
    fn watchdog_thread_counts_a_stall_and_stops() {
        let state = Arc::new(WatchState::new());
        let stop = Arc::new(AtomicBool::new(false));
        let stalls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&stalls);
        let handle = spawn_watchdog(
            Arc::clone(&state),
            Duration::from_millis(2),
            Arc::clone(&stop),
            move || {
                c.fetch_add(1, Ordering::SeqCst);
            },
        );
        state.begin();
        thread::sleep(Duration::from_millis(20));
        state.end();
        stop.store(true, Ordering::Release);
        handle.join().unwrap();
        assert_eq!(stalls.load(Ordering::SeqCst), 1);
    }
}
