//! Deadline budgets: pure arithmetic over the time a request is allowed
//! to spend between admission and its terminal outcome.
//!
//! A [`DeadlineBudget`] is minted at admission from the request's
//! deadline and then *debited* at every hop — queue wait at dispatch,
//! retry backoff, re-queue wait after a steal or re-route. The budget is
//! a plain value (no clocks inside): every debit is an explicit,
//! testable operation, so "the budget expired while the chunk was
//! queued" is an arithmetic fact rather than a wall-clock race.

use std::time::Duration;

/// Remaining time a request may spend in the service.
///
/// `consumed` only grows (saturating at `total`); `remaining` is the
/// difference. A budget with `total == 0` is exhausted from birth —
/// admission rejects it as infeasible before it can queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadlineBudget {
    total: Duration,
    consumed: Duration,
}

impl DeadlineBudget {
    /// A fresh budget holding the request's whole deadline.
    pub fn new(total: Duration) -> DeadlineBudget {
        DeadlineBudget {
            total,
            consumed: Duration::ZERO,
        }
    }

    /// The deadline the budget was minted from.
    pub fn total(&self) -> Duration {
        self.total
    }

    /// Time debited so far (capped at `total`).
    pub fn consumed(&self) -> Duration {
        self.consumed
    }

    /// Time left before the deadline.
    pub fn remaining(&self) -> Duration {
        self.total.saturating_sub(self.consumed)
    }

    /// True once every nanosecond of the budget is spent.
    pub fn is_exhausted(&self) -> bool {
        self.consumed >= self.total
    }

    /// Debit one hop's cost; returns the remaining budget. Saturates at
    /// `total` — a debit can exhaust the budget but never makes
    /// `consumed` overflow past it.
    pub fn debit(&mut self, cost: Duration) -> Duration {
        self.consumed = self.consumed.saturating_add(cost).min(self.total);
        self.remaining()
    }

    /// True when the remaining budget covers a predicted cost — the
    /// admission and shedding feasibility check.
    pub fn covers(&self, predicted: Duration) -> bool {
        !self.is_exhausted() && predicted <= self.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_budget_is_exhausted_from_birth() {
        let b = DeadlineBudget::new(Duration::ZERO);
        assert!(b.is_exhausted());
        assert_eq!(b.remaining(), Duration::ZERO);
        assert!(!b.covers(Duration::from_nanos(1)));
        assert!(!b.covers(Duration::ZERO), "exhausted covers nothing");
    }

    #[test]
    fn debit_accumulates_and_saturates() {
        let mut b = DeadlineBudget::new(Duration::from_millis(10));
        assert_eq!(b.debit(Duration::from_millis(4)), Duration::from_millis(6));
        assert_eq!(b.consumed(), Duration::from_millis(4));
        assert!(!b.is_exhausted());
        // A debit past the total exhausts but never overflows consumed.
        assert_eq!(b.debit(Duration::from_secs(100)), Duration::ZERO);
        assert!(b.is_exhausted());
        assert_eq!(b.consumed(), b.total());
        // Further debits are no-ops on an exhausted budget.
        assert_eq!(b.debit(Duration::from_millis(1)), Duration::ZERO);
        assert_eq!(b.consumed(), Duration::from_millis(10));
    }

    #[test]
    fn exact_exhaustion_boundary() {
        let mut b = DeadlineBudget::new(Duration::from_millis(5));
        b.debit(Duration::from_millis(5));
        assert!(b.is_exhausted(), "consumed == total is exhausted");
        assert_eq!(b.remaining(), Duration::ZERO);
    }

    #[test]
    fn covers_compares_against_remaining_not_total() {
        let mut b = DeadlineBudget::new(Duration::from_millis(10));
        assert!(b.covers(Duration::from_millis(10)));
        b.debit(Duration::from_millis(7));
        assert!(b.covers(Duration::from_millis(3)));
        assert!(!b.covers(Duration::from_millis(4)));
    }

    #[test]
    fn budget_is_a_value_and_survives_requeue_copies() {
        // A steal or retry re-queue copies the budget with its consumed
        // time intact — debits are never lost across hops.
        let mut b = DeadlineBudget::new(Duration::from_millis(20));
        b.debit(Duration::from_millis(8));
        let requeued = b; // Copy
        assert_eq!(requeued.consumed(), Duration::from_millis(8));
        assert_eq!(requeued.remaining(), Duration::from_millis(12));
    }
}
