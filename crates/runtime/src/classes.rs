//! Per-workload-class latency tracking and SLO accounting.
//!
//! Every terminal request is labeled with a Table III workload class
//! (ion-like / electron-like / anomalous, see
//! [`batsolv_trace::WorkloadClass`]) and its end-to-end latency lands in
//! that class's bounded reservoir. The tracker additionally keeps
//! deadline hit/miss tallies, sliding SLO burn-rate windows, and the
//! slowest request's trace id per class — the exemplar the Prometheus
//! histograms attach to their tail bucket.
//!
//! The tracker lives in this crate (not `batsolv-trace`) because it
//! reuses the deterministic [`Reservoir`]; the fleet shares it so the
//! single-service and sharded surfaces report identical quantities.

use std::sync::Mutex;
use std::time::Instant;

use batsolv_trace::{
    PhaseLedger, SloWindow, TraceId, WorkloadClass, CLASS_COUNT, DEFAULT_SLO_TARGET, SLO_WINDOWS,
};

use crate::reservoir::{percentile_us, Reservoir};

/// Per-class reservoir capacity: smaller than the global queue-wait
/// reservoir since there are [`CLASS_COUNT`] of them.
const CLASS_RESERVOIR_CAPACITY: usize = 4096;

#[derive(Debug)]
struct ClassCell {
    count: u64,
    latency_us: Reservoir,
    deadline_total: u64,
    deadline_hits: u64,
    /// Slowest observation so far: `(trace id, latency µs)`.
    slowest: Option<(TraceId, u64)>,
    /// One sliding window per [`SLO_WINDOWS`] entry.
    slo: Vec<SloWindow>,
}

impl ClassCell {
    fn new() -> ClassCell {
        ClassCell {
            count: 0,
            latency_us: Reservoir::new(CLASS_RESERVOIR_CAPACITY),
            deadline_total: 0,
            deadline_hits: 0,
            slowest: None,
            slo: SLO_WINDOWS
                .iter()
                .map(|&(_, horizon)| SloWindow::new(horizon))
                .collect(),
        }
    }
}

/// Thread-safe per-class accumulator. One lock per terminal request —
/// far off the per-iteration hot path.
#[derive(Debug)]
pub struct ClassTracker {
    epoch: Instant,
    cells: Mutex<[ClassCell; CLASS_COUNT]>,
}

impl Default for ClassTracker {
    fn default() -> ClassTracker {
        ClassTracker::new()
    }
}

impl ClassTracker {
    /// Fresh tracker; SLO windows are measured from now.
    pub fn new() -> ClassTracker {
        ClassTracker {
            epoch: Instant::now(),
            cells: Mutex::new([ClassCell::new(), ClassCell::new(), ClassCell::new()]),
        }
    }

    fn now_s(&self) -> u64 {
        self.epoch.elapsed().as_secs()
    }

    /// Record one terminal request. `deadline_hit` is `None` when the
    /// request carried no deadline (it then counts toward latency but
    /// not toward the SLO windows).
    pub fn observe(
        &self,
        class: WorkloadClass,
        latency_us: u64,
        trace_id: Option<TraceId>,
        deadline_hit: Option<bool>,
    ) {
        let now_s = self.now_s();
        let mut cells = self.cells.lock().unwrap();
        let cell = &mut cells[class.index()];
        cell.count += 1;
        cell.latency_us.push(latency_us);
        if let Some(id) = trace_id {
            if cell.slowest.map(|(_, us)| latency_us > us).unwrap_or(true) {
                cell.slowest = Some((id, latency_us));
            }
        }
        if let Some(hit) = deadline_hit {
            cell.deadline_total += 1;
            cell.deadline_hits += u64::from(hit);
            for w in &mut cell.slo {
                w.record(now_s, hit);
            }
        }
    }

    /// Record one terminal request straight from its phase ledger.
    pub fn observe_ledger(&self, trace_id: Option<TraceId>, ledger: &PhaseLedger) {
        self.observe(
            ledger.class,
            ledger.end_to_end_us.max(0.0) as u64,
            trace_id,
            ledger.deadline,
        );
    }

    /// Consistent point-in-time copy of every class.
    pub fn snapshot(&self) -> ClassesSnapshot {
        let now_s = self.now_s();
        let cells = self.cells.lock().unwrap();
        let classes: Vec<ClassStats> = WorkloadClass::ALL
            .iter()
            .map(|&class| {
                let cell = &cells[class.index()];
                let mut samples: Vec<u64> = cell.latency_us.samples().to_vec();
                samples.sort_unstable();
                let burn_rates: Vec<f64> = cell
                    .slo
                    .iter()
                    .map(|w| w.burn_rate(now_s, DEFAULT_SLO_TARGET))
                    .collect();
                ClassStats {
                    class,
                    count: cell.count,
                    p50_us: percentile_us(&samples, 0.50),
                    p99_us: percentile_us(&samples, 0.99),
                    deadline_total: cell.deadline_total,
                    deadline_hits: cell.deadline_hits,
                    burn_rates,
                    slowest: cell.slowest,
                    samples_us: samples,
                }
            })
            .collect();
        ClassesSnapshot {
            classes: classes.try_into().expect("CLASS_COUNT stats"),
        }
    }
}

/// One class's point-in-time statistics.
#[derive(Clone, Debug)]
pub struct ClassStats {
    /// The workload class these statistics describe.
    pub class: WorkloadClass,
    /// Terminal requests observed (all time, not reservoir-bounded).
    pub count: u64,
    /// Median end-to-end latency over the retained samples, µs.
    pub p50_us: u64,
    /// 99th-percentile end-to-end latency over the retained samples, µs.
    pub p99_us: u64,
    /// Requests that carried a deadline.
    pub deadline_total: u64,
    /// Deadline-carrying requests that met it.
    pub deadline_hits: u64,
    /// SLO burn rate per [`SLO_WINDOWS`] entry, in order.
    pub burn_rates: Vec<f64>,
    /// Slowest observation: `(trace id, latency µs)` — the exemplar.
    pub slowest: Option<(TraceId, u64)>,
    /// Retained latency samples, sorted ascending, µs.
    pub samples_us: Vec<u64>,
}

impl ClassStats {
    /// Fraction of deadline-carrying requests that met their deadline
    /// (1.0 when none carried one — no evidence of violation).
    pub fn deadline_hit_ratio(&self) -> f64 {
        if self.deadline_total == 0 {
            1.0
        } else {
            self.deadline_hits as f64 / self.deadline_total as f64
        }
    }
}

/// Point-in-time statistics for every workload class.
#[derive(Clone, Debug)]
pub struct ClassesSnapshot {
    /// One entry per class, in [`WorkloadClass::ALL`] order.
    pub classes: [ClassStats; CLASS_COUNT],
}

impl ClassesSnapshot {
    /// Statistics of one class.
    pub fn get(&self, class: WorkloadClass) -> &ClassStats {
        &self.classes[class.index()]
    }

    /// Terminal requests across every class.
    pub fn total(&self) -> u64 {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// Human-readable lines appended to the stats render.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.total() == 0 {
            return out;
        }
        out.push_str("  workload classes:\n");
        for c in &self.classes {
            if c.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "    [{:>13}] {} requests, p50 {:.3} ms, p99 {:.3} ms, \
                 deadline hit {:.1}%",
                c.class.name(),
                c.count,
                c.p50_us as f64 / 1e3,
                c.p99_us as f64 / 1e3,
                c.deadline_hit_ratio() * 100.0
            ));
            for (&(label, _), burn) in SLO_WINDOWS.iter().zip(&c.burn_rates) {
                out.push_str(&format!(", burn[{label}] {burn:.2}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_their_class() {
        let t = ClassTracker::new();
        t.observe(WorkloadClass::IonLike, 100, Some(1), Some(true));
        t.observe(WorkloadClass::IonLike, 200, Some(2), Some(true));
        t.observe(WorkloadClass::ElectronLike, 5_000, Some(3), Some(false));
        let snap = t.snapshot();
        let ion = snap.get(WorkloadClass::IonLike);
        assert_eq!(ion.count, 2);
        assert_eq!(ion.p50_us, 200, "two samples: p50 is the larger");
        assert_eq!(ion.p99_us, 200);
        assert_eq!(ion.deadline_total, 2);
        assert_eq!(ion.deadline_hits, 2);
        assert_eq!(ion.deadline_hit_ratio(), 1.0);
        let ele = snap.get(WorkloadClass::ElectronLike);
        assert_eq!(ele.count, 1);
        assert_eq!(ele.deadline_hit_ratio(), 0.0);
        assert!(ele.burn_rates[0] > 1.0, "every request missed: burning");
        assert_eq!(snap.get(WorkloadClass::Anomalous).count, 0);
        assert_eq!(snap.total(), 3);
    }

    #[test]
    fn slowest_observation_becomes_the_exemplar() {
        let t = ClassTracker::new();
        t.observe(WorkloadClass::Anomalous, 50, Some(7), None);
        t.observe(WorkloadClass::Anomalous, 9_000, Some(8), None);
        t.observe(WorkloadClass::Anomalous, 100, Some(9), None);
        let snap = t.snapshot();
        assert_eq!(snap.get(WorkloadClass::Anomalous).slowest, Some((8, 9_000)));
        // No deadlines → hit ratio defaults to 1, windows stay quiet.
        assert_eq!(snap.get(WorkloadClass::Anomalous).deadline_total, 0);
        assert_eq!(snap.get(WorkloadClass::Anomalous).deadline_hit_ratio(), 1.0);
        assert_eq!(snap.get(WorkloadClass::Anomalous).burn_rates[0], 0.0);
    }

    #[test]
    fn ledger_observation_uses_its_class_and_deadline() {
        let t = ClassTracker::new();
        let mut ledger = PhaseLedger {
            outcome: "converged_bicgstab",
            class: WorkloadClass::ElectronLike,
            iterations: 33,
            deadline: Some(true),
            end_to_end_us: 1234.0,
            solve_us: 1234.0,
            ..PhaseLedger::default()
        };
        ledger.close();
        t.observe_ledger(Some(5), &ledger);
        let snap = t.snapshot();
        let ele = snap.get(WorkloadClass::ElectronLike);
        assert_eq!(ele.count, 1);
        assert_eq!(ele.p50_us, 1234);
        assert_eq!(ele.deadline_hits, 1);
        assert_eq!(ele.slowest, Some((5, 1234)));
    }

    #[test]
    fn render_lists_only_populated_classes() {
        let t = ClassTracker::new();
        assert_eq!(t.snapshot().render(), "", "empty tracker renders nothing");
        t.observe(WorkloadClass::IonLike, 100, None, Some(true));
        let text = t.snapshot().render();
        assert!(text.contains("ion-like"));
        assert!(!text.contains("electron-like"));
        assert!(text.contains("burn[1m]"));
    }
}
