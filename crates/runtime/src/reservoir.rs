//! Bounded reservoir sampling for latency statistics.
//!
//! The stats registry keeps one queue-wait sample per dispatched request.
//! An unbounded `Vec` grows without limit in a long-running service, so
//! the samples live in a fixed-capacity reservoir instead (Vitter's
//! Algorithm R): the first `capacity` samples are kept verbatim, and each
//! later sample replaces a uniformly random slot with probability
//! `capacity / seen`. Percentiles computed over the reservoir are exact
//! while under capacity and statistically representative afterwards.
//!
//! The replacement index stream comes from a splitmix64 generator with a
//! fixed seed, so a given sample sequence always yields the same
//! reservoir — percentile tests stay deterministic and snapshots are
//! reproducible across runs.

/// Default reservoir capacity: plenty for stable p50/p99 estimates while
/// bounding the registry at ~64 KiB of samples.
pub const DEFAULT_RESERVOIR_CAPACITY: usize = 8192;

/// Fixed seed for the replacement-index generator (deterministic runs).
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// Fixed-capacity uniform sample of an unbounded `u64` stream.
#[derive(Clone, Debug)]
pub struct Reservoir {
    samples: Vec<u64>,
    capacity: usize,
    /// Total samples offered, including those not retained.
    seen: u64,
    rng_state: u64,
}

impl Default for Reservoir {
    fn default() -> Reservoir {
        Reservoir::new(DEFAULT_RESERVOIR_CAPACITY)
    }
}

impl Reservoir {
    /// Reservoir holding at most `capacity` samples (floored at 1).
    pub fn new(capacity: usize) -> Reservoir {
        let capacity = capacity.max(1);
        Reservoir {
            samples: Vec::new(),
            capacity,
            seen: 0,
            rng_state: SEED,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64: passes BigCrush, two multiplications and three
        // xor-shifts per draw — cheaper than the lock around it.
        self.rng_state = self.rng_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Offer one sample to the reservoir.
    pub fn push(&mut self, sample: u64) {
        self.seen += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(sample);
            return;
        }
        // Keep with probability capacity/seen: draw a uniform index in
        // [0, seen); if it lands inside the reservoir, replace that slot.
        let idx = self.next_u64() % self.seen;
        if let Ok(idx) = usize::try_from(idx) {
            if idx < self.capacity {
                self.samples[idx] = sample;
            }
        }
    }

    /// Retained samples, in no particular order.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Retained sample count (≤ capacity).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were ever offered.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Maximum retained samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total samples offered, including those evicted or never retained.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

/// Nearest-rank percentile of a **sorted** microsecond sample slice,
/// shared by every stats surface (runtime snapshot, fleet snapshot,
/// Prometheus pages) so the quantile convention cannot drift.
///
/// The index is `round((n − 1) · p)` with Rust's round-half-away-from-
/// zero semantics. Documented edge cases:
///
/// * empty slice → `0` (there is no sample to report);
/// * a single sample is every percentile;
/// * two samples at p50 → the **larger** one (`round(0.5) = 1`).
pub fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_capacity_keeps_every_sample_in_order() {
        let mut r = Reservoir::new(100);
        for v in 0..100u64 {
            r.push(v);
        }
        assert_eq!(r.len(), 100);
        assert_eq!(r.seen(), 100);
        let expect: Vec<u64> = (0..100).collect();
        assert_eq!(r.samples(), expect.as_slice());
    }

    #[test]
    fn over_capacity_stays_bounded() {
        let mut r = Reservoir::new(64);
        for v in 0..100_000u64 {
            r.push(v);
        }
        assert_eq!(r.len(), 64);
        assert_eq!(r.seen(), 100_000);
        // Every retained sample came from the stream.
        assert!(r.samples().iter().all(|&v| v < 100_000));
    }

    #[test]
    fn fixed_seed_makes_runs_deterministic() {
        let fill = |n: u64| {
            let mut r = Reservoir::new(32);
            for v in 0..n {
                r.push(v.wrapping_mul(2654435761));
            }
            r.samples().to_vec()
        };
        assert_eq!(fill(10_000), fill(10_000));
    }

    #[test]
    fn eventually_admits_late_samples() {
        // With cap 16 and 4096 offers, the odds every late sample misses
        // are astronomically small; deterministic seed makes this stable.
        let mut r = Reservoir::new(16);
        for _ in 0..16 {
            r.push(0);
        }
        for _ in 0..4096 {
            r.push(1);
        }
        assert!(r.samples().contains(&1));
    }

    #[test]
    fn zero_capacity_floors_to_one() {
        let mut r = Reservoir::new(0);
        r.push(7);
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.samples(), &[7]);
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(percentile_us(&[], p), 0);
        }
    }

    #[test]
    fn percentile_of_singleton_is_the_sample() {
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(percentile_us(&[777], p), 777);
        }
    }

    #[test]
    fn percentile_of_two_samples_rounds_up_at_p50() {
        // round((2−1)·0.5) = round(0.5) = 1: the larger sample. This is
        // the convention every surface must agree on.
        assert_eq!(percentile_us(&[10, 20], 0.5), 20);
        assert_eq!(percentile_us(&[10, 20], 0.0), 10);
        assert_eq!(percentile_us(&[10, 20], 0.99), 20);
    }

    #[test]
    fn percentile_matches_nearest_rank_on_longer_streams() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&sorted, 0.50), 51); // round(99·0.5) = 50
        assert_eq!(percentile_us(&sorted, 0.99), 99); // round(99·0.99) = 98
        assert_eq!(percentile_us(&sorted, 1.0), 100);
    }
}
