//! Telemetry-driven solver × preconditioner autotuning.
//!
//! The tuner watches the same per-request convergence telemetry the
//! class tracker aggregates — the Table III workload taxonomy computed
//! from each terminal `ConvergenceHistory`-derived record — and commits
//! one (solver, preconditioner) recommendation per [`WorkloadClass`]:
//! ion-like solves converge in a handful of iterations, so the cheap
//! pointwise Jacobi under the fused-AXPY BiCGSTAB wins; electron-like
//! solves are iteration-bound, so the heavier batched preconditioners
//! (block-Jacobi, then ILU(0)) pay for their per-apply barriers by
//! cutting the iteration count; anomalous solves get the heaviest rung-1
//! configuration ahead of the escalation ladder.
//!
//! Decisions are **deterministic** — a pure function of the observation
//! stream and the configured seed (used only as a boundary tie-break) —
//! and **sticky**: a class's choice is recomputed only once per
//! [`AutoTunerConfig::window`] observations of that class, so telemetry
//! noise inside a window can never flap the recommendation. Every
//! (re)decision is surfaced three ways and must agree across all of
//! them: an `autotune_decision` trace event, the
//! `batsolv_autotune_info` Prometheus series, and the `autotune`
//! section of the `--profile-out` ledger report.

use std::sync::Mutex;

use batsolv_trace::{AutotuneChoice, EventKind, WorkloadClass, CLASS_COUNT, ION_ITER_MAX};

use crate::dispatcher::{PrecondVariant, SolverVariant};

/// Knobs of the telemetry autotuner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AutoTunerConfig {
    /// Terminal outcomes of one class between (re)decisions. The first
    /// observation of a class always produces an immediate provisional
    /// decision; after that the choice is frozen for `window`
    /// observations at a time.
    pub window: usize,
    /// Tie-break seed. Decisions are a pure function of the observation
    /// stream and this seed, so a fixed seed makes the tuner fully
    /// deterministic.
    pub seed: u64,
}

impl Default for AutoTunerConfig {
    fn default() -> Self {
        AutoTunerConfig {
            window: 32,
            seed: 0,
        }
    }
}

/// One committed per-class recommendation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Workload class the decision covers.
    pub class: WorkloadClass,
    /// Recommended rung-1 solver variant.
    pub solver: SolverVariant,
    /// Recommended ladder preconditioner.
    pub precond: PrecondVariant,
    /// Terminal outcomes of this class observed when the decision was
    /// (re)committed.
    pub observations: u64,
    /// How many times the class's choice has changed (0 = first).
    pub revision: u64,
}

impl Decision {
    /// The trace event announcing this decision.
    pub fn to_event(&self) -> EventKind {
        EventKind::AutotuneDecision {
            class: self.class.name(),
            solver: self.solver.name(),
            precond: self.precond.name(),
            observations: self.observations,
            revision: self.revision,
        }
    }

    /// The ledger-report mirror of this decision.
    pub fn to_choice(&self) -> AutotuneChoice {
        AutotuneChoice {
            class: self.class,
            solver: self.solver.name(),
            precond: self.precond.name(),
            observations: self.observations,
            revision: self.revision,
        }
    }
}

/// Per-class observation window and committed choice.
#[derive(Debug, Default)]
struct ClassState {
    seen: u64,
    window_count: usize,
    window_iters: u64,
    window_converged: usize,
    current: Option<Decision>,
}

/// The telemetry-driven recommendation engine. Thread-safe: the service
/// worker observes terminal outcomes while scrapers read choices.
#[derive(Debug)]
pub struct AutoTuner {
    cfg: AutoTunerConfig,
    classes: Mutex<[ClassState; CLASS_COUNT]>,
}

impl AutoTuner {
    /// Tuner with the given knobs (`window` is clamped to at least 1).
    pub fn new(mut cfg: AutoTunerConfig) -> AutoTuner {
        cfg.window = cfg.window.max(1);
        AutoTuner {
            cfg,
            classes: Mutex::new(Default::default()),
        }
    }

    /// Feed one terminal convergence record. Returns the class's
    /// decision when this observation (re)committed one — the caller
    /// surfaces it as a trace event — and `None` while the current
    /// choice stays frozen (inside a window, or recomputed unchanged).
    pub fn observe(
        &self,
        class: WorkloadClass,
        iterations: u32,
        converged: bool,
    ) -> Option<Decision> {
        let mut classes = self.classes.lock().unwrap();
        let st = &mut classes[class.index()];
        st.seen += 1;
        st.window_count += 1;
        st.window_iters += u64::from(iterations);
        if converged {
            st.window_converged += 1;
        }

        let first = st.current.is_none();
        if !first && st.window_count < self.cfg.window {
            return None;
        }
        let mean_iters = st.window_iters as f64 / st.window_count as f64;
        let converged_frac = st.window_converged as f64 / st.window_count as f64;
        let (solver, precond) = choose(class, mean_iters, converged_frac, self.cfg.seed);
        st.window_count = 0;
        st.window_iters = 0;
        st.window_converged = 0;

        let unchanged = st
            .current
            .is_some_and(|d| d.solver == solver && d.precond == precond);
        let revision = match st.current {
            Some(d) if unchanged => d.revision,
            Some(d) => d.revision + 1,
            None => 0,
        };
        let decision = Decision {
            class,
            solver,
            precond,
            observations: st.seen,
            revision,
        };
        st.current = Some(decision);
        (first || !unchanged).then_some(decision)
    }

    /// Current per-class decisions, [`WorkloadClass::ALL`] order,
    /// classes never observed omitted.
    pub fn decisions(&self) -> Vec<Decision> {
        let classes = self.classes.lock().unwrap();
        classes.iter().filter_map(|st| st.current).collect()
    }

    /// The ledger-report mirror of [`AutoTuner::decisions`].
    pub fn choices(&self) -> Vec<AutotuneChoice> {
        self.decisions().iter().map(Decision::to_choice).collect()
    }
}

/// The deterministic decision policy: heavier iteration burden buys a
/// heavier preconditioner. The electron band splits at twice the ion
/// iteration ceiling — below it block-Jacobi recovers most of the
/// iteration reduction without ILU(0)'s per-level barriers; at or above
/// it the level-scheduled triangular solves pay for themselves. The
/// seed breaks the exact-boundary tie so the policy is total.
fn choose(
    class: WorkloadClass,
    mean_iters: f64,
    converged_frac: f64,
    seed: u64,
) -> (SolverVariant, PrecondVariant) {
    match class {
        WorkloadClass::IonLike => (SolverVariant::BicgstabFused, PrecondVariant::Jacobi),
        WorkloadClass::ElectronLike => {
            let threshold = f64::from(2 * ION_ITER_MAX);
            let heavy = if mean_iters == threshold {
                seed.is_multiple_of(2)
            } else {
                mean_iters > threshold || converged_frac < 1.0
            };
            if heavy {
                (SolverVariant::Bicgstab, PrecondVariant::Ilu0)
            } else {
                (
                    SolverVariant::Bicgstab,
                    PrecondVariant::BlockJacobi(PrecondVariant::DEFAULT_BLOCK),
                )
            }
        }
        WorkloadClass::Anomalous => (SolverVariant::Bicgstab, PrecondVariant::Ilu0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batsolv_solvers::ConvergenceHistory;

    fn tuner(window: usize) -> AutoTuner {
        AutoTuner::new(AutoTunerConfig { window, seed: 7 })
    }

    #[test]
    fn first_observation_commits_a_provisional_decision() {
        let t = tuner(8);
        let d = t.observe(WorkloadClass::IonLike, 4, true).unwrap();
        assert_eq!(d.class, WorkloadClass::IonLike);
        assert_eq!(d.solver, SolverVariant::BicgstabFused);
        assert_eq!(d.precond, PrecondVariant::Jacobi);
        assert_eq!(d.revision, 0);
        assert_eq!(d.observations, 1);
    }

    #[test]
    fn classes_decide_independently() {
        let t = tuner(4);
        let ion = t.observe(WorkloadClass::IonLike, 5, true).unwrap();
        let ele = t.observe(WorkloadClass::ElectronLike, 60, true).unwrap();
        let anom = t.observe(WorkloadClass::Anomalous, 500, false).unwrap();
        assert_eq!(ion.precond, PrecondVariant::Jacobi);
        assert_eq!(ele.precond, PrecondVariant::Ilu0);
        assert_eq!(anom.precond, PrecondVariant::Ilu0);
        assert_eq!(t.decisions().len(), 3);
    }

    #[test]
    fn light_electron_band_prefers_block_jacobi() {
        let t = tuner(4);
        let d = t.observe(WorkloadClass::ElectronLike, 16, true).unwrap();
        assert_eq!(d.solver, SolverVariant::Bicgstab);
        assert_eq!(
            d.precond,
            PrecondVariant::BlockJacobi(PrecondVariant::DEFAULT_BLOCK)
        );
    }

    #[test]
    fn decisions_are_sticky_within_a_window() {
        let t = tuner(6);
        // Provisional decision from a light electron observation.
        let d = t.observe(WorkloadClass::ElectronLike, 16, true).unwrap();
        assert_eq!(d.precond.name(), "block-jacobi");
        // Flappy telemetry inside the window must not change the choice.
        for iters in [70, 16, 75, 14, 78] {
            assert_eq!(
                t.observe(WorkloadClass::ElectronLike, iters, true),
                None,
                "choice must stay frozen inside the window"
            );
        }
        // The 6th post-decision observation closes the window; the heavy
        // mean now flips the choice with a bumped revision.
        let d = t.observe(WorkloadClass::ElectronLike, 79, true).unwrap();
        assert_eq!(d.precond, PrecondVariant::Ilu0);
        assert_eq!(d.revision, 1);
        assert_eq!(d.observations, 7);
    }

    #[test]
    fn unchanged_recomputation_stays_silent() {
        let t = tuner(3);
        assert!(t.observe(WorkloadClass::IonLike, 3, true).is_some());
        for _ in 0..7 {
            assert_eq!(t.observe(WorkloadClass::IonLike, 4, true), None);
        }
        // Still the original revision after two silent window closes.
        let d = t.decisions()[0];
        assert_eq!(d.revision, 0);
        assert_eq!(d.precond, PrecondVariant::Jacobi);
    }

    #[test]
    fn identical_streams_and_seed_give_identical_decisions() {
        let feed = |t: &AutoTuner| {
            let mut log = Vec::new();
            for i in 0..40u32 {
                let (class, iters, conv) = match i % 3 {
                    0 => (WorkloadClass::IonLike, 3 + i % 5, true),
                    1 => (WorkloadClass::ElectronLike, 30 + (i * 7) % 50, true),
                    _ => (WorkloadClass::Anomalous, 200, false),
                };
                if let Some(d) = t.observe(class, iters, conv) {
                    log.push(d);
                }
            }
            log
        };
        let a = tuner(5);
        let b = tuner(5);
        assert_eq!(feed(&a), feed(&b));
        assert_eq!(a.decisions(), b.decisions());
    }

    /// A canned per-system convergence trace, as the solver's
    /// [`IterationLogger`] would record it.
    fn history(iterations: u32, rate: f64, converged: bool) -> ConvergenceHistory<f64> {
        use batsolv_solvers::IterationLogger;
        let mut h = ConvergenceHistory::default();
        let mut res = 1.0f64;
        for k in 1..=iterations {
            res *= rate;
            h.log_iteration(k, res);
        }
        h.log_finish(iterations, res, converged);
        h
    }

    /// The canned fixtures of the acceptance criteria: an ion-like
    /// history (fast geometric collapse) and an electron-like one
    /// (iteration-bound), fed through the same `ConvergenceHistory` →
    /// `WorkloadClass` bridge the service uses. Under a fixed seed the
    /// tuner's (solver, preconditioner) choice per class is fully
    /// deterministic.
    #[test]
    fn canned_convergence_histories_drive_deterministic_choices() {
        let ion = history(5, 0.01, true);
        let electron = history(60, 0.7, true);
        assert_eq!(ion.workload_class(), WorkloadClass::IonLike);
        assert_eq!(electron.workload_class(), WorkloadClass::ElectronLike);

        let t = tuner(4);
        let d_ion = t
            .observe(ion.workload_class(), ion.iterations, ion.converged)
            .unwrap();
        let d_ele = t
            .observe(
                electron.workload_class(),
                electron.iterations,
                electron.converged,
            )
            .unwrap();
        assert_eq!(
            (d_ion.solver, d_ion.precond),
            (SolverVariant::BicgstabFused, PrecondVariant::Jacobi)
        );
        assert_eq!(
            (d_ele.solver, d_ele.precond),
            (SolverVariant::Bicgstab, PrecondVariant::Ilu0)
        );

        // Same fixtures, same seed, fresh tuner: identical decisions.
        let t2 = tuner(4);
        let d2_ion = t2
            .observe(ion.workload_class(), ion.iterations, ion.converged)
            .unwrap();
        let d2_ele = t2
            .observe(
                electron.workload_class(),
                electron.iterations,
                electron.converged,
            )
            .unwrap();
        assert_eq!(
            (d_ion.solver, d_ion.precond),
            (d2_ion.solver, d2_ion.precond)
        );
        assert_eq!(
            (d_ele.solver, d_ele.precond),
            (d2_ele.solver, d2_ele.precond)
        );
    }

    /// An anomalous fixture (diverging residuals, no convergence) lands
    /// on the heavy rung-1 configuration.
    #[test]
    fn anomalous_history_gets_the_heaviest_configuration() {
        let anom = history(40, 1.3, false);
        assert_eq!(anom.workload_class(), WorkloadClass::Anomalous);
        let t = tuner(4);
        let d = t
            .observe(anom.workload_class(), anom.iterations, anom.converged)
            .unwrap();
        assert_eq!(
            (d.solver, d.precond),
            (SolverVariant::Bicgstab, PrecondVariant::Ilu0)
        );
    }

    #[test]
    fn choices_mirror_decisions_exactly() {
        let t = tuner(4);
        t.observe(WorkloadClass::ElectronLike, 70, true);
        t.observe(WorkloadClass::IonLike, 2, true);
        let decisions = t.decisions();
        let choices = t.choices();
        assert_eq!(decisions.len(), choices.len());
        for (d, c) in decisions.iter().zip(&choices) {
            assert_eq!(d.class, c.class);
            assert_eq!(d.solver.name(), c.solver);
            assert_eq!(d.precond.name(), c.precond);
            assert_eq!(d.observations, c.observations);
            assert_eq!(d.revision, c.revision);
        }
    }
}
