//! Bounded submission queue with explicit backpressure.
//!
//! `Mutex<VecDeque>` + `Condvar` rather than a channel: submitters need
//! an immediate full/not-full answer (never blocking, never dropping),
//! and the single consumer needs a timed wait so it can wake up for
//! linger deadlines.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Result of a non-blocking push.
#[derive(Debug, PartialEq, Eq)]
pub enum PushResult<T> {
    /// Enqueued.
    Ok,
    /// Queue at capacity; the item is handed back to the caller.
    Full(T),
    /// Queue closed; the item is handed back to the caller.
    Closed(T),
}

/// Result of a timed pop.
#[derive(Debug, PartialEq, Eq)]
pub enum PopResult<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed with the queue empty.
    TimedOut,
    /// The queue is closed *and* fully drained; no more items will come.
    Closed,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPSC queue: many submitters, one consumer.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity > 0, "queue capacity must be at least 1");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (racy by nature; for stats only).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty (racy; for stats only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Try to enqueue without blocking. A full queue rejects — the
    /// caller gets the item back and decides (retry, shed, error out).
    pub fn try_push(&self, item: T) -> PushResult<T> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return PushResult::Closed(item);
        }
        if st.items.len() >= self.capacity {
            return PushResult::Full(item);
        }
        st.items.push_back(item);
        drop(st);
        self.available.notify_one();
        PushResult::Ok
    }

    /// Dequeue, waiting up to `timeout` for an item. Items still queued
    /// after close are drained before `Closed` is reported.
    pub fn pop_wait(&self, timeout: Duration) -> PopResult<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(item) = st.items.pop_front() {
                return PopResult::Item(item);
            }
            if st.closed {
                return PopResult::Closed;
            }
            if timeout.is_zero() {
                return PopResult::TimedOut;
            }
            let (next, res) = self.available.wait_timeout(st, timeout).unwrap();
            st = next;
            if res.timed_out() {
                return match st.items.pop_front() {
                    Some(item) => PopResult::Item(item),
                    None if st.closed => PopResult::Closed,
                    None => PopResult::TimedOut,
                };
            }
        }
    }

    /// Close the queue: submitters are rejected from now on, the
    /// consumer drains what is left and then sees `Closed`.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.try_push(1), PushResult::Ok);
        assert_eq!(q.try_push(2), PushResult::Ok);
        assert_eq!(q.pop_wait(Duration::ZERO), PopResult::Item(1));
        assert_eq!(q.pop_wait(Duration::ZERO), PopResult::Item(2));
        assert_eq!(q.pop_wait(Duration::ZERO), PopResult::TimedOut);
    }

    #[test]
    fn full_queue_rejects_with_item_back() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push("a"), PushResult::Ok);
        assert_eq!(q.try_push("b"), PushResult::Ok);
        assert_eq!(q.try_push("c"), PushResult::Full("c"));
        let _ = q.pop_wait(Duration::ZERO);
        assert_eq!(q.try_push("c"), PushResult::Ok);
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = BoundedQueue::new(4);
        q.try_push(1);
        q.close();
        assert_eq!(q.try_push(2), PushResult::Closed(2));
        assert_eq!(q.pop_wait(Duration::ZERO), PopResult::Item(1));
        assert_eq!(q.pop_wait(Duration::ZERO), PopResult::Closed);
    }

    #[test]
    fn timed_wait_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop_wait(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.try_push(42), PushResult::Ok);
        assert_eq!(handle.join().unwrap(), PopResult::Item(42));
    }

    #[test]
    fn timed_wait_wakes_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop_wait(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(handle.join().unwrap(), PopResult::Closed);
    }
}
