//! Service configuration.

use std::time::Duration;

use batsolv_gpusim::DeviceSpec;
use batsolv_trace::Tracer;

use crate::autotune::AutoTunerConfig;
use crate::breaker::BreakerConfig;
use crate::dispatcher::{PrecondVariant, SolverVariant};

/// Tuning knobs of the solve service.
///
/// The two batching knobs trade latency against throughput exactly like a
/// continuous-batching inference server: `batch_target` caps how many
/// systems are fused into one launch (throughput), `linger` bounds how
/// long the oldest queued request may wait for companions (latency).
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Simulated device batches are priced on.
    pub device: DeviceSpec,
    /// Bound on the submission queue; a full queue rejects new requests
    /// with [`crate::SubmitError::QueueFull`] (explicit backpressure,
    /// never a silent drop).
    pub queue_capacity: usize,
    /// Flush trigger 1: cut a batch as soon as this many requests are
    /// pending.
    pub batch_target: usize,
    /// Flush trigger 2: cut a batch (of whatever size) once the oldest
    /// pending request has waited this long.
    pub linger: Duration,
    /// Absolute residual tolerance used when a request does not carry its
    /// own (the paper's production tolerance).
    pub tolerance: f64,
    /// Iteration cap of the iterative solver; systems still unconverged
    /// at the cap climb the escalation ladder.
    pub max_iters: usize,
    /// Which fused solver variant carries rung 1 of the ladder.
    pub solver: SolverVariant,
    /// Which preconditioner the iterative ladder rungs run under (the
    /// direct rung and the fleet's CPU spill stay unpreconditioned).
    pub precond: PrecondVariant,
    /// Telemetry-driven solver × preconditioner recommendation engine;
    /// `None` disables it.
    pub autotune: Option<AutoTunerConfig>,
    /// Whether BiCGSTAB stragglers are retried with restarted GMRES
    /// (rung 2 of the escalation ladder).
    pub enable_gmres: bool,
    /// GMRES restart length.
    pub gmres_restart: usize,
    /// GMRES total-iteration cap.
    pub gmres_max_iters: usize,
    /// Whether still-unconverged systems are retried with the banded-LU
    /// direct solver (the `dgbsv` baseline, last rung) before being
    /// reported failed.
    pub enable_fallback: bool,
    /// Whether the admission gate validates payloads (finiteness, usable
    /// Jacobi diagonal) at submission. Disable only in chaos tests that
    /// deliberately feed poisoned systems to the ladder.
    pub validate_admission: bool,
    /// Diagonal magnitudes at or below this are rejected by the gate.
    pub min_diag_abs: f64,
    /// Dispatch-time budget of the watchdog; batches exceeding it are
    /// counted as stalled. `None` disables the watchdog thread.
    pub watchdog_budget: Option<Duration>,
    /// Circuit-breaker knobs; `None` disables the breaker.
    pub breaker: Option<BreakerConfig>,
    /// Structured-event tracer threaded through the service, ladder, and
    /// solver layers. Defaults to [`Tracer::disabled`], which reduces
    /// every emission site to a single branch.
    pub tracer: Tracer,
}

impl RuntimeConfig {
    /// Defaults: V100 pricing, 1024-deep queue, batches of 128, 2 ms
    /// linger, the paper's 1e-10 tolerance.
    pub fn new(device: DeviceSpec) -> RuntimeConfig {
        RuntimeConfig {
            device,
            queue_capacity: 1024,
            batch_target: 128,
            linger: Duration::from_millis(2),
            tolerance: 1e-10,
            max_iters: 500,
            solver: SolverVariant::Bicgstab,
            precond: PrecondVariant::Jacobi,
            autotune: None,
            enable_gmres: true,
            gmres_restart: 30,
            gmres_max_iters: 300,
            enable_fallback: true,
            validate_admission: true,
            min_diag_abs: 0.0,
            watchdog_budget: Some(Duration::from_secs(30)),
            breaker: Some(BreakerConfig::default()),
            tracer: Tracer::disabled(),
        }
    }

    /// Override the submission-queue bound.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Override the batch-size flush target.
    pub fn with_batch_target(mut self, target: usize) -> Self {
        self.batch_target = target;
        self
    }

    /// Override the linger time.
    pub fn with_linger(mut self, linger: Duration) -> Self {
        self.linger = linger;
        self
    }

    /// Override the default tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Override the iteration cap.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Override the rung-1 solver variant.
    pub fn with_solver(mut self, solver: SolverVariant) -> Self {
        self.solver = solver;
        self
    }

    /// Override the ladder preconditioner.
    pub fn with_precond(mut self, precond: PrecondVariant) -> Self {
        self.precond = precond;
        self
    }

    /// Enable (or with `None`, disable) the telemetry autotuner.
    pub fn with_autotune(mut self, autotune: Option<AutoTunerConfig>) -> Self {
        self.autotune = autotune;
        self
    }

    /// Enable or disable the direct fallback.
    pub fn with_fallback(mut self, enabled: bool) -> Self {
        self.enable_fallback = enabled;
        self
    }

    /// Enable or disable the GMRES escalation rung.
    pub fn with_gmres(mut self, enabled: bool) -> Self {
        self.enable_gmres = enabled;
        self
    }

    /// Override the GMRES restart length and iteration cap.
    pub fn with_gmres_limits(mut self, restart: usize, max_iters: usize) -> Self {
        self.gmres_restart = restart;
        self.gmres_max_iters = max_iters;
        self
    }

    /// Enable or disable the admission gate.
    pub fn with_admission(mut self, enabled: bool) -> Self {
        self.validate_admission = enabled;
        self
    }

    /// Override the admission gate's diagonal-magnitude floor.
    pub fn with_min_diag_abs(mut self, floor: f64) -> Self {
        self.min_diag_abs = floor;
        self
    }

    /// Override (or with `None`, disable) the watchdog budget.
    pub fn with_watchdog(mut self, budget: Option<Duration>) -> Self {
        self.watchdog_budget = budget;
        self
    }

    /// Override (or with `None`, disable) the circuit breaker.
    pub fn with_breaker(mut self, breaker: Option<BreakerConfig>) -> Self {
        self.breaker = breaker;
        self
    }

    /// Attach a tracer; every service, ladder, and solver event flows
    /// into its sink (and flight recorder, if one is configured).
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Validate the knob combination.
    pub fn validate(&self) -> Result<(), String> {
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be at least 1".into());
        }
        if self.batch_target == 0 {
            return Err("batch_target must be at least 1".into());
        }
        if self.tolerance.is_nan() || self.tolerance <= 0.0 {
            return Err(format!(
                "tolerance must be positive, got {}",
                self.tolerance
            ));
        }
        if self.max_iters == 0 {
            return Err("max_iters must be at least 1".into());
        }
        if self.enable_gmres && (self.gmres_restart == 0 || self.gmres_max_iters == 0) {
            return Err("gmres_restart and gmres_max_iters must be at least 1".into());
        }
        if self.precond == PrecondVariant::BlockJacobi(0) {
            return Err("block-jacobi block size must be at least 1".into());
        }
        if let Some(a) = &self.autotune {
            if a.window == 0 {
                return Err("autotune window must be at least 1".into());
            }
        }
        if self.min_diag_abs.is_nan() || self.min_diag_abs < 0.0 {
            return Err(format!(
                "min_diag_abs must be non-negative, got {}",
                self.min_diag_abs
            ));
        }
        if let Some(b) = &self.breaker {
            if b.trip_after == 0 {
                return Err("breaker trip_after must be at least 1".into());
            }
            if !(0.0..=1.0).contains(&b.degraded_fraction) {
                return Err(format!(
                    "breaker degraded_fraction must be in [0, 1], got {}",
                    b.degraded_fraction
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_overrides() {
        let c = RuntimeConfig::new(DeviceSpec::a100())
            .with_queue_capacity(8)
            .with_batch_target(4)
            .with_linger(Duration::from_micros(500))
            .with_tolerance(1e-8)
            .with_max_iters(50)
            .with_fallback(false);
        assert_eq!(c.queue_capacity, 8);
        assert_eq!(c.batch_target, 4);
        assert_eq!(c.linger, Duration::from_micros(500));
        assert_eq!(c.tolerance, 1e-8);
        assert_eq!(c.max_iters, 50);
        assert!(!c.enable_fallback);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_knobs() {
        let base = RuntimeConfig::new(DeviceSpec::v100());
        assert!(base.clone().with_queue_capacity(0).validate().is_err());
        assert!(base.clone().with_batch_target(0).validate().is_err());
        assert!(base.clone().with_tolerance(0.0).validate().is_err());
        assert!(base.clone().with_max_iters(0).validate().is_err());
        assert!(base.validate().is_ok());
    }
}
