//! Service configuration.

use std::time::Duration;

use batsolv_gpusim::DeviceSpec;

/// Tuning knobs of the solve service.
///
/// The two batching knobs trade latency against throughput exactly like a
/// continuous-batching inference server: `batch_target` caps how many
/// systems are fused into one launch (throughput), `linger` bounds how
/// long the oldest queued request may wait for companions (latency).
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Simulated device batches are priced on.
    pub device: DeviceSpec,
    /// Bound on the submission queue; a full queue rejects new requests
    /// with [`crate::SubmitError::QueueFull`] (explicit backpressure,
    /// never a silent drop).
    pub queue_capacity: usize,
    /// Flush trigger 1: cut a batch as soon as this many requests are
    /// pending.
    pub batch_target: usize,
    /// Flush trigger 2: cut a batch (of whatever size) once the oldest
    /// pending request has waited this long.
    pub linger: Duration,
    /// Absolute residual tolerance used when a request does not carry its
    /// own (the paper's production tolerance).
    pub tolerance: f64,
    /// Iteration cap of the iterative solver; systems still unconverged
    /// at the cap go to the direct fallback.
    pub max_iters: usize,
    /// Whether non-converged systems are retried with the banded-LU
    /// direct solver (the `dgbsv` baseline) before being reported failed.
    pub enable_fallback: bool,
}

impl RuntimeConfig {
    /// Defaults: V100 pricing, 1024-deep queue, batches of 128, 2 ms
    /// linger, the paper's 1e-10 tolerance.
    pub fn new(device: DeviceSpec) -> RuntimeConfig {
        RuntimeConfig {
            device,
            queue_capacity: 1024,
            batch_target: 128,
            linger: Duration::from_millis(2),
            tolerance: 1e-10,
            max_iters: 500,
            enable_fallback: true,
        }
    }

    /// Override the submission-queue bound.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Override the batch-size flush target.
    pub fn with_batch_target(mut self, target: usize) -> Self {
        self.batch_target = target;
        self
    }

    /// Override the linger time.
    pub fn with_linger(mut self, linger: Duration) -> Self {
        self.linger = linger;
        self
    }

    /// Override the default tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Override the iteration cap.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Enable or disable the direct fallback.
    pub fn with_fallback(mut self, enabled: bool) -> Self {
        self.enable_fallback = enabled;
        self
    }

    /// Validate the knob combination.
    pub fn validate(&self) -> Result<(), String> {
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be at least 1".into());
        }
        if self.batch_target == 0 {
            return Err("batch_target must be at least 1".into());
        }
        if self.tolerance.is_nan() || self.tolerance <= 0.0 {
            return Err(format!(
                "tolerance must be positive, got {}",
                self.tolerance
            ));
        }
        if self.max_iters == 0 {
            return Err("max_iters must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_overrides() {
        let c = RuntimeConfig::new(DeviceSpec::a100())
            .with_queue_capacity(8)
            .with_batch_target(4)
            .with_linger(Duration::from_micros(500))
            .with_tolerance(1e-8)
            .with_max_iters(50)
            .with_fallback(false);
        assert_eq!(c.queue_capacity, 8);
        assert_eq!(c.batch_target, 4);
        assert_eq!(c.linger, Duration::from_micros(500));
        assert_eq!(c.tolerance, 1e-8);
        assert_eq!(c.max_iters, 50);
        assert!(!c.enable_fallback);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_knobs() {
        let base = RuntimeConfig::new(DeviceSpec::v100());
        assert!(base.clone().with_queue_capacity(0).validate().is_err());
        assert!(base.clone().with_batch_target(0).validate().is_err());
        assert!(base.clone().with_tolerance(0.0).validate().is_err());
        assert!(base.clone().with_max_iters(0).validate().is_err());
        assert!(base.validate().is_ok());
    }
}
