//! Batch dispatcher: turns a formed batch into one fused solve.
//!
//! The engine is a trait so the service loop can be exercised with a
//! deterministic test double (e.g. a blocking engine for backpressure
//! tests) while production uses [`BicgstabEngine`]: the paper's fused
//! batched BiCGSTAB with a banded-LU (`dgbsv`) retry for systems that
//! miss the iteration cap.

use std::sync::Arc;

use batsolv_formats::{BatchBanded, BatchCsr, BatchVectors, SparsityPattern};
use batsolv_gpusim::DeviceSpec;
use batsolv_solvers::direct::BatchBandedLu;
use batsolv_solvers::{AbsResidual, BatchBicgstab, Jacobi};
use batsolv_types::{BatchDims, Result};

use crate::request::{RequestId, SolveMethod};

/// One request's payload as handed to the engine.
#[derive(Clone, Debug)]
pub struct BatchItem {
    /// Service-assigned id, echoed back in the outcome.
    pub id: RequestId,
    /// CSR values over the shared pattern.
    pub values: Vec<f64>,
    /// Right-hand side.
    pub rhs: Vec<f64>,
    /// Optional warm-start guess.
    pub guess: Option<Vec<f64>>,
    /// Per-request tolerance override.
    pub tolerance: Option<f64>,
}

/// One request's result as produced by the engine.
#[derive(Clone, Debug)]
pub struct ItemOutcome {
    /// Echoed request id.
    pub id: RequestId,
    /// Solution vector (last iterate when not converged).
    pub x: Vec<f64>,
    /// Iterative-solver iterations spent on this system.
    pub iterations: u32,
    /// Final residual 2-norm.
    pub residual: f64,
    /// Whether a solution within tolerance was produced.
    pub converged: bool,
    /// Which path produced `x`.
    pub method: SolveMethod,
    /// Solver breakdown tag, if any.
    pub breakdown: Option<&'static str>,
}

/// What one fused dispatch produced.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-item outcomes, in batch order.
    pub outcomes: Vec<ItemOutcome>,
    /// Simulated kernel time of the dispatch (iterative + any fallback).
    pub sim_time_s: f64,
}

/// A batch solver the service can dispatch to.
pub trait SolveEngine: Send + Sync + 'static {
    /// Solve every item of the batch; must return exactly one outcome
    /// per item, in order.
    fn solve_batch(&self, items: &[BatchItem]) -> Result<BatchReport>;
}

/// The production engine: fused batched BiCGSTAB (Jacobi-preconditioned,
/// absolute-residual stop) with optional banded-LU retry.
pub struct BicgstabEngine {
    device: DeviceSpec,
    pattern: Arc<SparsityPattern>,
    default_tolerance: f64,
    max_iters: usize,
    enable_fallback: bool,
}

impl BicgstabEngine {
    /// Engine over `pattern`, priced on `device`.
    pub fn new(
        device: DeviceSpec,
        pattern: Arc<SparsityPattern>,
        default_tolerance: f64,
        max_iters: usize,
        enable_fallback: bool,
    ) -> BicgstabEngine {
        BicgstabEngine {
            device,
            pattern,
            default_tolerance,
            max_iters,
            enable_fallback,
        }
    }

    /// Tightest tolerance requested across the batch (a fused launch has
    /// one stopping criterion, so it must satisfy the strictest member).
    fn effective_tolerance(&self, items: &[BatchItem]) -> f64 {
        items
            .iter()
            .filter_map(|it| it.tolerance)
            .fold(self.default_tolerance, f64::min)
    }
}

impl SolveEngine for BicgstabEngine {
    fn solve_batch(&self, items: &[BatchItem]) -> Result<BatchReport> {
        let n = self.pattern.num_rows();
        let ns = items.len();
        let dims = BatchDims::new(ns, n)?;
        let value_rows: Vec<Vec<f64>> = items.iter().map(|it| it.values.clone()).collect();
        let a = BatchCsr::from_system_values(Arc::clone(&self.pattern), &value_rows)?;
        let mut rhs_flat = Vec::with_capacity(ns * n);
        for it in items {
            rhs_flat.extend_from_slice(&it.rhs);
        }
        let b = BatchVectors::from_values(dims, rhs_flat)?;
        let mut x = BatchVectors::zeros(dims);
        for (i, it) in items.iter().enumerate() {
            if let Some(g) = &it.guess {
                x.system_mut(i).copy_from_slice(g);
            }
        }

        let tol = self.effective_tolerance(items);
        let solver =
            BatchBicgstab::new(Jacobi, AbsResidual::new(tol)).with_max_iters(self.max_iters);
        let report = solver.solve(&self.device, &a, &b, &mut x)?;
        let mut sim_time_s = report.time_s();

        let mut outcomes: Vec<ItemOutcome> = items
            .iter()
            .enumerate()
            .map(|(i, it)| {
                let r = &report.per_system[i];
                ItemOutcome {
                    id: it.id,
                    x: x.system(i).to_vec(),
                    iterations: r.iterations,
                    residual: r.residual,
                    converged: r.converged,
                    method: SolveMethod::Bicgstab,
                    breakdown: r.breakdown,
                }
            })
            .collect();

        // Retry the stragglers as one direct sub-batch: the banded-LU
        // baseline always produces a solution (modulo singularity), so a
        // missed iteration cap degrades to dgbsv cost instead of an error.
        if self.enable_fallback {
            let stragglers: Vec<usize> = outcomes
                .iter()
                .enumerate()
                .filter(|(_, o)| !o.converged)
                .map(|(i, _)| i)
                .collect();
            if !stragglers.is_empty() {
                let sub_values: Vec<Vec<f64>> = stragglers
                    .iter()
                    .map(|&i| items[i].values.clone())
                    .collect();
                let sub_a = BatchCsr::from_system_values(Arc::clone(&self.pattern), &sub_values)?;
                let banded = BatchBanded::from_csr(&sub_a)?;
                let sub_dims = BatchDims::new(stragglers.len(), n)?;
                let mut sub_rhs = Vec::with_capacity(stragglers.len() * n);
                for &i in &stragglers {
                    sub_rhs.extend_from_slice(&items[i].rhs);
                }
                let sub_b = BatchVectors::from_values(sub_dims, sub_rhs)?;
                let mut sub_x = BatchVectors::zeros(sub_dims);
                let lu_report = BatchBandedLu.solve(&self.device, &banded, &sub_b, &mut sub_x)?;
                sim_time_s += lu_report.time_s();
                for (k, &i) in stragglers.iter().enumerate() {
                    let lr = &lu_report.per_system[k];
                    if lr.converged {
                        let o = &mut outcomes[i];
                        o.x = sub_x.system(k).to_vec();
                        o.residual = lr.residual;
                        o.converged = true;
                        o.method = SolveMethod::BandedLuFallback;
                        o.breakdown = None;
                    } else {
                        outcomes[i].breakdown = lr.breakdown;
                    }
                }
            }
        }

        Ok(BatchReport {
            outcomes,
            sim_time_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-D Laplacian values over a tridiagonal pattern, diagonally
    /// dominant so Jacobi-BiCGSTAB converges fast.
    fn laplacian_case(n: usize) -> (Arc<SparsityPattern>, Vec<f64>, Vec<f64>) {
        let mut coords = Vec::new();
        for r in 0..n {
            if r > 0 {
                coords.push((r, r - 1));
            }
            coords.push((r, r));
            if r + 1 < n {
                coords.push((r, r + 1));
            }
        }
        let pattern = Arc::new(SparsityPattern::from_coords(n, &coords).unwrap());
        let mut values = Vec::with_capacity(pattern.nnz());
        for r in 0..n {
            if r > 0 {
                values.push(-1.0);
            }
            values.push(4.0);
            if r + 1 < n {
                values.push(-1.0);
            }
        }
        let rhs = vec![1.0; n];
        (pattern, values, rhs)
    }

    #[test]
    fn engine_solves_a_batch() {
        let (pattern, values, rhs) = laplacian_case(32);
        let engine =
            BicgstabEngine::new(DeviceSpec::v100(), Arc::clone(&pattern), 1e-10, 200, true);
        let items: Vec<BatchItem> = (0..4)
            .map(|id| BatchItem {
                id,
                values: values.clone(),
                rhs: rhs.clone(),
                guess: None,
                tolerance: None,
            })
            .collect();
        let report = engine.solve_batch(&items).unwrap();
        assert_eq!(report.outcomes.len(), 4);
        for o in &report.outcomes {
            assert!(o.converged, "system {} residual {}", o.id, o.residual);
            assert_eq!(o.method, SolveMethod::Bicgstab);
            assert!(o.residual <= 1e-10);
        }
        assert!(report.sim_time_s > 0.0);
    }

    #[test]
    fn starved_iteration_cap_triggers_lu_fallback() {
        let (pattern, values, rhs) = laplacian_case(64);
        // One iteration cannot reach 1e-12 — every system must fall back.
        let engine = BicgstabEngine::new(DeviceSpec::v100(), Arc::clone(&pattern), 1e-12, 1, true);
        let items = vec![BatchItem {
            id: 9,
            values,
            rhs,
            guess: None,
            tolerance: None,
        }];
        let report = engine.solve_batch(&items).unwrap();
        let o = &report.outcomes[0];
        assert!(o.converged, "fallback must rescue the request");
        assert_eq!(o.method, SolveMethod::BandedLuFallback);
        assert!(o.residual < 1e-8, "direct solve residual {}", o.residual);
    }

    #[test]
    fn fallback_disabled_reports_not_converged() {
        let (pattern, values, rhs) = laplacian_case(64);
        let engine = BicgstabEngine::new(DeviceSpec::v100(), Arc::clone(&pattern), 1e-12, 1, false);
        let items = vec![BatchItem {
            id: 0,
            values,
            rhs,
            guess: None,
            tolerance: None,
        }];
        let report = engine.solve_batch(&items).unwrap();
        assert!(!report.outcomes[0].converged);
        assert_eq!(report.outcomes[0].method, SolveMethod::Bicgstab);
    }

    #[test]
    fn tightest_member_tolerance_wins() {
        let (pattern, values, rhs) = laplacian_case(16);
        let engine =
            BicgstabEngine::new(DeviceSpec::v100(), Arc::clone(&pattern), 1e-4, 200, false);
        let items: Vec<BatchItem> = [None, Some(1e-11)]
            .into_iter()
            .enumerate()
            .map(|(id, tolerance)| BatchItem {
                id: id as u64,
                values: values.clone(),
                rhs: rhs.clone(),
                guess: None,
                tolerance,
            })
            .collect();
        assert_eq!(engine.effective_tolerance(&items), 1e-11);
        let report = engine.solve_batch(&items).unwrap();
        for o in &report.outcomes {
            assert!(o.converged);
            assert!(o.residual <= 1e-11, "residual {} too loose", o.residual);
        }
    }
}
