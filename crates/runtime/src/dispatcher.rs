//! Batch dispatcher: turns a formed batch into one fused solve.
//!
//! The engine is a trait so the service loop can be exercised with a
//! deterministic test double (e.g. a blocking engine for backpressure
//! tests) while production uses [`LadderEngine`]: the paper's fused
//! batched BiCGSTAB, escalated per-system through restarted GMRES and
//! finally the banded-LU (`dgbsv`) direct baseline. Each rung only
//! reprocesses the systems the previous rung left behind, so a healthy
//! batch pays exactly one BiCGSTAB launch.
//!
//! The engine consults a [`LaunchHook`] immediately before the fused
//! launch — the chaos seam: a hook can fail the launch like a device
//! error, stall it, or panic the worker (see `batsolv-faults`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use batsolv_formats::{BatchBanded, BatchCsr, BatchVectors, SparsityPattern};
use batsolv_gpusim::{
    kernel_launch_event, reduction_event, sync_point_event, transfer_event, DeviceSpec, Direction,
    LaunchDisruption, LaunchHook, NoDisruption,
};
use batsolv_solvers::direct::BatchBandedLu;
use batsolv_solvers::{
    AbsResidual, BatchBicgstab, BatchCg, BatchGmres, BatchSolveReport, BlockJacobi, Identity, Ilu0,
    Jacobi, PipelinedBicgstab, PipelinedCg, Preconditioner, TraceLogger,
};
use batsolv_trace::{EventKind, Tracer};
use batsolv_types::{BatchDims, Error, Result};

use crate::executor::{BatchExecutor, ExecMode};
use crate::request::{RequestId, RungAttempt, SolveMethod};

/// One request's payload as handed to the engine.
#[derive(Clone, Debug)]
pub struct BatchItem {
    /// Service-assigned id, echoed back in the outcome.
    pub id: RequestId,
    /// CSR values over the shared pattern.
    pub values: Vec<f64>,
    /// Right-hand side.
    pub rhs: Vec<f64>,
    /// Optional warm-start guess.
    pub guess: Option<Vec<f64>>,
    /// Per-request tolerance override.
    pub tolerance: Option<f64>,
}

/// One request's result as produced by the engine.
#[derive(Clone, Debug)]
pub struct ItemOutcome {
    /// Echoed request id.
    pub id: RequestId,
    /// Solution vector (last iterate when not converged).
    pub x: Vec<f64>,
    /// Total iterative-solver iterations spent on this system, summed
    /// across rungs.
    pub iterations: u32,
    /// Final residual 2-norm.
    pub residual: f64,
    /// Whether a solution within tolerance was produced.
    pub converged: bool,
    /// Which path produced `x`.
    pub method: SolveMethod,
    /// Solver breakdown tag, if any.
    pub breakdown: Option<&'static str>,
    /// Every ladder rung attempted, in order.
    pub rungs: Vec<RungAttempt>,
}

/// What one fused dispatch produced.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-item outcomes, in batch order.
    pub outcomes: Vec<ItemOutcome>,
    /// Simulated kernel time of the dispatch (all rungs).
    pub sim_time_s: f64,
    /// Synchronization points paid across all rungs (worst block).
    pub syncs: u64,
    /// Reduction trees performed across all rungs (exposed + hidden).
    pub reductions: u64,
    /// Name of the rung-1 solver variant that ran.
    pub solver: &'static str,
    /// Simulated solve-time decomposition of the whole dispatch.
    pub split: SimSplit,
}

/// Where the simulated solve time of a dispatch went, microseconds
/// (sim clock, all rungs summed). This is the Figure 1 decomposition at
/// service granularity: compute (SpMV + vector ops), exposed reduction
/// trees, barrier waits, and host↔device transfers.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimSplit {
    /// SpMV + vector-op compute time (kernel time minus barriers).
    pub spmv_us: f64,
    /// Exposed tree-reduction time.
    pub reduction_us: f64,
    /// Barrier (synchronization-point) time.
    pub sync_us: f64,
    /// Host↔device transfer time (operand upload + solution download).
    pub transfer_us: f64,
}

impl SimSplit {
    /// Sum of every component.
    pub fn total_us(&self) -> f64 {
        self.spmv_us + self.reduction_us + self.sync_us + self.transfer_us
    }

    /// Fold one rung's kernel report in. `sync_s` covers barriers plus
    /// exposed reductions; it is apportioned between the two by their
    /// critical-path counts, and the remainder of the kernel time is
    /// compute (SpMV + fused vector passes).
    pub fn add_kernel(&mut self, report: &BatchSolveReport) {
        let total_us = report.time_s() * 1e6;
        let sync_block_us = (report.kernel.sync_s * 1e6).min(total_us);
        let (syncs, reds) = (report.syncs() as f64, report.reductions() as f64);
        let denom = syncs + reds;
        let red_share = if denom > 0.0 { reds / denom } else { 0.0 };
        self.reduction_us += sync_block_us * red_share;
        self.sync_us += sync_block_us * (1.0 - red_share);
        self.spmv_us += total_us - sync_block_us;
    }

    /// Fold one host↔device copy in.
    pub fn add_transfer(&mut self, device: &DeviceSpec, bytes: u64, dir: Direction) {
        self.transfer_us += batsolv_gpusim::transfer_time(device, bytes, dir) * 1e6;
    }

    /// Even per-request share of the dispatch (batch members share the
    /// fused launch, so attribution divides it).
    pub fn per_item(&self, batch_size: usize) -> SimSplit {
        let d = batch_size.max(1) as f64;
        SimSplit {
            spmv_us: self.spmv_us / d,
            reduction_us: self.reduction_us / d,
            sync_us: self.sync_us / d,
            transfer_us: self.transfer_us / d,
        }
    }
}

/// Which fused solver variant carries rung 1 of the ladder.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SolverVariant {
    /// Classical batched BiCGSTAB (Algorithm 1): 6 syncs/iteration.
    #[default]
    Bicgstab,
    /// BiCGSTAB with the fused-AXPY vector pass — bitwise-identical
    /// numerics, 5 syncs/iteration.
    BicgstabFused,
    /// Pipelined BiCGSTAB (fused reductions): 2 syncs/iteration.
    PipelinedBicgstab,
    /// Classical batched CG (SPD systems): 3 syncs/iteration.
    Cg,
    /// Pipelined CG (Ghysels–Vanroose): 1 sync/iteration.
    PipelinedCg,
}

impl SolverVariant {
    /// Parse a `--solver` flag value; `None` on an unknown name.
    pub fn parse(s: &str) -> Option<SolverVariant> {
        match s {
            "bicgstab" => Some(SolverVariant::Bicgstab),
            "bicgstab-fused" => Some(SolverVariant::BicgstabFused),
            "pipelined-bicgstab" => Some(SolverVariant::PipelinedBicgstab),
            "cg" => Some(SolverVariant::Cg),
            "pipelined-cg" => Some(SolverVariant::PipelinedCg),
            _ => None,
        }
    }

    /// The name used in reports, traces and metrics.
    pub fn name(self) -> &'static str {
        match self {
            SolverVariant::Bicgstab => "bicgstab",
            SolverVariant::BicgstabFused => "bicgstab-fused",
            SolverVariant::PipelinedBicgstab => "pipelined-bicgstab",
            SolverVariant::Cg => "cg",
            SolverVariant::PipelinedCg => "pipelined-cg",
        }
    }

    /// Every accepted `--solver` value, for usage/error messages.
    pub const NAMES: &'static [&'static str] = &[
        "bicgstab",
        "bicgstab-fused",
        "pipelined-bicgstab",
        "cg",
        "pipelined-cg",
    ];
}

/// Which batched preconditioner the iterative rungs run under.
///
/// Rung 3 (banded LU) and the fleet's CPU spill path are direct solves
/// and always run unpreconditioned regardless of this choice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PrecondVariant {
    /// `M = I`: no preconditioning.
    None,
    /// Scalar Jacobi (`M = diag(A)`), the paper's production choice.
    #[default]
    Jacobi,
    /// Batched block-Jacobi with dense per-block LU inversion; the
    /// payload is the block size.
    BlockJacobi(usize),
    /// Batched ILU(0): apply is a pair of level-scheduled sparse
    /// triangular solves, priced per level in the device model.
    Ilu0,
}

impl PrecondVariant {
    /// Block size used when `block-jacobi` is named without one.
    pub const DEFAULT_BLOCK: usize = 4;

    /// Parse a `--precond` flag value; `None` on an unknown name.
    pub fn parse(s: &str) -> Option<PrecondVariant> {
        match s {
            "none" => Some(PrecondVariant::None),
            "jacobi" => Some(PrecondVariant::Jacobi),
            "block-jacobi" => Some(PrecondVariant::BlockJacobi(Self::DEFAULT_BLOCK)),
            "ilu0" => Some(PrecondVariant::Ilu0),
            _ => s
                .strip_prefix("block-jacobi:")
                .and_then(|b| b.parse::<usize>().ok())
                .filter(|&b| b > 0)
                .map(PrecondVariant::BlockJacobi),
        }
    }

    /// The name used in reports, traces and metrics (block size elided).
    pub fn name(self) -> &'static str {
        match self {
            PrecondVariant::None => "none",
            PrecondVariant::Jacobi => "jacobi",
            PrecondVariant::BlockJacobi(_) => "block-jacobi",
            PrecondVariant::Ilu0 => "ilu0",
        }
    }

    /// Every accepted `--precond` form, for usage/error messages.
    pub const NAMES: &'static [&'static str] = &["none", "jacobi", "block-jacobi:<b>", "ilu0"];
}

/// A batch solver the service can dispatch to.
pub trait SolveEngine: Send + Sync + 'static {
    /// Solve every item of the batch; must return exactly one outcome
    /// per item, in order.
    fn solve_batch(&self, items: &[BatchItem]) -> Result<BatchReport>;
}

/// Knobs of the escalation ladder.
#[derive(Clone, Copy, Debug)]
pub struct LadderConfig {
    /// Tolerance used when an item carries none.
    pub default_tolerance: f64,
    /// BiCGSTAB iteration cap (rung 1).
    pub max_iters: usize,
    /// Whether rung 2 (restarted GMRES) runs at all.
    pub enable_gmres: bool,
    /// GMRES restart length.
    pub gmres_restart: usize,
    /// GMRES total-iteration cap.
    pub gmres_max_iters: usize,
    /// Whether rung 3 (banded LU) runs at all.
    pub enable_fallback: bool,
    /// Which fused solver variant carries rung 1.
    pub solver: SolverVariant,
    /// Which preconditioner the iterative rungs (1 and 2) run under.
    pub precond: PrecondVariant,
}

/// The production engine: BiCGSTAB → restarted GMRES → banded LU.
pub struct LadderEngine {
    device: DeviceSpec,
    pattern: Arc<SparsityPattern>,
    cfg: LadderConfig,
    hook: Arc<dyn LaunchHook>,
    tracer: Tracer,
    /// Fleet shard id stamped onto every simulated-device record the
    /// engine emits (0 = the single-device service default).
    shard: u32,
    /// Monotonic kernel-launch sequence across the engine's lifetime.
    launch_seq: AtomicU64,
    /// Concurrent batch executor carrying the fused rung-1 launch. The
    /// engine keeps its own chaos/trace seams (hook consulted and launch
    /// events emitted here, where rung context is known), so the inner
    /// executor runs bare.
    executor: BatchExecutor,
}

impl LadderEngine {
    /// Engine over `pattern`, priced on `device`, with no disruption.
    pub fn new(device: DeviceSpec, pattern: Arc<SparsityPattern>, cfg: LadderConfig) -> Self {
        Self::with_hook(device, pattern, cfg, Arc::new(NoDisruption))
    }

    /// Engine with a caller-provided launch hook (chaos testing).
    pub fn with_hook(
        device: DeviceSpec,
        pattern: Arc<SparsityPattern>,
        cfg: LadderConfig,
        hook: Arc<dyn LaunchHook>,
    ) -> LadderEngine {
        LadderEngine {
            executor: BatchExecutor::new(device.clone(), ExecMode::Concurrent),
            device,
            pattern,
            cfg,
            hook,
            tracer: Tracer::disabled(),
            shard: 0,
            launch_seq: AtomicU64::new(0),
        }
    }

    /// Attach a tracer: rung spans, per-iteration residuals, and the
    /// kernel-launch/transfer timeline flow into its sink.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Tag the engine with a fleet shard id: every kernel-launch,
    /// sync, reduction, and transfer record it emits carries the id,
    /// which the chrome exporter turns into one device lane per shard.
    pub fn with_shard(mut self, shard: u32) -> Self {
        self.shard = shard;
        self
    }

    /// Emit the simulated-device records of one fused launch: the h2d
    /// upload of the subset's operands, then the launch itself.
    fn trace_launch(&self, blocks: usize, upload_bytes: u64, report: &BatchSolveReport) {
        if !self.tracer.is_enabled() {
            return;
        }
        self.tracer.emit(
            None,
            transfer_event(&self.device, upload_bytes, Direction::HostToDevice)
                .with_shard(self.shard),
        );
        let seq = self.launch_seq.fetch_add(1, Ordering::Relaxed);
        self.tracer.emit(
            None,
            kernel_launch_event(
                seq,
                report.solver,
                &self.device,
                blocks,
                report.shared_per_block,
                report.global_vector_bytes,
                report.syncs_per_iteration,
                &report.kernel,
            )
            .with_shard(self.shard),
        );
        // Marker events for the device lane: where the launch's barriers
        // and reduction trees sit (direct rungs have none).
        if report.kernel.syncs > 0 {
            self.tracer.emit(
                None,
                sync_point_event(seq, report.solver, &report.kernel).with_shard(self.shard),
            );
        }
        if report.kernel.reductions > 0 {
            let width = (self.pattern.num_rows() * blocks) as u64;
            self.tracer.emit(
                None,
                reduction_event(seq, report.solver, width, &report.kernel).with_shard(self.shard),
            );
        }
    }

    /// Bytes a subset's operands (values + RHS) occupy on the wire.
    fn upload_bytes(items: &[BatchItem], subset: &[usize]) -> u64 {
        subset
            .iter()
            .map(|&i| ((items[i].values.len() + items[i].rhs.len()) * 8) as u64)
            .sum()
    }

    /// Tightest tolerance requested across the batch (a fused launch has
    /// one stopping criterion, so it must satisfy the strictest member).
    fn effective_tolerance(&self, items: &[BatchItem]) -> f64 {
        items
            .iter()
            .filter_map(|it| it.tolerance)
            .fold(self.cfg.default_tolerance, f64::min)
    }

    /// Build the CSR batch / RHS vectors for a subset of items.
    fn assemble(
        &self,
        items: &[BatchItem],
        subset: &[usize],
    ) -> Result<(BatchCsr<f64>, BatchVectors<f64>, BatchDims)> {
        let n = self.pattern.num_rows();
        let dims = BatchDims::new(subset.len(), n)?;
        let values: Vec<Vec<f64>> = subset.iter().map(|&i| items[i].values.clone()).collect();
        let a = BatchCsr::from_system_values(Arc::clone(&self.pattern), &values)?;
        let mut rhs_flat = Vec::with_capacity(subset.len() * n);
        for &i in subset {
            rhs_flat.extend_from_slice(&items[i].rhs);
        }
        let b = BatchVectors::from_values(dims, rhs_flat)?;
        Ok((a, b, dims))
    }

    /// Rung 1: one fused launch of the configured solver variant under
    /// `precond`, over the whole batch. Untraced, the launch rides the
    /// concurrent batch executor; traced, the BiCGSTAB-family variants
    /// bridge per-iteration residuals through their logger seam.
    #[allow(clippy::too_many_arguments)]
    fn run_rung1<P: Preconditioner<f64>>(
        &self,
        precond: P,
        tol: f64,
        a: &BatchCsr<f64>,
        b: &BatchVectors<f64>,
        x: &mut BatchVectors<f64>,
        items: &[BatchItem],
        traced: bool,
    ) -> Result<BatchSolveReport> {
        match self.cfg.solver {
            SolverVariant::Bicgstab | SolverVariant::BicgstabFused => {
                let solver = BatchBicgstab::new(precond, AbsResidual::new(tol))
                    .with_max_iters(self.cfg.max_iters)
                    .with_fused_axpy(self.cfg.solver == SolverVariant::BicgstabFused);
                if traced {
                    solver.solve_logged(&self.device, a, b, x, |k| {
                        TraceLogger::new(&self.tracer, items[k].id, 1)
                    })
                } else {
                    Ok(self
                        .executor
                        .execute(&solver, a, b, x)?
                        .fused
                        .expect("concurrent execution returns the fused report"))
                }
            }
            SolverVariant::PipelinedBicgstab => {
                let solver = PipelinedBicgstab::new(precond, AbsResidual::new(tol))
                    .with_max_iters(self.cfg.max_iters);
                if traced {
                    solver.solve_logged(&self.device, a, b, x, |k| {
                        TraceLogger::new(&self.tracer, items[k].id, 1)
                    })
                } else {
                    Ok(self
                        .executor
                        .execute(&solver, a, b, x)?
                        .fused
                        .expect("concurrent execution returns the fused report"))
                }
            }
            SolverVariant::Cg => {
                let solver =
                    BatchCg::new(precond, AbsResidual::new(tol)).with_max_iters(self.cfg.max_iters);
                if traced {
                    solver.solve(&self.device, a, b, x)
                } else {
                    Ok(self
                        .executor
                        .execute(&solver, a, b, x)?
                        .fused
                        .expect("concurrent execution returns the fused report"))
                }
            }
            SolverVariant::PipelinedCg => {
                let solver = PipelinedCg::new(precond, AbsResidual::new(tol))
                    .with_max_iters(self.cfg.max_iters);
                if traced {
                    solver.solve(&self.device, a, b, x)
                } else {
                    Ok(self
                        .executor
                        .execute(&solver, a, b, x)?
                        .fused
                        .expect("concurrent execution returns the fused report"))
                }
            }
        }
    }

    /// Rung 2: restarted GMRES under `precond` over the straggler subset.
    #[allow(clippy::too_many_arguments)]
    fn run_rung2_gmres<P: Preconditioner<f64>>(
        &self,
        precond: P,
        tol: f64,
        a: &BatchCsr<f64>,
        b: &BatchVectors<f64>,
        x: &mut BatchVectors<f64>,
        items: &[BatchItem],
        sub: &[usize],
        traced: bool,
    ) -> Result<BatchSolveReport> {
        let gmres = BatchGmres::new(precond, AbsResidual::new(tol), self.cfg.gmres_restart)
            .with_max_iters(self.cfg.gmres_max_iters);
        if traced {
            gmres.solve_logged(&self.device, a, b, x, |k| {
                TraceLogger::new(&self.tracer, items[sub[k]].id, 2)
            })
        } else {
            gmres.solve(&self.device, a, b, x)
        }
    }
}

impl SolveEngine for LadderEngine {
    fn solve_batch(&self, items: &[BatchItem]) -> Result<BatchReport> {
        // Chaos seam: the hook sees the fused launch before it happens.
        let ids: Vec<u64> = items.iter().map(|it| it.id).collect();
        match self.hook.disrupt(&ids) {
            LaunchDisruption::Proceed => {}
            LaunchDisruption::DeviceFail { code } => {
                return Err(Error::DeviceFailure { code });
            }
            LaunchDisruption::Panic { reason } => {
                panic!("{reason}");
            }
            LaunchDisruption::Stall(d) => {
                std::thread::sleep(d);
            }
        }

        let n = self.pattern.num_rows();
        let tol = self.effective_tolerance(items);
        let all: Vec<usize> = (0..items.len()).collect();

        // Rung 1: fused BiCGSTAB over the whole batch.
        let (a, b, dims) = self.assemble(items, &all)?;
        let mut x = BatchVectors::zeros(dims);
        for (i, it) in items.iter().enumerate() {
            if let Some(g) = &it.guess {
                x.system_mut(i).copy_from_slice(g);
            }
        }
        let traced = self.tracer.is_enabled();
        let method = self.cfg.solver.name();
        if traced {
            for it in items {
                self.tracer
                    .emit(Some(it.id), EventKind::RungBegin { rung: 1, method });
            }
        }
        // The preconditioner is a compile-time generic of the solver
        // kernels, so the runtime choice monomorphizes here: one arm per
        // ladder preconditioner, each instantiating the configured solver
        // variant through `run_rung1`.
        let report = match self.cfg.precond {
            PrecondVariant::None => self.run_rung1(Identity, tol, &a, &b, &mut x, items, traced)?,
            PrecondVariant::Jacobi => self.run_rung1(Jacobi, tol, &a, &b, &mut x, items, traced)?,
            PrecondVariant::BlockJacobi(bs) => {
                self.run_rung1(BlockJacobi::new(bs), tol, &a, &b, &mut x, items, traced)?
            }
            PrecondVariant::Ilu0 => {
                let ilu = Ilu0::new(Arc::clone(&self.pattern));
                self.run_rung1(ilu, tol, &a, &b, &mut x, items, traced)?
            }
        };
        if traced {
            self.trace_launch(items.len(), Self::upload_bytes(items, &all), &report);
            for (i, it) in items.iter().enumerate() {
                let r = &report.per_system[i];
                self.tracer.emit(
                    Some(it.id),
                    EventKind::RungEnd {
                        rung: 1,
                        method,
                        iterations: r.iterations,
                        residual: r.residual,
                        converged: r.converged,
                        breakdown: r.breakdown,
                    },
                );
            }
        }
        let mut sim_time_s = report.time_s();
        let mut syncs = report.syncs();
        let mut reductions = report.reductions();
        let mut split = SimSplit::default();
        split.add_transfer(
            &self.device,
            Self::upload_bytes(items, &all),
            Direction::HostToDevice,
        );
        split.add_kernel(&report);

        let mut outcomes: Vec<ItemOutcome> = items
            .iter()
            .enumerate()
            .map(|(i, it)| {
                let r = &report.per_system[i];
                ItemOutcome {
                    id: it.id,
                    x: x.system(i).to_vec(),
                    iterations: r.iterations,
                    residual: r.residual,
                    converged: r.converged,
                    method: SolveMethod::Bicgstab,
                    breakdown: r.breakdown,
                    rungs: vec![RungAttempt {
                        method: SolveMethod::Bicgstab,
                        iterations: r.iterations,
                        residual: r.residual,
                        converged: r.converged,
                        breakdown: r.breakdown,
                    }],
                }
            })
            .collect();

        let stragglers = |outcomes: &[ItemOutcome]| -> Vec<usize> {
            outcomes
                .iter()
                .enumerate()
                .filter(|(_, o)| !o.converged)
                .map(|(i, _)| i)
                .collect()
        };

        // Rung 2: restarted GMRES on whatever BiCGSTAB left behind,
        // warm-started from the (sanitized, finite) BiCGSTAB iterate.
        if self.cfg.enable_gmres {
            let sub = stragglers(&outcomes);
            if !sub.is_empty() {
                let (sub_a, sub_b, sub_dims) = self.assemble(items, &sub)?;
                let mut sub_x = BatchVectors::zeros(sub_dims);
                for (k, &i) in sub.iter().enumerate() {
                    sub_x.system_mut(k).copy_from_slice(&outcomes[i].x);
                }
                if traced {
                    for &i in &sub {
                        self.tracer.emit(
                            Some(items[i].id),
                            EventKind::RungBegin {
                                rung: 2,
                                method: "gmres",
                            },
                        );
                    }
                }
                // Rung 2 runs under the same preconditioner as rung 1.
                let g_report = match self.cfg.precond {
                    PrecondVariant::None => self.run_rung2_gmres(
                        Identity, tol, &sub_a, &sub_b, &mut sub_x, items, &sub, traced,
                    )?,
                    PrecondVariant::Jacobi => self.run_rung2_gmres(
                        Jacobi, tol, &sub_a, &sub_b, &mut sub_x, items, &sub, traced,
                    )?,
                    PrecondVariant::BlockJacobi(bs) => self.run_rung2_gmres(
                        BlockJacobi::new(bs),
                        tol,
                        &sub_a,
                        &sub_b,
                        &mut sub_x,
                        items,
                        &sub,
                        traced,
                    )?,
                    PrecondVariant::Ilu0 => self.run_rung2_gmres(
                        Ilu0::new(Arc::clone(&self.pattern)),
                        tol,
                        &sub_a,
                        &sub_b,
                        &mut sub_x,
                        items,
                        &sub,
                        traced,
                    )?,
                };
                if traced {
                    self.trace_launch(sub.len(), Self::upload_bytes(items, &sub), &g_report);
                    for (k, &i) in sub.iter().enumerate() {
                        let r = &g_report.per_system[k];
                        self.tracer.emit(
                            Some(items[i].id),
                            EventKind::RungEnd {
                                rung: 2,
                                method: "gmres",
                                iterations: r.iterations,
                                residual: r.residual,
                                converged: r.converged,
                                breakdown: r.breakdown,
                            },
                        );
                    }
                }
                sim_time_s += g_report.time_s();
                syncs += g_report.syncs();
                reductions += g_report.reductions();
                split.add_transfer(
                    &self.device,
                    Self::upload_bytes(items, &sub),
                    Direction::HostToDevice,
                );
                split.add_kernel(&g_report);
                for (k, &i) in sub.iter().enumerate() {
                    let r = &g_report.per_system[k];
                    let o = &mut outcomes[i];
                    o.rungs.push(RungAttempt {
                        method: SolveMethod::Gmres,
                        iterations: r.iterations,
                        residual: r.residual,
                        converged: r.converged,
                        breakdown: r.breakdown,
                    });
                    o.iterations += r.iterations;
                    if r.converged {
                        o.x = sub_x.system(k).to_vec();
                        o.residual = r.residual;
                        o.converged = true;
                        o.method = SolveMethod::Gmres;
                        o.breakdown = None;
                    } else {
                        o.breakdown = r.breakdown.or(o.breakdown);
                    }
                }
            }
        }

        // Rung 3: banded-LU direct solve — always produces a solution
        // modulo genuine singularity, so a missed iteration cap degrades
        // to dgbsv cost instead of an error.
        if self.cfg.enable_fallback {
            let sub = stragglers(&outcomes);
            if !sub.is_empty() {
                let sub_values: Vec<Vec<f64>> =
                    sub.iter().map(|&i| items[i].values.clone()).collect();
                let sub_a = BatchCsr::from_system_values(Arc::clone(&self.pattern), &sub_values)?;
                let banded = BatchBanded::from_csr(&sub_a)?;
                let sub_dims = BatchDims::new(sub.len(), n)?;
                let mut sub_rhs = Vec::with_capacity(sub.len() * n);
                for &i in &sub {
                    sub_rhs.extend_from_slice(&items[i].rhs);
                }
                let sub_b = BatchVectors::from_values(sub_dims, sub_rhs)?;
                let mut sub_x = BatchVectors::zeros(sub_dims);
                if traced {
                    for &i in &sub {
                        self.tracer.emit(
                            Some(items[i].id),
                            EventKind::RungBegin {
                                rung: 3,
                                method: "banded-lu",
                            },
                        );
                    }
                }
                let lu_report = BatchBandedLu.solve(&self.device, &banded, &sub_b, &mut sub_x)?;
                if traced {
                    self.trace_launch(sub.len(), Self::upload_bytes(items, &sub), &lu_report);
                    for (k, &i) in sub.iter().enumerate() {
                        let lr = &lu_report.per_system[k];
                        self.tracer.emit(
                            Some(items[i].id),
                            EventKind::RungEnd {
                                rung: 3,
                                method: "banded-lu",
                                iterations: lr.iterations,
                                residual: lr.residual,
                                converged: lr.converged,
                                breakdown: lr.breakdown,
                            },
                        );
                    }
                }
                sim_time_s += lu_report.time_s();
                syncs += lu_report.syncs();
                reductions += lu_report.reductions();
                split.add_transfer(
                    &self.device,
                    Self::upload_bytes(items, &sub),
                    Direction::HostToDevice,
                );
                split.add_kernel(&lu_report);
                for (k, &i) in sub.iter().enumerate() {
                    let lr = &lu_report.per_system[k];
                    let o = &mut outcomes[i];
                    o.rungs.push(RungAttempt {
                        method: SolveMethod::BandedLuFallback,
                        iterations: lr.iterations,
                        residual: lr.residual,
                        converged: lr.converged,
                        breakdown: lr.breakdown,
                    });
                    if lr.converged {
                        o.x = sub_x.system(k).to_vec();
                        o.residual = lr.residual;
                        o.converged = true;
                        o.method = SolveMethod::BandedLuFallback;
                        o.breakdown = None;
                    } else {
                        o.breakdown = lr.breakdown.or(o.breakdown);
                    }
                }
            }
        }

        // Download of the solutions, one fused d2h copy for the batch.
        if traced {
            self.tracer.emit(
                None,
                transfer_event(
                    &self.device,
                    (items.len() * n * 8) as u64,
                    Direction::DeviceToHost,
                )
                .with_shard(self.shard),
            );
        }

        split.add_transfer(
            &self.device,
            (items.len() * n * 8) as u64,
            Direction::DeviceToHost,
        );

        Ok(BatchReport {
            outcomes,
            sim_time_s,
            syncs,
            reductions,
            solver: method,
            split,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(tol: f64, max_iters: usize) -> LadderConfig {
        LadderConfig {
            default_tolerance: tol,
            max_iters,
            enable_gmres: true,
            gmres_restart: 30,
            gmres_max_iters: 300,
            enable_fallback: true,
            solver: SolverVariant::Bicgstab,
            precond: PrecondVariant::Jacobi,
        }
    }

    /// 1-D Laplacian values over a tridiagonal pattern, diagonally
    /// dominant so Jacobi-BiCGSTAB converges fast.
    fn laplacian_case(n: usize) -> (Arc<SparsityPattern>, Vec<f64>, Vec<f64>) {
        let mut coords = Vec::new();
        for r in 0..n {
            if r > 0 {
                coords.push((r, r - 1));
            }
            coords.push((r, r));
            if r + 1 < n {
                coords.push((r, r + 1));
            }
        }
        let pattern = Arc::new(SparsityPattern::from_coords(n, &coords).unwrap());
        let mut values = Vec::with_capacity(pattern.nnz());
        for r in 0..n {
            if r > 0 {
                values.push(-1.0);
            }
            values.push(4.0);
            if r + 1 < n {
                values.push(-1.0);
            }
        }
        let rhs = vec![1.0; n];
        (pattern, values, rhs)
    }

    fn items_of(values: &[f64], rhs: &[f64], count: usize) -> Vec<BatchItem> {
        (0..count as u64)
            .map(|id| BatchItem {
                id,
                values: values.to_vec(),
                rhs: rhs.to_vec(),
                guess: None,
                tolerance: None,
            })
            .collect()
    }

    #[test]
    fn precond_variant_parses_every_flag_form() {
        assert_eq!(PrecondVariant::parse("none"), Some(PrecondVariant::None));
        assert_eq!(
            PrecondVariant::parse("jacobi"),
            Some(PrecondVariant::Jacobi)
        );
        assert_eq!(
            PrecondVariant::parse("block-jacobi:8"),
            Some(PrecondVariant::BlockJacobi(8))
        );
        assert_eq!(
            PrecondVariant::parse("block-jacobi"),
            Some(PrecondVariant::BlockJacobi(PrecondVariant::DEFAULT_BLOCK))
        );
        assert_eq!(PrecondVariant::parse("ilu0"), Some(PrecondVariant::Ilu0));
        assert_eq!(PrecondVariant::parse("block-jacobi:0"), None);
        assert_eq!(PrecondVariant::parse("block-jacobi:x"), None);
        assert_eq!(PrecondVariant::parse("ssor"), None);
    }

    #[test]
    fn every_precond_variant_carries_rung_one() {
        let (pattern, values, rhs) = laplacian_case(32);
        for pv in [
            PrecondVariant::None,
            PrecondVariant::Jacobi,
            PrecondVariant::BlockJacobi(2),
            PrecondVariant::Ilu0,
        ] {
            let mut c = cfg(1e-10, 200);
            c.precond = pv;
            let engine = LadderEngine::new(DeviceSpec::v100(), Arc::clone(&pattern), c);
            let report = engine.solve_batch(&items_of(&values, &rhs, 3)).unwrap();
            for o in &report.outcomes {
                assert!(o.converged, "{}: system {} unconverged", pv.name(), o.id);
                assert_eq!(
                    o.rungs.len(),
                    1,
                    "{}: healthy systems climb no rungs",
                    pv.name()
                );
            }
        }
    }

    #[test]
    fn ilu0_rung_converges_in_fewer_iterations_than_jacobi() {
        // ILU(0) on a tridiagonal pattern is an exact factorization, so
        // rung 1 converges essentially immediately.
        let (pattern, values, rhs) = laplacian_case(48);
        let run = |pv: PrecondVariant| {
            let mut c = cfg(1e-10, 200);
            c.precond = pv;
            let engine = LadderEngine::new(DeviceSpec::v100(), Arc::clone(&pattern), c);
            let report = engine.solve_batch(&items_of(&values, &rhs, 2)).unwrap();
            report.outcomes.iter().map(|o| o.iterations).max().unwrap()
        };
        let jacobi = run(PrecondVariant::Jacobi);
        let ilu0 = run(PrecondVariant::Ilu0);
        assert!(
            ilu0 < jacobi,
            "ilu0 iterations {ilu0} should beat jacobi {jacobi}"
        );
    }

    #[test]
    fn engine_solves_a_batch_on_the_first_rung() {
        let (pattern, values, rhs) = laplacian_case(32);
        let engine = LadderEngine::new(DeviceSpec::v100(), Arc::clone(&pattern), cfg(1e-10, 200));
        let report = engine.solve_batch(&items_of(&values, &rhs, 4)).unwrap();
        assert_eq!(report.outcomes.len(), 4);
        for o in &report.outcomes {
            assert!(o.converged, "system {} residual {}", o.id, o.residual);
            assert_eq!(o.method, SolveMethod::Bicgstab);
            assert_eq!(o.rungs.len(), 1, "healthy systems climb no rungs");
            assert!(o.residual <= 1e-10);
        }
        assert!(report.sim_time_s > 0.0);
    }

    #[test]
    fn sim_split_decomposes_the_dispatch() {
        let (pattern, values, rhs) = laplacian_case(32);
        let engine = LadderEngine::new(DeviceSpec::v100(), Arc::clone(&pattern), cfg(1e-10, 200));
        let report = engine.solve_batch(&items_of(&values, &rhs, 4)).unwrap();
        let s = report.split;
        assert!(s.spmv_us > 0.0, "compute component present");
        assert!(s.sync_us > 0.0, "barrier component present");
        assert!(s.transfer_us > 0.0, "h2d + d2h priced");
        assert!(s.reduction_us >= 0.0);
        // The kernel components reassemble the simulated kernel time; the
        // transfer component sits on top of it.
        let kernel_us = s.spmv_us + s.sync_us + s.reduction_us;
        assert!(
            (kernel_us - report.sim_time_s * 1e6).abs() < 1e-6,
            "kernel split {kernel_us} vs sim_time {}",
            report.sim_time_s * 1e6
        );
        let per = s.per_item(4);
        assert!((per.total_us() * 4.0 - s.total_us()).abs() < 1e-9);
    }

    #[test]
    fn starved_bicgstab_escalates_to_gmres() {
        let (pattern, values, rhs) = laplacian_case(24);
        // One BiCGSTAB iteration cannot reach 1e-10, but GMRES with
        // restart >= n solves the system exactly within one cycle.
        let mut c = cfg(1e-10, 1);
        c.gmres_restart = 32;
        let engine = LadderEngine::new(DeviceSpec::v100(), Arc::clone(&pattern), c);
        let report = engine.solve_batch(&items_of(&values, &rhs, 1)).unwrap();
        let o = &report.outcomes[0];
        assert!(o.converged);
        assert_eq!(o.method, SolveMethod::Gmres);
        assert_eq!(o.rungs.len(), 2);
        assert_eq!(o.rungs[0].method, SolveMethod::Bicgstab);
        assert!(!o.rungs[0].converged);
        assert_eq!(o.rungs[1].method, SolveMethod::Gmres);
        assert!(
            o.iterations > o.rungs[0].iterations,
            "iterations accumulate"
        );
    }

    #[test]
    fn starved_iterative_rungs_fall_through_to_lu() {
        let (pattern, values, rhs) = laplacian_case(64);
        // Cripple both iterative rungs: the direct rung must rescue it.
        let mut c = cfg(1e-12, 1);
        c.gmres_restart = 2;
        c.gmres_max_iters = 2;
        let engine = LadderEngine::new(DeviceSpec::v100(), Arc::clone(&pattern), c);
        let report = engine.solve_batch(&items_of(&values, &rhs, 1)).unwrap();
        let o = &report.outcomes[0];
        assert!(o.converged, "direct rung must rescue the request");
        assert_eq!(o.method, SolveMethod::BandedLuFallback);
        assert_eq!(o.rungs.len(), 3, "all three rungs attempted");
        assert!(o.residual < 1e-8, "direct solve residual {}", o.residual);
    }

    #[test]
    fn ladder_disabled_reports_not_converged() {
        let (pattern, values, rhs) = laplacian_case(64);
        let mut c = cfg(1e-12, 1);
        c.enable_gmres = false;
        c.enable_fallback = false;
        let engine = LadderEngine::new(DeviceSpec::v100(), Arc::clone(&pattern), c);
        let report = engine.solve_batch(&items_of(&values, &rhs, 1)).unwrap();
        let o = &report.outcomes[0];
        assert!(!o.converged);
        assert_eq!(o.method, SolveMethod::Bicgstab);
        assert_eq!(o.rungs.len(), 1);
    }

    #[test]
    fn singular_system_fails_every_rung_without_poisoning_neighbors() {
        let (pattern, values, rhs) = laplacian_case(16);
        let mut bad_values = values.clone();
        // Zero out row 5 entirely: structurally singular.
        let (lo, hi) = pattern.row_range(5);
        for v in &mut bad_values[lo..hi] {
            *v = 0.0;
        }
        let mut items = items_of(&values, &rhs, 3);
        items[1].values = bad_values;
        let engine = LadderEngine::new(DeviceSpec::v100(), Arc::clone(&pattern), cfg(1e-10, 50));
        let report = engine.solve_batch(&items).unwrap();
        assert!(report.outcomes[0].converged);
        assert!(report.outcomes[2].converged);
        let bad = &report.outcomes[1];
        assert!(!bad.converged, "singular system cannot converge");
        assert!(bad.breakdown.is_some());
        assert_eq!(bad.rungs.len(), 3, "ladder exhausted");
        assert!(
            bad.x.iter().all(|v| v.is_finite()),
            "failed outcome still returns finite x"
        );
        // Healthy neighbors solve to the same answer as a clean batch.
        let clean = engine.solve_batch(&items_of(&values, &rhs, 3)).unwrap();
        assert_eq!(report.outcomes[0].x, clean.outcomes[0].x);
        assert_eq!(report.outcomes[2].x, clean.outcomes[2].x);
    }

    #[test]
    fn tightest_member_tolerance_wins() {
        let (pattern, values, rhs) = laplacian_case(16);
        let mut c = cfg(1e-4, 200);
        c.enable_gmres = false;
        c.enable_fallback = false;
        let engine = LadderEngine::new(DeviceSpec::v100(), Arc::clone(&pattern), c);
        let items: Vec<BatchItem> = [None, Some(1e-11)]
            .into_iter()
            .enumerate()
            .map(|(id, tolerance)| BatchItem {
                id: id as u64,
                values: values.clone(),
                rhs: rhs.clone(),
                guess: None,
                tolerance,
            })
            .collect();
        assert_eq!(engine.effective_tolerance(&items), 1e-11);
        let report = engine.solve_batch(&items).unwrap();
        for o in &report.outcomes {
            assert!(o.converged);
            assert!(o.residual <= 1e-11, "residual {} too loose", o.residual);
        }
    }

    #[test]
    fn traced_engine_emits_rung_spans_and_launch_timeline() {
        use batsolv_trace::MemorySink;
        let sink = Arc::new(MemorySink::new());
        let (pattern, values, rhs) = laplacian_case(16);
        let engine = LadderEngine::new(DeviceSpec::v100(), Arc::clone(&pattern), cfg(1e-10, 200))
            .with_tracer(Tracer::new(sink.clone()));
        engine.solve_batch(&items_of(&values, &rhs, 2)).unwrap();
        let events = sink.snapshot();
        let count =
            |pred: &dyn Fn(&EventKind) -> bool| events.iter().filter(|e| pred(&e.kind)).count();
        assert_eq!(
            count(&|k| matches!(k, EventKind::RungBegin { rung: 1, .. })),
            2
        );
        assert_eq!(
            count(&|k| matches!(
                k,
                EventKind::RungEnd {
                    rung: 1,
                    converged: true,
                    ..
                }
            )),
            2
        );
        assert_eq!(
            count(&|k| matches!(k, EventKind::KernelLaunch { .. })),
            1,
            "healthy batch pays exactly one launch"
        );
        assert_eq!(count(&|k| matches!(k, EventKind::Transfer { .. })), 2);
        assert!(
            count(&|k| matches!(k, EventKind::SolverIteration { rung: 1, .. })) > 0,
            "per-iteration residuals bridge through the TraceLogger"
        );
        // Iteration events carry the owning request's id.
        assert!(events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SolverIteration { .. }))
            .all(|e| matches!(e.trace_id, Some(0) | Some(1))));
    }

    #[test]
    fn escalation_traces_every_rung_and_launch() {
        use batsolv_trace::MemorySink;
        let sink = Arc::new(MemorySink::new());
        let (pattern, values, rhs) = laplacian_case(64);
        let mut c = cfg(1e-12, 1);
        c.gmres_restart = 2;
        c.gmres_max_iters = 2;
        let engine = LadderEngine::new(DeviceSpec::v100(), Arc::clone(&pattern), c)
            .with_tracer(Tracer::new(sink.clone()));
        engine.solve_batch(&items_of(&values, &rhs, 1)).unwrap();
        let events = sink.snapshot();
        let launches: Vec<u64> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::KernelLaunch { seq, .. } => Some(seq),
                _ => None,
            })
            .collect();
        assert_eq!(launches, vec![0, 1, 2], "one launch per rung, ordered seq");
        for rung in 1..=3u8 {
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e.kind, EventKind::RungBegin { rung: r, .. } if r == rung)),
                "rung {rung} begin missing"
            );
        }
    }

    #[test]
    fn device_fail_hook_fails_the_whole_launch() {
        struct AlwaysFail;
        impl LaunchHook for AlwaysFail {
            fn disrupt(&self, _ids: &[u64]) -> LaunchDisruption {
                LaunchDisruption::DeviceFail { code: "test_fail" }
            }
        }
        let (pattern, values, rhs) = laplacian_case(8);
        let engine = LadderEngine::with_hook(
            DeviceSpec::v100(),
            Arc::clone(&pattern),
            cfg(1e-10, 50),
            Arc::new(AlwaysFail),
        );
        match engine.solve_batch(&items_of(&values, &rhs, 2)) {
            Err(Error::DeviceFailure { code }) => assert_eq!(code, "test_fail"),
            other => panic!("expected DeviceFailure, got {other:?}"),
        }
    }
}
