//! `BatchExecutor`: the batch dimension as an explicit dispatch choice.
//!
//! The paper's central execution decision (§III) is *how many kernel
//! launches a batch costs*: looping the systems — one launch each, paying
//! the launch overhead and a nearly-idle device `N` times — or fusing
//! them into **one** launch with one thread block per system. This
//! executor reifies that choice as [`ExecMode`] so both paths run the
//! *same* solver over the *same* operands:
//!
//! * [`ExecMode::Concurrent`] — one fused launch. The solver's numeric
//!   phase fans one task per system across the rayon-shim worker pool
//!   (the host stand-in for "one thread block per system") and the
//!   results are collected back **in batch order** — the reduction order
//!   is deterministic and independent of worker scheduling.
//! * [`ExecMode::Sequential`] — the baseline: `N` single-system launches
//!   through [`SystemSlice`], each priced with its own launch overhead
//!   and its own (single-block) makespan; the device model is what shows
//!   the cost, since the numerics are identical.
//!
//! Because a [`SystemSlice`] delegates to the exact kernels the fused
//! solve runs, both modes produce **bitwise-identical** solutions — the
//! differential tests pin this down, which is what licenses reading the
//! fused/sequential simulated-time ratio as real speedup.
//!
//! The executor threads the same observability seams as the ladder
//! engine: a [`LaunchHook`] is consulted before every launch (once per
//! system in sequential mode — a failure there loses only that system's
//! launch; once for the whole batch in concurrent mode — a failure loses
//! everything, exactly the blast-radius asymmetry of real devices), and
//! an attached [`Tracer`] receives one `KernelLaunch` event per launch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use batsolv_formats::{BatchMatrix, BatchVectors, SystemSlice};
use batsolv_gpusim::{
    kernel_launch_event, reduction_event, sync_point_event, DeviceSpec, LaunchDisruption,
    LaunchHook, NoDisruption,
};
use batsolv_solvers::{BatchSolveReport, IterativeSolver, SystemResult};
use batsolv_trace::Tracer;
use batsolv_types::{Error, Result, Scalar};

/// How the batch dimension is mapped onto launches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// One fused launch, one worker task ("thread block") per system.
    #[default]
    Concurrent,
    /// One launch per system, in batch order (the paper's loop baseline).
    Sequential,
}

impl ExecMode {
    /// Short name used in reports and benchmark JSON.
    pub fn short_name(self) -> &'static str {
        match self {
            ExecMode::Concurrent => "concurrent",
            ExecMode::Sequential => "sequential",
        }
    }
}

/// What one executed batch cost and produced.
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Per-system convergence records, in batch order.
    pub per_system: Vec<SystemResult>,
    /// Total simulated device time across all launches, seconds.
    pub sim_time_s: f64,
    /// Kernel launches performed (1 fused, or one per system).
    pub launches: usize,
    /// Synchronization points paid across all launches (worst block).
    pub syncs: u64,
    /// Reduction trees performed across all launches (exposed + hidden).
    pub reductions: u64,
    /// Synchronization points per solver iteration (a property of the
    /// solver variant, identical for every launch of the batch).
    pub syncs_per_iteration: f64,
    /// The mode that ran.
    pub mode: ExecMode,
    /// The fused solve report (concurrent mode only).
    pub fused: Option<BatchSolveReport>,
}

impl ExecReport {
    /// True when every system met the stop criterion.
    pub fn all_converged(&self) -> bool {
        self.per_system.iter().all(|s| s.converged)
    }
}

/// Runs an [`IterativeSolver`] over a batch in a chosen [`ExecMode`].
pub struct BatchExecutor {
    device: DeviceSpec,
    mode: ExecMode,
    hook: Arc<dyn LaunchHook>,
    tracer: Tracer,
    launch_seq: AtomicU64,
}

impl BatchExecutor {
    /// Executor on `device` with no disruption and no tracing.
    pub fn new(device: DeviceSpec, mode: ExecMode) -> Self {
        BatchExecutor {
            device,
            mode,
            hook: Arc::new(NoDisruption),
            tracer: Tracer::disabled(),
            launch_seq: AtomicU64::new(0),
        }
    }

    /// Attach a launch hook (chaos seam), consulted before every launch.
    pub fn with_hook(mut self, hook: Arc<dyn LaunchHook>) -> Self {
        self.hook = hook;
        self
    }

    /// Attach a tracer: every launch emits a `KernelLaunch` event.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    fn consult_hook(&self, ids: &[u64]) -> Result<()> {
        match self.hook.disrupt(ids) {
            LaunchDisruption::Proceed => Ok(()),
            LaunchDisruption::DeviceFail { code } => Err(Error::DeviceFailure { code }),
            LaunchDisruption::Panic { reason } => panic!("{reason}"),
            LaunchDisruption::Stall(d) => {
                std::thread::sleep(d);
                Ok(())
            }
        }
    }

    fn trace_launch(&self, blocks: usize, rows: usize, report: &BatchSolveReport) {
        if !self.tracer.is_enabled() {
            return;
        }
        let seq = self.launch_seq.fetch_add(1, Ordering::Relaxed);
        self.tracer.emit(
            None,
            kernel_launch_event(
                seq,
                report.solver,
                &self.device,
                blocks,
                report.shared_per_block,
                report.global_vector_bytes,
                report.syncs_per_iteration,
                &report.kernel,
            ),
        );
        // Marker events for the device lane: where the launch's barriers
        // and reduction trees sit (direct solvers have none).
        if report.kernel.syncs > 0 {
            self.tracer
                .emit(None, sync_point_event(seq, report.solver, &report.kernel));
        }
        if report.kernel.reductions > 0 {
            self.tracer.emit(
                None,
                reduction_event(seq, report.solver, (rows * blocks) as u64, &report.kernel),
            );
        }
    }

    /// Solve `A_i x_i = b_i` for the whole batch, `x` as initial guess.
    ///
    /// In sequential mode a launch-hook failure on one system marks only
    /// that system failed (`breakdown = "device_failure"`, its lane of
    /// `x` untouched) and the loop continues; in concurrent mode the one
    /// fused launch is the unit of loss and the whole call errors.
    pub fn execute<T, S, M>(
        &self,
        solver: &S,
        a: &M,
        b: &BatchVectors<T>,
        x: &mut BatchVectors<T>,
    ) -> Result<ExecReport>
    where
        T: Scalar,
        S: IterativeSolver<T>,
        M: BatchMatrix<T>,
    {
        let dims = a.dims();
        dims.ensure_same(&b.dims(), "executor b")?;
        dims.ensure_same(&x.dims(), "executor x")?;
        let ids: Vec<u64> = (0..dims.num_systems as u64).collect();

        match self.mode {
            ExecMode::Concurrent => {
                self.consult_hook(&ids)?;
                let report = solver.solve_batch(&self.device, a, b, x)?;
                self.trace_launch(dims.num_systems, dims.num_rows, &report);
                Ok(ExecReport {
                    per_system: report.per_system.clone(),
                    sim_time_s: report.time_s(),
                    launches: 1,
                    syncs: report.syncs(),
                    reductions: report.reductions(),
                    syncs_per_iteration: report.syncs_per_iteration,
                    mode: self.mode,
                    fused: Some(report),
                })
            }
            ExecMode::Sequential => {
                let mut per_system = Vec::with_capacity(dims.num_systems);
                let mut sim_time_s = 0.0;
                let mut launches = 0usize;
                let mut syncs = 0u64;
                let mut reductions = 0u64;
                let mut syncs_per_iteration = 0.0;
                for i in 0..dims.num_systems {
                    if let Err(Error::DeviceFailure { .. }) = self.consult_hook(&ids[i..=i]) {
                        per_system.push(SystemResult {
                            iterations: 0,
                            residual: f64::INFINITY,
                            converged: false,
                            breakdown: Some("device_failure"),
                        });
                        continue;
                    }
                    let slice = SystemSlice::new(a, i)?;
                    let bi = BatchVectors::from_values(slice.dims(), b.system(i).to_vec())?;
                    let mut xi = BatchVectors::from_values(slice.dims(), x.system(i).to_vec())?;
                    let report = solver.solve_batch(&self.device, &slice, &bi, &mut xi)?;
                    x.system_mut(i).copy_from_slice(xi.system(0));
                    self.trace_launch(1, dims.num_rows, &report);
                    sim_time_s += report.time_s();
                    launches += 1;
                    syncs += report.syncs();
                    reductions += report.reductions();
                    syncs_per_iteration = report.syncs_per_iteration;
                    per_system.push(report.per_system[0]);
                }
                Ok(ExecReport {
                    per_system,
                    sim_time_s,
                    launches,
                    syncs,
                    reductions,
                    syncs_per_iteration,
                    mode: self.mode,
                    fused: None,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use batsolv_formats::{BatchCsr, BatchEll, SparsityPattern};
    use batsolv_solvers::{BatchBicgstab, Jacobi, RelResidual};
    use batsolv_trace::{EventKind, MemorySink};

    use super::*;

    fn batch(ns: usize) -> BatchCsr<f64> {
        let p = Arc::new(SparsityPattern::stencil_2d(6, 5, true));
        let mut m = BatchCsr::zeros(ns, p).unwrap();
        for i in 0..ns {
            m.fill_system(i, |r, c| {
                if r == c {
                    9.0 + (i % 7) as f64 * 0.3
                } else {
                    -0.4 - ((r + c + i) % 5) as f64 * 0.07
                }
            });
        }
        m
    }

    fn solver() -> BatchBicgstab<f64, Jacobi, RelResidual<f64>> {
        BatchBicgstab::new(Jacobi, RelResidual::new(1e-10))
    }

    #[test]
    fn concurrent_and_sequential_agree_bitwise() {
        let m = batch(8);
        let dims = m.dims();
        let b = BatchVectors::from_fn(dims, |s, r| ((s * 3 + r) as f64 * 0.11).sin());

        let mut x_con = BatchVectors::zeros(dims);
        let con = BatchExecutor::new(DeviceSpec::v100(), ExecMode::Concurrent)
            .execute(&solver(), &m, &b, &mut x_con)
            .unwrap();
        let mut x_seq = BatchVectors::zeros(dims);
        let seq = BatchExecutor::new(DeviceSpec::v100(), ExecMode::Sequential)
            .execute(&solver(), &m, &b, &mut x_seq)
            .unwrap();

        assert_eq!(
            x_con.values(),
            x_seq.values(),
            "solutions must be bitwise equal"
        );
        assert_eq!(con.per_system, seq.per_system);
        assert_eq!(con.launches, 1);
        assert_eq!(seq.launches, 8);
        assert!(con.all_converged());
    }

    #[test]
    fn fusing_the_batch_amortizes_launch_overhead() {
        // The paper's Figure 4 effect: N sequential launches each pay the
        // launch overhead and run one block on an empty device, so the
        // fused launch must be substantially faster in simulated time.
        let m = batch(64);
        let dims = m.dims();
        let b = BatchVectors::constant(dims, 1.0);

        let mut x1 = BatchVectors::zeros(dims);
        let con = BatchExecutor::new(DeviceSpec::v100(), ExecMode::Concurrent)
            .execute(&solver(), &m, &b, &mut x1)
            .unwrap();
        let mut x2 = BatchVectors::zeros(dims);
        let seq = BatchExecutor::new(DeviceSpec::v100(), ExecMode::Sequential)
            .execute(&solver(), &m, &b, &mut x2)
            .unwrap();

        let speedup = seq.sim_time_s / con.sim_time_s;
        assert!(
            speedup >= 2.0,
            "expected >=2x from fusing 64 systems, got {speedup:.2}x \
             (seq {:.3e} vs con {:.3e})",
            seq.sim_time_s,
            con.sim_time_s
        );
    }

    #[test]
    fn executor_works_on_ell_column_major() {
        let m = batch(6);
        let ell = BatchEll::from_csr(&m).unwrap();
        let dims = m.dims();
        let b = BatchVectors::constant(dims, 1.0);
        let mut x_csr = BatchVectors::zeros(dims);
        let mut x_ell = BatchVectors::zeros(dims);
        let ex = BatchExecutor::new(DeviceSpec::v100(), ExecMode::Concurrent);
        ex.execute(&solver(), &m, &b, &mut x_csr).unwrap();
        let rep = ex.execute(&solver(), &ell, &b, &mut x_ell).unwrap();
        assert!(rep.all_converged());
        for (a, c) in x_ell.values().iter().zip(x_csr.values()) {
            assert!((a - c).abs() <= 1e-9 * c.abs().max(1.0));
        }
    }

    #[test]
    fn tracer_sees_one_launch_per_mode_unit() {
        let m = batch(5);
        let dims = m.dims();
        let b = BatchVectors::constant(dims, 1.0);

        let sink = Arc::new(MemorySink::new());
        let mut x = BatchVectors::zeros(dims);
        BatchExecutor::new(DeviceSpec::v100(), ExecMode::Concurrent)
            .with_tracer(Tracer::new(sink.clone()))
            .execute(&solver(), &m, &b, &mut x)
            .unwrap();
        let launches = |s: &MemorySink| {
            s.snapshot()
                .iter()
                .filter(|e| matches!(e.kind, EventKind::KernelLaunch { .. }))
                .count()
        };
        assert_eq!(launches(&sink), 1);

        let sink = Arc::new(MemorySink::new());
        let mut x = BatchVectors::zeros(dims);
        BatchExecutor::new(DeviceSpec::v100(), ExecMode::Sequential)
            .with_tracer(Tracer::new(sink.clone()))
            .execute(&solver(), &m, &b, &mut x)
            .unwrap();
        assert_eq!(launches(&sink), 5);
    }

    #[test]
    fn hook_failure_loses_one_launch_sequential_but_all_concurrent() {
        /// Fails exactly the launch that carries id 2.
        struct FailOne;
        impl LaunchHook for FailOne {
            fn disrupt(&self, ids: &[u64]) -> LaunchDisruption {
                if ids.contains(&2) {
                    LaunchDisruption::DeviceFail { code: "zap" }
                } else {
                    LaunchDisruption::Proceed
                }
            }
        }

        let m = batch(4);
        let dims = m.dims();
        let b = BatchVectors::constant(dims, 1.0);

        // Sequential: only system 2's launch is lost.
        let mut x = BatchVectors::zeros(dims);
        let rep = BatchExecutor::new(DeviceSpec::v100(), ExecMode::Sequential)
            .with_hook(Arc::new(FailOne))
            .execute(&solver(), &m, &b, &mut x)
            .unwrap();
        assert_eq!(rep.launches, 3);
        assert!(!rep.per_system[2].converged);
        assert_eq!(rep.per_system[2].breakdown, Some("device_failure"));
        for i in [0usize, 1, 3] {
            assert!(rep.per_system[i].converged, "system {i} must survive");
        }
        assert!(x.system(2).iter().all(|&v| v == 0.0), "lost lane untouched");

        // Concurrent: the fused launch carries id 2, everything is lost.
        let mut x = BatchVectors::zeros(dims);
        let err = BatchExecutor::new(DeviceSpec::v100(), ExecMode::Concurrent)
            .with_hook(Arc::new(FailOne))
            .execute(&solver(), &m, &b, &mut x)
            .unwrap_err();
        assert!(matches!(err, Error::DeviceFailure { code: "zap" }));
    }
}
