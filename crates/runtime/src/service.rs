//! The solve service: submission API, supervised worker, lifecycle.
//!
//! The worker is *supervised*: the batch loop runs under
//! `catch_unwind`, and a panic during a fused dispatch does not take the
//! service down. Instead the batch is re-dispatched one system at a time
//! so the panic is attributed to the request that provokes it — its
//! ticket resolves to [`SolveError::WorkerPanic`] while every innocent
//! neighbor is solved normally. The same isolation applies to simulated
//! device failures. A watchdog thread flags dispatches that exceed a time
//! budget, and a circuit breaker sheds load after a run of degraded
//! batches.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use batsolv_formats::SparsityPattern;
use batsolv_gpusim::LaunchHook;
use batsolv_trace::{classify, EventKind, PhaseLedger, Tracer};
use batsolv_types::{Error, Result};

use crate::admission::{AdmissionGate, RejectReason};
use crate::autotune::AutoTuner;
use crate::breaker::CircuitBreaker;
use crate::classes::{ClassTracker, ClassesSnapshot};
use crate::config::RuntimeConfig;
use crate::dispatcher::{BatchItem, LadderConfig, LadderEngine, SimSplit, SolveEngine};
use crate::former::{BatchFormer, FlushReason};
use crate::queue::{BoundedQueue, PopResult, PushResult};
use crate::request::{Solution, SolveError, SolveOutcome, SolveRequest, SubmitError, Ticket};
use crate::stats::{BatchOutcomes, StatsRegistry, StatsSnapshot};
use crate::watchdog::{spawn_watchdog, WatchState};

/// A request as it travels through the queue and former.
struct Pending {
    item: BatchItem,
    deadline: Option<Duration>,
    enqueued_at: Instant,
    /// Time spent in admission (shape/finiteness/breaker checks) before
    /// the request entered the queue.
    admission: Duration,
    /// When the worker popped it from the queue (queue→linger boundary).
    popped_at: Option<Instant>,
    reply: mpsc::Sender<SolveOutcome>,
}

struct Shared {
    queue: BoundedQueue<Pending>,
    stats: StatsRegistry,
    classes: ClassTracker,
    watch: Arc<WatchState>,
    breaker: Option<CircuitBreaker>,
    tracer: Tracer,
    /// Telemetry autotuner, when the config enables one. Observes every
    /// terminal convergence record through [`record_terminal`].
    autotune: Option<AutoTuner>,
    /// Monotonic batch sequence; lives here (not in the worker) so it
    /// survives worker respawns.
    batch_seq: AtomicU64,
}

/// Build one request's phase ledger at its terminal moment. The wall
/// phases partition `[submit, now]`: admission, queue wait, linger
/// (pop → dispatch), solve (dispatch → delivery), and `other` absorbs
/// the residual so the phase-sum invariant holds exactly. The `sim_*`
/// fields carry the per-item share of the dispatch's simulated solve
/// split — a separate clock reported alongside the wall phases.
#[allow(clippy::too_many_arguments)]
fn build_ledger(
    p: &Pending,
    outcome: &'static str,
    iterations: u32,
    converged: bool,
    dispatched_at: Option<Instant>,
    sim: Option<&SimSplit>,
    straggler: bool,
    now: Instant,
) -> PhaseLedger {
    let us = |d: Duration| d.as_secs_f64() * 1e6;
    let mut ledger = PhaseLedger {
        outcome,
        class: classify(iterations, converged),
        iterations,
        straggler,
        deadline: p.deadline.map(|_| outcome != "deadline_exceeded"),
        end_to_end_us: us(now.saturating_duration_since(p.enqueued_at) + p.admission),
        admission_us: us(p.admission),
        ..PhaseLedger::default()
    };
    let queue_end = p.popped_at.unwrap_or(now).min(now);
    ledger.queue_us = us(queue_end.saturating_duration_since(p.enqueued_at));
    if let (Some(popped), Some(dispatched)) = (p.popped_at, dispatched_at) {
        ledger.linger_us = us(dispatched.saturating_duration_since(popped));
        ledger.solve_us = us(now.saturating_duration_since(dispatched));
    }
    if let Some(sim) = sim {
        ledger.sim_spmv_us = sim.spmv_us;
        ledger.sim_reduction_us = sim.reduction_us;
        ledger.sim_sync_us = sim.sync_us;
        ledger.sim_transfer_us = sim.transfer_us;
    }
    ledger.close();
    ledger
}

/// Emit the ledger event and feed the class tracker and autotuner — the
/// single point every terminal outcome funnels through.
fn record_terminal(shared: &Shared, id: u64, ledger: PhaseLedger) {
    shared.classes.observe_ledger(Some(id), &ledger);
    if let Some(tuner) = &shared.autotune {
        let converged = ledger.outcome.starts_with("converged");
        if let Some(decision) = tuner.observe(ledger.class, ledger.iterations, converged) {
            shared.tracer.emit(None, decision.to_event());
        }
    }
    shared.tracer.emit(Some(id), EventKind::Ledger(ledger));
}

/// Multi-threaded dynamic-batching solve service.
///
/// Submitters hand in individual systems over a shared
/// [`SparsityPattern`]; a supervised worker thread groups them into
/// batches (target size or linger timeout, whichever fires first) and
/// dispatches each batch as one fused solve through the escalation
/// ladder. See the crate docs for an end-to-end example.
pub struct SolveService {
    shared: Arc<Shared>,
    pattern: Arc<SparsityPattern>,
    gate: Option<AdmissionGate>,
    worker: Option<thread::JoinHandle<()>>,
    watchdog: Option<thread::JoinHandle<()>>,
    watchdog_stop: Arc<AtomicBool>,
    next_id: AtomicU64,
}

impl SolveService {
    /// Start a service with the production engine ([`LadderEngine`]:
    /// fused BiCGSTAB → restarted GMRES → banded-LU fallback).
    pub fn start(pattern: Arc<SparsityPattern>, config: RuntimeConfig) -> Result<SolveService> {
        let engine = Arc::new(
            LadderEngine::new(
                config.device.clone(),
                Arc::clone(&pattern),
                ladder_config(&config),
            )
            .with_tracer(config.tracer.clone()),
        );
        Self::start_with_engine(pattern, config, engine)
    }

    /// Start a service whose fused launches pass through `hook` first —
    /// the fault-injection seam (see `batsolv-faults`).
    pub fn start_with_hook(
        pattern: Arc<SparsityPattern>,
        config: RuntimeConfig,
        hook: Arc<dyn LaunchHook>,
    ) -> Result<SolveService> {
        let engine = Arc::new(
            LadderEngine::with_hook(
                config.device.clone(),
                Arc::clone(&pattern),
                ladder_config(&config),
                hook,
            )
            .with_tracer(config.tracer.clone()),
        );
        Self::start_with_engine(pattern, config, engine)
    }

    /// Start a service with a caller-provided engine (tests inject
    /// doubles here).
    pub fn start_with_engine(
        pattern: Arc<SparsityPattern>,
        config: RuntimeConfig,
        engine: Arc<dyn SolveEngine>,
    ) -> Result<SolveService> {
        config.validate().map_err(Error::InvalidConfig)?;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            stats: StatsRegistry::new(),
            classes: ClassTracker::new(),
            watch: Arc::new(WatchState::new()),
            breaker: config.breaker.map(CircuitBreaker::new),
            tracer: config.tracer.clone(),
            autotune: config.autotune.map(AutoTuner::new),
            batch_seq: AtomicU64::new(0),
        });
        shared.stats.set_solver(config.solver.name());
        shared.stats.set_precond(config.precond.name());
        let gate = config
            .validate_admission
            .then(|| AdmissionGate::new(&pattern, config.min_diag_abs));

        let watchdog_stop = Arc::new(AtomicBool::new(false));
        let watchdog = config.watchdog_budget.map(|budget| {
            let stats_shared = Arc::clone(&shared);
            let budget_us = u64::try_from(budget.as_micros()).unwrap_or(u64::MAX);
            spawn_watchdog(
                Arc::clone(&shared.watch),
                budget,
                Arc::clone(&watchdog_stop),
                move || {
                    stats_shared.stats.on_watchdog_stall();
                    stats_shared
                        .tracer
                        .emit(None, EventKind::WatchdogStall { budget_us });
                    // A stalled dispatch is exactly the moment the recent
                    // event history matters: freeze it.
                    let _ = stats_shared.tracer.dump_flight("watchdog_stall");
                },
            )
        });

        let worker_shared = Arc::clone(&shared);
        let worker = thread::Builder::new()
            .name("batsolv-runtime-supervisor".into())
            .spawn(move || supervisor_loop(worker_shared, config, engine))
            .map_err(|e| Error::InvalidConfig(format!("failed to spawn worker: {e}")))?;
        Ok(SolveService {
            shared,
            pattern,
            gate,
            worker: Some(worker),
            watchdog,
            watchdog_stop,
            next_id: AtomicU64::new(0),
        })
    }

    /// The sparsity pattern every request must match.
    pub fn pattern(&self) -> &Arc<SparsityPattern> {
        &self.pattern
    }

    /// Submit one system. Non-blocking: a full queue rejects with
    /// [`SubmitError::QueueFull`] instead of stalling the caller — the
    /// backpressure signal of the service. Poisoned payloads bounce with
    /// [`SubmitError::Rejected`] before they can share a fused launch
    /// with healthy work, and an open circuit breaker sheds load with
    /// [`SubmitError::CircuitOpen`].
    pub fn submit(&self, request: SolveRequest) -> std::result::Result<Ticket, SubmitError> {
        let submit_started = Instant::now();
        let nnz = self.pattern.nnz();
        let n = self.pattern.num_rows();
        let reject = |reason: &'static str| {
            self.shared
                .tracer
                .emit(None, EventKind::Rejected { reason });
        };
        if request.values.len() != nnz {
            self.shared.stats.on_rejected_shape();
            reject("shape");
            return Err(SubmitError::ShapeMismatch {
                field: "values",
                expected: nnz,
                got: request.values.len(),
            });
        }
        if request.rhs.len() != n {
            self.shared.stats.on_rejected_shape();
            reject("shape");
            return Err(SubmitError::ShapeMismatch {
                field: "rhs",
                expected: n,
                got: request.rhs.len(),
            });
        }
        if let Some(g) = &request.guess {
            if g.len() != n {
                self.shared.stats.on_rejected_shape();
                reject("shape");
                return Err(SubmitError::ShapeMismatch {
                    field: "guess",
                    expected: n,
                    got: g.len(),
                });
            }
        }
        if let Some(gate) = &self.gate {
            if let Err(reason) = gate.check(&request.values, &request.rhs, request.guess.as_deref())
            {
                match reason {
                    RejectReason::NonFinite { .. } => {
                        self.shared.stats.on_rejected_nonfinite();
                        reject("nonfinite");
                    }
                    RejectReason::ZeroDiagonal { .. } => {
                        self.shared.stats.on_rejected_zero_diag();
                        reject("zero_diag");
                    }
                }
                return Err(SubmitError::Rejected { reason });
            }
        }
        if let Some(breaker) = &self.shared.breaker {
            if let Err(retry_after) = breaker.check(Instant::now()) {
                self.shared.stats.on_rejected_circuit_open();
                reject("circuit_open");
                return Err(SubmitError::CircuitOpen { retry_after });
            }
        }

        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let pending = Pending {
            item: BatchItem {
                id,
                values: request.values,
                rhs: request.rhs,
                guess: request.guess,
                tolerance: request.tolerance,
            },
            deadline: request.deadline,
            enqueued_at: Instant::now(),
            admission: submit_started.elapsed(),
            popped_at: None,
            reply: tx,
        };
        match self.shared.queue.try_push(pending) {
            PushResult::Ok => {
                self.shared.stats.on_accepted();
                self.shared
                    .tracer
                    .emit(Some(id), EventKind::Submitted { n });
                Ok(Ticket { id, rx })
            }
            PushResult::Full(_) => {
                self.shared.stats.on_rejected_full();
                self.shared.tracer.emit(
                    Some(id),
                    EventKind::Rejected {
                        reason: "queue_full",
                    },
                );
                Err(SubmitError::QueueFull {
                    capacity: self.shared.queue.capacity(),
                })
            }
            PushResult::Closed(_) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Point-in-time copy of the service counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Point-in-time per-workload-class latency/SLO statistics.
    pub fn classes(&self) -> ClassesSnapshot {
        self.shared.classes.snapshot()
    }

    /// Current autotuner per-class choices (empty when autotuning is
    /// disabled or no terminal outcome has been observed yet).
    pub fn autotune_choices(&self) -> Vec<batsolv_trace::AutotuneChoice> {
        self.shared
            .autotune
            .as_ref()
            .map(AutoTuner::choices)
            .unwrap_or_default()
    }

    /// The full Prometheus metrics page: service counters plus the
    /// per-class latency, deadline, and burn-rate series (and, when the
    /// autotuner runs, its per-class choice series).
    pub fn prometheus(&self) -> String {
        crate::metrics::prometheus_text_full(
            &self.stats(),
            Some(&self.classes()),
            &self.autotune_choices(),
        )
    }

    /// Stop accepting work, drain everything already queued, and join
    /// the worker. Outstanding tickets resolve before this returns.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown_in_place();
        self.shared.stats.snapshot()
    }

    fn shutdown_in_place(&mut self) {
        self.shared.queue.close();
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
        self.watchdog_stop.store(true, Ordering::Release);
        if let Some(handle) = self.watchdog.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn ladder_config(config: &RuntimeConfig) -> LadderConfig {
    LadderConfig {
        default_tolerance: config.tolerance,
        max_iters: config.max_iters,
        enable_gmres: config.enable_gmres,
        gmres_restart: config.gmres_restart,
        gmres_max_iters: config.gmres_max_iters,
        enable_fallback: config.enable_fallback,
        solver: config.solver,
        precond: config.precond,
    }
}

/// The supervisor: keeps the worker loop alive across panics. The batch
/// former lives *here*, outside the unwind boundary, so requests already
/// pulled from the queue survive a worker crash and are re-dispatched by
/// the respawned loop instead of being lost.
fn supervisor_loop(shared: Arc<Shared>, config: RuntimeConfig, engine: Arc<dyn SolveEngine>) {
    let linger_ns = u64::try_from(config.linger.as_nanos()).unwrap_or(u64::MAX);
    let mut former: BatchFormer<Pending> = BatchFormer::new(config.batch_target, linger_ns);
    let epoch = Instant::now();
    loop {
        let result = catch_unwind(AssertUnwindSafe(|| {
            worker_loop(&shared, &config, engine.as_ref(), &mut former, epoch)
        }));
        match result {
            Ok(()) => break, // clean shutdown: queue closed and drained
            Err(_) => {
                // The worker panicked outside the per-batch isolation
                // (a bug, or chaos injected outside dispatch). Respawn
                // the loop; everything still in `former` re-dispatches.
                shared.stats.on_worker_respawn();
                shared.tracer.emit(None, EventKind::WorkerRespawn);
            }
        }
    }
}

/// The single consumer: pops requests, forms batches, dispatches.
fn worker_loop(
    shared: &Shared,
    config: &RuntimeConfig,
    engine: &dyn SolveEngine,
    former: &mut BatchFormer<Pending>,
    epoch: Instant,
) {
    let now_ns = |at: Instant| -> u64 {
        u64::try_from(at.duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
    };

    'outer: loop {
        // Sleep until the oldest pending request's linger deadline, or
        // indefinitely-ish when nothing is pending.
        let timeout = match former.next_flush_at() {
            Some(0) => Duration::ZERO,
            Some(deadline_ns) => {
                Duration::from_nanos(deadline_ns.saturating_sub(now_ns(Instant::now())))
            }
            None => Duration::from_millis(100),
        };
        match shared.queue.pop_wait(timeout) {
            PopResult::Item(mut p) => {
                p.popped_at = Some(Instant::now());
                let stamp = now_ns(p.enqueued_at.max(epoch));
                former.push(p, stamp);
                // Greedily drain the backlog that piled up while the
                // previous batch was solving: without this, requests
                // already past their linger age would be flushed one at
                // a time instead of fused into full batches.
                while former.len() < config.batch_target {
                    match shared.queue.pop_wait(Duration::ZERO) {
                        PopResult::Item(mut p) => {
                            p.popped_at = Some(Instant::now());
                            let stamp = now_ns(p.enqueued_at.max(epoch));
                            former.push(p, stamp);
                        }
                        _ => break,
                    }
                }
            }
            PopResult::TimedOut => {}
            PopResult::Closed => break 'outer,
        }
        while let Some((batch, reason)) = former.poll(now_ns(Instant::now())) {
            trace_batch_formed(shared, batch.len(), reason);
            dispatch(shared, engine, batch);
        }
    }

    // Shutdown: flush the remainder below target/linger.
    while let Some((batch, reason)) = former.drain() {
        trace_batch_formed(shared, batch.len(), reason);
        dispatch(shared, engine, batch);
    }
}

/// Emit the batch-formed event with a sequence number that survives
/// worker respawns.
fn trace_batch_formed(shared: &Shared, size: usize, reason: FlushReason) {
    if !shared.tracer.is_enabled() {
        return;
    }
    let seq = shared.batch_seq.fetch_add(1, Ordering::Relaxed);
    let reason = match reason {
        FlushReason::TargetReached => "target",
        FlushReason::LingerExpired => "linger",
        FlushReason::Drain => "drain",
    };
    shared
        .tracer
        .emit(None, EventKind::BatchFormed { seq, size, reason });
}

/// Solve one formed batch and fulfill its tickets.
fn dispatch(shared: &Shared, engine: &dyn SolveEngine, batch: Vec<Pending>) {
    let dispatched_at = Instant::now();
    // Enforce queue-wait deadlines at the last moment before the solve:
    // expired requests get a structured error, not a wasted solve slot.
    let mut live: Vec<Pending> = Vec::with_capacity(batch.len());
    for p in batch {
        let waited = p.enqueued_at.elapsed();
        match p.deadline {
            Some(deadline) if waited > deadline => {
                shared.stats.on_deadline_exceeded();
                shared.tracer.emit(
                    Some(p.item.id),
                    EventKind::Terminal {
                        outcome: "deadline_exceeded",
                        iterations: 0,
                        residual: f64::NAN,
                        rungs: 0,
                    },
                );
                let ledger = build_ledger(
                    &p,
                    "deadline_exceeded",
                    0,
                    false,
                    None,
                    None,
                    false,
                    Instant::now(),
                );
                record_terminal(shared, p.item.id, ledger);
                let _ = p
                    .reply
                    .send(Err(SolveError::DeadlineExceeded { waited, deadline }));
            }
            _ => {
                shared.tracer.emit(
                    Some(p.item.id),
                    EventKind::Dequeued {
                        wait_us: u64::try_from(waited.as_micros()).unwrap_or(u64::MAX),
                    },
                );
                live.push(p);
            }
        }
    }
    if live.is_empty() {
        return;
    }
    run_batch(shared, engine, live, dispatched_at);
}

/// Run one batch through the engine with panic/device-failure isolation.
///
/// A panic or device failure on a multi-system batch re-dispatches each
/// member as a singleton: with a deterministic fault source the same
/// request fails again *alone* and absorbs the blame, while every other
/// member solves normally — a faulty neighbor never costs a healthy
/// request its outcome.
fn run_batch(
    shared: &Shared,
    engine: &dyn SolveEngine,
    live: Vec<Pending>,
    dispatched_at: Instant,
) {
    let items: Vec<BatchItem> = live.iter().map(|p| p.item.clone()).collect();
    let batch_size = items.len();
    shared.watch.begin();
    let solved = catch_unwind(AssertUnwindSafe(|| engine.solve_batch(&items)));
    shared.watch.end();
    match solved {
        Ok(Ok(report)) => {
            shared.stats.on_sync_counts(report.syncs, report.reductions);
            fulfill(
                shared,
                live,
                report.outcomes,
                report.sim_time_s,
                report.split,
                dispatched_at,
            )
        }
        Ok(Err(Error::DeviceFailure { code })) => {
            if batch_size > 1 {
                for p in live {
                    run_batch(shared, engine, vec![p], dispatched_at);
                }
            } else {
                note_degraded_batch(shared, 1);
                for p in live {
                    shared.stats.on_device_failure();
                    shared.tracer.emit(
                        Some(p.item.id),
                        EventKind::Terminal {
                            outcome: "device_failure",
                            iterations: 0,
                            residual: f64::NAN,
                            rungs: 0,
                        },
                    );
                    let ledger = build_ledger(
                        &p,
                        "device_failure",
                        0,
                        false,
                        Some(dispatched_at),
                        None,
                        false,
                        Instant::now(),
                    );
                    record_terminal(shared, p.item.id, ledger);
                    let _ = p.reply.send(Err(SolveError::DeviceFailure { code }));
                }
            }
        }
        Ok(Err(e)) => {
            // Engine-level failure (shape bug): every ticket of the batch
            // gets the structured error.
            let msg: &'static str = match e {
                Error::DimensionMismatch(_) => "engine dimension mismatch",
                _ => "engine failure",
            };
            let waits: Vec<Duration> = live.iter().map(|p| p.enqueued_at.elapsed()).collect();
            let failed = live.len() as u64;
            for p in live {
                shared.tracer.emit(
                    Some(p.item.id),
                    EventKind::Terminal {
                        outcome: "engine_failure",
                        iterations: 0,
                        residual: f64::NAN,
                        rungs: 0,
                    },
                );
                let ledger = build_ledger(
                    &p,
                    "engine_failure",
                    0,
                    false,
                    Some(dispatched_at),
                    None,
                    false,
                    Instant::now(),
                );
                record_terminal(shared, p.item.id, ledger);
                let _ = p.reply.send(Err(SolveError::NotConverged {
                    iterations: 0,
                    residual: f64::NAN,
                    breakdown: Some(msg),
                    rungs: vec![],
                }));
            }
            shared.stats.on_batch(
                batch_size,
                &waits,
                &[],
                BatchOutcomes {
                    failed,
                    breakdowns: vec![msg; batch_size],
                    ..Default::default()
                },
                0.0,
            );
            note_degraded_batch(shared, batch_size);
        }
        Err(payload) => {
            if batch_size > 1 {
                for p in live {
                    run_batch(shared, engine, vec![p], dispatched_at);
                }
            } else {
                note_degraded_batch(shared, 1);
                let detail = panic_detail(payload);
                for p in live {
                    shared.stats.on_worker_panic_outcome();
                    shared.tracer.emit(
                        Some(p.item.id),
                        EventKind::Terminal {
                            outcome: "worker_panic",
                            iterations: 0,
                            residual: f64::NAN,
                            rungs: 0,
                        },
                    );
                    let ledger = build_ledger(
                        &p,
                        "worker_panic",
                        0,
                        false,
                        Some(dispatched_at),
                        None,
                        false,
                        Instant::now(),
                    );
                    record_terminal(shared, p.item.id, ledger);
                    let _ = p.reply.send(Err(SolveError::WorkerPanic {
                        detail: detail.clone(),
                    }));
                }
            }
        }
    }
}

/// Deliver per-item outcomes and record the batch in stats + breaker.
fn fulfill(
    shared: &Shared,
    live: Vec<Pending>,
    outcomes: Vec<crate::dispatcher::ItemOutcome>,
    sim_time_s: f64,
    split: SimSplit,
    dispatched_at: Instant,
) {
    let batch_size = live.len();
    debug_assert_eq!(outcomes.len(), batch_size);
    let waits: Vec<Duration> = live.iter().map(|p| p.enqueued_at.elapsed()).collect();
    let iterations: Vec<u32> = outcomes.iter().map(|o| o.iterations).collect();
    // Straggler attribution: the fused launch runs until its slowest
    // member converges, so the member with the most iterations set the
    // batch's completion time (first such member on ties).
    let straggler_idx = iterations
        .iter()
        .enumerate()
        .max_by_key(|&(i, &it)| (it, std::cmp::Reverse(i)))
        .map(|(i, _)| i);
    let item_sim = split.per_item(batch_size);
    let mut tally = BatchOutcomes::default();
    let mut degraded = 0usize;
    for (idx, (p, o)) in live.into_iter().zip(outcomes).enumerate() {
        let wait = p.enqueued_at.elapsed();
        tally.rungs_attempted.push(o.rungs.len());
        let outcome_tag = if o.converged {
            match o.method {
                crate::request::SolveMethod::Bicgstab => "converged_bicgstab",
                crate::request::SolveMethod::Gmres => "converged_gmres",
                crate::request::SolveMethod::BandedLuFallback => "converged_banded_lu",
            }
        } else {
            "not_converged"
        };
        shared.tracer.emit(
            Some(o.id),
            EventKind::Terminal {
                outcome: outcome_tag,
                iterations: o.iterations,
                residual: o.residual,
                rungs: o.rungs.len(),
            },
        );
        let ledger = build_ledger(
            &p,
            outcome_tag,
            o.iterations,
            o.converged,
            Some(dispatched_at),
            Some(&item_sim),
            straggler_idx == Some(idx) && batch_size > 1,
            Instant::now(),
        );
        record_terminal(shared, o.id, ledger);
        let outcome = if o.converged {
            match o.method {
                crate::request::SolveMethod::Bicgstab => tally.converged_iterative += 1,
                crate::request::SolveMethod::Gmres => tally.converged_gmres += 1,
                crate::request::SolveMethod::BandedLuFallback => {
                    tally.converged_fallback += 1;
                    degraded += 1;
                }
            }
            Ok(Solution {
                x: o.x,
                iterations: o.iterations,
                residual: o.residual,
                method: o.method,
                batch_size,
                queue_wait: wait,
                rungs: o.rungs,
            })
        } else {
            tally.failed += 1;
            degraded += 1;
            if let Some(tag) = o.breakdown {
                tally.breakdowns.push(tag);
            }
            Err(SolveError::NotConverged {
                iterations: o.iterations,
                residual: o.residual,
                breakdown: o.breakdown,
                rungs: o.rungs,
            })
        };
        let _ = p.reply.send(outcome);
    }
    shared
        .stats
        .on_batch(batch_size, &waits, &iterations, tally, sim_time_s);
    if let Some(breaker) = &shared.breaker {
        if breaker.on_batch(Instant::now(), batch_size, degraded) {
            note_breaker_trip(shared);
        }
    }
}

/// Report a fully-degraded batch (device failure, panic, engine error)
/// to the breaker.
fn note_degraded_batch(shared: &Shared, size: usize) {
    if let Some(breaker) = &shared.breaker {
        if breaker.on_batch(Instant::now(), size, size) {
            note_breaker_trip(shared);
        }
    }
}

/// Count a breaker trip and freeze the event history that led to it.
fn note_breaker_trip(shared: &Shared) {
    shared.stats.on_breaker_trip();
    shared.tracer.emit(None, EventKind::BreakerTrip);
    let _ = shared.tracer.dump_flight("breaker_trip");
}

/// Best-effort panic payload text.
fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
