//! The solve service: submission API, worker loop, lifecycle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use batsolv_formats::SparsityPattern;
use batsolv_types::{Error, Result};

use crate::config::RuntimeConfig;
use crate::dispatcher::{BatchItem, BicgstabEngine, SolveEngine};
use crate::former::{BatchFormer, FlushReason};
use crate::queue::{BoundedQueue, PopResult, PushResult};
use crate::request::{Solution, SolveError, SolveOutcome, SolveRequest, SubmitError, Ticket};
use crate::stats::{BatchOutcomes, StatsRegistry, StatsSnapshot};

/// A request as it travels through the queue and former.
struct Pending {
    item: BatchItem,
    deadline: Option<Duration>,
    enqueued_at: Instant,
    reply: mpsc::Sender<SolveOutcome>,
}

struct Shared {
    queue: BoundedQueue<Pending>,
    stats: StatsRegistry,
}

/// Multi-threaded dynamic-batching solve service.
///
/// Submitters hand in individual systems over a shared
/// [`SparsityPattern`]; a worker thread groups them into batches (target
/// size or linger timeout, whichever fires first) and dispatches each
/// batch as one fused solve. See the crate docs for an end-to-end
/// example.
pub struct SolveService {
    shared: Arc<Shared>,
    pattern: Arc<SparsityPattern>,
    worker: Option<thread::JoinHandle<()>>,
    next_id: AtomicU64,
}

impl SolveService {
    /// Start a service with the production engine
    /// ([`BicgstabEngine`]: fused BiCGSTAB + banded-LU fallback).
    pub fn start(pattern: Arc<SparsityPattern>, config: RuntimeConfig) -> Result<SolveService> {
        let engine = Arc::new(BicgstabEngine::new(
            config.device.clone(),
            Arc::clone(&pattern),
            config.tolerance,
            config.max_iters,
            config.enable_fallback,
        ));
        Self::start_with_engine(pattern, config, engine)
    }

    /// Start a service with a caller-provided engine (tests inject
    /// doubles here).
    pub fn start_with_engine(
        pattern: Arc<SparsityPattern>,
        config: RuntimeConfig,
        engine: Arc<dyn SolveEngine>,
    ) -> Result<SolveService> {
        config.validate().map_err(Error::InvalidConfig)?;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            stats: StatsRegistry::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = thread::Builder::new()
            .name("batsolv-runtime-worker".into())
            .spawn(move || worker_loop(worker_shared, config, engine))
            .map_err(|e| Error::InvalidConfig(format!("failed to spawn worker: {e}")))?;
        Ok(SolveService {
            shared,
            pattern,
            worker: Some(worker),
            next_id: AtomicU64::new(0),
        })
    }

    /// The sparsity pattern every request must match.
    pub fn pattern(&self) -> &Arc<SparsityPattern> {
        &self.pattern
    }

    /// Submit one system. Non-blocking: a full queue rejects with
    /// [`SubmitError::QueueFull`] instead of stalling the caller — the
    /// backpressure signal of the service.
    pub fn submit(&self, request: SolveRequest) -> std::result::Result<Ticket, SubmitError> {
        let nnz = self.pattern.nnz();
        let n = self.pattern.num_rows();
        if request.values.len() != nnz {
            self.shared.stats.on_rejected_shape();
            return Err(SubmitError::ShapeMismatch {
                field: "values",
                expected: nnz,
                got: request.values.len(),
            });
        }
        if request.rhs.len() != n {
            self.shared.stats.on_rejected_shape();
            return Err(SubmitError::ShapeMismatch {
                field: "rhs",
                expected: n,
                got: request.rhs.len(),
            });
        }
        if let Some(g) = &request.guess {
            if g.len() != n {
                self.shared.stats.on_rejected_shape();
                return Err(SubmitError::ShapeMismatch {
                    field: "guess",
                    expected: n,
                    got: g.len(),
                });
            }
        }

        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let pending = Pending {
            item: BatchItem {
                id,
                values: request.values,
                rhs: request.rhs,
                guess: request.guess,
                tolerance: request.tolerance,
            },
            deadline: request.deadline,
            enqueued_at: Instant::now(),
            reply: tx,
        };
        match self.shared.queue.try_push(pending) {
            PushResult::Ok => {
                self.shared.stats.on_accepted();
                Ok(Ticket { id, rx })
            }
            PushResult::Full(_) => {
                self.shared.stats.on_rejected_full();
                Err(SubmitError::QueueFull {
                    capacity: self.shared.queue.capacity(),
                })
            }
            PushResult::Closed(_) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Point-in-time copy of the service counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Stop accepting work, drain everything already queued, and join
    /// the worker. Outstanding tickets resolve before this returns.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown_in_place();
        self.shared.stats.snapshot()
    }

    fn shutdown_in_place(&mut self) {
        self.shared.queue.close();
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// The single consumer: pops requests, forms batches, dispatches.
fn worker_loop(shared: Arc<Shared>, config: RuntimeConfig, engine: Arc<dyn SolveEngine>) {
    let linger_ns = u64::try_from(config.linger.as_nanos()).unwrap_or(u64::MAX);
    let mut former: BatchFormer<Pending> = BatchFormer::new(config.batch_target, linger_ns);
    let epoch = Instant::now();
    let now_ns = |at: Instant| -> u64 {
        u64::try_from(at.duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
    };

    'outer: loop {
        // Sleep until the oldest pending request's linger deadline, or
        // indefinitely-ish when nothing is pending.
        let timeout = match former.next_flush_at() {
            Some(0) => Duration::ZERO,
            Some(deadline_ns) => {
                Duration::from_nanos(deadline_ns.saturating_sub(now_ns(Instant::now())))
            }
            None => Duration::from_millis(100),
        };
        match shared.queue.pop_wait(timeout) {
            PopResult::Item(p) => {
                let stamp = now_ns(p.enqueued_at.max(epoch));
                former.push(p, stamp);
                // Greedily drain the backlog that piled up while the
                // previous batch was solving: without this, requests
                // already past their linger age would be flushed one at
                // a time instead of fused into full batches.
                while former.len() < config.batch_target {
                    match shared.queue.pop_wait(Duration::ZERO) {
                        PopResult::Item(p) => {
                            let stamp = now_ns(p.enqueued_at.max(epoch));
                            former.push(p, stamp);
                        }
                        _ => break,
                    }
                }
            }
            PopResult::TimedOut => {}
            PopResult::Closed => break 'outer,
        }
        while let Some((batch, reason)) = former.poll(now_ns(Instant::now())) {
            dispatch(&shared, engine.as_ref(), batch, reason);
        }
    }

    // Shutdown: flush the remainder below target/linger.
    while let Some((batch, reason)) = former.drain() {
        dispatch(&shared, engine.as_ref(), batch, reason);
    }
}

/// Solve one formed batch and fulfill its tickets.
fn dispatch(shared: &Shared, engine: &dyn SolveEngine, batch: Vec<Pending>, _reason: FlushReason) {
    // Enforce queue-wait deadlines at the last moment before the solve:
    // expired requests get a structured error, not a wasted solve slot.
    let mut live: Vec<Pending> = Vec::with_capacity(batch.len());
    for p in batch {
        let waited = p.enqueued_at.elapsed();
        match p.deadline {
            Some(deadline) if waited > deadline => {
                shared.stats.on_deadline_exceeded();
                let _ = p
                    .reply
                    .send(Err(SolveError::DeadlineExceeded { waited, deadline }));
            }
            _ => live.push(p),
        }
    }
    if live.is_empty() {
        return;
    }

    let items: Vec<BatchItem> = live.iter().map(|p| p.item.clone()).collect();
    let batch_size = items.len();
    match engine.solve_batch(&items) {
        Ok(report) => {
            debug_assert_eq!(report.outcomes.len(), batch_size);
            let waits: Vec<Duration> = live.iter().map(|p| p.enqueued_at.elapsed()).collect();
            let iterations: Vec<u32> = report.outcomes.iter().map(|o| o.iterations).collect();
            let mut converged_iterative = 0;
            let mut converged_fallback = 0;
            let mut failed = 0;
            for (p, o) in live.into_iter().zip(report.outcomes) {
                let wait = p.enqueued_at.elapsed();
                let outcome = if o.converged {
                    match o.method {
                        crate::request::SolveMethod::Bicgstab => converged_iterative += 1,
                        crate::request::SolveMethod::BandedLuFallback => converged_fallback += 1,
                    }
                    Ok(Solution {
                        x: o.x,
                        iterations: o.iterations,
                        residual: o.residual,
                        method: o.method,
                        batch_size,
                        queue_wait: wait,
                    })
                } else {
                    failed += 1;
                    Err(SolveError::NotConverged {
                        iterations: o.iterations,
                        residual: o.residual,
                        breakdown: o.breakdown,
                    })
                };
                let _ = p.reply.send(outcome);
            }
            shared.stats.on_batch(
                batch_size,
                &waits,
                &iterations,
                BatchOutcomes {
                    converged_iterative,
                    converged_fallback,
                    failed,
                },
                report.sim_time_s,
            );
        }
        Err(e) => {
            // Engine-level failure (shape bug, singular banded factor):
            // every ticket of the batch gets the structured error.
            let msg: &'static str = match e {
                Error::DimensionMismatch(_) => "engine dimension mismatch",
                _ => "engine failure",
            };
            let waits: Vec<Duration> = live.iter().map(|p| p.enqueued_at.elapsed()).collect();
            for p in live {
                let _ = p.reply.send(Err(SolveError::NotConverged {
                    iterations: 0,
                    residual: f64::NAN,
                    breakdown: Some(msg),
                }));
            }
            shared.stats.on_batch(
                batch_size,
                &waits,
                &[],
                BatchOutcomes {
                    failed: batch_size as u64,
                    ..Default::default()
                },
                0.0,
            );
        }
    }
}
