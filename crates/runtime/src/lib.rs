//! `batsolv-runtime` — a dynamic-batching solve service.
//!
//! The paper's batched solvers assume the caller already *has* a batch:
//! XGC hands over all ~44k mesh-node systems of a time step at once. In
//! a coupled-code or service setting the systems instead arrive one at a
//! time, from many threads, and the launch-overhead amortization that
//! makes batching pay (Figure 4) has to be manufactured at runtime. This
//! crate does that with the continuous-batching shape used by inference
//! servers:
//!
//! * a **bounded submission queue** with explicit backpressure — a full
//!   queue rejects with [`SubmitError::QueueFull`], never silently drops;
//! * a **batch former** with two flush triggers — target batch size
//!   reached, or the oldest request aged past a configurable linger
//!   time;
//! * a **dispatcher** running each formed batch as one fused
//!   [`BatchBicgstab`](batsolv_solvers::BatchBicgstab) launch, with a
//!   banded-LU (`dgbsv` baseline) retry for systems that miss the
//!   iteration cap;
//! * **per-request outcomes** — converged solution with iteration count
//!   and final residual, or a structured error (not converged, deadline
//!   exceeded) — delivered through a [`Ticket`];
//! * a **stats registry** (acceptance/rejection counters, batch-size
//!   histogram, queue-wait percentiles, solver iterations) read via
//!   [`SolveService::stats`].
//!
//! ```
//! use std::sync::Arc;
//! use batsolv_formats::SparsityPattern;
//! use batsolv_gpusim::DeviceSpec;
//! use batsolv_runtime::{RuntimeConfig, SolveRequest, SolveService};
//!
//! // Shared 5-point stencil; every request supplies its own values.
//! let pattern = Arc::new(SparsityPattern::stencil_2d(8, 8, false));
//! let config = RuntimeConfig::new(DeviceSpec::v100())
//!     .with_batch_target(4)
//!     .with_linger(std::time::Duration::from_millis(1));
//! let service = SolveService::start(Arc::clone(&pattern), config).unwrap();
//!
//! // Diagonally dominant values: 8 on the diagonal, -1 off it.
//! let values: Vec<f64> = (0..pattern.num_rows())
//!     .flat_map(|r| {
//!         pattern.row_cols(r).iter().map(move |&c| {
//!             if c as usize == r { 8.0 } else { -1.0 }
//!         })
//!     })
//!     .collect();
//! let ticket = service
//!     .submit(SolveRequest::new(values, vec![1.0; pattern.num_rows()]))
//!     .unwrap();
//! let solution = ticket.wait().unwrap();
//! assert!(solution.residual <= 1e-10);
//! let stats = service.shutdown();
//! assert_eq!(stats.accepted, 1);
//! ```

pub mod config;
pub mod dispatcher;
pub mod former;
pub mod queue;
pub mod request;
pub mod service;
pub mod stats;

pub use config::RuntimeConfig;
pub use dispatcher::{BatchItem, BatchReport, BicgstabEngine, ItemOutcome, SolveEngine};
pub use former::{BatchFormer, FlushReason};
pub use queue::{BoundedQueue, PopResult, PushResult};
pub use request::{
    RequestId, Solution, SolveError, SolveMethod, SolveOutcome, SolveRequest, SubmitError, Ticket,
};
pub use service::SolveService;
pub use stats::{StatsRegistry, StatsSnapshot};
