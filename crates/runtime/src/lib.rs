//! `batsolv-runtime` — a dynamic-batching, supervised solve service.
//!
//! The paper's batched solvers assume the caller already *has* a batch:
//! XGC hands over all ~44k mesh-node systems of a time step at once. In
//! a coupled-code or service setting the systems instead arrive one at a
//! time, from many threads, and the launch-overhead amortization that
//! makes batching pay (Figure 4) has to be manufactured at runtime. This
//! crate does that with the continuous-batching shape used by inference
//! servers, hardened for faulty inputs and a faulty backend:
//!
//! * a **bounded submission queue** with explicit backpressure — a full
//!   queue rejects with [`SubmitError::QueueFull`], never silently drops;
//! * an **admission gate** — non-finite values/RHS/guess and unusable
//!   Jacobi diagonals bounce with [`SubmitError::Rejected`] *before* they
//!   can poison a fused launch shared with healthy requests;
//! * a **batch former** with two flush triggers — target batch size
//!   reached, or the oldest request aged past a configurable linger
//!   time;
//! * an **escalation ladder** ([`LadderEngine`]) running each formed
//!   batch as one fused [`BatchBicgstab`](batsolv_solvers::BatchBicgstab)
//!   launch, retrying stragglers with restarted GMRES and, last, the
//!   banded-LU direct solver (`dgbsv` baseline); every rung attempted is
//!   recorded in the outcome ([`RungAttempt`]);
//! * a **supervised worker** — a panic or simulated device failure during
//!   a fused dispatch is caught, the batch is re-dispatched one system at
//!   a time so blame lands on the request that provokes it
//!   ([`SolveError::WorkerPanic`] / [`SolveError::DeviceFailure`]), and
//!   healthy neighbors still get their solutions;
//! * a **watchdog** thread flagging dispatches that exceed a time budget;
//! * a **circuit breaker** shedding load with [`SubmitError::CircuitOpen`]
//!   after a run of degraded batches, probing recovery via half-open
//!   state with exponential backoff;
//! * **per-request outcomes** — converged solution with iteration count,
//!   final residual, and the rung trail, or a structured error — exactly
//!   one per accepted request, delivered through a [`Ticket`];
//! * a **stats registry** with a full failure taxonomy (rejects by
//!   reason, breakdowns by kind, breaker trips, watchdog stalls, rung
//!   histogram) read via [`SolveService::stats`].
//!
//! ```
//! use std::sync::Arc;
//! use batsolv_formats::SparsityPattern;
//! use batsolv_gpusim::DeviceSpec;
//! use batsolv_runtime::{RuntimeConfig, SolveRequest, SolveService};
//!
//! // Shared 5-point stencil; every request supplies its own values.
//! let pattern = Arc::new(SparsityPattern::stencil_2d(8, 8, false));
//! let config = RuntimeConfig::new(DeviceSpec::v100())
//!     .with_batch_target(4)
//!     .with_linger(std::time::Duration::from_millis(1));
//! let service = SolveService::start(Arc::clone(&pattern), config).unwrap();
//!
//! // Diagonally dominant values: 8 on the diagonal, -1 off it.
//! let values: Vec<f64> = (0..pattern.num_rows())
//!     .flat_map(|r| {
//!         pattern.row_cols(r).iter().map(move |&c| {
//!             if c as usize == r { 8.0 } else { -1.0 }
//!         })
//!     })
//!     .collect();
//! let ticket = service
//!     .submit(SolveRequest::new(values, vec![1.0; pattern.num_rows()]))
//!     .unwrap();
//! let solution = ticket.wait().unwrap();
//! assert!(solution.residual <= 1e-10);
//! let stats = service.shutdown();
//! assert_eq!(stats.accepted, 1);
//! ```

pub mod admission;
pub mod autotune;
pub mod breaker;
pub mod budget;
pub mod classes;
pub mod config;
pub mod dispatcher;
pub mod executor;
pub mod former;
pub mod metrics;
pub mod queue;
pub mod request;
pub mod reservoir;
pub mod service;
pub mod stats;
pub mod watchdog;

pub use admission::{AdmissionGate, RejectReason};
pub use autotune::{AutoTuner, AutoTunerConfig, Decision};
pub use breaker::{BreakerConfig, CircuitBreaker};
pub use budget::DeadlineBudget;
pub use classes::{ClassStats, ClassTracker, ClassesSnapshot};
pub use config::RuntimeConfig;
pub use dispatcher::{
    BatchItem, BatchReport, ItemOutcome, LadderConfig, LadderEngine, PrecondVariant, SimSplit,
    SolveEngine, SolverVariant,
};
pub use executor::{BatchExecutor, ExecMode, ExecReport};
pub use former::{BatchFormer, FlushReason};
pub use metrics::{
    prometheus_text, prometheus_text_full, prometheus_text_with_classes, render_class_series,
};
pub use queue::{BoundedQueue, PopResult, PushResult};
pub use request::{
    RequestId, RungAttempt, Solution, SolveError, SolveMethod, SolveOutcome, SolveRequest,
    SubmitError, Ticket,
};
pub use reservoir::{percentile_us, Reservoir, DEFAULT_RESERVOIR_CAPACITY};
pub use service::SolveService;
pub use stats::{StatsRegistry, StatsSnapshot};
pub use watchdog::{spawn_watchdog, WatchState};
