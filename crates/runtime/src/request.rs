//! Request/response types of the solve service.

use std::sync::mpsc;
use std::time::Duration;

/// Identifier assigned to each accepted request, unique per service.
pub type RequestId = u64;

/// One linear system `A x = b` to solve, where `A` shares the service's
/// [`SparsityPattern`](batsolv_formats::SparsityPattern) and only the
/// numeric values differ (the collision-operator setting: every mesh
/// node's velocity-grid system has the same stencil).
#[derive(Clone, Debug)]
pub struct SolveRequest {
    /// CSR values, `pattern.nnz()` of them, in pattern order.
    pub values: Vec<f64>,
    /// Right-hand side, `pattern.num_rows()` entries.
    pub rhs: Vec<f64>,
    /// Optional initial guess (Picard warm start); zeros when absent.
    pub guess: Option<Vec<f64>>,
    /// Per-request absolute residual tolerance; the service default when
    /// absent. A batch is solved to the tightest tolerance it contains.
    pub tolerance: Option<f64>,
    /// Maximum time the request may wait in the queue before being
    /// abandoned with [`SolveError::DeadlineExceeded`].
    pub deadline: Option<Duration>,
}

impl SolveRequest {
    /// A request with service-default tolerance, no deadline, zero guess.
    pub fn new(values: Vec<f64>, rhs: Vec<f64>) -> SolveRequest {
        SolveRequest {
            values,
            rhs,
            guess: None,
            tolerance: None,
            deadline: None,
        }
    }

    /// Attach a warm-start initial guess.
    pub fn with_guess(mut self, guess: Vec<f64>) -> Self {
        self.guess = Some(guess);
        self
    }

    /// Attach a per-request tolerance.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = Some(tol);
        self
    }

    /// Attach a queue-wait deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// How a converged solution was obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveMethod {
    /// The fused batched BiCGSTAB kernel (the paper's Algorithm 1) — the
    /// first rung of the escalation ladder.
    Bicgstab,
    /// Restarted GMRES — the second rung, retried on systems BiCGSTAB
    /// broke down on or left unconverged.
    Gmres,
    /// The banded-LU direct fallback (`dgbsv` baseline) — the last rung.
    BandedLuFallback,
}

impl SolveMethod {
    /// Short name for logs and stats.
    pub fn name(self) -> &'static str {
        match self {
            SolveMethod::Bicgstab => "bicgstab",
            SolveMethod::Gmres => "gmres",
            SolveMethod::BandedLuFallback => "banded-lu",
        }
    }
}

/// One rung of the escalation ladder as attempted on a request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RungAttempt {
    /// Which solver ran.
    pub method: SolveMethod,
    /// Iterations it spent (1 for the direct rung).
    pub iterations: u32,
    /// Residual it reached.
    pub residual: f64,
    /// Whether this rung converged the system.
    pub converged: bool,
    /// Breakdown tag, if the rung broke down.
    pub breakdown: Option<&'static str>,
}

/// A converged solution.
#[derive(Clone, Debug)]
pub struct Solution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations the iterative solver spent on this system (for the
    /// fallback path: the iterations burned before falling back).
    pub iterations: u32,
    /// Final true residual 2-norm.
    pub residual: f64,
    /// Which solver produced `x`.
    pub method: SolveMethod,
    /// Size of the fused batch this request was dispatched in.
    pub batch_size: usize,
    /// Time the request spent queued before dispatch.
    pub queue_wait: Duration,
    /// Every escalation rung attempted on this request, in order; the
    /// last entry is the one that produced `x`.
    pub rungs: Vec<RungAttempt>,
}

/// Structured failure of an accepted request.
#[derive(Clone, Debug)]
pub enum SolveError {
    /// The request waited in the queue past its deadline and was dropped
    /// before dispatch.
    DeadlineExceeded {
        /// How long it actually waited.
        waited: Duration,
        /// The deadline it carried.
        deadline: Duration,
    },
    /// No rung of the escalation ladder produced a solution within
    /// tolerance.
    NotConverged {
        /// Iterations spent.
        iterations: u32,
        /// Final residual reached.
        residual: f64,
        /// Breakdown tag from the solver, if any (e.g. `rho_zero`).
        breakdown: Option<&'static str>,
        /// Every rung attempted before giving up.
        rungs: Vec<RungAttempt>,
    },
    /// The worker panicked while solving the batch this request was
    /// isolated into. Healthy batch neighbors are re-dispatched; only the
    /// request whose singleton dispatch still panicked gets this error.
    WorkerPanic {
        /// Panic payload, when it was a string.
        detail: String,
    },
    /// The device (or its simulator) failed the fused launch carrying
    /// this request, and its singleton retry failed too.
    DeviceFailure {
        /// Machine-readable failure code.
        code: &'static str,
    },
    /// The service shut down before this request was dispatched.
    ServiceShutdown,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::DeadlineExceeded { waited, deadline } => write!(
                f,
                "deadline exceeded: waited {:.3} ms against a {:.3} ms deadline",
                waited.as_secs_f64() * 1e3,
                deadline.as_secs_f64() * 1e3
            ),
            SolveError::NotConverged {
                iterations,
                residual,
                breakdown,
                rungs,
            } => write!(
                f,
                "not converged after {iterations} iterations across {} rung(s) \
                 (residual {residual:.3e}{})",
                rungs.len().max(1),
                breakdown
                    .map(|b| format!(", breakdown: {b}"))
                    .unwrap_or_default()
            ),
            SolveError::WorkerPanic { detail } => {
                write!(f, "worker panicked while solving this request: {detail}")
            }
            SolveError::DeviceFailure { code } => {
                write!(f, "device failed the launch ({code})")
            }
            SolveError::ServiceShutdown => write!(f, "service shut down before dispatch"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Per-request terminal outcome.
pub type SolveOutcome = Result<Solution, SolveError>;

/// Why a request was rejected at submission (backpressure is explicit:
/// the service never silently drops work).
#[derive(Clone, Debug)]
pub enum SubmitError {
    /// The bounded submission queue is full; retry later or shed load.
    QueueFull {
        /// The configured queue bound.
        capacity: usize,
    },
    /// A field does not match the service's sparsity pattern.
    ShapeMismatch {
        /// Which field (`values`, `rhs`, `guess`).
        field: &'static str,
        /// Length the pattern requires.
        expected: usize,
        /// Length submitted.
        got: usize,
    },
    /// The admission gate refused the payload (non-finite data, unusable
    /// Jacobi diagonal) before it could poison a fused launch.
    Rejected {
        /// The structured reason.
        reason: crate::admission::RejectReason,
    },
    /// The circuit breaker is open after a run of degraded batches; the
    /// service is shedding load while the backend recovers.
    CircuitOpen {
        /// Hint: how long until the next half-open probe is admitted.
        retry_after: Duration,
    },
    /// The request's deadline budget cannot cover even the device
    /// model's predicted solve cost, so queueing it would only burn
    /// capacity on work guaranteed to miss its deadline. Rejected at
    /// admission instead of shed later.
    Infeasible {
        /// Predicted solve cost of one chunk on the configured device.
        predicted: Duration,
        /// The deadline budget the request carried.
        budget: Duration,
    },
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            SubmitError::ShapeMismatch {
                field,
                expected,
                got,
            } => write!(f, "{field} has length {got}, pattern requires {expected}"),
            SubmitError::Rejected { reason } => write!(f, "rejected at admission: {reason}"),
            SubmitError::CircuitOpen { retry_after } => write!(
                f,
                "circuit breaker open, retry in {:.1} ms",
                retry_after.as_secs_f64() * 1e3
            ),
            SubmitError::Infeasible { predicted, budget } => write!(
                f,
                "infeasible deadline: predicted solve cost {:.3} ms exceeds the \
                 {:.3} ms budget",
                predicted.as_secs_f64() * 1e3,
                budget.as_secs_f64() * 1e3
            ),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Handle returned by a successful submission; redeem it for the
/// request's outcome.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) id: RequestId,
    pub(crate) rx: mpsc::Receiver<SolveOutcome>,
}

impl Ticket {
    /// The id assigned to the request.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Block until the request reaches a terminal outcome.
    pub fn wait(self) -> SolveOutcome {
        self.rx.recv().unwrap_or(Err(SolveError::ServiceShutdown))
    }

    /// Like [`Ticket::wait`] with a timeout; `None` if the outcome is not
    /// ready in time (the ticket stays redeemable).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<SolveOutcome> {
        match self.rx.recv_timeout(timeout) {
            Ok(outcome) => Some(outcome),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(SolveError::ServiceShutdown)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder() {
        let r = SolveRequest::new(vec![1.0; 5], vec![2.0; 3])
            .with_guess(vec![0.5; 3])
            .with_tolerance(1e-6)
            .with_deadline(Duration::from_millis(10));
        assert_eq!(r.values.len(), 5);
        assert_eq!(r.guess.as_ref().unwrap().len(), 3);
        assert_eq!(r.tolerance, Some(1e-6));
        assert_eq!(r.deadline, Some(Duration::from_millis(10)));
    }

    #[test]
    fn error_display() {
        let e = SolveError::NotConverged {
            iterations: 500,
            residual: 1.2e-3,
            breakdown: None,
            rungs: vec![],
        };
        assert!(e.to_string().contains("500 iterations"));
        let q = SubmitError::QueueFull { capacity: 64 };
        assert!(q.to_string().contains("64"));
        let p = SolveError::WorkerPanic {
            detail: "boom".into(),
        };
        assert!(p.to_string().contains("boom"));
        let d = SolveError::DeviceFailure {
            code: "launch_failure",
        };
        assert!(d.to_string().contains("launch_failure"));
        let c = SubmitError::CircuitOpen {
            retry_after: Duration::from_millis(5),
        };
        assert!(c.to_string().contains("circuit breaker open"));
        let i = SubmitError::Infeasible {
            predicted: Duration::from_millis(3),
            budget: Duration::from_millis(1),
        };
        assert!(i.to_string().contains("infeasible deadline"));
    }

    #[test]
    fn ticket_resolves_to_shutdown_on_drop() {
        let (tx, rx) = mpsc::channel();
        let ticket = Ticket { id: 7, rx };
        assert_eq!(ticket.id(), 7);
        drop(tx);
        assert!(matches!(ticket.wait(), Err(SolveError::ServiceShutdown)));
    }
}
