//! Per-pattern circuit breaker.
//!
//! A storm of breakdowns or fallback escalations usually means something
//! upstream is systematically wrong (a bad Picard state poisoning every
//! node's values, a device fault) — and every further dispatch burns a
//! full iterative-solve budget discovering that again. The breaker
//! watches consecutive *degraded* batches and, after a configurable run
//! of them, trips: submissions are shed with
//! [`SubmitError::CircuitOpen`](crate::SubmitError::CircuitOpen) until a
//! cooldown elapses, then a half-open probe batch decides between closing
//! (healthy again) and re-opening with exponentially longer backoff.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive degraded batches that trip the breaker.
    pub trip_after: u32,
    /// How long the breaker stays open after the first trip; doubles on
    /// every failed half-open probe.
    pub cooldown: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// A batch is *degraded* when at least this fraction of its items
    /// failed or needed a fallback rung.
    pub degraded_fraction: f64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            trip_after: 8,
            cooldown: Duration::from_millis(100),
            max_backoff: Duration::from_secs(10),
            degraded_fraction: 0.5,
        }
    }
}

#[derive(Debug)]
enum State {
    /// Healthy; counting consecutive degraded batches.
    Closed { consecutive: u32 },
    /// Shedding load until `until`; `backoff` is the duration that was
    /// applied (doubled on the next re-open).
    Open { until: Instant, backoff: Duration },
    /// One probe batch is allowed through; its outcome decides.
    HalfOpen { backoff: Duration },
}

/// The breaker itself. One per service (the service serves one sparsity
/// pattern, so this is per-pattern by construction).
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: Mutex<State>,
}

impl CircuitBreaker {
    /// A closed breaker with the given knobs.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            state: Mutex::new(State::Closed { consecutive: 0 }),
        }
    }

    /// Admission-time check. `Ok` admits the request; `Err(retry_after)`
    /// sheds it. An expired open period transitions to half-open and
    /// admits (the probe).
    pub fn check(&self, now: Instant) -> Result<(), Duration> {
        let mut s = self.state.lock().unwrap();
        match *s {
            State::Closed { .. } | State::HalfOpen { .. } => Ok(()),
            State::Open { until, backoff } => {
                if now >= until {
                    *s = State::HalfOpen { backoff };
                    Ok(())
                } else {
                    Err(until - now)
                }
            }
        }
    }

    /// Record one dispatched batch (`degraded` of `total` items failed or
    /// escalated). Returns `true` when this batch *tripped* the breaker
    /// (closed/half-open → open), so the caller can count trips.
    pub fn on_batch(&self, now: Instant, total: usize, degraded: usize) -> bool {
        if total == 0 {
            return false;
        }
        let is_degraded = degraded as f64 / total as f64 >= self.cfg.degraded_fraction;
        let mut s = self.state.lock().unwrap();
        match *s {
            State::Closed { consecutive } => {
                if !is_degraded {
                    *s = State::Closed { consecutive: 0 };
                    return false;
                }
                let consecutive = consecutive + 1;
                if consecutive >= self.cfg.trip_after {
                    *s = State::Open {
                        until: now + self.cfg.cooldown,
                        backoff: self.cfg.cooldown,
                    };
                    true
                } else {
                    *s = State::Closed { consecutive };
                    false
                }
            }
            State::HalfOpen { backoff } => {
                if is_degraded {
                    let backoff = (backoff * 2).min(self.cfg.max_backoff);
                    *s = State::Open {
                        until: now + backoff,
                        backoff,
                    };
                    true
                } else {
                    *s = State::Closed { consecutive: 0 };
                    false
                }
            }
            // Batches formed before the trip may still drain while open;
            // they don't change the state.
            State::Open { .. } => false,
        }
    }

    /// True when submissions are currently being shed.
    pub fn is_open(&self, now: Instant) -> bool {
        self.check(now).is_err()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            trip_after: 3,
            cooldown: Duration::from_millis(10),
            max_backoff: Duration::from_millis(40),
            degraded_fraction: 0.5,
        }
    }

    #[test]
    fn trips_after_consecutive_degraded_batches() {
        let b = CircuitBreaker::new(cfg());
        let t0 = Instant::now();
        assert!(!b.on_batch(t0, 4, 4));
        assert!(!b.on_batch(t0, 4, 3));
        assert!(b.check(t0).is_ok());
        assert!(b.on_batch(t0, 4, 2), "third degraded batch must trip");
        assert!(b.check(t0).is_err());
    }

    #[test]
    fn healthy_batch_resets_the_run() {
        let b = CircuitBreaker::new(cfg());
        let t0 = Instant::now();
        assert!(!b.on_batch(t0, 4, 4));
        assert!(!b.on_batch(t0, 4, 4));
        assert!(!b.on_batch(t0, 4, 0), "healthy batch resets");
        assert!(!b.on_batch(t0, 4, 4));
        assert!(!b.on_batch(t0, 4, 4));
        assert!(b.check(t0).is_ok());
    }

    #[test]
    fn below_fraction_is_not_degraded() {
        let b = CircuitBreaker::new(cfg());
        let t0 = Instant::now();
        for _ in 0..10 {
            assert!(!b.on_batch(t0, 10, 4)); // 40% < 50%
        }
        assert!(b.check(t0).is_ok());
    }

    #[test]
    fn half_open_probe_closes_or_reopens_with_backoff() {
        let b = CircuitBreaker::new(cfg());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_batch(t0, 1, 1);
        }
        let retry = b.check(t0).unwrap_err();
        assert!(retry <= Duration::from_millis(10));

        // After the cooldown the probe is admitted (half-open)...
        let t1 = t0 + Duration::from_millis(11);
        assert!(b.check(t1).is_ok());
        // ...and a degraded probe re-opens with doubled backoff.
        assert!(b.on_batch(t1, 1, 1));
        let retry = b.check(t1).unwrap_err();
        assert!(retry > Duration::from_millis(10), "backoff must grow");

        // A healthy probe closes it for good.
        let t2 = t1 + Duration::from_millis(21);
        assert!(b.check(t2).is_ok());
        assert!(!b.on_batch(t2, 1, 0));
        assert!(b.check(t2).is_ok());
        assert!(!b.is_open(t2));
    }

    #[test]
    fn backoff_is_capped() {
        let b = CircuitBreaker::new(cfg());
        let mut t = Instant::now();
        for _ in 0..3 {
            b.on_batch(t, 1, 1);
        }
        // Fail many probes; backoff must stop at max_backoff.
        for _ in 0..8 {
            t += Duration::from_secs(1);
            assert!(b.check(t).is_ok(), "probe after long wait");
            b.on_batch(t, 1, 1);
        }
        let retry = b.check(t).unwrap_err();
        assert!(retry <= Duration::from_millis(40));
    }

    #[test]
    fn empty_batches_are_ignored() {
        let b = CircuitBreaker::new(cfg());
        let t0 = Instant::now();
        for _ in 0..10 {
            assert!(!b.on_batch(t0, 0, 0));
        }
        assert!(b.check(t0).is_ok());
    }
}
