//! Property-based tests of the level-1 kernels and the dense LU.

use batsolv_blas::lu::{dense_invert, dense_solve};
use batsolv_blas::*;
use proptest::prelude::*;

fn vecs(n: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (
        proptest::collection::vec(-10.0f64..10.0, n),
        proptest::collection::vec(-10.0f64..10.0, n),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dot_is_symmetric_and_cauchy_schwarz((x, y) in vecs(33)) {
        let xy = dot(&x, &y);
        let yx = dot(&y, &x);
        prop_assert!((xy - yx).abs() < 1e-9);
        prop_assert!(xy.abs() <= nrm2(&x) * nrm2(&y) + 1e-9);
    }

    #[test]
    fn axpy_matches_reference((x, mut y) in vecs(17), alpha in -5.0f64..5.0) {
        let expect: Vec<f64> = x.iter().zip(y.iter()).map(|(a, b)| alpha * a + b).collect();
        axpy(alpha, &x, &mut y);
        for (a, b) in y.iter().zip(expect.iter()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn norm_triangle_inequality((x, y) in vecs(25)) {
        let mut sum = x.clone();
        axpy(1.0, &y, &mut sum);
        prop_assert!(nrm2(&sum) <= nrm2(&x) + nrm2(&y) + 1e-9);
        prop_assert!(nrm_inf(&sum) <= nrm_inf(&x) + nrm_inf(&y) + 1e-12);
    }

    #[test]
    fn guarded_divide_inverts_multiply((x, d) in vecs(12)) {
        // Use only nonzero divisors.
        let d: Vec<f64> = d.iter().map(|v| if v.abs() < 0.1 { 1.0 } else { *v }).collect();
        let mut prod = vec![0.0; 12];
        mul_elementwise(&x, &d, &mut prod);
        let mut back = vec![0.0; 12];
        div_elementwise_guarded(&prod, &d, &mut back);
        for (a, b) in back.iter().zip(x.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn lu_solves_dominant_systems(
        n in 2usize..16,
        seed in 0u64..100_000,
    ) {
        let h = |k: usize| ((seed as usize + k * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
        let mut a = vec![0.0f64; n * n];
        for r in 0..n {
            for c in 0..n {
                a[r * n + c] = if r == c { n as f64 + 1.0 + h(r) } else { h(r * n + c) };
            }
        }
        let x_true: Vec<f64> = (0..n).map(|k| h(k + 7 * n) * 3.0).collect();
        let mut b = vec![0.0; n];
        for r in 0..n {
            for c in 0..n {
                b[r] += a[r * n + c] * x_true[c];
            }
        }
        let x = dense_solve(n, &a, &b).unwrap();
        for k in 0..n {
            prop_assert!((x[k] - x_true[k]).abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_is_two_sided(n in 2usize..10, seed in 0u64..100_000) {
        let h = |k: usize| ((seed as usize + k * 40503) % 1000) as f64 / 1000.0 - 0.5;
        let mut a = vec![0.0f64; n * n];
        for r in 0..n {
            for c in 0..n {
                a[r * n + c] = if r == c { n as f64 + h(r) } else { h(r * n + c) };
            }
        }
        let inv = dense_invert(n, &a).unwrap();
        // Both A·A⁻¹ and A⁻¹·A are the identity.
        for (left, right) in [(&a, &inv), (&inv, &a)] {
            for r in 0..n {
                for c in 0..n {
                    let mut acc = 0.0;
                    for k in 0..n {
                        acc += left[r * n + k] * right[k * n + c];
                    }
                    let expect = if r == c { 1.0 } else { 0.0 };
                    prop_assert!((acc - expect).abs() < 1e-8, "({r},{c}) = {acc}");
                }
            }
        }
    }

    #[test]
    fn counts_traffic_matches_placement(n in 1usize..2000, warp in 2u32..128) {
        use batsolv_blas::counts::{axpy_counts, MemSpace};
        let gg = axpy_counts::<f64>(n, MemSpace::Global, MemSpace::Global, warp);
        let ss = axpy_counts::<f64>(n, MemSpace::Shared, MemSpace::Shared, warp);
        // Same arithmetic, different address spaces.
        prop_assert_eq!(gg.flops, ss.flops);
        prop_assert_eq!(gg.lane_total, ss.lane_total);
        prop_assert_eq!(gg.global_bytes() + gg.shared_read_bytes + gg.shared_write_bytes,
                        ss.global_bytes() + ss.shared_read_bytes + ss.shared_write_bytes);
        prop_assert_eq!(ss.global_bytes(), 0);
    }
}
