//! Operation-count formulas for the level-1 kernels.
//!
//! The traffic location (shared vs. global) of each vector is decided by
//! the solver's workspace-placement policy, so every formula here takes a
//! [`MemSpace`] per operand and books the bytes accordingly. Dense level-1
//! kernels keep all warp lanes busy (Table II's near-100% baseline that
//! the CSR SpMV drags down).

use batsolv_types::{OpCounts, Scalar};

/// Address space a vector lives in for the simulated device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemSpace {
    /// On-CU local shared memory (fast, per-block).
    Shared,
    /// Device global memory.
    Global,
}

fn book_read<T: Scalar>(c: &mut OpCounts, n: u64, space: MemSpace) {
    let bytes = n * T::BYTES as u64;
    match space {
        MemSpace::Shared => c.shared_read_bytes += bytes,
        MemSpace::Global => c.global_read_bytes += bytes,
    }
}

fn book_write<T: Scalar>(c: &mut OpCounts, n: u64, space: MemSpace) {
    let bytes = n * T::BYTES as u64;
    match space {
        MemSpace::Shared => c.shared_write_bytes += bytes,
        MemSpace::Global => c.global_write_bytes += bytes,
    }
}

/// Counts of a length-`n` dot product (`2n` flops + log-depth reduction).
pub fn dot_counts<T: Scalar>(n: usize, x: MemSpace, y: MemSpace, warp: u32) -> OpCounts {
    let mut c = OpCounts::ZERO;
    let n64 = n as u64;
    c.flops = 2 * n64;
    book_read::<T>(&mut c, n64, x);
    book_read::<T>(&mut c, n64, y);
    c.record_lanes(n64, warp as u64, 1);
    // Tree reduction within the block: ~log2(warp) extra warp ops, all
    // cross-lane exchanges.
    let mut active = (n64.min(warp as u64)).div_ceil(2);
    while active >= 1 {
        c.record_lanes(active, warp as u64, 1);
        c.flops += active;
        c.cross_warp_ops += 1;
        if active == 1 {
            break;
        }
        active = active.div_ceil(2);
    }
    c
}

/// Counts of `y ← αx + y`.
pub fn axpy_counts<T: Scalar>(n: usize, x: MemSpace, y: MemSpace, warp: u32) -> OpCounts {
    let mut c = OpCounts::ZERO;
    let n64 = n as u64;
    c.flops = 2 * n64;
    book_read::<T>(&mut c, n64, x);
    book_read::<T>(&mut c, n64, y);
    book_write::<T>(&mut c, n64, y);
    c.record_lanes(n64, warp as u64, 1);
    c
}

/// Counts of `y ← αx + βy`.
pub fn axpby_counts<T: Scalar>(n: usize, x: MemSpace, y: MemSpace, warp: u32) -> OpCounts {
    let mut c = axpy_counts::<T>(n, x, y, warp);
    c.flops += n as u64;
    c
}

/// Counts of a norm (dot with itself plus a sqrt).
pub fn nrm2_counts<T: Scalar>(n: usize, x: MemSpace, warp: u32) -> OpCounts {
    let mut c = dot_counts::<T>(n, x, x, warp);
    c.flops += 1;
    c
}

/// Counts of an elementwise multiply or guarded divide (Jacobi apply).
pub fn elementwise_counts<T: Scalar>(
    n: usize,
    x: MemSpace,
    d: MemSpace,
    out: MemSpace,
    warp: u32,
) -> OpCounts {
    let mut c = OpCounts::ZERO;
    let n64 = n as u64;
    c.flops = n64;
    book_read::<T>(&mut c, n64, x);
    book_read::<T>(&mut c, n64, d);
    book_write::<T>(&mut c, n64, out);
    c.record_lanes(n64, warp as u64, 1);
    c
}

/// Counts of a plain copy.
pub fn copy_counts<T: Scalar>(n: usize, src: MemSpace, dst: MemSpace, warp: u32) -> OpCounts {
    let mut c = OpCounts::ZERO;
    let n64 = n as u64;
    book_read::<T>(&mut c, n64, src);
    book_write::<T>(&mut c, n64, dst);
    c.record_lanes(n64, warp as u64, 1);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_books_both_operand_spaces() {
        let c = dot_counts::<f64>(100, MemSpace::Shared, MemSpace::Global, 32);
        assert_eq!(c.shared_read_bytes, 800);
        assert_eq!(c.global_read_bytes, 800);
        assert!(c.flops >= 200);
    }

    #[test]
    fn axpy_reads_and_writes_y() {
        let c = axpy_counts::<f64>(10, MemSpace::Global, MemSpace::Shared, 32);
        assert_eq!(c.global_read_bytes, 80);
        assert_eq!(c.shared_read_bytes, 80);
        assert_eq!(c.shared_write_bytes, 80);
        assert_eq!(c.flops, 20);
    }

    #[test]
    fn dense_kernels_have_high_lane_use() {
        // A 992-row vector on 32-wide warps: utilization should be ~1.
        let c = axpy_counts::<f64>(992, MemSpace::Shared, MemSpace::Shared, 32);
        assert!(c.lane_utilization() > 0.95);
    }

    #[test]
    fn f32_halves_traffic() {
        let c64 = copy_counts::<f64>(64, MemSpace::Global, MemSpace::Global, 32);
        let c32 = copy_counts::<f32>(64, MemSpace::Global, MemSpace::Global, 32);
        assert_eq!(c64.global_read_bytes, 2 * c32.global_read_bytes);
    }

    #[test]
    fn axpby_adds_one_flop_per_element() {
        let a = axpy_counts::<f64>(50, MemSpace::Shared, MemSpace::Shared, 32);
        let b = axpby_counts::<f64>(50, MemSpace::Shared, MemSpace::Shared, 32);
        assert_eq!(b.flops - a.flops, 50);
    }
}
