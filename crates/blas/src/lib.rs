#![allow(clippy::needless_range_loop)] // indexed loops are the clearest idiom for stencil/linear-algebra kernels
//! Specialized batched dense BLAS kernels.
//!
//! The paper's solvers compose "specialized, tuned `BatchDense` kernels"
//! (dot products, axpys, norms) with the sparse SpMV into a single fused
//! solve kernel. This crate provides those building blocks for one system
//! at a time — the per-thread-block perspective — plus the operation-count
//! bookkeeping ([`counts`]) that the device model prices, and a small dense
//! LU ([`lu`]) used by tests, the block-Jacobi preconditioner, and the
//! reference direct path.

pub mod counts;
pub mod l1;
pub mod lu;

pub use l1::*;
