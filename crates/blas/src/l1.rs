//! Level-1 dense kernels for one system of a batch.
//!
//! These are the "intermediate vector" operations of Algorithm 1 in the
//! paper (BiCGSTAB): dots, axpys, norms and elementwise scaling. On the
//! GPU they run warp-parallel within the system's thread block; here they
//! are straight loops that the compiler vectorizes, and the lane-activity
//! accounting lives in [`crate::counts`].

use batsolv_types::Scalar;

/// `x · y`.
#[inline]
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = T::ZERO;
    for (&a, &b) in x.iter().zip(y.iter()) {
        acc = a.mul_add(b, acc);
    }
    acc
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn nrm2<T: Scalar>(x: &[T]) -> T {
    dot(x, x).sqrt()
}

/// `y ← α·x + y`.
#[inline]
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    for (&xv, yv) in x.iter().zip(y.iter_mut()) {
        *yv = alpha.mul_add(xv, *yv);
    }
}

/// `y ← α·x + β·y`.
#[inline]
pub fn axpby<T: Scalar>(alpha: T, x: &[T], beta: T, y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    for (&xv, yv) in x.iter().zip(y.iter_mut()) {
        *yv = alpha.mul_add(xv, beta * *yv);
    }
}

/// `x ← α·x`.
#[inline]
pub fn scal<T: Scalar>(alpha: T, x: &mut [T]) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// `y ← x`.
#[inline]
pub fn copy<T: Scalar>(x: &[T], y: &mut [T]) {
    y.copy_from_slice(x);
}

/// `z ← x ⊙ y` (Hadamard product; the scalar-Jacobi application).
#[inline]
pub fn mul_elementwise<T: Scalar>(x: &[T], y: &[T], z: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len(), z.len());
    for i in 0..x.len() {
        z[i] = x[i] * y[i];
    }
}

/// `y ← x ⊘ d` with zero-diagonal protection: rows whose `d` entry is
/// exactly zero pass through unscaled (matches Ginkgo's batch Jacobi).
#[inline]
pub fn div_elementwise_guarded<T: Scalar>(x: &[T], d: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), d.len());
    debug_assert_eq!(x.len(), y.len());
    for i in 0..x.len() {
        y[i] = if d[i] == T::ZERO { x[i] } else { x[i] / d[i] };
    }
}

/// `r ← b − r` in place (used to finish residual computation after
/// `r = A·x`).
#[inline]
pub fn sub_from<T: Scalar>(b: &[T], r: &mut [T]) {
    debug_assert_eq!(b.len(), r.len());
    for (&bv, rv) in b.iter().zip(r.iter_mut()) {
        *rv = bv - *rv;
    }
}

/// Infinity norm `max |x_i|`.
#[inline]
pub fn nrm_inf<T: Scalar>(x: &[T]) -> T {
    x.iter().fold(T::ZERO, |m, &v| m.max_val(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        let x = [3.0f64, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(nrm2(&x), 5.0);
        assert_eq!(nrm_inf(&[-7.0, 2.0]), 7.0);
    }

    #[test]
    fn axpy_variants() {
        let x = [1.0f64, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
        axpby(1.0, &x, 0.5, &mut y);
        assert_eq!(y, [7.0, 14.0, 21.0]);
    }

    #[test]
    fn scal_copy_sub() {
        let mut x = [2.0f64, -4.0];
        scal(0.5, &mut x);
        assert_eq!(x, [1.0, -2.0]);
        let mut y = [0.0; 2];
        copy(&x, &mut y);
        assert_eq!(y, x);
        sub_from(&[5.0, 5.0], &mut y);
        assert_eq!(y, [4.0, 7.0]);
    }

    #[test]
    fn elementwise_ops() {
        let mut z = [0.0f64; 3];
        mul_elementwise(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &mut z);
        assert_eq!(z, [4.0, 10.0, 18.0]);
        let mut y = [0.0f64; 3];
        div_elementwise_guarded(&[8.0, 9.0, 1.5], &[2.0, 0.0, 3.0], &mut y);
        assert_eq!(y, [4.0, 9.0, 0.5]); // zero pivot passes through
    }
}
