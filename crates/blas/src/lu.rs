//! Small dense LU factorization with partial pivoting.
//!
//! Used for the dense reference solves in tests, for block-Jacobi
//! preconditioner blocks, and as the innermost kernel of the batched dense
//! direct baseline. Operates on a row-major `n × n` slab in place.

use batsolv_types::{Error, Result, Scalar};

/// In-place LU factorization with partial pivoting of a row-major `n × n`
/// matrix. On success `a` holds `L` (unit lower, below diagonal) and `U`
/// (upper), and `piv[k]` records the row swapped into position `k`.
pub fn lu_factor<T: Scalar>(n: usize, a: &mut [T], piv: &mut [usize]) -> Result<()> {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(piv.len(), n);
    for k in 0..n {
        // Pivot search in column k.
        let mut p = k;
        let mut pmax = a[k * n + k].abs();
        for r in (k + 1)..n {
            let v = a[r * n + k].abs();
            if v > pmax {
                pmax = v;
                p = r;
            }
        }
        if pmax == T::ZERO {
            return Err(Error::SingularMatrix {
                batch_index: 0,
                detail: format!("zero pivot column {k}"),
            });
        }
        piv[k] = p;
        if p != k {
            for c in 0..n {
                a.swap(k * n + c, p * n + c);
            }
        }
        let pivot = a[k * n + k];
        for r in (k + 1)..n {
            let m = a[r * n + k] / pivot;
            a[r * n + k] = m;
            for c in (k + 1)..n {
                a[r * n + c] -= m * a[k * n + c];
            }
        }
    }
    Ok(())
}

/// Solve `A x = b` using factors from [`lu_factor`]; `b` is overwritten
/// with the solution.
pub fn lu_solve<T: Scalar>(n: usize, a: &[T], piv: &[usize], b: &mut [T]) {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n);
    // Apply row swaps.
    for k in 0..n {
        let p = piv[k];
        if p != k {
            b.swap(k, p);
        }
    }
    // Forward substitution (unit lower).
    for r in 1..n {
        let mut acc = b[r];
        for c in 0..r {
            acc -= a[r * n + c] * b[c];
        }
        b[r] = acc;
    }
    // Back substitution.
    for r in (0..n).rev() {
        let mut acc = b[r];
        for c in (r + 1)..n {
            acc -= a[r * n + c] * b[c];
        }
        b[r] = acc / a[r * n + r];
    }
}

/// Convenience: factor a copy of `a` and solve for `b`, returning `x`.
pub fn dense_solve<T: Scalar>(n: usize, a: &[T], b: &[T]) -> Result<Vec<T>> {
    let mut lu = a.to_vec();
    let mut piv = vec![0usize; n];
    lu_factor(n, &mut lu, &mut piv)?;
    let mut x = b.to_vec();
    lu_solve(n, &lu, &piv, &mut x);
    Ok(x)
}

/// Invert a small dense matrix (used by block-Jacobi setup).
pub fn dense_invert<T: Scalar>(n: usize, a: &[T]) -> Result<Vec<T>> {
    let mut lu = a.to_vec();
    let mut piv = vec![0usize; n];
    lu_factor(n, &mut lu, &mut piv)?;
    let mut inv = vec![T::ZERO; n * n];
    let mut e = vec![T::ZERO; n];
    for c in 0..n {
        e.iter_mut().for_each(|v| *v = T::ZERO);
        e[c] = T::ONE;
        lu_solve(n, &lu, &piv, &mut e);
        for r in 0..n {
            inv[r * n + c] = e[r];
        }
    }
    Ok(inv)
}

/// Flop count of an `n × n` LU factorization (`~2n³/3`) plus two
/// triangular solves (`~2n²`), for the device model.
pub fn lu_solve_flops(n: usize) -> u64 {
    let n = n as u64;
    2 * n * n * n / 3 + 2 * n * n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(n: usize, a: &[f64], x: &[f64], b: &[f64]) -> f64 {
        let mut worst: f64 = 0.0;
        for r in 0..n {
            let mut acc = 0.0;
            for c in 0..n {
                acc += a[r * n + c] * x[c];
            }
            worst = worst.max((acc - b[r]).abs());
        }
        worst
    }

    #[test]
    fn solves_identity() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let x = dense_solve(2, &a, &[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solves_requiring_pivoting() {
        // Zero in (0,0) forces a row swap.
        let a = [0.0, 2.0, 1.0, 1.0];
        let b = [2.0, 2.0];
        let x = dense_solve(2, &a, &b).unwrap();
        assert!(residual(2, &a, &x, &b) < 1e-14);
    }

    #[test]
    fn detects_singularity() {
        let a = [1.0, 2.0, 2.0, 4.0];
        assert!(dense_solve(2, &a, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn random_system_residual_small() {
        // Deterministic pseudo-random fill, diagonally dominated.
        let n = 12;
        let mut a = vec![0.0f64; n * n];
        for r in 0..n {
            for c in 0..n {
                let h = ((r * 37 + c * 17 + 11) % 23) as f64 / 23.0 - 0.5;
                a[r * n + c] = if r == c { 6.0 + h } else { h };
            }
        }
        let b: Vec<f64> = (0..n).map(|k| (k as f64 * 0.7).sin()).collect();
        let x = dense_solve(n, &a, &b).unwrap();
        assert!(residual(n, &a, &x, &b) < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let n = 5;
        let mut a = vec![0.0f64; n * n];
        for r in 0..n {
            for c in 0..n {
                a[r * n + c] = if r == c {
                    4.0
                } else {
                    1.0 / (1.0 + (r + 2 * c) as f64)
                };
            }
        }
        let inv = dense_invert(n, &a).unwrap();
        for r in 0..n {
            for c in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += inv[r * n + k] * a[k * n + c];
                }
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!((acc - expect).abs() < 1e-12, "({r},{c}) = {acc}");
            }
        }
    }

    #[test]
    fn flop_formula_scales_cubically() {
        assert!(lu_solve_flops(100) > 600_000);
        assert!(lu_solve_flops(200) > 7 * lu_solve_flops(100));
    }
}
