//! Property-based tests of the collision proxy: conservation by
//! construction, assembly invariants, moment arithmetic.

use batsolv_formats::{BatchCsr, BatchMatrix};
use batsolv_xgc::operator_assembly::assemble_matrix;
use batsolv_xgc::{Moments, Species, VelocityGrid};
use proptest::prelude::*;
use std::sync::Arc;

fn grid_strategy() -> impl Strategy<Value = VelocityGrid> {
    (4usize..14, 4usize..14).prop_map(|(nx, ny)| VelocityGrid::small(nx, ny))
}

fn moments_strategy() -> impl Strategy<Value = Moments> {
    (0.3f64..3.0, -0.8f64..0.8, 0.5f64..2.0).prop_map(|(density, mean_velocity, temperature)| {
        Moments {
            density,
            mean_velocity,
            temperature,
        }
    })
}

fn species_strategy() -> impl Strategy<Value = Species> {
    (0.001f64..0.5, 0.0f64..0.6).prop_map(|(dt_nu, aniso)| Species {
        name: "test",
        mass: 1.0,
        dt_nu,
        aniso,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn column_sums_are_one_for_any_coefficients(
        grid in grid_strategy(),
        moments in moments_strategy(),
        species in species_strategy(),
    ) {
        // Exact particle conservation regardless of physics parameters:
        // the flux-form assembly telescopes.
        let pattern = Arc::new(grid.stencil_pattern());
        let mut vals = vec![0.0f64; pattern.nnz()];
        assemble_matrix(&grid, &species, &moments, &pattern, &mut vals);
        let mut m = BatchCsr::<f64>::zeros(1, pattern.clone()).unwrap();
        m.values_of_mut(0).copy_from_slice(&vals);
        let n = grid.num_nodes();
        for c in 0..n {
            let sum: f64 = (0..n).map(|r| m.entry(0, r, c)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-11, "column {c} sums to {sum}");
        }
    }

    #[test]
    fn assembly_diagonal_grows_with_collision_strength(
        grid in grid_strategy(),
        moments in moments_strategy(),
    ) {
        let pattern = Arc::new(grid.stencil_pattern());
        let weak = Species { name: "w", mass: 1.0, dt_nu: 0.01, aniso: 0.2 };
        let strong = Species { name: "s", mass: 1.0, dt_nu: 0.2, aniso: 0.2 };
        let mut vw = vec![0.0f64; pattern.nnz()];
        let mut vs = vec![0.0f64; pattern.nnz()];
        assemble_matrix(&grid, &weak, &moments, &pattern, &mut vw);
        assemble_matrix(&grid, &strong, &moments, &pattern, &mut vs);
        // Interior diagonal entries: stronger collisions push the matrix
        // further from the identity. (On very coarse grids the face drag
        // can exceed the diffusion term, moving the diagonal *below* 1 —
        // so compare distances from identity, not signed values.)
        let r = grid.node(grid.n_par / 2, grid.n_perp / 2);
        let k = pattern.diag_position(r).unwrap();
        prop_assert!(
            (vs[k] - 1.0).abs() > (vw[k] - 1.0).abs(),
            "diag {} vs {}",
            vs[k],
            vw[k]
        );
    }

    #[test]
    fn moments_scale_linearly_with_density(
        grid in grid_strategy(),
        n0 in 0.2f64..4.0,
        u0 in -0.5f64..0.5,
        t0 in 0.6f64..1.5,
        scale in 0.5f64..3.0,
    ) {
        let f = grid.maxwellian(n0, u0, t0);
        let f2: Vec<f64> = f.iter().map(|v| v * scale).collect();
        let m1 = Moments::compute(&grid, &f);
        let m2 = Moments::compute(&grid, &f2);
        prop_assert!((m2.density - scale * m1.density).abs() < 1e-10 * m1.density.abs());
        // Mean velocity and temperature are density-invariant.
        prop_assert!((m2.mean_velocity - m1.mean_velocity).abs() < 1e-9);
        prop_assert!((m2.temperature - m1.temperature).abs() < 1e-9);
    }

    #[test]
    fn maxwellian_moments_match_inputs_on_fine_grids(
        n0 in 0.5f64..2.0,
        u0 in -0.5f64..0.5,
        t0 in 0.8f64..1.2,
    ) {
        let grid = VelocityGrid::small(64, 48);
        let f = grid.maxwellian(n0, u0, t0);
        let m = Moments::compute(&grid, &f);
        // v_perp half-plane captures n0/2.
        prop_assert!((m.density - n0 / 2.0).abs() < 0.05 * n0, "density {}", m.density);
        prop_assert!((m.mean_velocity - u0).abs() < 0.05, "u {}", m.mean_velocity);
        prop_assert!((m.temperature - t0).abs() < 0.15 * t0, "T {}", m.temperature);
    }

    #[test]
    fn pattern_is_always_nine_point(grid in grid_strategy()) {
        let p = grid.stencil_pattern();
        prop_assert_eq!(p.num_rows(), grid.num_nodes());
        prop_assert_eq!(p.max_nnz_per_row(), 9);
        let (kl, ku) = p.bandwidths();
        prop_assert_eq!(kl, grid.n_par + 1);
        prop_assert_eq!(ku, grid.n_par + 1);
    }
}
