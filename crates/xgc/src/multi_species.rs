//! Multi-species collision proxy — the paper's stated future workload.
//!
//! Section II.A: "the future XGC application is expected to simulate
//! multiple ion species (~10) and electrons, \[while\] the proxy app
//! currently simulates a plasma with one ion species (along with
//! electrons)". This module implements that future configuration: an
//! arbitrary lineup of species per mesh node, all sharing the one
//! nine-point pattern, batched into a single combined solve. Because the
//! batch size scales with the species count, multi-species runs saturate
//! the GPU at proportionally fewer mesh nodes — which is precisely why
//! the batched-solver design matters for the production application.

use std::sync::Arc;

use batsolv_formats::{BatchCsr, BatchEll, BatchVectors, SparsityPattern};
use batsolv_gpusim::DeviceSpec;
use batsolv_solvers::{AbsResidual, BatchBicgstab, Jacobi};
use batsolv_types::{BatchDims, Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::grid::VelocityGrid;
use crate::moments::Moments;
use crate::operator_assembly::assemble_matrix;
use crate::picard::IterStats;
use crate::species::Species;

/// A plasma with an arbitrary species lineup (e.g. 10 ion isotopes plus
/// electrons) at every mesh node.
#[derive(Clone, Debug)]
pub struct MultiSpeciesProxy {
    /// Velocity grid (species-normalized units).
    pub grid: VelocityGrid,
    /// The species lineup; one linear system per (node, species).
    pub species: Vec<Species>,
    /// Picard iterations per implicit step.
    pub picard_iterations: usize,
    /// Linear-solver absolute tolerance.
    pub tolerance: f64,
    /// Spatial mesh nodes.
    pub num_mesh_nodes: usize,
    pattern: Arc<SparsityPattern>,
}

/// Distribution functions: one [`BatchVectors`] per species.
#[derive(Clone, Debug)]
pub struct MultiSpeciesState {
    /// `f[s]` is species `s`'s distribution over all mesh nodes.
    pub f: Vec<BatchVectors<f64>>,
}

/// Result of one multi-species Picard step.
#[derive(Clone, Debug)]
pub struct MultiSpeciesReport {
    /// Per-Picard-iteration, per-species iteration stats.
    pub linear_iters: Vec<Vec<IterStats>>,
    /// Total simulated solve time.
    pub total_solve_time_s: f64,
    /// Per-species relative density drift over the step.
    pub density_drift: Vec<f64>,
    /// Combined batch size per linear solve.
    pub batch_size: usize,
}

impl MultiSpeciesProxy {
    /// The paper's future configuration: `num_ions` ion species (a mass
    /// ladder of isotopes/impurities) plus electrons.
    pub fn future_xgc(grid: VelocityGrid, num_mesh_nodes: usize, num_ions: usize) -> Self {
        let mut species = Vec::with_capacity(num_ions + 1);
        for k in 0..num_ions {
            let base = Species::ion();
            species.push(Species {
                name: ION_NAMES[k % ION_NAMES.len()],
                mass: 1.0 + k as f64, // isotope / impurity mass ladder
                // Heavier species collide somewhat faster in normalized
                // units (higher charge states); keep all in the
                // ion-like well-conditioned regime.
                dt_nu: base.dt_nu * (1.0 + 0.4 * k as f64),
                aniso: base.aniso,
            });
        }
        species.push(Species::electron());
        MultiSpeciesProxy {
            grid,
            species,
            picard_iterations: 5,
            tolerance: 1e-10,
            num_mesh_nodes,
            pattern: Arc::new(grid.stencil_pattern()),
        }
    }

    /// Number of systems in each combined linear solve.
    pub fn batch_size(&self) -> usize {
        self.num_mesh_nodes * self.species.len()
    }

    /// Initial state: perturbed Maxwellians with a beam bump, per node
    /// and species.
    pub fn initial_state(&self, seed: u64) -> MultiSpeciesState {
        let mut rng = StdRng::seed_from_u64(seed);
        let dims =
            BatchDims::new(self.num_mesh_nodes, self.grid.num_nodes()).expect("valid proxy dims");
        let f = self
            .species
            .iter()
            .map(|_| {
                let mut v = BatchVectors::zeros(dims);
                for node in 0..self.num_mesh_nodes {
                    let n0: f64 = 0.8 + 0.4 * rng.gen::<f64>();
                    let u0: f64 = -0.3 + 0.6 * rng.gen::<f64>();
                    let t0: f64 = 0.85 + 0.3 * rng.gen::<f64>();
                    let main = self.grid.maxwellian(n0, u0, t0);
                    let bump = self.grid.maxwellian(0.25 * n0, u0 + 1.2, 0.4 * t0);
                    let dst = v.system_mut(node);
                    for k in 0..dst.len() {
                        dst[k] = main[k] + bump[k];
                    }
                }
                v
            })
            .collect();
        MultiSpeciesState { f }
    }

    /// One implicit step with warm-started batched BiCGSTAB (ELL).
    pub fn run_picard(
        &self,
        state: &mut MultiSpeciesState,
        device: &DeviceSpec,
    ) -> Result<MultiSpeciesReport> {
        if state.f.len() != self.species.len() {
            return Err(Error::InvalidConfig(format!(
                "state has {} species, proxy {}",
                state.f.len(),
                self.species.len()
            )));
        }
        let nsp = self.species.len();
        let total = self.batch_size();
        let dims = BatchDims::new(total, self.grid.num_nodes())?;
        let f_n = self.interleave(state, dims)?;
        let density0: Vec<f64> = state
            .f
            .iter()
            .map(|f| total_density(&self.grid, f))
            .collect();

        let solver = BatchBicgstab::new(Jacobi, AbsResidual::new(self.tolerance));
        let mut iterate = state.clone();
        let mut linear_iters = Vec::new();
        let mut total_time = 0.0;
        let mut vals = vec![0.0f64; self.pattern.nnz()];
        for _ in 0..self.picard_iterations {
            // Assemble the combined batch from the current iterate.
            let mut matrices = BatchCsr::zeros(total, Arc::clone(&self.pattern))?;
            for node in 0..self.num_mesh_nodes {
                for (s, species) in self.species.iter().enumerate() {
                    let m = Moments::compute(&self.grid, iterate.f[s].system(node));
                    assemble_matrix(&self.grid, species, &m, &self.pattern, &mut vals);
                    matrices
                        .values_of_mut(node * nsp + s)
                        .copy_from_slice(&vals);
                }
            }
            let ell = BatchEll::from_csr(&matrices)?;
            let mut x = self.interleave(&iterate, dims)?; // warm start
            let report = solver.solve(device, &ell, &f_n, &mut x)?;
            total_time += report.time_s();
            // Per-species stats.
            let mut stats = vec![IterStats::default(); nsp];
            for (s, st) in stats.iter_mut().enumerate() {
                let mut max = 0u32;
                let mut sum = 0u64;
                for node in 0..self.num_mesh_nodes {
                    let it = report.per_system[node * nsp + s].iterations;
                    max = max.max(it);
                    sum += it as u64;
                }
                st.max = max;
                st.mean = sum as f64 / self.num_mesh_nodes as f64;
            }
            linear_iters.push(stats);
            iterate = self.deinterleave(&x)?;
        }

        let density_drift = self
            .species
            .iter()
            .enumerate()
            .map(|(s, _)| {
                let d1 = total_density(&self.grid, &iterate.f[s]);
                ((d1 - density0[s]) / density0[s]).abs()
            })
            .collect();
        *state = iterate;
        Ok(MultiSpeciesReport {
            linear_iters,
            total_solve_time_s: total_time,
            density_drift,
            batch_size: total,
        })
    }

    fn interleave(&self, state: &MultiSpeciesState, dims: BatchDims) -> Result<BatchVectors<f64>> {
        let nsp = self.species.len();
        let mut v = BatchVectors::zeros(dims);
        for node in 0..self.num_mesh_nodes {
            for s in 0..nsp {
                v.system_mut(node * nsp + s)
                    .copy_from_slice(state.f[s].system(node));
            }
        }
        Ok(v)
    }

    fn deinterleave(&self, combined: &BatchVectors<f64>) -> Result<MultiSpeciesState> {
        let nsp = self.species.len();
        let dims = BatchDims::new(self.num_mesh_nodes, self.grid.num_nodes())?;
        let mut f = vec![BatchVectors::zeros(dims); nsp];
        for node in 0..self.num_mesh_nodes {
            for (s, fs) in f.iter_mut().enumerate() {
                fs.system_mut(node)
                    .copy_from_slice(combined.system(node * nsp + s));
            }
        }
        Ok(MultiSpeciesState { f })
    }
}

const ION_NAMES: [&str; 10] = [
    "deuterium",
    "tritium",
    "helium",
    "lithium",
    "beryllium",
    "boron",
    "carbon",
    "nitrogen",
    "oxygen",
    "neon",
];

fn total_density(grid: &VelocityGrid, f: &BatchVectors<f64>) -> f64 {
    (0..f.dims().num_systems)
        .map(|node| Moments::compute(grid, f.system(node)).density)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn future_xgc_lineup_has_ions_plus_electrons() {
        let p = MultiSpeciesProxy::future_xgc(VelocityGrid::small(8, 7), 4, 10);
        assert_eq!(p.species.len(), 11);
        assert_eq!(p.batch_size(), 44);
        assert_eq!(p.species.last().unwrap().name, "electron");
        // Mass ladder is increasing.
        let masses: Vec<f64> = p.species[..10].iter().map(|s| s.mass).collect();
        assert!(masses.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn multi_species_step_conserves_every_species() {
        let proxy = MultiSpeciesProxy::future_xgc(VelocityGrid::small(8, 7), 2, 4);
        let mut state = proxy.initial_state(3);
        let report = proxy.run_picard(&mut state, &DeviceSpec::a100()).unwrap();
        assert_eq!(report.density_drift.len(), 5);
        for (s, drift) in report.density_drift.iter().enumerate() {
            assert!(*drift < 1e-7, "species {s} drift {drift}");
        }
        assert_eq!(report.batch_size, 10);
    }

    #[test]
    fn electrons_remain_the_hardest_species() {
        let proxy = MultiSpeciesProxy::future_xgc(VelocityGrid::small(10, 9), 2, 3);
        let mut state = proxy.initial_state(7);
        let report = proxy.run_picard(&mut state, &DeviceSpec::v100()).unwrap();
        let first = &report.linear_iters[0];
        let electron = first.last().unwrap().max;
        for ion in &first[..3] {
            assert!(electron > ion.max, "electron {electron} vs ion {}", ion.max);
        }
    }

    #[test]
    fn species_count_multiplies_the_batch_not_the_iterations() {
        // More species = bigger batch at roughly the same per-system
        // iteration counts — the GPU-saturation argument.
        let small = MultiSpeciesProxy::future_xgc(VelocityGrid::small(8, 7), 2, 1);
        let big = MultiSpeciesProxy::future_xgc(VelocityGrid::small(8, 7), 2, 8);
        let dev = DeviceSpec::a100();
        let mut s1 = small.initial_state(5);
        let r1 = small.run_picard(&mut s1, &dev).unwrap();
        let mut s2 = big.initial_state(5);
        let r2 = big.run_picard(&mut s2, &dev).unwrap();
        assert_eq!(r2.batch_size, 18);
        assert_eq!(r1.batch_size, 4);
        // First-ion iteration counts comparable across configurations.
        let i1 = r1.linear_iters[0][0].max as f64;
        let i2 = r2.linear_iters[0][0].max as f64;
        assert!((i1 - i2).abs() <= i1.max(i2) * 0.5 + 2.0);
    }
}
