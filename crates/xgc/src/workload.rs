//! Benchmark workload generators.
//!
//! The evaluation batches of the paper: "repetitions of ion and electron
//! matrices similar to XGC runs ... the number of electron matrices is
//! equal to the number of ion matrices in every batch". Each mesh node
//! gets slightly different moments, so every matrix in the batch is a
//! distinct numerical instance over the one shared pattern.

use std::sync::Arc;

use batsolv_formats::{
    BatchBanded, BatchCsr, BatchEll, BatchMatrix, BatchVectors, SparsityPattern,
};
use batsolv_types::{BatchDims, Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::grid::VelocityGrid;
use crate::moments::Moments;
use crate::operator_assembly::assemble_matrix;
use crate::species::Species;

/// A ready-to-solve linear-system batch in the paper's evaluation shape.
#[derive(Clone, Debug)]
pub struct XgcWorkload {
    /// The velocity grid the matrices were assembled on.
    pub grid: VelocityGrid,
    /// Interleaved ion/electron matrices (`2k` = ion, `2k+1` = electron).
    pub matrices: BatchCsr<f64>,
    /// Right-hand sides (the old-time-level distributions).
    pub rhs: BatchVectors<f64>,
    /// A warm initial guess (the previous Picard iterate — here the RHS
    /// itself, which is exactly what Picard iteration 0 uses).
    pub warm_guess: BatchVectors<f64>,
    /// Species name per batch entry.
    pub species_of: Vec<&'static str>,
}

impl XgcWorkload {
    /// Generate a combined batch of `num_pairs` (ion, electron) systems.
    pub fn generate(grid: VelocityGrid, num_pairs: usize, seed: u64) -> Result<XgcWorkload> {
        let pattern = Arc::new(grid.stencil_pattern());
        Self::generate_with(grid, pattern, num_pairs, seed, &Species::xgc_pair())
    }

    /// Generate a single-species batch (`Figure 9`'s ion-only and
    /// electron-only curves).
    pub fn generate_single_species(
        grid: VelocityGrid,
        species: Species,
        num_systems: usize,
        seed: u64,
    ) -> Result<XgcWorkload> {
        let pattern = Arc::new(grid.stencil_pattern());
        Self::generate_with(grid, pattern, num_systems, seed, &[species])
    }

    fn generate_with(
        grid: VelocityGrid,
        pattern: Arc<SparsityPattern>,
        groups: usize,
        seed: u64,
        lineup: &[Species],
    ) -> Result<XgcWorkload> {
        let mut rng = StdRng::seed_from_u64(seed);
        let per_group = lineup.len();
        let total = groups * per_group;
        let dims = BatchDims::new(total, grid.num_nodes())?;
        let mut matrices = BatchCsr::zeros(total, Arc::clone(&pattern))?;
        let mut rhs = BatchVectors::zeros(dims);
        let mut species_of = Vec::with_capacity(total);
        let mut vals = vec![0.0f64; pattern.nnz()];
        for g in 0..groups {
            // Node-local plasma conditions, shared by both species at
            // this mesh node.
            let n0: f64 = 0.8 + 0.4 * rng.gen::<f64>();
            let u0: f64 = -0.3 + 0.6 * rng.gen::<f64>();
            let t0: f64 = 0.85 + 0.3 * rng.gen::<f64>();
            for (s, species) in lineup.iter().enumerate() {
                let idx = g * per_group + s;
                // RHS: the old-time distribution with a beam bump.
                let main = grid.maxwellian(n0, u0, t0);
                let bump = grid.maxwellian(0.25 * n0, u0 + 1.2, 0.4 * t0);
                let f: Vec<f64> = main.iter().zip(bump.iter()).map(|(a, b)| a + b).collect();
                let moments = Moments::compute(&grid, &f);
                assemble_matrix(&grid, species, &moments, &pattern, &mut vals);
                matrices.values_of_mut(idx).copy_from_slice(&vals);
                rhs.system_mut(idx).copy_from_slice(&f);
                species_of.push(species.name);
            }
        }
        let warm_guess = rhs.clone();
        Ok(XgcWorkload {
            grid,
            matrices,
            rhs,
            warm_guess,
            species_of,
        })
    }

    /// Batch size (systems).
    pub fn num_systems(&self) -> usize {
        self.matrices.dims().num_systems
    }

    /// The sparsity pattern shared by every system of the workload.
    pub fn pattern(&self) -> &Arc<SparsityPattern> {
        self.matrices.pattern()
    }

    /// Borrow one mesh node's system — the unit of work a solve service
    /// receives when XGC streams nodes instead of handing over the whole
    /// batch. Panics on an out-of-range index; dynamic callers (fan-out
    /// code indexing by request payload) should use [`Self::try_system`].
    pub fn system(&self, i: usize) -> SystemView<'_> {
        self.try_system(i)
            .unwrap_or_else(|_| panic!("system index {i} out of range"))
    }

    /// Checked variant of [`Self::system`]: a structured
    /// [`Error::IndexOutOfBounds`] instead of a panic, in every build
    /// profile (the underlying slice math would otherwise only be
    /// assert-guarded in debug builds).
    pub fn try_system(&self, i: usize) -> Result<SystemView<'_>> {
        if i >= self.num_systems() {
            return Err(Error::IndexOutOfBounds {
                index: i,
                len: self.num_systems(),
                context: "XGC workload systems",
            });
        }
        Ok(SystemView {
            index: i,
            species: self.species_of[i],
            values: self.matrices.values_of(i),
            rhs: self.rhs.system(i),
            warm_guess: self.warm_guess.system(i),
        })
    }

    /// Iterate over every per-node system in batch order.
    pub fn systems(&self) -> impl Iterator<Item = SystemView<'_>> {
        (0..self.num_systems()).map(|i| self.system(i))
    }

    /// ELL view of the batch (the paper's preferred format).
    pub fn ell(&self) -> Result<BatchEll<f64>> {
        BatchEll::from_csr(&self.matrices)
    }

    /// Banded view of the batch (for `dgbsv` and QR baselines).
    pub fn banded(&self) -> Result<BatchBanded<f64>> {
        BatchBanded::from_csr(&self.matrices)
    }
}

/// One mesh node's linear system, borrowed out of a workload batch.
#[derive(Clone, Copy, Debug)]
pub struct SystemView<'a> {
    /// Position within the batch.
    pub index: usize,
    /// Species name ("ion" or "electron").
    pub species: &'static str,
    /// CSR values over the shared pattern.
    pub values: &'a [f64],
    /// Right-hand side (old-time distribution).
    pub rhs: &'a [f64],
    /// Warm initial guess (previous Picard iterate).
    pub warm_guess: &'a [f64],
}

impl SystemView<'_> {
    /// First non-finite entry across the system's payload, as
    /// `(field, index)` — `None` when the node is clean. A NaN/Inf here
    /// would otherwise flow untouched into a fused launch shared with
    /// thousands of healthy nodes; submitters (and the runtime's
    /// admission gate) use this to bounce the poisoned node alone.
    pub fn first_non_finite(&self) -> Option<(&'static str, usize)> {
        let scan = |field: &'static str, data: &[f64]| {
            data.iter()
                .position(|v| !v.is_finite())
                .map(|idx| (field, idx))
        };
        scan("values", self.values)
            .or_else(|| scan("rhs", self.rhs))
            .or_else(|| scan("warm_guess", self.warm_guess))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batsolv_formats::BatchMatrix;
    use batsolv_gpusim::DeviceSpec;
    use batsolv_solvers::{AbsResidual, BatchBicgstab, Jacobi};

    #[test]
    fn combined_batch_interleaves_species() {
        let w = XgcWorkload::generate(VelocityGrid::small(8, 7), 3, 1).unwrap();
        assert_eq!(w.num_systems(), 6);
        assert_eq!(
            w.species_of,
            ["ion", "electron", "ion", "electron", "ion", "electron"]
        );
    }

    #[test]
    fn systems_differ_across_mesh_nodes() {
        let w = XgcWorkload::generate(VelocityGrid::small(8, 7), 2, 42).unwrap();
        // Two ion matrices from different nodes must differ.
        assert_ne!(w.matrices.values_of(0), w.matrices.values_of(2));
        // And both species share the pattern.
        assert_eq!(w.matrices.pattern().nnz(), w.grid.stencil_pattern().nnz());
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let a = XgcWorkload::generate(VelocityGrid::small(6, 5), 2, 9).unwrap();
        let b = XgcWorkload::generate(VelocityGrid::small(6, 5), 2, 9).unwrap();
        assert_eq!(a.matrices.values_of(1), b.matrices.values_of(1));
        let c = XgcWorkload::generate(VelocityGrid::small(6, 5), 2, 10).unwrap();
        assert_ne!(a.matrices.values_of(1), c.matrices.values_of(1));
    }

    #[test]
    fn workload_solves_at_paper_tolerance() {
        let w = XgcWorkload::generate(VelocityGrid::small(10, 9), 2, 5).unwrap();
        let mut x = BatchVectors::zeros(w.rhs.dims());
        let rep = BatchBicgstab::new(Jacobi, AbsResidual::new(1e-10))
            .solve(&DeviceSpec::v100(), &w.matrices, &w.rhs, &mut x)
            .unwrap();
        assert!(rep.all_converged());
        assert!(w.matrices.max_residual_norm(&x, &w.rhs).unwrap() < 1e-8);
        // Electron entries (odd) take more iterations than ions (even).
        assert!(rep.per_system[1].iterations > rep.per_system[0].iterations);
    }

    #[test]
    fn per_node_extraction_matches_batch_storage() {
        let w = XgcWorkload::generate(VelocityGrid::small(8, 7), 2, 11).unwrap();
        let nnz = w.pattern().nnz();
        let n = w.grid.num_nodes();
        let mut seen = 0;
        for (i, sys) in w.systems().enumerate() {
            assert_eq!(sys.index, i);
            assert_eq!(sys.values.len(), nnz);
            assert_eq!(sys.rhs.len(), n);
            assert_eq!(sys.warm_guess.len(), n);
            assert_eq!(sys.values, w.matrices.values_of(i));
            assert_eq!(sys.rhs, w.rhs.system(i));
            assert_eq!(sys.species, w.species_of[i]);
            seen += 1;
        }
        assert_eq!(seen, w.num_systems());
    }

    #[test]
    fn first_non_finite_flags_poisoned_nodes() {
        let mut w = XgcWorkload::generate(VelocityGrid::small(6, 5), 1, 4).unwrap();
        assert!(w.systems().all(|s| s.first_non_finite().is_none()));
        // Poison one node's RHS and one node's matrix values.
        w.rhs.system_mut(0)[7] = f64::NAN;
        w.matrices.values_of_mut(1)[3] = f64::INFINITY;
        assert_eq!(w.system(0).first_non_finite(), Some(("rhs", 7)));
        assert_eq!(w.system(1).first_non_finite(), Some(("values", 3)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn per_node_extraction_bounds_checked() {
        let w = XgcWorkload::generate(VelocityGrid::small(6, 5), 1, 0).unwrap();
        let _ = w.system(99);
    }

    #[test]
    fn try_system_returns_structured_error_not_panic() {
        let w = XgcWorkload::generate(VelocityGrid::small(6, 5), 1, 0).unwrap();
        assert_eq!(w.try_system(1).unwrap().index, 1);
        match w.try_system(99) {
            Err(Error::IndexOutOfBounds {
                index,
                len,
                context,
            }) => {
                assert_eq!(index, 99);
                assert_eq!(len, 2);
                assert_eq!(context, "XGC workload systems");
            }
            other => panic!("expected IndexOutOfBounds, got {other:?}"),
        }
    }

    #[test]
    fn single_species_generation() {
        let w =
            XgcWorkload::generate_single_species(VelocityGrid::small(6, 5), Species::ion(), 4, 2)
                .unwrap();
        assert_eq!(w.num_systems(), 4);
        assert!(w.species_of.iter().all(|s| *s == "ion"));
    }

    #[test]
    fn format_views_are_consistent() {
        let w = XgcWorkload::generate(VelocityGrid::small(6, 5), 1, 3).unwrap();
        let ell = w.ell().unwrap();
        let banded = w.banded().unwrap();
        let x: Vec<f64> = (0..30).map(|k| (k as f64 * 0.3).sin()).collect();
        let mut y1 = vec![0.0; 30];
        let mut y2 = vec![0.0; 30];
        let mut y3 = vec![0.0; 30];
        w.matrices.spmv_system(1, &x, &mut y1);
        ell.spmv_system(1, &x, &mut y2);
        banded.spmv_system(1, &x, &mut y3);
        for r in 0..30 {
            assert!((y1[r] - y2[r]).abs() < 1e-13);
            assert!((y1[r] - y3[r]).abs() < 1e-13);
        }
    }
}
