//! The Figure 1 execution-timeline model.
//!
//! The paper's motivating profile: with the linear solver still on the
//! CPU, one Picard loop of the collision kernel spends ~48% of its time
//! on the CPU (of which ~66% is the `dgbsv` call itself) and ~9% moving
//! data between device and host. This module reconstructs that timeline
//! from the library's cost models, so the motivation can be regenerated
//! and compared against the GPU-solver configuration.

use batsolv_gpusim::transfer::{transfer_time, Direction};
use batsolv_gpusim::DeviceSpec;
use batsolv_solvers::direct::banded_lu::dgbsv_time_model;

use crate::grid::VelocityGrid;

/// Which execution lane a segment occupies (the colors of Figure 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lane {
    /// CPU execution (black boxes).
    Cpu,
    /// GPU execution (blue boxes).
    Gpu,
    /// Device-to-host copy (red boxes).
    TransferD2H,
    /// Host-to-device copy (green boxes).
    TransferH2D,
}

/// One box of the timeline.
#[derive(Clone, Debug)]
pub struct TimelineSegment {
    /// What the segment does.
    pub label: &'static str,
    /// Lane (color).
    pub lane: Lane,
    /// Start, seconds from loop start.
    pub start_s: f64,
    /// Duration, seconds.
    pub duration_s: f64,
}

/// Fractions the paper quotes for Figure 1.
#[derive(Clone, Copy, Debug)]
pub struct TimelineFractions {
    /// CPU share of the whole loop (paper: ~48%).
    pub cpu_fraction: f64,
    /// Solver share of the CPU time (paper: ~66%).
    pub solve_fraction_of_cpu: f64,
    /// Transfer share of the whole loop (paper: ~9%).
    pub transfer_fraction: f64,
    /// Total loop time, seconds.
    pub total_s: f64,
}

/// Build the timeline of one Picard loop in the **CPU-solver**
/// configuration: GPU assembles and computes moments, matrices and
/// right-hand sides ship to the host, `dgbsv` solves on the Skylake
/// node, solutions ship back, GPU applies the update.
pub fn cpu_solver_timeline(
    gpu: &DeviceSpec,
    cpu: &DeviceSpec,
    num_mesh_nodes: usize,
) -> Vec<TimelineSegment> {
    let grid = VelocityGrid::xgc_standard();
    let n = grid.num_nodes();
    let systems = 2 * num_mesh_nodes; // both species
    let (kl, ku) = (grid.n_par + 1, grid.n_par + 1);

    // GPU-side work per Picard sweep. The dominant cost is evaluating
    // the Fokker–Planck coefficients (Rosenbluth-potential integrals):
    // every velocity node integrates over the whole grid, an O(n²)
    // kernel per system, running at modest FP efficiency. Moments and
    // the distribution update are streaming passes.
    let distribution_bytes = (systems * n * 8) as f64;
    let gpu_pass = |passes: f64, bytes: f64| passes * bytes / (gpu.mem_bw_gbps * 1e9 * 0.6);
    let t_moments = gpu_pass(6.0, distribution_bytes) + 30e-6;
    let rosenbluth_flops = systems as f64 * (n as f64) * (n as f64) * 24.0;
    let t_assembly = rosenbluth_flops / (gpu.peak_fp64_gflops * 1e9 * 0.205) + 40e-6;
    let t_update = gpu_pass(4.0, distribution_bytes) + 20e-6;

    // Transfers: the GPU ships the sparse (9-per-row) matrix values and
    // right-hand sides; the host-side pack step expands them into
    // LAPACK band storage. Solutions come back.
    let sparse_bytes = (systems * 9 * n * 8) as u64;
    let rhs_bytes = (systems * n * 8) as u64;
    let t_d2h = transfer_time(gpu, sparse_bytes + rhs_bytes, Direction::DeviceToHost);
    let t_h2d = transfer_time(gpu, rhs_bytes, Direction::HostToDevice);

    // CPU: the dgbsv sweep plus pre/post processing on the host (the
    // paper: the solve is ~66% of CPU time, the rest is packing,
    // permutation and bookkeeping around LAPACK).
    let t_solve = dgbsv_time_model::<f64>(cpu, systems, n, kl, ku);
    let t_cpu_pre = 0.26 * t_solve;
    let t_cpu_post = 0.26 * t_solve;

    let mut segments = Vec::new();
    let mut clock = 0.0;
    let mut push = |label, lane, duration: f64, clock: &mut f64| {
        segments.push(TimelineSegment {
            label,
            lane,
            start_s: *clock,
            duration_s: duration,
        });
        *clock += duration;
    };
    push("moments", Lane::Gpu, t_moments, &mut clock);
    push("assembly", Lane::Gpu, t_assembly, &mut clock);
    push("matrices+rhs to host", Lane::TransferD2H, t_d2h, &mut clock);
    push("pack/permute", Lane::Cpu, t_cpu_pre, &mut clock);
    push("dgbsv solve", Lane::Cpu, t_solve, &mut clock);
    push("unpack", Lane::Cpu, t_cpu_post, &mut clock);
    push("solutions to device", Lane::TransferH2D, t_h2d, &mut clock);
    push("apply update", Lane::Gpu, t_update, &mut clock);
    segments
}

/// Aggregate a timeline into the paper's quoted fractions.
pub fn fractions(segments: &[TimelineSegment]) -> TimelineFractions {
    let total: f64 = segments.iter().map(|s| s.duration_s).sum();
    let cpu: f64 = segments
        .iter()
        .filter(|s| s.lane == Lane::Cpu)
        .map(|s| s.duration_s)
        .sum();
    let solve: f64 = segments
        .iter()
        .filter(|s| s.label.contains("dgbsv"))
        .map(|s| s.duration_s)
        .sum();
    let transfer: f64 = segments
        .iter()
        .filter(|s| matches!(s.lane, Lane::TransferD2H | Lane::TransferH2D))
        .map(|s| s.duration_s)
        .sum();
    TimelineFractions {
        cpu_fraction: cpu / total,
        solve_fraction_of_cpu: if cpu > 0.0 { solve / cpu } else { 0.0 },
        transfer_fraction: transfer / total,
        total_s: total,
    }
}

/// Render the timeline as ASCII art (one row per lane).
pub fn render_ascii(segments: &[TimelineSegment], width: usize) -> String {
    let total: f64 = segments.iter().map(|s| s.duration_s).sum();
    let mut rows = [
        ("GPU  ", Lane::Gpu, vec![' '; width]),
        ("CPU  ", Lane::Cpu, vec![' '; width]),
        ("D2H  ", Lane::TransferD2H, vec![' '; width]),
        ("H2D  ", Lane::TransferH2D, vec![' '; width]),
    ];
    for s in segments {
        let from = ((s.start_s / total) * width as f64) as usize;
        let to = (((s.start_s + s.duration_s) / total) * width as f64).ceil() as usize;
        for (_, lane, row) in rows.iter_mut() {
            if *lane == s.lane {
                for c in row.iter_mut().take(to.min(width)).skip(from) {
                    *c = '#';
                }
            }
        }
    }
    rows.iter()
        .map(|(name, _, row)| format!("{name}|{}|", row.iter().collect::<String>()))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline() -> Vec<TimelineSegment> {
        cpu_solver_timeline(&DeviceSpec::v100(), &DeviceSpec::skylake_node(), 512)
    }

    #[test]
    fn segments_are_contiguous() {
        let t = timeline();
        for w in t.windows(2) {
            assert!((w[0].start_s + w[0].duration_s - w[1].start_s).abs() < 1e-12);
        }
    }

    #[test]
    fn fractions_match_figure1_story() {
        let f = fractions(&timeline());
        // Paper: CPU ≈ 48% of the loop, solve ≈ 66% of CPU, transfers ≈ 9%.
        assert!(
            f.cpu_fraction > 0.35 && f.cpu_fraction < 0.62,
            "cpu fraction {}",
            f.cpu_fraction
        );
        assert!(
            f.solve_fraction_of_cpu > 0.55 && f.solve_fraction_of_cpu < 0.75,
            "solve fraction {}",
            f.solve_fraction_of_cpu
        );
        assert!(
            f.transfer_fraction > 0.02 && f.transfer_fraction < 0.2,
            "transfer fraction {}",
            f.transfer_fraction
        );
    }

    #[test]
    fn ascii_render_has_all_lanes() {
        let art = render_ascii(&timeline(), 80);
        assert_eq!(art.lines().count(), 4);
        for lane in ["GPU", "CPU", "D2H", "H2D"] {
            assert!(art.contains(lane));
        }
        assert!(art.contains('#'));
    }
}
