//! Multi-step production campaign driver.
//!
//! The paper's conclusion: "future work includes tight integration of
//! GINKGO into the main XGC ... bringing it to production". This module
//! is that integration in proxy form: a time-marching campaign that runs
//! many implicit collision steps back to back, carries the distribution
//! functions forward, accumulates solver statistics and conservation
//! drift over the whole run, and compares the CPU-solver and GPU-solver
//! configurations end to end (solve time + the transfer overhead the
//! CPU path pays every Picard sweep, Figure 1's red/green boxes).

use batsolv_gpusim::transfer::{transfer_time, Direction};
use batsolv_gpusim::DeviceSpec;
use batsolv_types::Result;

use crate::grid::VelocityGrid;
use crate::moments::Moments;
use crate::picard::{CollisionProxy, ProxyState, SolverKind};

/// Configuration of a campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Implicit time steps to march.
    pub num_steps: usize,
    /// Spatial mesh nodes.
    pub num_mesh_nodes: usize,
    /// Velocity grid.
    pub grid: VelocityGrid,
    /// Linear solver of the Picard loop.
    pub solver: SolverKind,
    /// Warm-start the linear solves from the previous Picard iterate.
    pub warm_start: bool,
    /// Workload seed.
    pub seed: u64,
}

impl CampaignConfig {
    /// The production-like default: standard grid, ELL + warm starts.
    pub fn production(num_steps: usize, num_mesh_nodes: usize) -> Self {
        CampaignConfig {
            num_steps,
            num_mesh_nodes,
            grid: VelocityGrid::xgc_standard(),
            solver: SolverKind::BicgstabEll,
            warm_start: true,
            seed: 20220530,
        }
    }
}

/// Per-step record of a campaign.
#[derive(Clone, Debug)]
pub struct CampaignStep {
    /// Simulated solve time of the step's Picard loop, seconds.
    pub solve_time_s: f64,
    /// Host↔device transfer time the step paid (CPU-solver path only).
    pub transfer_time_s: f64,
    /// Electron linear iterations of the first Picard sweep.
    pub electron_iters: u32,
    /// Max-norm Picard increment of the last sweep (nonlinear residual).
    pub final_increment: f64,
    /// Electron non-Maxwellianity after the step (beam decay metric).
    pub non_maxwellianity: f64,
}

/// Result of a whole campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Per-step records.
    pub steps: Vec<CampaignStep>,
    /// Total simulated solve + transfer time, seconds.
    pub total_time_s: f64,
    /// Relative density drift per species over the *entire* campaign.
    pub cumulative_density_drift: [f64; 2],
    /// Final state (for chaining campaigns).
    pub final_state: ProxyState,
}

impl CampaignReport {
    /// The beam relaxes toward the discrete equilibrium: the collision
    /// residual never exceeds its starting value and ends clearly below
    /// it. (It is not strictly monotone — once the O(h²) discretization
    /// floor is reached, moment drift jiggles it within the floor.)
    pub fn relaxation_reaches_floor(&self) -> bool {
        let first = self
            .steps
            .first()
            .map(|s| s.non_maxwellianity)
            .unwrap_or(0.0);
        self.steps
            .iter()
            .all(|s| s.non_maxwellianity <= first * 1.001)
            && self
                .steps
                .last()
                .map(|s| s.non_maxwellianity)
                .unwrap_or(0.0)
                < 0.9 * first
    }
}

/// Run a campaign on `device`.
pub fn run_campaign(cfg: &CampaignConfig, device: &DeviceSpec) -> Result<CampaignReport> {
    let proxy = CollisionProxy::new(cfg.grid, cfg.num_mesh_nodes);
    let mut state = proxy.initial_state(cfg.seed);
    let m0 = [
        total_moments(&cfg.grid, &state, 0),
        total_moments(&cfg.grid, &state, 1),
    ];

    // The CPU-solver path ships matrices + RHS down and solutions up for
    // every Picard sweep (Figure 1); the GPU path keeps data resident.
    let is_cpu_path = matches!(cfg.solver, SolverKind::Dgbsv);
    let systems = 2 * cfg.num_mesh_nodes;
    let n = cfg.grid.num_nodes();
    let per_sweep_transfer = if is_cpu_path {
        // Sparse values + RHS down, solutions up, per sweep, priced on a
        // V100-class link (the device the data would otherwise stay on).
        let link = DeviceSpec::v100();
        transfer_time(
            &link,
            (systems * 9 * n * 8 + systems * n * 8) as u64,
            Direction::DeviceToHost,
        ) + transfer_time(&link, (systems * n * 8) as u64, Direction::HostToDevice)
    } else {
        0.0
    };

    let mut steps = Vec::with_capacity(cfg.num_steps);
    let mut total = 0.0;
    for _ in 0..cfg.num_steps {
        let report = proxy.run_picard(&mut state, device, cfg.solver, cfg.warm_start)?;
        let transfer = per_sweep_transfer * report.iterations.len() as f64;
        total += report.total_solve_time_s + transfer;
        steps.push(CampaignStep {
            solve_time_s: report.total_solve_time_s,
            transfer_time_s: transfer,
            electron_iters: report.iterations[0].linear_iters[1].max,
            final_increment: report.iterations.last().unwrap().increment[1],
            non_maxwellianity: non_maxwellianity(&cfg.grid, &state),
        });
    }

    let m1 = [
        total_moments(&cfg.grid, &state, 0),
        total_moments(&cfg.grid, &state, 1),
    ];
    Ok(CampaignReport {
        steps,
        total_time_s: total,
        cumulative_density_drift: [m1[0].density_drift(&m0[0]), m1[1].density_drift(&m0[1])],
        final_state: state,
    })
}

fn total_moments(grid: &VelocityGrid, state: &ProxyState, species: usize) -> Moments {
    let f = &state.f[species];
    let mut density = 0.0;
    for node in 0..f.dims().num_systems {
        density += Moments::compute(grid, f.system(node)).density;
    }
    Moments {
        density,
        mean_velocity: 0.0,
        temperature: 1.0,
    }
}

/// Collision residual of the electron distribution at node 0:
/// `‖A[f] f − f‖∞ / ‖f‖∞`, i.e. distance from the operator's own
/// (discrete) stationary state. Goes to the solver tolerance as the beam
/// thermalizes — unlike a comparison against the *analytic* Maxwellian,
/// which saturates at the grid's O(h²) discretization error.
fn non_maxwellianity(grid: &VelocityGrid, state: &ProxyState) -> f64 {
    use crate::operator_assembly::assemble_matrix;
    use crate::species::Species;
    let f = state.f[1].system(0);
    let m = Moments::compute(grid, f);
    let pattern = grid.stencil_pattern();
    let mut vals = vec![0.0f64; pattern.nnz()];
    assemble_matrix(grid, &Species::electron(), &m, &pattern, &mut vals);
    // Interior rows only: boundary rows carry an O(h) flux-truncation
    // floor that masks the physical relaxation signal.
    let mut worst = 0.0f64;
    let mut fmax = 0.0f64;
    for j in 2..grid.n_perp - 2 {
        for i in 2..grid.n_par - 2 {
            let r = grid.node(i, j);
            let (b, e) = pattern.row_range(r);
            let mut acc = 0.0;
            for k in b..e {
                acc += vals[k] * f[pattern.col_idxs()[k] as usize];
            }
            worst = worst.max((acc - f[r]).abs());
            fmax = fmax.max(f[r].abs());
        }
    }
    worst / fmax.max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(solver: SolverKind, steps: usize) -> CampaignConfig {
        CampaignConfig {
            num_steps: steps,
            num_mesh_nodes: 2,
            grid: VelocityGrid::small(10, 9),
            solver,
            warm_start: true,
            seed: 5,
        }
    }

    #[test]
    fn campaign_conserves_density_over_many_steps() {
        let cfg = small_cfg(SolverKind::BicgstabEll, 6);
        let rep = run_campaign(&cfg, &DeviceSpec::a100()).unwrap();
        assert_eq!(rep.steps.len(), 6);
        // Drift accumulates but stays bounded by steps × per-step drift.
        assert!(rep.cumulative_density_drift[0] < 1e-9);
        assert!(rep.cumulative_density_drift[1] < 1e-9);
    }

    #[test]
    fn beam_relaxes_monotonically_across_steps() {
        let cfg = small_cfg(SolverKind::BicgstabEll, 8);
        let rep = run_campaign(&cfg, &DeviceSpec::v100()).unwrap();
        let first = rep.steps.first().unwrap().non_maxwellianity;
        let last = rep.steps.last().unwrap().non_maxwellianity;
        assert!(
            rep.relaxation_reaches_floor(),
            "beam should decay to its floor: {first} -> {last}"
        );
    }

    #[test]
    fn later_steps_need_fewer_iterations() {
        // As the plasma approaches equilibrium, the matrices change less
        // and warm starts get better.
        let cfg = small_cfg(SolverKind::BicgstabEll, 8);
        let rep = run_campaign(&cfg, &DeviceSpec::a100()).unwrap();
        let first = rep.steps.first().unwrap().electron_iters;
        let last = rep.steps.last().unwrap().electron_iters;
        assert!(last <= first, "iterations: {first} -> {last}");
    }

    #[test]
    fn cpu_path_pays_transfer_overhead_and_gpu_does_not() {
        let gpu =
            run_campaign(&small_cfg(SolverKind::BicgstabEll, 2), &DeviceSpec::v100()).unwrap();
        let cpu = run_campaign(
            &small_cfg(SolverKind::Dgbsv, 2),
            &DeviceSpec::skylake_node(),
        )
        .unwrap();
        assert_eq!(gpu.steps[0].transfer_time_s, 0.0);
        assert!(cpu.steps[0].transfer_time_s > 0.0);
        // Physics agrees between the two paths.
        let diff: f64 = gpu.final_state.f[1]
            .values()
            .iter()
            .zip(cpu.final_state.f[1].values())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-6, "paths diverged by {diff}");
    }
}
