//! Plasma species parameters.
//!
//! The proxy app simulates one ion species and electrons (paper
//! Section II.A). What matters for the linear algebra is the product
//! `dt · ν` of time step and collision frequency in the species'
//! normalized velocity units: electrons collide ~√(mᵢ/mₑ) ≈ 60× faster
//! than ions, so the implicit matrix `I − dt·C` drifts much further from
//! the identity — that is the whole Figure 2 story (ion eigenvalues
//! clustered at 1, electron eigenvalues spread) and the reason electrons
//! need ~30 BiCGSTAB iterations while ions need ~5 (Table III).

/// Parameters of one plasma species.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Species {
    /// Display name.
    pub name: &'static str,
    /// Mass in deuteron units (enters diagnostics only; the collision
    /// strength below is already in normalized units).
    pub mass: f64,
    /// Normalized implicit collision strength `dt · ν`.
    pub dt_nu: f64,
    /// Cross-diffusion (pitch-angle-scattering-like) anisotropy in
    /// `[0, 1)`; produces the corner entries of the nine-point stencil
    /// and part of the nonsymmetry.
    pub aniso: f64,
}

impl Species {
    /// Deuterium ions: slow collisions, matrix ≈ identity.
    pub fn ion() -> Species {
        Species {
            name: "ion",
            mass: 1.0,
            dt_nu: 0.005,
            aniso: 0.25,
        }
    }

    /// Electrons: fast collisions, matrix far from identity.
    pub fn electron() -> Species {
        Species {
            name: "electron",
            mass: 1.0 / 3671.5, // m_e / m_D
            dt_nu: 0.10,
            aniso: 0.35,
        }
    }

    /// The two-species lineup of the proxy app.
    pub fn xgc_pair() -> [Species; 2] {
        [Species::ion(), Species::electron()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn electron_collisions_are_much_stronger() {
        let [ion, ele] = Species::xgc_pair();
        assert!(ele.dt_nu > 15.0 * ion.dt_nu);
    }

    #[test]
    fn masses_are_physical() {
        let [ion, ele] = Species::xgc_pair();
        assert_eq!(ion.mass, 1.0);
        assert!((1.0 / ele.mass - 3671.5).abs() < 1.0);
    }

    #[test]
    fn anisotropy_in_range() {
        for s in Species::xgc_pair() {
            assert!(s.aniso >= 0.0 && s.aniso < 1.0);
        }
    }
}
