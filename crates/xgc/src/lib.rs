#![allow(clippy::needless_range_loop)] // indexed loops are the clearest idiom for stencil/linear-algebra kernels
//! The XGC collision-kernel proxy app.
//!
//! XGC models fusion edge plasmas with a nonlinear Fokker–Planck–Landau
//! collision operator on a two-dimensional velocity grid, solved per
//! spatial mesh node with backward Euler time integration and Picard
//! iteration (paper Section II). The production app is not public, so
//! this crate implements a physics-faithful proxy with the same
//! computational structure:
//!
//! * [`grid`] — the 2-D velocity grid (32×31 = 992 nodes, matching the
//!   paper's matrix size);
//! * [`species`] — ion and electron parameters, tuned so spectra and
//!   iteration counts land where the paper reports them (Figure 2,
//!   Table III);
//! * [`moments`] — density / momentum / energy moments and the
//!   conservation diagnostics ("conservation to 1e-7 needs solver
//!   tolerance 1e-10");
//! * [`operator_assembly`] — conservative flux-form discretization of a
//!   drift–diffusion collision operator with cross-diffusion terms: a
//!   nine-point stencil, nonsymmetric, density-conserving by
//!   construction;
//! * [`picard`] — backward Euler + Picard nonlinear solve over a batch
//!   of mesh nodes, with optional warm starts from the previous Picard
//!   iterate (Figure 8 / Table III);
//! * [`workload`] — generators for the ion/electron benchmark batches of
//!   the evaluation section;
//! * [`timeline`] — the Figure 1 execution-timeline model of the
//!   CPU-solver configuration.

pub mod campaign;
pub mod grid;
pub mod moments;
pub mod multi_species;
pub mod operator_assembly;
pub mod picard;
pub mod species;
pub mod timeline;
pub mod workload;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport};
pub use grid::VelocityGrid;
pub use moments::Moments;
pub use multi_species::{MultiSpeciesProxy, MultiSpeciesReport};
pub use picard::{CollisionProxy, PicardReport};
pub use species::Species;
pub use workload::{SystemView, XgcWorkload};
