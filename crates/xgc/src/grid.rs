//! The 2-D velocity-space grid.
//!
//! XGC discretizes the distribution function of each species on a
//! structured grid in (v_parallel, v_perp). The paper's matrices have 992
//! rows from a 32×31 grid with a nine-point stencil (Figure 4).

use batsolv_formats::SparsityPattern;

/// A uniform Cartesian grid over velocity space, `n_par × n_perp` nodes,
/// `v_par ∈ [-v_max, v_max]`, `v_perp ∈ [0, v_max]` (in thermal-speed
/// units of the species using the grid).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VelocityGrid {
    /// Nodes along v_parallel.
    pub n_par: usize,
    /// Nodes along v_perp.
    pub n_perp: usize,
    /// Velocity-space extent in thermal speeds.
    pub v_max: f64,
}

impl VelocityGrid {
    /// The paper's grid: 32 × 31 = 992 nodes.
    pub fn xgc_standard() -> Self {
        VelocityGrid {
            n_par: 32,
            n_perp: 31,
            v_max: 4.0,
        }
    }

    /// A smaller grid for fast tests and the eigenvalue figure.
    pub fn small(n_par: usize, n_perp: usize) -> Self {
        VelocityGrid {
            n_par,
            n_perp,
            v_max: 4.0,
        }
    }

    /// Total number of nodes (matrix rows).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n_par * self.n_perp
    }

    /// Grid spacing along v_parallel.
    #[inline]
    pub fn h_par(&self) -> f64 {
        2.0 * self.v_max / (self.n_par - 1) as f64
    }

    /// Grid spacing along v_perp.
    #[inline]
    pub fn h_perp(&self) -> f64 {
        self.v_max / (self.n_perp - 1) as f64
    }

    /// Row-major node index of `(i_par, j_perp)`.
    #[inline]
    pub fn node(&self, i: usize, j: usize) -> usize {
        j * self.n_par + i
    }

    /// Inverse of [`VelocityGrid::node`].
    #[inline]
    pub fn coords(&self, node: usize) -> (usize, usize) {
        (node % self.n_par, node / self.n_par)
    }

    /// Parallel velocity at column `i`.
    #[inline]
    pub fn v_par(&self, i: usize) -> f64 {
        -self.v_max + i as f64 * self.h_par()
    }

    /// Perpendicular velocity at row `j`.
    #[inline]
    pub fn v_perp(&self, j: usize) -> f64 {
        j as f64 * self.h_perp()
    }

    /// Quadrature weight of a node (uniform cell area — the distribution
    /// carries any jacobian factors).
    #[inline]
    pub fn weight(&self, _node: usize) -> f64 {
        self.h_par() * self.h_perp()
    }

    /// The nine-point sparsity pattern of the collision matrix on this
    /// grid.
    pub fn stencil_pattern(&self) -> SparsityPattern {
        SparsityPattern::stencil_2d(self.n_par, self.n_perp, true)
    }

    /// Render a distribution function as an ASCII contour map
    /// (v∥ horizontal, v⊥ vertical, top row = largest v⊥). Intensity is
    /// log-scaled over `levels` (darkest = peak), which makes beam bumps
    /// and their collisional decay visible in a terminal.
    pub fn render_distribution_ascii(&self, f: &[f64]) -> String {
        debug_assert_eq!(f.len(), self.num_nodes());
        const SHADES: &[u8] = b" .:-=+*#%@";
        let fmax = f.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
        let floor = 1e-6; // dynamic range: six decades
        let mut out = String::with_capacity((self.n_par + 4) * self.n_perp);
        for j in (0..self.n_perp).rev() {
            out.push('|');
            for i in 0..self.n_par {
                let v = (f[self.node(i, j)].max(0.0) / fmax).max(floor);
                let t = 1.0 - (v.ln() / floor.ln()); // 0 at floor, 1 at peak
                let idx = ((t * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
                out.push(SHADES[idx] as char);
            }
            out.push_str("|\n");
        }
        out
    }

    /// Evaluate a drifting Maxwellian `n/(2πT) · exp(−((v∥−u)² + v⊥²)/2T)`
    /// on the grid.
    pub fn maxwellian(&self, density: f64, drift: f64, temperature: f64) -> Vec<f64> {
        let mut f = vec![0.0; self.num_nodes()];
        let norm = density / (2.0 * std::f64::consts::PI * temperature);
        for j in 0..self.n_perp {
            for i in 0..self.n_par {
                let dv = self.v_par(i) - drift;
                let vp = self.v_perp(j);
                f[self.node(i, j)] = norm * (-(dv * dv + vp * vp) / (2.0 * temperature)).exp();
            }
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_grid_matches_paper() {
        let g = VelocityGrid::xgc_standard();
        assert_eq!(g.num_nodes(), 992);
        let p = g.stencil_pattern();
        assert_eq!(p.num_rows(), 992);
        assert_eq!(p.max_nnz_per_row(), 9);
    }

    #[test]
    fn node_indexing_roundtrips() {
        let g = VelocityGrid::small(5, 4);
        for j in 0..4 {
            for i in 0..5 {
                let n = g.node(i, j);
                assert_eq!(g.coords(n), (i, j));
            }
        }
    }

    #[test]
    fn velocity_axes_span_expected_ranges() {
        let g = VelocityGrid::xgc_standard();
        assert_eq!(g.v_par(0), -4.0);
        assert!((g.v_par(31) - 4.0).abs() < 1e-12);
        assert_eq!(g.v_perp(0), 0.0);
        assert!((g.v_perp(30) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn maxwellian_density_integrates_to_n() {
        let g = VelocityGrid::small(64, 48);
        let f = g.maxwellian(2.5, 0.3, 1.0);
        let n: f64 = f.iter().enumerate().map(|(k, &v)| v * g.weight(k)).sum();
        // Half-plane in v_perp: the analytic integral over v_perp ∈ [0, ∞)
        // of exp(-v²/2) is half the full Gaussian, so expect n/2 up to
        // truncation at v_max = 4 and the node-centered rectangle rule's
        // overweighting of the v_perp = 0 boundary row.
        assert!((n - 1.25).abs() < 0.06, "density {n}");
    }

    #[test]
    fn ascii_render_shows_the_peak_at_the_bottom_center() {
        let g = VelocityGrid::small(21, 9);
        let f = g.maxwellian(1.0, 0.0, 0.6);
        let art = g.render_distribution_ascii(&f);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 9);
        // Bottom row (v_perp = 0) carries the darkest shade at v_par = 0.
        let bottom = lines.last().unwrap();
        assert_eq!(bottom.as_bytes()[11], b'@'); // center column (+1 border)
                                                 // Top corners are near-empty.
        assert_eq!(lines[0].as_bytes()[1], b' ');
    }

    #[test]
    fn maxwellian_peaks_at_drift() {
        let g = VelocityGrid::small(33, 9);
        let f = g.maxwellian(1.0, 1.0, 0.5);
        let peak = (0..g.num_nodes())
            .max_by(|&a, &b| f[a].partial_cmp(&f[b]).unwrap())
            .unwrap();
        let (i, j) = g.coords(peak);
        assert_eq!(j, 0); // v_perp = 0
        assert!((g.v_par(i) - 1.0).abs() < g.h_par());
    }
}
