//! Velocity-space moments and conservation diagnostics.
//!
//! The collision operator must conserve particles exactly and (for the
//! proxy's diagnostics) track momentum and energy exchange. The paper's
//! acceptance test: physical quantities conserved to 1e-7 requires a
//! linear-solver tolerance of 1e-10 — the `repro` harness reproduces
//! that coupling with these moments.

use crate::grid::VelocityGrid;

/// The first three velocity moments of a distribution function.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Moments {
    /// Number density `∫ f dv`.
    pub density: f64,
    /// Mean parallel velocity `∫ v∥ f dv / n`.
    pub mean_velocity: f64,
    /// Temperature `∫ ((v∥−u)² + v⊥²) f dv / (2 n)`.
    pub temperature: f64,
}

impl Moments {
    /// Compute the moments of `f` on `grid`.
    ///
    /// Two quadratures are deliberately mixed:
    /// * `density` uses the **uniform** node weights — that is the measure
    ///   the flux-form operator conserves *exactly* (telescoping), so
    ///   conservation diagnostics must read it;
    /// * `mean_velocity` and `temperature` use **trapezoidal** weights
    ///   (half weight on boundary rows/columns), which are O(h²) accurate
    ///   on the half-open v⊥ domain. They feed the operator coefficients,
    ///   so their rectangle-rule O(h) edge error would otherwise pollute
    ///   the discretization's second-order convergence.
    pub fn compute(grid: &VelocityGrid, f: &[f64]) -> Moments {
        debug_assert_eq!(f.len(), grid.num_nodes());
        let mut density = 0.0;
        let mut density_t = 0.0;
        let mut momentum = 0.0;
        let mut energy = 0.0;
        for j in 0..grid.n_perp {
            let wy = if j == 0 || j == grid.n_perp - 1 {
                0.5
            } else {
                1.0
            };
            for i in 0..grid.n_par {
                let wx = if i == 0 || i == grid.n_par - 1 {
                    0.5
                } else {
                    1.0
                };
                let k = grid.node(i, j);
                let w = grid.weight(k) * f[k];
                density += w;
                let wt = w * wx * wy;
                density_t += wt;
                momentum += wt * grid.v_par(i);
                energy += wt * (grid.v_par(i) * grid.v_par(i) + grid.v_perp(j) * grid.v_perp(j));
            }
        }
        if density.abs() < f64::MIN_POSITIVE || density_t.abs() < f64::MIN_POSITIVE {
            return Moments {
                density,
                mean_velocity: 0.0,
                temperature: 1.0,
            };
        }
        let u = momentum / density_t;
        // Subtract the drift kinetic energy; two velocity dimensions.
        let temperature = ((energy / density_t) - u * u) / 2.0;
        Moments {
            density,
            mean_velocity: u,
            temperature: temperature.max(1e-12),
        }
    }

    /// Relative drift of the conserved density against a reference.
    pub fn density_drift(&self, reference: &Moments) -> f64 {
        if reference.density == 0.0 {
            return 0.0;
        }
        ((self.density - reference.density) / reference.density).abs()
    }

    /// Relative energy drift against a reference (like-species collisions
    /// conserve energy; numerical drift tracks the solver tolerance).
    pub fn energy_drift(&self, reference: &Moments) -> f64 {
        let e0 = reference.density * reference.temperature;
        let e1 = self.density * self.temperature;
        if e0 == 0.0 {
            return 0.0;
        }
        ((e1 - e0) / e0).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxwellian_moments_recovered() {
        let g = VelocityGrid::small(96, 72);
        let f = g.maxwellian(3.0, 0.5, 1.2);
        let m = Moments::compute(&g, &f);
        // Half-plane v_perp grid integrates half the density.
        assert!((m.density - 1.5).abs() < 0.03, "density {}", m.density);
        assert!(
            (m.mean_velocity - 0.5).abs() < 0.02,
            "u {}",
            m.mean_velocity
        );
        // Temperature estimate: v_par contributes T, v_perp (half-plane)
        // contributes T as well; modest truncation error at v_max = 4.
        assert!((m.temperature - 1.2).abs() < 0.12, "T {}", m.temperature);
    }

    #[test]
    fn zero_distribution_is_safe() {
        let g = VelocityGrid::small(8, 8);
        let m = Moments::compute(&g, &vec![0.0; 64]);
        assert_eq!(m.density, 0.0);
        assert_eq!(m.mean_velocity, 0.0);
    }

    #[test]
    fn drift_measures_are_relative() {
        let a = Moments {
            density: 1.0,
            mean_velocity: 0.0,
            temperature: 1.0,
        };
        let b = Moments {
            density: 1.0 + 1e-8,
            mean_velocity: 0.0,
            temperature: 1.0,
        };
        assert!((b.density_drift(&a) - 1e-8).abs() < 1e-12);
        assert!(b.energy_drift(&a) < 2e-8);
    }
}
