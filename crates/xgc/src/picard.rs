//! Backward Euler + Picard nonlinear solve over a batch of mesh nodes.
//!
//! The proxy app's structure (paper Section II.A): at every spatial mesh
//! node, the two-species collision operator is integrated implicitly;
//! the nonlinearity (operator coefficients depending on the moments of
//! the unknown) is resolved with a Picard loop that "typically requires
//! five iterations". The linear solves inside the loop are the batched
//! systems this whole library exists for — one matrix per (mesh node,
//! species), all sharing the nine-point pattern.

use std::sync::Arc;

use batsolv_formats::{BatchBanded, BatchCsr, BatchEll, BatchVectors, SparsityPattern};
use batsolv_gpusim::DeviceSpec;
use batsolv_solvers::direct::{BatchBandedLu, BatchSparseQr};
use batsolv_solvers::{AbsResidual, BatchBicgstab, BatchSolveReport, Jacobi};
use batsolv_types::{BatchDims, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::grid::VelocityGrid;
use crate::moments::Moments;
use crate::operator_assembly::assemble_matrix;
use crate::species::Species;

/// Which linear solver + format the Picard loop uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverKind {
    /// Batched BiCGSTAB + Jacobi on `BatchCsr`.
    BicgstabCsr,
    /// Batched BiCGSTAB + Jacobi on `BatchEll` (the paper's winner).
    BicgstabEll,
    /// LAPACK-style banded LU (`dgbsv`) — the CPU baseline.
    Dgbsv,
    /// Givens sparse QR — the cuSolver baseline.
    SparseQr,
}

impl SolverKind {
    /// Display name used in reports and CSV output.
    pub fn name(&self) -> &'static str {
        match self {
            SolverKind::BicgstabCsr => "bicgstab-csr",
            SolverKind::BicgstabEll => "bicgstab-ell",
            SolverKind::Dgbsv => "dgbsv",
            SolverKind::SparseQr => "sparse-qr",
        }
    }
}

/// Distribution functions of both species over all mesh nodes.
#[derive(Clone, Debug)]
pub struct ProxyState {
    /// `f[s]` holds species `s`'s distribution, one system per mesh node.
    pub f: [BatchVectors<f64>; 2],
}

/// Per-species iteration statistics of one linear solve.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IterStats {
    /// Largest per-system iteration count.
    pub max: u32,
    /// Mean per-system iteration count.
    pub mean: f64,
}

/// Record of one Picard iteration.
#[derive(Clone, Debug)]
pub struct PicardIterRecord {
    /// Linear-solver iterations per species (`[ion, electron]`) —
    /// the rows of the paper's Table III.
    pub linear_iters: [IterStats; 2],
    /// Simulated time of the combined batched solve, seconds.
    pub solve_time_s: f64,
    /// Max-norm Picard increment per species (`‖f_{k+1} − f_k‖∞`).
    pub increment: [f64; 2],
}

/// Result of a full Picard solve (one implicit time step).
#[derive(Clone, Debug)]
pub struct PicardReport {
    /// One record per Picard iteration.
    pub iterations: Vec<PicardIterRecord>,
    /// Relative density drift per species over the step.
    pub density_drift: [f64; 2],
    /// Relative energy drift per species over the step.
    pub energy_drift: [f64; 2],
    /// Sum of simulated solve times, seconds.
    pub total_solve_time_s: f64,
    /// Solver used.
    pub solver: SolverKind,
}

impl PicardReport {
    /// Table III shape check: iteration counts per species per Picard
    /// iteration, `[ [ion...], [electron...] ]`.
    pub fn iteration_table(&self) -> [Vec<u32>; 2] {
        let mut out = [vec![], vec![]];
        for rec in &self.iterations {
            out[0].push(rec.linear_iters[0].max);
            out[1].push(rec.linear_iters[1].max);
        }
        out
    }
}

/// The proxy app: grid, species pair, Picard configuration.
#[derive(Clone, Debug)]
pub struct CollisionProxy {
    /// Velocity grid shared by both species (in species-normalized units).
    pub grid: VelocityGrid,
    /// `[ion, electron]`.
    pub species: [Species; 2],
    /// Picard iterations per time step (the paper: typically 5).
    pub picard_iterations: usize,
    /// Linear solver absolute tolerance (the paper: 1e-10).
    pub tolerance: f64,
    /// Number of spatial mesh nodes in the batch.
    pub num_mesh_nodes: usize,
    shared_pattern: Arc<SparsityPattern>,
}

impl CollisionProxy {
    /// Proxy over `num_mesh_nodes` spatial nodes on the given grid.
    pub fn new(grid: VelocityGrid, num_mesh_nodes: usize) -> Self {
        let shared_pattern = Arc::new(grid.stencil_pattern());
        CollisionProxy {
            grid,
            species: Species::xgc_pair(),
            picard_iterations: 5,
            tolerance: 1e-10,
            num_mesh_nodes,
            shared_pattern,
        }
    }

    /// Override the linear tolerance (the conservation experiment).
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// The shared nine-point pattern.
    pub fn pattern(&self) -> &Arc<SparsityPattern> {
        &self.shared_pattern
    }

    /// Initial state: per-node perturbed Maxwellians plus a
    /// non-equilibrium bump that the collision operator relaxes away.
    pub fn initial_state(&self, seed: u64) -> ProxyState {
        let mut rng = StdRng::seed_from_u64(seed);
        let dims =
            BatchDims::new(self.num_mesh_nodes, self.grid.num_nodes()).expect("valid proxy dims");
        let make = |rng: &mut StdRng, grid: &VelocityGrid| {
            let mut v = BatchVectors::zeros(dims);
            for node in 0..self.num_mesh_nodes {
                let n0: f64 = 0.8 + 0.4 * rng.gen::<f64>();
                let u0: f64 = -0.3 + 0.6 * rng.gen::<f64>();
                let t0: f64 = 0.85 + 0.3 * rng.gen::<f64>();
                let main = grid.maxwellian(n0, u0, t0);
                // Beam-like bump: the non-equilibrium feature collisions
                // relax (drives the Picard nonlinearity).
                let bump = grid.maxwellian(0.25 * n0, u0 + 1.2, 0.4 * t0);
                let dst = v.system_mut(node);
                for k in 0..dst.len() {
                    dst[k] = main[k] + bump[k];
                }
            }
            v
        };
        ProxyState {
            f: [make(&mut rng, &self.grid), make(&mut rng, &self.grid)],
        }
    }

    /// Assemble the combined, **interleaved** ion/electron batch from the
    /// current Picard iterate: entry `2k` is mesh node `k`'s ion matrix,
    /// entry `2k+1` its electron matrix (equal counts, like the paper's
    /// evaluation batches).
    pub fn assemble_combined(&self, iterate: &ProxyState) -> Result<BatchCsr<f64>> {
        let mut m = BatchCsr::zeros(2 * self.num_mesh_nodes, Arc::clone(&self.shared_pattern))?;
        let mut vals = vec![0.0f64; self.shared_pattern.nnz()];
        for node in 0..self.num_mesh_nodes {
            for (s, species) in self.species.iter().enumerate() {
                let moments = Moments::compute(&self.grid, iterate.f[s].system(node));
                assemble_matrix(
                    &self.grid,
                    species,
                    &moments,
                    &self.shared_pattern,
                    &mut vals,
                );
                m.values_of_mut(2 * node + s).copy_from_slice(&vals);
            }
        }
        Ok(m)
    }

    /// Interleave the two species' distributions into one combined batch
    /// (the right-hand side layout matching [`Self::assemble_combined`]).
    pub fn interleave(&self, state: &ProxyState) -> BatchVectors<f64> {
        let dims = BatchDims::new(2 * self.num_mesh_nodes, self.grid.num_nodes())
            .expect("valid combined dims");
        let mut v = BatchVectors::zeros(dims);
        for node in 0..self.num_mesh_nodes {
            for s in 0..2 {
                v.system_mut(2 * node + s)
                    .copy_from_slice(state.f[s].system(node));
            }
        }
        v
    }

    /// Inverse of [`Self::interleave`].
    pub fn deinterleave(&self, combined: &BatchVectors<f64>) -> ProxyState {
        let dims =
            BatchDims::new(self.num_mesh_nodes, self.grid.num_nodes()).expect("valid proxy dims");
        let mut f = [BatchVectors::zeros(dims), BatchVectors::zeros(dims)];
        for node in 0..self.num_mesh_nodes {
            for (s, fs) in f.iter_mut().enumerate() {
                fs.system_mut(node)
                    .copy_from_slice(combined.system(2 * node + s));
            }
        }
        ProxyState { f }
    }

    /// Run one implicit time step: `picard_iterations` Picard sweeps,
    /// each assembling the combined batch from the current iterate and
    /// solving it with `solver` on `device`. With `warm_start`, each
    /// linear solve starts from the previous Picard iterate (the paper's
    /// Figure 8 / Table III configuration); otherwise from zero.
    pub fn run_picard(
        &self,
        state: &mut ProxyState,
        device: &DeviceSpec,
        solver: SolverKind,
        warm_start: bool,
    ) -> Result<PicardReport> {
        let f_n = self.interleave(state); // old time level = RHS every sweep
        let m0 = [
            species_moments(&self.grid, &state.f[0]),
            species_moments(&self.grid, &state.f[1]),
        ];

        let mut iterate = state.clone();
        let mut records = Vec::with_capacity(self.picard_iterations);
        let mut total_time = 0.0;
        for _ in 0..self.picard_iterations {
            let matrices = self.assemble_combined(&iterate)?;
            let mut x = if warm_start {
                self.interleave(&iterate)
            } else {
                BatchVectors::zeros(f_n.dims())
            };
            let report = self.linear_solve(device, solver, &matrices, &f_n, &mut x)?;
            total_time += report.time_s();
            let new_state = self.deinterleave(&x);
            let increment = [
                max_increment(&iterate.f[0], &new_state.f[0]),
                max_increment(&iterate.f[1], &new_state.f[1]),
            ];
            records.push(PicardIterRecord {
                linear_iters: split_iters(&report, self.num_mesh_nodes),
                solve_time_s: report.time_s(),
                increment,
            });
            iterate = new_state;
        }

        let m1 = [
            species_moments(&self.grid, &iterate.f[0]),
            species_moments(&self.grid, &iterate.f[1]),
        ];
        *state = iterate;
        Ok(PicardReport {
            iterations: records,
            density_drift: [m1[0].density_drift(&m0[0]), m1[1].density_drift(&m0[1])],
            energy_drift: [m1[0].energy_drift(&m0[0]), m1[1].energy_drift(&m0[1])],
            total_solve_time_s: total_time,
            solver,
        })
    }

    /// Dispatch one combined batched linear solve.
    fn linear_solve(
        &self,
        device: &DeviceSpec,
        solver: SolverKind,
        matrices: &BatchCsr<f64>,
        rhs: &BatchVectors<f64>,
        x: &mut BatchVectors<f64>,
    ) -> Result<BatchSolveReport> {
        match solver {
            SolverKind::BicgstabCsr => BatchBicgstab::new(Jacobi, AbsResidual::new(self.tolerance))
                .solve(device, matrices, rhs, x),
            SolverKind::BicgstabEll => {
                let ell = BatchEll::from_csr(matrices)?;
                BatchBicgstab::new(Jacobi, AbsResidual::new(self.tolerance))
                    .solve(device, &ell, rhs, x)
            }
            SolverKind::Dgbsv => {
                let banded = BatchBanded::from_csr(matrices)?;
                BatchBandedLu.solve(device, &banded, rhs, x)
            }
            SolverKind::SparseQr => {
                let banded = BatchBanded::from_csr(matrices)?;
                BatchSparseQr.solve(device, &banded, rhs, x)
            }
        }
    }
}

/// Aggregate moments of a whole species batch (summed over mesh nodes).
fn species_moments(grid: &VelocityGrid, f: &BatchVectors<f64>) -> Moments {
    let mut density = 0.0;
    let mut momentum = 0.0;
    let mut energy = 0.0;
    for node in 0..f.dims().num_systems {
        let m = Moments::compute(grid, f.system(node));
        density += m.density;
        momentum += m.density * m.mean_velocity;
        energy += m.density * m.temperature;
    }
    if density == 0.0 {
        return Moments {
            density,
            mean_velocity: 0.0,
            temperature: 1.0,
        };
    }
    Moments {
        density,
        mean_velocity: momentum / density,
        temperature: energy / density,
    }
}

fn max_increment(a: &BatchVectors<f64>, b: &BatchVectors<f64>) -> f64 {
    a.values()
        .iter()
        .zip(b.values().iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max)
}

/// Split a combined interleaved report into per-species stats.
fn split_iters(report: &BatchSolveReport, num_mesh_nodes: usize) -> [IterStats; 2] {
    let mut out = [IterStats::default(), IterStats::default()];
    for (s, stats) in out.iter_mut().enumerate() {
        let mut max = 0u32;
        let mut sum = 0u64;
        for node in 0..num_mesh_nodes {
            let it = report.per_system[2 * node + s].iterations;
            max = max.max(it);
            sum += it as u64;
        }
        stats.max = max;
        stats.mean = sum as f64 / num_mesh_nodes as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_proxy(nodes: usize) -> CollisionProxy {
        CollisionProxy::new(VelocityGrid::small(10, 9), nodes)
    }

    #[test]
    fn interleave_roundtrip() {
        let proxy = small_proxy(3);
        let state = proxy.initial_state(7);
        let combined = proxy.interleave(&state);
        let back = proxy.deinterleave(&combined);
        for s in 0..2 {
            assert_eq!(state.f[s], back.f[s]);
        }
    }

    #[test]
    fn picard_increments_shrink() {
        // The Picard iteration converges: increments decrease.
        let proxy = small_proxy(2);
        let mut state = proxy.initial_state(3);
        let report = proxy
            .run_picard(
                &mut state,
                &DeviceSpec::v100(),
                SolverKind::BicgstabEll,
                true,
            )
            .unwrap();
        let inc: Vec<f64> = report.iterations.iter().map(|r| r.increment[1]).collect();
        assert!(
            inc.windows(2).all(|w| w[1] < w[0] * 1.01),
            "increments {inc:?}"
        );
        assert!(inc.last().unwrap() < &(0.3 * inc[0]), "increments {inc:?}");
    }

    #[test]
    fn warm_start_reduces_later_iteration_counts() {
        // The Table III effect: with warm starts, later Picard sweeps
        // need fewer linear iterations than the first.
        let proxy = small_proxy(2);
        let mut state = proxy.initial_state(11);
        let report = proxy
            .run_picard(
                &mut state,
                &DeviceSpec::v100(),
                SolverKind::BicgstabEll,
                true,
            )
            .unwrap();
        let [ion, ele] = report.iteration_table();
        assert!(
            *ele.last().unwrap() < ele[0],
            "electron iterations should drop: {ele:?}"
        );
        assert!(ion[0] <= ele[0], "ion {ion:?} vs electron {ele:?}");
    }

    #[test]
    fn electrons_need_more_iterations_than_ions() {
        let proxy = small_proxy(2);
        let mut state = proxy.initial_state(5);
        let report = proxy
            .run_picard(
                &mut state,
                &DeviceSpec::v100(),
                SolverKind::BicgstabEll,
                false,
            )
            .unwrap();
        for rec in &report.iterations {
            assert!(
                rec.linear_iters[1].max > rec.linear_iters[0].max,
                "electron {:?} vs ion {:?}",
                rec.linear_iters[1],
                rec.linear_iters[0]
            );
        }
    }

    #[test]
    fn density_is_conserved_to_solver_tolerance() {
        // The paper's conservation result: tolerance 1e-10 keeps the
        // conserved quantities within ~1e-7.
        let proxy = small_proxy(2);
        let mut state = proxy.initial_state(9);
        let report = proxy
            .run_picard(
                &mut state,
                &DeviceSpec::v100(),
                SolverKind::BicgstabEll,
                true,
            )
            .unwrap();
        assert!(
            report.density_drift[0] < 1e-7 && report.density_drift[1] < 1e-7,
            "density drift {:?}",
            report.density_drift
        );
    }

    #[test]
    fn loose_tolerance_breaks_conservation() {
        let proxy = small_proxy(2).with_tolerance(1e-3);
        let mut state = proxy.initial_state(9);
        let loose = proxy
            .run_picard(
                &mut state,
                &DeviceSpec::v100(),
                SolverKind::BicgstabEll,
                true,
            )
            .unwrap();
        let tight_proxy = small_proxy(2);
        let mut state2 = tight_proxy.initial_state(9);
        let tight = tight_proxy
            .run_picard(
                &mut state2,
                &DeviceSpec::v100(),
                SolverKind::BicgstabEll,
                true,
            )
            .unwrap();
        assert!(
            loose.density_drift[1] > 10.0 * tight.density_drift[1].max(1e-16),
            "loose {:?} vs tight {:?}",
            loose.density_drift,
            tight.density_drift
        );
    }

    #[test]
    fn direct_solver_gives_same_solution_as_iterative() {
        let proxy = small_proxy(1);
        let mut s1 = proxy.initial_state(13);
        let mut s2 = proxy.initial_state(13);
        let dev_cpu = DeviceSpec::skylake_node();
        let dev_gpu = DeviceSpec::v100();
        proxy
            .run_picard(&mut s1, &dev_cpu, SolverKind::Dgbsv, false)
            .unwrap();
        proxy
            .run_picard(&mut s2, &dev_gpu, SolverKind::BicgstabEll, false)
            .unwrap();
        let diff = max_increment(&s1.f[1], &s2.f[1]);
        let scale = s1.f[1].values().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(diff < 1e-7 * scale.max(1.0), "solutions differ by {diff}");
    }
}
