//! Conservative flux-form assembly of the collision matrix.
//!
//! The proxy operator is a drift–diffusion Fokker–Planck model in 2-D
//! velocity space:
//!
//! ```text
//! C[f] = ∇ · F,   F = D (∇f + (v − u)/T · f) + D_cross ∇f
//! ```
//!
//! * The drag term `(v − u)/T` pulls the distribution toward a drifting
//!   Maxwellian with the moments of the current Picard iterate — this is
//!   the nonlinearity (the coefficients are re-assembled from `f` every
//!   Picard iteration, standing in for the Rosenbluth potentials).
//! * The cross-diffusion (`D_cross`, controlled by `Species::aniso`)
//!   models pitch-angle scattering and produces the **corner entries**
//!   of the paper's nine-point stencil plus part of the nonsymmetry.
//! * Fluxes are assembled per face with zero boundary flux, so the
//!   discrete operator conserves particles **exactly** (the weighted
//!   column sums of `I − dt·C` equal the weights) — the property behind
//!   the paper's "conservation to 1e-7 needs tolerance 1e-10" result.
//!
//! The backward Euler matrix is `A = I − dt·C` with `dt·ν` folded into
//! the species' diffusion strength.

use batsolv_formats::SparsityPattern;

use crate::grid::VelocityGrid;
use crate::moments::Moments;
use crate::species::Species;

/// Assemble the backward Euler collision matrix `A = I − dt·C[moments]`
/// for one mesh node into `values` (CSR order of `pattern`).
///
/// `pattern` must be the grid's nine-point stencil pattern.
pub fn assemble_matrix(
    grid: &VelocityGrid,
    species: &Species,
    moments: &Moments,
    pattern: &SparsityPattern,
    values: &mut [f64],
) {
    debug_assert_eq!(values.len(), pattern.nnz());
    debug_assert_eq!(pattern.num_rows(), grid.num_nodes());
    values.iter_mut().for_each(|v| *v = 0.0);

    let (hx, hy) = (grid.h_par(), grid.h_perp());
    let t = moments.temperature;
    let u = moments.mean_velocity;
    // Diffusion strength with dt·ν folded in; scales with the local
    // temperature like the Rosenbluth-potential coefficients.
    let d0 = species.dt_nu * t;

    // Identity part.
    for r in 0..grid.num_nodes() {
        add(pattern, values, r, r, 1.0);
    }

    // A closure adding `coef * f[col]` to the flux-divergence row `row`
    // with sign `sgn` and face measure `inv_h`: A −= dt·C, hence the
    // minus sign on every flux contribution.
    let mut scatter = |row: usize, col: usize, coef: f64| {
        add(pattern, values, row, col, -coef);
    };

    // --- x-faces (between (i,j) and (i+1,j)) ---
    for j in 0..grid.n_perp {
        for i in 0..grid.n_par - 1 {
            let left = grid.node(i, j);
            let right = grid.node(i + 1, j);
            let vx_face = 0.5 * (grid.v_par(i) + grid.v_par(i + 1));
            let vy = grid.v_perp(j);
            let dxx = d0;
            // Cross-diffusion varies over the grid and changes sign with
            // the quadrant — the source of strong nonsymmetry.
            let dxy = if j > 0 && j + 1 < grid.n_perp {
                species.aniso * d0 * vx_face * vy / (vx_face * vx_face + vy * vy + t)
            } else {
                0.0
            };
            let drag = (vx_face - u) / t;
            // Full tensor flux with matching drags, so the Maxwellian
            // annihilates every bracket (equilibrium-preserving):
            // F = dxx (∂x f + (vx−u)/T f) + dxy (∂y f + vy/T f).
            let drag_y = vy / t;
            let through = |s: &mut dyn FnMut(usize, usize, f64)| {
                s(left, right, dxx / hx + dxx * drag * 0.5);
                s(left, left, -dxx / hx + dxx * drag * 0.5);
                if dxy != 0.0 {
                    let q = dxy / (4.0 * hy);
                    s(left, grid.node(i, j + 1), q);
                    s(left, grid.node(i + 1, j + 1), q);
                    s(left, grid.node(i, j - 1), -q);
                    s(left, grid.node(i + 1, j - 1), -q);
                    // Matching cross drag on the face average of f.
                    s(left, left, dxy * drag_y * 0.5);
                    s(left, right, dxy * drag_y * 0.5);
                }
            };
            // Divergence: +F/hx into `left`, −F/hx into `right`.
            let mut into_left: Vec<(usize, usize, f64)> = Vec::with_capacity(6);
            through(&mut |r, c, v| into_left.push((r, c, v)));
            for &(_, c, v) in &into_left {
                scatter(left, c, v / hx);
                scatter(right, c, -v / hx);
            }
        }
    }

    // --- y-faces (between (i,j) and (i,j+1)) ---
    for j in 0..grid.n_perp - 1 {
        for i in 0..grid.n_par {
            let bot = grid.node(i, j);
            let top = grid.node(i, j + 1);
            let vx = grid.v_par(i);
            let vy_face = 0.5 * (grid.v_perp(j) + grid.v_perp(j + 1));
            let dyy = d0;
            let dyx = if i > 0 && i + 1 < grid.n_par {
                species.aniso * d0 * vx * vy_face / (vx * vx + vy_face * vy_face + t)
            } else {
                0.0
            };
            let drag = vy_face / t; // perpendicular drag pulls toward v⊥ = 0
            let drag_x = (vx - u) / t;
            let mut contribs: Vec<(usize, f64)> = Vec::with_capacity(8);
            contribs.push((top, dyy / hy + dyy * drag * 0.5));
            contribs.push((bot, -dyy / hy + dyy * drag * 0.5));
            if dyx != 0.0 {
                let q = dyx / (4.0 * hx);
                contribs.push((grid.node(i + 1, j), q));
                contribs.push((grid.node(i + 1, j + 1), q));
                contribs.push((grid.node(i - 1, j), -q));
                contribs.push((grid.node(i - 1, j + 1), -q));
                // Matching cross drag: F_y's second bracket is
                // dyx (∂x f + (vx−u)/T f).
                contribs.push((bot, dyx * drag_x * 0.5));
                contribs.push((top, dyx * drag_x * 0.5));
            }
            for &(c, v) in &contribs {
                scatter(bot, c, v / hy);
                scatter(top, c, -v / hy);
            }
        }
    }
}

#[inline]
fn add(pattern: &SparsityPattern, values: &mut [f64], row: usize, col: usize, v: f64) {
    let k = pattern
        .find(row, col)
        .unwrap_or_else(|| panic!("assembly outside stencil: ({row}, {col})"));
    values[k] += v;
}

#[cfg(test)]
mod tests {
    use super::*;
    use batsolv_formats::{BatchCsr, BatchDense, BatchMatrix};
    use std::sync::Arc;

    fn assembled(species: &Species, grid: &VelocityGrid) -> BatchCsr<f64> {
        let pattern = Arc::new(grid.stencil_pattern());
        let mut m = BatchCsr::zeros(1, pattern.clone()).unwrap();
        let moments = Moments {
            density: 1.0,
            mean_velocity: 0.2,
            temperature: 1.0,
        };
        let mut vals = vec![0.0; pattern.nnz()];
        assemble_matrix(grid, species, &moments, &pattern, &mut vals);
        m.values_of_mut(0).copy_from_slice(&vals);
        m
    }

    #[test]
    fn column_sums_equal_one_exactly() {
        // Particle conservation: with uniform weights, every column of
        // A = I − dt·C sums to exactly 1 (fluxes telescope).
        let grid = VelocityGrid::small(8, 7);
        for species in Species::xgc_pair() {
            let m = assembled(&species, &grid);
            let n = grid.num_nodes();
            for c in 0..n {
                let mut sum = 0.0;
                for r in 0..n {
                    sum += m.get(0, r, c);
                }
                assert!(
                    (sum - 1.0).abs() < 1e-12,
                    "{}: column {c} sums to {sum}",
                    species.name
                );
            }
        }
    }

    #[test]
    fn matrix_is_nonsymmetric() {
        let grid = VelocityGrid::small(8, 7);
        let m = assembled(&Species::electron(), &grid);
        let mut asym = 0.0f64;
        let mut scale = 0.0f64;
        for r in 0..grid.num_nodes() {
            for c in 0..grid.num_nodes() {
                asym = asym.max((m.get(0, r, c) - m.get(0, c, r)).abs());
                scale = scale.max(m.get(0, r, c).abs());
            }
        }
        assert!(asym > 1e-3 * scale, "asymmetry {asym} vs scale {scale}");
    }

    #[test]
    fn corner_entries_are_populated() {
        // The cross-diffusion must actually use the 9-point corners.
        let grid = VelocityGrid::small(8, 7);
        let m = assembled(&Species::electron(), &grid);
        let (i, j) = (4, 3);
        let r = grid.node(i, j);
        let corner = grid.node(i + 1, j + 1);
        assert!(m.get(0, r, corner).abs() > 1e-10, "corner entry is zero");
    }

    #[test]
    fn maxwellian_is_near_equilibrium() {
        // C[f_M] ≈ 0 when f_M has the moments used for assembly, so
        // A f_M ≈ f_M (up to discretization error of the drift terms).
        let grid = VelocityGrid::small(24, 23);
        let pattern = Arc::new(grid.stencil_pattern());
        let f = grid.maxwellian(1.0, 0.0, 1.0);
        let moments = Moments::compute(&grid, &f);
        let mut vals = vec![0.0; pattern.nnz()];
        let species = Species::electron();
        assemble_matrix(&grid, &species, &moments, &pattern, &mut vals);
        let mut m = BatchCsr::<f64>::zeros(1, pattern.clone()).unwrap();
        m.values_of_mut(0).copy_from_slice(&vals);
        let mut af = vec![0.0; grid.num_nodes()];
        m.spmv_system(0, &f, &mut af);
        let fmax = f.iter().cloned().fold(0.0f64, f64::max);
        let err = f
            .iter()
            .zip(af.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        // Drift-term discretization is O(h²); the equilibrium residual
        // must be small relative to the peak times the collision
        // strength (~10% at this grid resolution).
        assert!(
            err < 0.12 * fmax * species.dt_nu,
            "equilibrium residual {err} vs peak {fmax}"
        );
    }

    #[test]
    fn ion_matrix_is_closer_to_identity_than_electron() {
        let grid = VelocityGrid::small(8, 7);
        let ion = assembled(&Species::ion(), &grid);
        let ele = assembled(&Species::electron(), &grid);
        let dev = |m: &BatchCsr<f64>| -> f64 {
            let d = BatchDense::from_csr(m);
            let n = grid.num_nodes();
            let mut s = 0.0f64;
            for r in 0..n {
                for c in 0..n {
                    let idv = if r == c { 1.0 } else { 0.0 };
                    s = s.max((d.at(0, r, c) - idv).abs());
                }
            }
            s
        };
        assert!(
            dev(&ion) * 10.0 < dev(&ele),
            "ion {} electron {}",
            dev(&ion),
            dev(&ele)
        );
    }

    #[test]
    fn equilibrium_residual_converges_at_second_order() {
        // The flux-form discretization is O(h²): halving the mesh spacing
        // must cut the Maxwellian equilibrium residual by ~4x.
        let residual_on = |nx: usize, ny: usize| -> f64 {
            let grid = VelocityGrid::small(nx, ny);
            let pattern = Arc::new(grid.stencil_pattern());
            let f = grid.maxwellian(1.0, 0.0, 1.0);
            let moments = Moments::compute(&grid, &f);
            let mut vals = vec![0.0; pattern.nnz()];
            let species = Species::electron();
            assemble_matrix(&grid, &species, &moments, &pattern, &mut vals);
            let mut m = BatchCsr::<f64>::zeros(1, pattern.clone()).unwrap();
            m.values_of_mut(0).copy_from_slice(&vals);
            let n = grid.num_nodes();
            let mut af = vec![0.0; n];
            m.spmv_system(0, &f, &mut af);
            // (A f - f) is -dt·C f; normalize by the peak and dt·nu so
            // grids are comparable. Measure interior rows only: the
            // zero-flux boundary rows divide an O(h²) flux defect by h,
            // reducing the max-norm order there (standard edge effect).
            let fmax = f.iter().cloned().fold(0.0f64, f64::max);
            let mut worst = 0.0f64;
            for j in 2..grid.n_perp - 2 {
                for i in 2..grid.n_par - 2 {
                    let r = grid.node(i, j);
                    worst = worst.max((f[r] - af[r]).abs());
                }
            }
            worst / (fmax * species.dt_nu)
        };
        let coarse = residual_on(24, 22);
        let fine = residual_on(48, 44);
        let ratio = coarse / fine;
        // Asymptotically 4x; the Gaussian-tail truncation at v_max keeps
        // the measured ratio slightly below that at these resolutions.
        assert!(
            ratio > 2.6 && ratio < 6.0,
            "expected ~4x (second order), got {ratio:.2} ({coarse:.3e} -> {fine:.3e})"
        );
    }

    #[test]
    fn diagonal_is_positive_and_dominant_enough() {
        let grid = VelocityGrid::xgc_standard();
        for species in Species::xgc_pair() {
            let m = assembled(&species, &grid);
            let mut diag = vec![0.0; grid.num_nodes()];
            m.extract_diagonal(0, &mut diag);
            assert!(diag.iter().all(|&d| d > 0.0), "{}", species.name);
        }
    }
}
