//! Event sinks.
//!
//! [`TraceSink`] is the compile-time seam mirroring the solver crate's
//! `IterationLogger`: code that is generic over a sink monomorphizes, so
//! the [`NoopSink`] instantiation compiles to nothing. Layers that
//! operate per-request or per-batch (where an indirect call is noise
//! next to a fused solve) hold an `Arc<dyn TraceSink>` instead — the
//! dynamic dispatch never sits on the per-iteration hot path.

use std::sync::Mutex;

use crate::event::TraceEvent;

/// Receives structured events. Implementations must tolerate concurrent
/// `emit` calls (submitters, the worker, and the watchdog all emit).
pub trait TraceSink: Send + Sync {
    /// Whether emitting is worthwhile at all; callers may skip event
    /// construction entirely when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event.
    fn emit(&self, event: &TraceEvent);

    /// Flush any buffering (file sinks); default is a no-op.
    fn flush(&self) {}
}

/// The disabled sink: reports `enabled() == false` and compiles to
/// nothing when monomorphized into a kernel.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn emit(&self, _event: &TraceEvent) {}
}

/// Collects every event in memory — the test/experiment sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// Empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Copy of everything captured so far.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Drain the captured events.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().unwrap())
    }

    /// Number of events captured.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn emit(&self, event: &TraceEvent) {
        self.events.lock().unwrap().push(event.clone());
    }
}

/// Broadcasts each event to several sinks (e.g. a JSONL file and the
/// flight recorder and an in-memory copy).
pub struct FanoutSink {
    sinks: Vec<std::sync::Arc<dyn TraceSink>>,
}

impl FanoutSink {
    /// Fan out to `sinks`, in order.
    pub fn new(sinks: Vec<std::sync::Arc<dyn TraceSink>>) -> FanoutSink {
        FanoutSink { sinks }
    }
}

impl TraceSink for FanoutSink {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn emit(&self, event: &TraceEvent) {
        for s in &self.sinks {
            s.emit(event);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::sync::Arc;

    fn ev(t: u64) -> TraceEvent {
        TraceEvent {
            t_us: t,
            trace_id: Some(1),
            kind: EventKind::Submitted { n: 4 },
        }
    }

    #[test]
    fn noop_sink_is_disabled() {
        let s = NoopSink;
        assert!(!s.enabled());
        s.emit(&ev(0)); // must be callable and do nothing
    }

    #[test]
    fn memory_sink_captures_in_order() {
        let s = MemorySink::new();
        assert!(s.is_empty());
        s.emit(&ev(1));
        s.emit(&ev(2));
        let got = s.snapshot();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].t_us, 1);
        assert_eq!(got[1].t_us, 2);
        assert_eq!(s.take().len(), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let f = FanoutSink::new(vec![a.clone(), b.clone()]);
        assert!(f.enabled());
        f.emit(&ev(7));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn fanout_of_noops_reports_disabled() {
        let f = FanoutSink::new(vec![Arc::new(NoopSink), Arc::new(NoopSink)]);
        assert!(!f.enabled());
    }
}
