//! The structured event model.
//!
//! One [`TraceEvent`] is one timestamped observation: a lifecycle edge of
//! a request (submitted, dequeued, rung begun/ended, terminal outcome), a
//! simulated-device record (kernel launch, host↔device transfer), or a
//! service-level incident (breaker trip, watchdog stall, worker respawn).
//! Events that belong to a request carry its trace id (the service
//! request id, assigned at submission); batch- and service-scoped events
//! carry none.
//!
//! Serialization is hand-rolled JSON — the offline build has no serde,
//! and the format is small enough that a line writer is clearer anyway.

use crate::ledger::PhaseLedger;

/// Identifier tying events to the request that caused them. Equal to the
/// service's `RequestId` — one id namespace, no translation table.
pub type TraceId = u64;

/// One timestamped structured event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Wall-clock microseconds since the owning tracer's epoch.
    pub t_us: u64,
    /// Owning request, when the event is request-scoped.
    pub trace_id: Option<TraceId>,
    /// What happened.
    pub kind: EventKind,
}

/// Every event kind the three layers emit.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A request passed admission and entered the queue (`n` = rows).
    Submitted {
        /// System size (rows).
        n: usize,
    },
    /// A request bounced at submission.
    Rejected {
        /// Which admission check failed (`"shape"`, `"nonfinite"`, ...).
        reason: &'static str,
    },
    /// A request left the queue and joined a dispatching batch.
    Dequeued {
        /// Time spent queued, microseconds.
        wait_us: u64,
    },
    /// The former cut a batch.
    BatchFormed {
        /// Monotonic batch sequence number.
        seq: u64,
        /// Requests fused into the batch.
        size: usize,
        /// Why the batch flushed (`"target"` or `"linger"`).
        reason: &'static str,
    },
    /// An escalation rung started working on the owning request.
    RungBegin {
        /// Ladder position, 1-based.
        rung: u8,
        /// Solver name (`"bicgstab"`, `"gmres"`, `"banded-lu"`).
        method: &'static str,
    },
    /// An escalation rung finished with the owning request.
    RungEnd {
        /// Ladder position, 1-based.
        rung: u8,
        /// Solver name.
        method: &'static str,
        /// Iterations this rung spent on the system.
        iterations: u32,
        /// Residual the rung left behind.
        residual: f64,
        /// Whether this rung converged the system.
        converged: bool,
        /// Breakdown tag, if the rung broke down.
        breakdown: Option<&'static str>,
    },
    /// One solver iteration of the owning request (residual bridge from
    /// the solver-layer `IterationLogger`).
    SolverIteration {
        /// Ladder position the iteration ran on.
        rung: u8,
        /// Iteration number within the rung (restarted solvers may
        /// repeat a number at a restart boundary — see the GMRES trace).
        iteration: u32,
        /// Residual norm after the iteration.
        residual: f64,
    },
    /// A simulated kernel launch (one fused rung over a batch subset).
    KernelLaunch {
        /// Fleet shard (= simulated device index) the launch ran on.
        /// 0 for single-device services.
        shard: u32,
        /// Monotonic launch sequence number (per engine).
        seq: u64,
        /// Solver the launch ran.
        solver: &'static str,
        /// Device the launch was priced on.
        device: &'static str,
        /// Thread blocks (= batch systems) launched.
        blocks: usize,
        /// Occupancy: blocks resident per compute unit.
        resident_per_cu: u32,
        /// Occupancy: concurrent block slots device-wide.
        total_slots: u32,
        /// Dynamic shared memory per block, bytes.
        shared_per_block_bytes: usize,
        /// Workspace vectors spilled to global memory, bytes per system
        /// (the shared-memory spill decision of the workspace planner).
        spilled_vector_bytes: usize,
        /// Launch-overhead share of the simulated time, microseconds.
        launch_us: f64,
        /// Execution (makespan) share of the simulated time, µs.
        exec_us: f64,
        /// Simulated DRAM traffic, bytes.
        dram_bytes: u64,
        /// Floating-point operations executed.
        flops: u64,
        /// Synchronization points on the launch's critical path.
        syncs: u64,
        /// Reductions (exposed + SpMV-fused) on the critical path.
        reductions: u64,
        /// Sync + exposed-reduction share of the simulated time, µs.
        sync_us: f64,
        /// Steady-state synchronization points per solver iteration
        /// (classical BiCGSTAB 6, pipelined 2; classical CG 3,
        /// pipelined 1; 0 for direct solvers).
        syncs_per_iteration: f64,
    },
    /// Aggregated global-synchronization record for one launch: how many
    /// reduction barriers the critical block executed and what they cost.
    SyncPoint {
        /// Fleet shard the owning launch ran on.
        shard: u32,
        /// Launch sequence number this record belongs to.
        seq: u64,
        /// Solver that executed the syncs.
        solver: &'static str,
        /// Synchronization points on the critical path.
        syncs: u64,
        /// Simulated time spent in syncs + exposed reductions, µs.
        sim_us: f64,
    },
    /// Aggregated device-wide reduction record for one launch.
    Reduction {
        /// Fleet shard the owning launch ran on.
        shard: u32,
        /// Launch sequence number this record belongs to.
        seq: u64,
        /// Solver that executed the reductions.
        solver: &'static str,
        /// Tree reductions (exposed + fused) on the critical path.
        reductions: u64,
        /// Participants per tree: rows × concurrent blocks.
        width: u64,
        /// Levels of each tree, `ceil(log2 width)`.
        depth: u32,
    },
    /// A simulated host↔device transfer.
    Transfer {
        /// Fleet shard (device index) the copy targets.
        shard: u32,
        /// `"h2d"` or `"d2h"`.
        direction: &'static str,
        /// Payload size, bytes.
        bytes: u64,
        /// Simulated transfer time, microseconds.
        sim_us: f64,
    },
    /// The fleet scheduler assigned a batch chunk to a GPU shard.
    ShardDispatch {
        /// Target shard (simulated device index).
        shard: u32,
        /// Device profile name behind the shard.
        device: &'static str,
        /// Systems in the dispatched chunk.
        size: usize,
        /// Shard queue depth observed at dispatch (before the push).
        queue_depth: usize,
    },
    /// An idle shard stole a queued chunk from a loaded one.
    ShardSteal {
        /// The stealing (idle) shard.
        thief: u32,
        /// The shard the chunk was queued on.
        victim: u32,
        /// Systems in the stolen chunk.
        size: usize,
    },
    /// A sub-`MIN_BATCH_SIZE` batch spilled to the CPU banded-LU pool.
    CpuSpill {
        /// Systems in the spilled batch.
        size: usize,
        /// The cutoff that routed it to the host pool.
        min_batch_size: usize,
    },
    /// The owning request reached its exactly-once terminal outcome.
    Terminal {
        /// Outcome tag (`"converged_bicgstab"`, `"worker_panic"`, ...).
        outcome: &'static str,
        /// Total iterations across rungs.
        iterations: u32,
        /// Final residual.
        residual: f64,
        /// Ladder rungs attempted.
        rungs: usize,
    },
    /// A failed chunk was re-routed to a *different* shard for another
    /// attempt under the fleet's retry policy.
    RetryAttempt {
        /// Shard whose execution failed.
        from: u32,
        /// Shard the chunk was re-routed to.
        to: u32,
        /// Systems still being retried (budget-expired members shed).
        size: usize,
        /// The attempt number the re-routed chunk carries (1-based; the
        /// first retry is attempt 2).
        attempt: u32,
        /// Deterministic backoff slept before the re-route, µs.
        backoff_us: u64,
        /// Retryable failure class (`"device_failure"`, `"worker_panic"`).
        reason: &'static str,
    },
    /// An idle shard duplicated a straggling in-flight chunk (hedged
    /// dispatch); first terminal outcome per system wins.
    HedgeFired {
        /// Shard executing the straggling primary.
        primary: u32,
        /// Idle shard running the duplicate.
        hedge: u32,
        /// Systems in the duplicated chunk.
        size: usize,
        /// Age of the in-flight chunk when the hedge fired, µs.
        age_us: u64,
    },
    /// A hedge duplicate delivered first for at least one system.
    HedgeWon {
        /// The hedging shard that delivered.
        winner: u32,
        /// The straggling primary whose results were discarded.
        loser: u32,
        /// Systems the hedge delivered.
        size: usize,
    },
    /// Systems dropped before execution: their deadline budget was
    /// exhausted (or, under degradation level >= 2, could not cover the
    /// predicted solve cost).
    Shed {
        /// Shard that shed the systems at dispatch.
        shard: u32,
        /// Systems shed.
        size: usize,
        /// Degradation-ladder level in force when they were shed.
        level: u8,
    },
    /// The overload degradation ladder shifted levels (0 = normal,
    /// 1 = hedges off, 2 = sub-deadline shedding, 3 = spill widening).
    DegradeShift {
        /// Level before the shift.
        from: u8,
        /// Level after the shift.
        to: u8,
    },
    /// The telemetry autotuner (re)committed a per-class solver ×
    /// preconditioner choice from observed convergence records.
    AutotuneDecision {
        /// Workload class the decision covers (`"ion-like"`, ...).
        class: &'static str,
        /// Recommended rung-1 solver variant name.
        solver: &'static str,
        /// Recommended ladder preconditioner name.
        precond: &'static str,
        /// Terminal outcomes of this class observed so far.
        observations: u64,
        /// How many times the class's choice has changed (0 = first).
        revision: u64,
    },
    /// The owning request's complete latency attribution, emitted
    /// alongside its terminal outcome. The wall phases partition
    /// `[submitted, terminal]`; the `sim_*` fields split the solve phase
    /// on the simulated-device clock (see [`crate::ledger`]).
    Ledger(PhaseLedger),
    /// The circuit breaker tripped open.
    BreakerTrip,
    /// The watchdog flagged a dispatch past its budget.
    WatchdogStall {
        /// The exceeded budget, microseconds.
        budget_us: u64,
    },
    /// The supervisor respawned a panicked worker loop.
    WorkerRespawn,
    /// The flight recorder dumped its ring.
    FlightDump {
        /// What triggered the dump.
        reason: &'static str,
        /// Events captured in the dump.
        events: usize,
        /// Events the ring had already evicted.
        dropped: u64,
    },
}

impl EventKind {
    /// Stable snake_case discriminator used in every export format.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Submitted { .. } => "submitted",
            EventKind::Rejected { .. } => "rejected",
            EventKind::Dequeued { .. } => "dequeued",
            EventKind::BatchFormed { .. } => "batch_formed",
            EventKind::RungBegin { .. } => "rung_begin",
            EventKind::RungEnd { .. } => "rung_end",
            EventKind::SolverIteration { .. } => "solver_iteration",
            EventKind::KernelLaunch { .. } => "kernel_launch",
            EventKind::SyncPoint { .. } => "sync_point",
            EventKind::Reduction { .. } => "reduction",
            EventKind::Transfer { .. } => "transfer",
            EventKind::ShardDispatch { .. } => "shard_dispatch",
            EventKind::ShardSteal { .. } => "shard_steal",
            EventKind::CpuSpill { .. } => "cpu_spill",
            EventKind::Terminal { .. } => "terminal",
            EventKind::RetryAttempt { .. } => "retry_attempt",
            EventKind::HedgeFired { .. } => "hedge_fired",
            EventKind::HedgeWon { .. } => "hedge_won",
            EventKind::Shed { .. } => "shed",
            EventKind::DegradeShift { .. } => "degrade_shift",
            EventKind::AutotuneDecision { .. } => "autotune_decision",
            EventKind::Ledger(..) => "ledger",
            EventKind::BreakerTrip => "breaker_trip",
            EventKind::WatchdogStall { .. } => "watchdog_stall",
            EventKind::WorkerRespawn => "worker_respawn",
            EventKind::FlightDump { .. } => "flight_dump",
        }
    }

    /// Re-tag a simulated-device record with the fleet shard that owns
    /// it. The timeline builders default to shard 0 (the single-device
    /// service); fleet shards re-stamp records as they emit them. A
    /// no-op for kinds that carry no shard.
    pub fn with_shard(mut self, shard_id: u32) -> EventKind {
        match &mut self {
            EventKind::KernelLaunch { shard, .. }
            | EventKind::SyncPoint { shard, .. }
            | EventKind::Reduction { shard, .. }
            | EventKind::Transfer { shard, .. } => *shard = shard_id,
            _ => {}
        }
        self
    }

    /// The fleet shard a simulated-device record is tagged with, when
    /// the kind carries one.
    pub fn shard(&self) -> Option<u32> {
        match self {
            EventKind::KernelLaunch { shard, .. }
            | EventKind::SyncPoint { shard, .. }
            | EventKind::Reduction { shard, .. }
            | EventKind::Transfer { shard, .. }
            | EventKind::ShardDispatch { shard, .. }
            | EventKind::Shed { shard, .. } => Some(*shard),
            EventKind::ShardSteal { thief, .. } => Some(*thief),
            EventKind::RetryAttempt { to, .. } => Some(*to),
            EventKind::HedgeFired { hedge, .. } => Some(*hedge),
            EventKind::HedgeWon { winner, .. } => Some(*winner),
            _ => None,
        }
    }
}

/// Format a float as a JSON value (`null` for non-finite — JSON has no
/// Inf/NaN literals, and a poisoned residual must not poison the log).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl TraceEvent {
    /// One JSON object (no trailing newline): the JSONL line format.
    pub fn to_json(&self) -> String {
        let mut f = String::with_capacity(96);
        f.push_str(&format!("{{\"t_us\":{},", self.t_us));
        match self.trace_id {
            Some(id) => f.push_str(&format!("\"trace_id\":{id},")),
            None => f.push_str("\"trace_id\":null,"),
        }
        f.push_str(&format!("\"kind\":\"{}\"", self.kind.name()));
        match &self.kind {
            EventKind::Submitted { n } => f.push_str(&format!(",\"n\":{n}")),
            EventKind::Rejected { reason } => {
                f.push_str(&format!(",\"reason\":\"{}\"", json_escape(reason)));
            }
            EventKind::Dequeued { wait_us } => f.push_str(&format!(",\"wait_us\":{wait_us}")),
            EventKind::BatchFormed { seq, size, reason } => {
                f.push_str(&format!(
                    ",\"seq\":{seq},\"size\":{size},\"reason\":\"{}\"",
                    json_escape(reason)
                ));
            }
            EventKind::RungBegin { rung, method } => {
                f.push_str(&format!(",\"rung\":{rung},\"method\":\"{method}\""));
            }
            EventKind::RungEnd {
                rung,
                method,
                iterations,
                residual,
                converged,
                breakdown,
            } => {
                f.push_str(&format!(
                    ",\"rung\":{rung},\"method\":\"{method}\",\"iterations\":{iterations},\
                     \"residual\":{},\"converged\":{converged},\"breakdown\":{}",
                    json_f64(*residual),
                    match breakdown {
                        Some(tag) => format!("\"{}\"", json_escape(tag)),
                        None => "null".to_string(),
                    }
                ));
            }
            EventKind::SolverIteration {
                rung,
                iteration,
                residual,
            } => {
                f.push_str(&format!(
                    ",\"rung\":{rung},\"iteration\":{iteration},\"residual\":{}",
                    json_f64(*residual)
                ));
            }
            EventKind::KernelLaunch {
                shard,
                seq,
                solver,
                device,
                blocks,
                resident_per_cu,
                total_slots,
                shared_per_block_bytes,
                spilled_vector_bytes,
                launch_us,
                exec_us,
                dram_bytes,
                flops,
                syncs,
                reductions,
                sync_us,
                syncs_per_iteration,
            } => {
                f.push_str(&format!(
                    ",\"shard\":{shard},\"seq\":{seq},\"solver\":\"{solver}\",\"device\":\"{}\",\
                     \"blocks\":{blocks},\"resident_per_cu\":{resident_per_cu},\
                     \"total_slots\":{total_slots},\
                     \"shared_per_block_bytes\":{shared_per_block_bytes},\
                     \"spilled_vector_bytes\":{spilled_vector_bytes},\
                     \"launch_us\":{},\"exec_us\":{},\"dram_bytes\":{dram_bytes},\
                     \"flops\":{flops},\"syncs\":{syncs},\"reductions\":{reductions},\
                     \"sync_us\":{},\"syncs_per_iteration\":{}",
                    json_escape(device),
                    json_f64(*launch_us),
                    json_f64(*exec_us),
                    json_f64(*sync_us),
                    json_f64(*syncs_per_iteration),
                ));
            }
            EventKind::SyncPoint {
                shard,
                seq,
                solver,
                syncs,
                sim_us,
            } => {
                f.push_str(&format!(
                    ",\"shard\":{shard},\"seq\":{seq},\"solver\":\"{solver}\",\
                     \"syncs\":{syncs},\"sim_us\":{}",
                    json_f64(*sim_us)
                ));
            }
            EventKind::Reduction {
                shard,
                seq,
                solver,
                reductions,
                width,
                depth,
            } => {
                f.push_str(&format!(
                    ",\"shard\":{shard},\"seq\":{seq},\"solver\":\"{solver}\",\
                     \"reductions\":{reductions},\"width\":{width},\"depth\":{depth}"
                ));
            }
            EventKind::Transfer {
                shard,
                direction,
                bytes,
                sim_us,
            } => {
                f.push_str(&format!(
                    ",\"shard\":{shard},\"direction\":\"{direction}\",\"bytes\":{bytes},\
                     \"sim_us\":{}",
                    json_f64(*sim_us)
                ));
            }
            EventKind::ShardDispatch {
                shard,
                device,
                size,
                queue_depth,
            } => {
                f.push_str(&format!(
                    ",\"shard\":{shard},\"device\":\"{}\",\"size\":{size},\
                     \"queue_depth\":{queue_depth}",
                    json_escape(device)
                ));
            }
            EventKind::ShardSteal {
                thief,
                victim,
                size,
            } => {
                f.push_str(&format!(
                    ",\"thief\":{thief},\"victim\":{victim},\"size\":{size}"
                ));
            }
            EventKind::CpuSpill {
                size,
                min_batch_size,
            } => {
                f.push_str(&format!(
                    ",\"size\":{size},\"min_batch_size\":{min_batch_size}"
                ));
            }
            EventKind::Terminal {
                outcome,
                iterations,
                residual,
                rungs,
            } => {
                f.push_str(&format!(
                    ",\"outcome\":\"{outcome}\",\"iterations\":{iterations},\
                     \"residual\":{},\"rungs\":{rungs}",
                    json_f64(*residual)
                ));
            }
            EventKind::RetryAttempt {
                from,
                to,
                size,
                attempt,
                backoff_us,
                reason,
            } => {
                f.push_str(&format!(
                    ",\"from\":{from},\"to\":{to},\"size\":{size},\"attempt\":{attempt},\
                     \"backoff_us\":{backoff_us},\"reason\":\"{}\"",
                    json_escape(reason)
                ));
            }
            EventKind::HedgeFired {
                primary,
                hedge,
                size,
                age_us,
            } => {
                f.push_str(&format!(
                    ",\"primary\":{primary},\"hedge\":{hedge},\"size\":{size},\
                     \"age_us\":{age_us}"
                ));
            }
            EventKind::HedgeWon {
                winner,
                loser,
                size,
            } => {
                f.push_str(&format!(
                    ",\"winner\":{winner},\"loser\":{loser},\"size\":{size}"
                ));
            }
            EventKind::Shed { shard, size, level } => {
                f.push_str(&format!(
                    ",\"shard\":{shard},\"size\":{size},\"level\":{level}"
                ));
            }
            EventKind::DegradeShift { from, to } => {
                f.push_str(&format!(",\"from\":{from},\"to\":{to}"));
            }
            EventKind::AutotuneDecision {
                class,
                solver,
                precond,
                observations,
                revision,
            } => {
                f.push_str(&format!(
                    ",\"class\":\"{}\",\"solver\":\"{}\",\"precond\":\"{}\",\
                     \"observations\":{observations},\"revision\":{revision}",
                    json_escape(class),
                    json_escape(solver),
                    json_escape(precond)
                ));
            }
            EventKind::Ledger(ledger) => f.push_str(&ledger.json_fields()),
            EventKind::WatchdogStall { budget_us } => {
                f.push_str(&format!(",\"budget_us\":{budget_us}"));
            }
            EventKind::FlightDump {
                reason,
                events,
                dropped,
            } => {
                f.push_str(&format!(
                    ",\"reason\":\"{}\",\"events\":{events},\"dropped\":{dropped}",
                    json_escape(reason)
                ));
            }
            EventKind::BreakerTrip | EventKind::WorkerRespawn => {}
        }
        f.push('}');
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::json::validate_json;

    #[test]
    fn every_kind_serializes_to_valid_json() {
        let kinds = vec![
            EventKind::Submitted { n: 992 },
            EventKind::Rejected {
                reason: "nonfinite",
            },
            EventKind::Dequeued { wait_us: 1234 },
            EventKind::BatchFormed {
                seq: 7,
                size: 100,
                reason: "target",
            },
            EventKind::RungBegin {
                rung: 1,
                method: "bicgstab",
            },
            EventKind::RungEnd {
                rung: 2,
                method: "gmres",
                iterations: 30,
                residual: 1e-11,
                converged: true,
                breakdown: None,
            },
            EventKind::SolverIteration {
                rung: 1,
                iteration: 4,
                residual: 0.5,
            },
            EventKind::KernelLaunch {
                shard: 2,
                seq: 3,
                solver: "bicgstab",
                device: "NVIDIA V100-16GB",
                blocks: 100,
                resident_per_cu: 2,
                total_slots: 160,
                shared_per_block_bytes: 47_616,
                spilled_vector_bytes: 23_808,
                launch_us: 10.0,
                exec_us: 85.5,
                dram_bytes: 1 << 20,
                flops: 1 << 24,
                syncs: 188,
                reductions: 188,
                sync_us: 42.5,
                syncs_per_iteration: 6.0,
            },
            EventKind::SyncPoint {
                shard: 0,
                seq: 3,
                solver: "bicgstab",
                syncs: 188,
                sim_us: 42.5,
            },
            EventKind::Reduction {
                shard: 1,
                seq: 3,
                solver: "pipelined-cg",
                reductions: 31,
                width: 992 * 64,
                depth: 16,
            },
            EventKind::Transfer {
                shard: 5,
                direction: "h2d",
                bytes: 65536,
                sim_us: 12.5,
            },
            EventKind::ShardDispatch {
                shard: 3,
                device: "NVIDIA V100-16GB",
                size: 96,
                queue_depth: 2,
            },
            EventKind::ShardSteal {
                thief: 1,
                victim: 0,
                size: 64,
            },
            EventKind::CpuSpill {
                size: 7,
                min_batch_size: 8,
            },
            EventKind::Terminal {
                outcome: "converged_bicgstab",
                iterations: 23,
                residual: 4.2e-11,
                rungs: 1,
            },
            EventKind::RetryAttempt {
                from: 0,
                to: 2,
                size: 8,
                attempt: 2,
                backoff_us: 1500,
                reason: "device_failure",
            },
            EventKind::HedgeFired {
                primary: 0,
                hedge: 1,
                size: 16,
                age_us: 40_000,
            },
            EventKind::HedgeWon {
                winner: 1,
                loser: 0,
                size: 16,
            },
            EventKind::Shed {
                shard: 2,
                size: 4,
                level: 2,
            },
            EventKind::DegradeShift { from: 0, to: 1 },
            EventKind::AutotuneDecision {
                class: "electron-like",
                solver: "bicgstab",
                precond: "ilu0",
                observations: 64,
                revision: 1,
            },
            EventKind::Ledger(crate::ledger::PhaseLedger {
                outcome: "converged_bicgstab",
                class: crate::ledger::WorkloadClass::IonLike,
                iterations: 5,
                deadline: Some(true),
                end_to_end_us: 1000.0,
                queue_us: 400.0,
                solve_us: 600.0,
                ..crate::ledger::PhaseLedger::default()
            }),
            EventKind::BreakerTrip,
            EventKind::WatchdogStall { budget_us: 5000 },
            EventKind::WorkerRespawn,
            EventKind::FlightDump {
                reason: "watchdog_stall",
                events: 256,
                dropped: 12,
            },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let name = kind.name();
            let ev = TraceEvent {
                t_us: 1000 + i as u64,
                trace_id: if i % 2 == 0 { Some(i as u64) } else { None },
                kind,
            };
            let line = ev.to_json();
            validate_json(&line).unwrap_or_else(|e| panic!("{name}: {e}\n{line}"));
            assert!(line.contains(&format!("\"kind\":\"{name}\"")), "{line}");
        }
    }

    #[test]
    fn non_finite_residuals_become_null() {
        let ev = TraceEvent {
            t_us: 0,
            trace_id: Some(1),
            kind: EventKind::Terminal {
                outcome: "not_converged",
                iterations: 500,
                residual: f64::INFINITY,
                rungs: 3,
            },
        };
        let line = ev.to_json();
        assert!(line.contains("\"residual\":null"), "{line}");
        validate_json(&line).unwrap();
    }

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn with_shard_retags_device_records_only() {
        let kind = EventKind::Transfer {
            shard: 0,
            direction: "h2d",
            bytes: 64,
            sim_us: 1.0,
        };
        assert_eq!(kind.clone().with_shard(4).shard(), Some(4));
        // Non-device kinds pass through unchanged.
        let kept = EventKind::Submitted { n: 8 }.with_shard(4);
        assert_eq!(kept, EventKind::Submitted { n: 8 });
        assert_eq!(kept.shard(), None);
        // Steals report the thief's shard.
        let steal = EventKind::ShardSteal {
            thief: 2,
            victim: 0,
            size: 16,
        };
        assert_eq!(steal.shard(), Some(2));
    }
}
