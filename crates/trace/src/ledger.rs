//! Per-request latency attribution: phase ledgers and the workload
//! classifier.
//!
//! A [`PhaseLedger`] decomposes one request's end-to-end wall time into
//! named phases that *partition* the `[submitted, terminal]` interval:
//! admission, queue wait, batch-formation linger, steal/reroute transit,
//! retry backoff, hedge wait, solve, CPU spill, and an explicit `other`
//! residual that absorbs measurement slack so the partition stays exact.
//! The invariant every ledger must satisfy — and tests assert — is that
//! the wall phases sum to the measured end-to-end latency within
//! tolerance ([`PhaseLedger::balanced_within`]).
//!
//! The solve phase additionally carries a **simulated-time split**
//! (SpMV+launch / reduction / sync / transfer) taken from the
//! `KernelLaunch` and `Transfer` records of the batch the request rode
//! in. Simulated microseconds are a different clock from wall
//! microseconds, so the split is reported alongside the wall phases and
//! never participates in the wall-phase sum.
//!
//! The [`WorkloadClass`] taxonomy follows the paper's Table III: ion-like
//! systems converge in ≈5 BiCGSTAB iterations, electron-like in ≈30–35.
//! Requests that fail to converge, diverge, or blow far past the
//! electron-like band are `anomalous`. Every downstream observation
//! (per-class percentiles, deadline hit rates, SLO burn) is keyed on
//! this label.
//!
//! [`LedgerAggregator`] is the streaming consumer: feed it a trace-event
//! stream (live, or replayed from JSONL) and it collects the authoritative
//! `ledger` events the runtime and fleet emit at each terminal outcome,
//! synthesizing a coarse fallback ledger from `submitted`/`dequeued`/
//! `terminal` edges for requests that never got one (e.g. streams from
//! before this schema existed).

use std::collections::HashMap;

use crate::event::{json_f64, EventKind, TraceEvent, TraceId};

/// Iteration ceiling for the ion-like class (paper Table III: ≈5
/// BiCGSTAB iterations; the band is widened to absorb tolerance spread).
pub const ION_ITER_MAX: u32 = 12;

/// Iteration ceiling for the electron-like class (paper Table III:
/// ≈30–35 iterations; GMRES escalation can add restarts, so the band
/// extends well past the nominal count). Beyond it, a converged request
/// is still `anomalous` — it behaved like neither species.
pub const ELECTRON_ITER_MAX: u32 = 80;

/// Workload class of one request, inferred from its convergence record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Converged within [`ION_ITER_MAX`] iterations (Table III ion band).
    IonLike,
    /// Converged within [`ELECTRON_ITER_MAX`] iterations.
    ElectronLike,
    /// Did not converge, diverged, or needed more iterations than any
    /// physical species should.
    Anomalous,
}

/// Number of workload classes (array-index bound).
pub const CLASS_COUNT: usize = 3;

impl WorkloadClass {
    /// All classes, in label order.
    pub const ALL: [WorkloadClass; CLASS_COUNT] = [
        WorkloadClass::IonLike,
        WorkloadClass::ElectronLike,
        WorkloadClass::Anomalous,
    ];

    /// Stable label used everywhere the class appears (Prometheus
    /// labels, snapshot render, ledger JSON).
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadClass::IonLike => "ion-like",
            WorkloadClass::ElectronLike => "electron-like",
            WorkloadClass::Anomalous => "anomalous",
        }
    }

    /// Dense index for per-class arrays.
    pub fn index(&self) -> usize {
        match self {
            WorkloadClass::IonLike => 0,
            WorkloadClass::ElectronLike => 1,
            WorkloadClass::Anomalous => 2,
        }
    }

    /// Inverse of [`WorkloadClass::name`].
    pub fn from_name(name: &str) -> Option<WorkloadClass> {
        WorkloadClass::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// Classify a terminal outcome from its iteration count alone.
///
/// A request that converged at its initial guess (0 iterations) is the
/// cheapest possible ion-like solve, not an anomaly.
pub fn classify(iterations: u32, converged: bool) -> WorkloadClass {
    if !converged || iterations > ELECTRON_ITER_MAX {
        WorkloadClass::Anomalous
    } else if iterations <= ION_ITER_MAX {
        WorkloadClass::IonLike
    } else {
        WorkloadClass::ElectronLike
    }
}

/// Classify with the convergence-rate signal from a
/// `ConvergenceHistory` (`mean_rate`): a geometric-mean residual ratio
/// at or above 1.0 means the residual was not shrinking — anomalous
/// regardless of where the iteration count landed.
pub fn classify_with_rate(iterations: u32, converged: bool, mean_rate: f64) -> WorkloadClass {
    if mean_rate.is_finite() && mean_rate >= 1.0 {
        return WorkloadClass::Anomalous;
    }
    classify(iterations, converged)
}

/// Names of the wall phases, in ledger order. `other` is the explicit
/// residual that keeps the partition exact.
pub const WALL_PHASES: [&str; 9] = [
    "admission",
    "queue",
    "linger",
    "transit",
    "backoff",
    "hedge",
    "solve",
    "spill",
    "other",
];

/// Names of the simulated-time solve-split phases, in ledger order.
pub const SIM_PHASES: [&str; 4] = ["spmv", "reduction", "sync", "transfer"];

/// One request's complete latency attribution.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseLedger {
    /// Terminal outcome tag (mirrors the `terminal` event).
    pub outcome: &'static str,
    /// Workload class inferred from the convergence record.
    pub class: WorkloadClass,
    /// Total solver iterations across rungs.
    pub iterations: u32,
    /// True when this request's delivery completed its submission group
    /// (it was the group's straggler).
    pub straggler: bool,
    /// Whether the request's deadline was met: `None` when it carried no
    /// deadline, `Some(false)` when the deadline expired before the
    /// terminal outcome.
    pub deadline: Option<bool>,
    /// Measured end-to-end wall time, submit → terminal, µs.
    pub end_to_end_us: f64,
    /// Admission-gate time (synchronous with submit; currently priced at
    /// zero because the `submitted` event marks admission completion).
    pub admission_us: f64,
    /// Time in the bounded submission queue (or a shard queue, first hop).
    pub queue_us: f64,
    /// Time held by the batch former waiting for the batch to fill.
    pub linger_us: f64,
    /// Time re-queued after a steal or cross-shard reroute (hops ≥ 2).
    pub transit_us: f64,
    /// Deterministic retry backoff slept on this request's behalf.
    pub backoff_us: f64,
    /// Age of the primary in-flight chunk when a hedge duplicate fired
    /// (only on requests delivered by the hedge).
    pub hedge_us: f64,
    /// Wall time inside the solve dispatch (GPU shards).
    pub solve_us: f64,
    /// Wall time inside the CPU banded-LU spill pool (spilled requests
    /// record their solve here instead of `solve`).
    pub spill_us: f64,
    /// Residual: `end_to_end` minus every attributed phase. Kept as an
    /// explicit phase so the wall phases always partition the interval;
    /// may be slightly negative when phase measurements overlap.
    pub other_us: f64,
    /// Simulated SpMV + kernel-launch share of the solve, µs (sim clock).
    pub sim_spmv_us: f64,
    /// Simulated reduction-tree share of the solve, µs (sim clock).
    pub sim_reduction_us: f64,
    /// Simulated synchronization share of the solve, µs (sim clock).
    pub sim_sync_us: f64,
    /// Simulated host↔device transfer share of the solve, µs (sim clock).
    pub sim_transfer_us: f64,
}

impl Default for PhaseLedger {
    fn default() -> PhaseLedger {
        PhaseLedger {
            outcome: "",
            class: WorkloadClass::Anomalous,
            iterations: 0,
            straggler: false,
            deadline: None,
            end_to_end_us: 0.0,
            admission_us: 0.0,
            queue_us: 0.0,
            linger_us: 0.0,
            transit_us: 0.0,
            backoff_us: 0.0,
            hedge_us: 0.0,
            solve_us: 0.0,
            spill_us: 0.0,
            other_us: 0.0,
            sim_spmv_us: 0.0,
            sim_reduction_us: 0.0,
            sim_sync_us: 0.0,
            sim_transfer_us: 0.0,
        }
    }
}

impl PhaseLedger {
    /// The wall phases with their names, in [`WALL_PHASES`] order.
    pub fn wall_phases(&self) -> [(&'static str, f64); 9] {
        [
            ("admission", self.admission_us),
            ("queue", self.queue_us),
            ("linger", self.linger_us),
            ("transit", self.transit_us),
            ("backoff", self.backoff_us),
            ("hedge", self.hedge_us),
            ("solve", self.solve_us),
            ("spill", self.spill_us),
            ("other", self.other_us),
        ]
    }

    /// The simulated solve-split phases, in [`SIM_PHASES`] order.
    pub fn sim_phases(&self) -> [(&'static str, f64); 4] {
        [
            ("spmv", self.sim_spmv_us),
            ("reduction", self.sim_reduction_us),
            ("sync", self.sim_sync_us),
            ("transfer", self.sim_transfer_us),
        ]
    }

    /// Sum of every wall phase, including `other`.
    pub fn phase_sum_us(&self) -> f64 {
        self.wall_phases().iter().map(|(_, v)| v).sum()
    }

    /// The phase-sum invariant: wall phases sum to the measured
    /// end-to-end latency within `tol_us`.
    pub fn balanced_within(&self, tol_us: f64) -> bool {
        (self.phase_sum_us() - self.end_to_end_us).abs() <= tol_us
    }

    /// Set `other` to the residual so the partition becomes exact.
    /// Call once, after every attributed phase is final.
    pub fn close(&mut self) {
        self.other_us = 0.0;
        self.other_us = self.end_to_end_us - self.phase_sum_us();
    }

    /// The ledger's JSON fields with a leading comma, for embedding in a
    /// trace-event object.
    pub fn json_fields(&self) -> String {
        let mut f = String::with_capacity(256);
        f.push_str(&format!(
            ",\"outcome\":\"{}\",\"class\":\"{}\",\"iterations\":{},\
             \"straggler\":{},\"deadline\":{}",
            self.outcome,
            self.class.name(),
            self.iterations,
            self.straggler,
            match self.deadline {
                Some(hit) => hit.to_string(),
                None => "null".to_string(),
            }
        ));
        f.push_str(&format!(
            ",\"end_to_end_us\":{}",
            json_f64(self.end_to_end_us)
        ));
        for (name, v) in self.wall_phases() {
            f.push_str(&format!(",\"{name}_us\":{}", json_f64(v)));
        }
        for (name, v) in self.sim_phases() {
            f.push_str(&format!(",\"sim_{name}_us\":{}", json_f64(v)));
        }
        f
    }
}

/// Nearest-rank percentile over an ascending-sorted slice
/// (`idx = round((n-1)·p)`, the convention shared with the runtime and
/// fleet stats). Empty input yields 0.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// State of one in-flight request in the aggregator.
#[derive(Debug, Default)]
struct OpenRequest {
    t_submit_us: u64,
    wait_us: Option<u64>,
    t_dequeued_us: Option<u64>,
}

/// Streaming ledger collector over a trace-event stream.
///
/// An authoritative `ledger` event always wins over the coarse fallback
/// synthesized from the `terminal` edge, in either stream order: a
/// ledger arriving after the terminal *replaces* the synthesized entry
/// in place, and a terminal arriving after the ledger is ignored.
#[derive(Debug, Default)]
pub struct LedgerAggregator {
    open: HashMap<TraceId, OpenRequest>,
    finished: Vec<(TraceId, PhaseLedger)>,
    /// Ids whose entry in `finished` came from an authoritative ledger.
    authoritative: std::collections::HashSet<TraceId>,
    /// Id → index in `finished` of a synthesized (replaceable) entry.
    synthesized: HashMap<TraceId, usize>,
}

impl LedgerAggregator {
    /// Empty aggregator.
    pub fn new() -> LedgerAggregator {
        LedgerAggregator::default()
    }

    /// Build the ledgers of a fully captured event stream in one call.
    pub fn build(events: &[TraceEvent]) -> LedgerAggregator {
        let mut agg = LedgerAggregator::new();
        for ev in events {
            agg.observe(ev);
        }
        agg
    }

    /// Feed one event. Order must follow emission order (JSONL replay
    /// order satisfies this).
    pub fn observe(&mut self, ev: &TraceEvent) {
        let Some(id) = ev.trace_id else { return };
        match &ev.kind {
            EventKind::Submitted { .. } => {
                self.open.insert(
                    id,
                    OpenRequest {
                        t_submit_us: ev.t_us,
                        ..OpenRequest::default()
                    },
                );
            }
            EventKind::Dequeued { wait_us } => {
                if let Some(open) = self.open.get_mut(&id) {
                    open.wait_us = Some(*wait_us);
                    open.t_dequeued_us = Some(ev.t_us);
                }
            }
            EventKind::Ledger(ledger) => {
                // Authoritative: the emitting layer measured the phases.
                // If the terminal edge already synthesized a fallback for
                // this id (the runtime emits terminal before ledger),
                // replace it in place instead of double-counting.
                self.open.remove(&id);
                self.authoritative.insert(id);
                if let Some(idx) = self.synthesized.remove(&id) {
                    self.finished[idx] = (id, ledger.clone());
                } else {
                    self.finished.push((id, ledger.clone()));
                }
            }
            EventKind::Terminal {
                outcome,
                iterations,
                ..
            } => {
                if self.authoritative.contains(&id) {
                    return;
                }
                // Fallback synthesis for streams without ledger events:
                // queue from the dequeue edge, solve from dequeue →
                // terminal, residual into `other`.
                if let Some(open) = self.open.remove(&id) {
                    let end = ev.t_us.saturating_sub(open.t_submit_us) as f64;
                    let queue = open.wait_us.unwrap_or(0) as f64;
                    let solve = open
                        .t_dequeued_us
                        .map(|t| ev.t_us.saturating_sub(t) as f64)
                        .unwrap_or(0.0);
                    let converged = outcome.starts_with("converged");
                    let mut ledger = PhaseLedger {
                        outcome,
                        class: classify(*iterations, converged),
                        iterations: *iterations,
                        end_to_end_us: end,
                        queue_us: queue.min(end),
                        solve_us: solve.min((end - queue.min(end)).max(0.0)),
                        ..PhaseLedger::default()
                    };
                    ledger.close();
                    self.synthesized.insert(id, self.finished.len());
                    self.finished.push((id, ledger));
                }
            }
            _ => {}
        }
    }

    /// Completed ledgers, in terminal order.
    pub fn ledgers(&self) -> &[(TraceId, PhaseLedger)] {
        &self.finished
    }

    /// Requests submitted but not yet terminal.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Aggregate the collected ledgers into a report.
    pub fn report(&self, tol_us: f64) -> LedgerReport {
        LedgerReport::from_ledgers(&self.finished, tol_us)
    }
}

/// Per-class aggregate inside a [`LedgerReport`].
#[derive(Clone, Debug, Default)]
pub struct LedgerClassReport {
    /// Requests in the class.
    pub count: u64,
    /// Nearest-rank median end-to-end latency, µs.
    pub p50_us: f64,
    /// Nearest-rank 99th-percentile end-to-end latency, µs.
    pub p99_us: f64,
    /// Requests that carried a deadline.
    pub deadline_total: u64,
    /// Deadline-carrying requests that met it.
    pub deadline_hits: u64,
}

/// One per-class solver × preconditioner recommendation from the
/// runtime's telemetry autotuner, mirrored into the `--profile-out`
/// report so the ledger, trace events, and Prometheus series can be
/// cross-checked against each other.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AutotuneChoice {
    /// Workload class the choice covers.
    pub class: WorkloadClass,
    /// Recommended rung-1 solver variant name.
    pub solver: &'static str,
    /// Recommended ladder preconditioner name.
    pub precond: &'static str,
    /// Terminal outcomes of this class observed when the choice was made.
    pub observations: u64,
    /// How many times the class's choice has changed (0 = first).
    pub revision: u64,
}

/// Aggregated view over a set of phase ledgers: what `--profile-out`
/// writes and the ext-trace gate checks.
#[derive(Clone, Debug, Default)]
pub struct LedgerReport {
    /// Ledgers aggregated.
    pub requests: u64,
    /// Ledgers flagged as their group's straggler.
    pub stragglers: u64,
    /// Ledgers whose wall phases failed to sum to end-to-end within the
    /// tolerance the report was built with.
    pub balance_violations: u64,
    /// Worst absolute `|phase_sum − end_to_end|` observed, µs.
    pub max_imbalance_us: f64,
    /// Total µs per wall phase, [`WALL_PHASES`] order.
    pub wall_totals_us: [f64; 9],
    /// Total sim µs per solve-split phase, [`SIM_PHASES`] order.
    pub sim_totals_us: [f64; 4],
    /// Per-class aggregates, [`WorkloadClass::ALL`] order.
    pub classes: [LedgerClassReport; CLASS_COUNT],
    /// Current autotuner per-class choices, when the runtime ran one
    /// (empty otherwise; filled via [`LedgerReport::with_autotune`]).
    pub autotune: Vec<AutotuneChoice>,
}

impl LedgerReport {
    /// Aggregate `ledgers`, counting balance violations against `tol_us`.
    pub fn from_ledgers(ledgers: &[(TraceId, PhaseLedger)], tol_us: f64) -> LedgerReport {
        let mut rep = LedgerReport::default();
        let mut lat: [Vec<f64>; CLASS_COUNT] = Default::default();
        for (_, l) in ledgers {
            rep.requests += 1;
            if l.straggler {
                rep.stragglers += 1;
            }
            let imbalance = (l.phase_sum_us() - l.end_to_end_us).abs();
            rep.max_imbalance_us = rep.max_imbalance_us.max(imbalance);
            if imbalance > tol_us {
                rep.balance_violations += 1;
            }
            for (i, (_, v)) in l.wall_phases().iter().enumerate() {
                rep.wall_totals_us[i] += v;
            }
            for (i, (_, v)) in l.sim_phases().iter().enumerate() {
                rep.sim_totals_us[i] += v;
            }
            let c = l.class.index();
            rep.classes[c].count += 1;
            lat[c].push(l.end_to_end_us);
            if let Some(hit) = l.deadline {
                rep.classes[c].deadline_total += 1;
                if hit {
                    rep.classes[c].deadline_hits += 1;
                }
            }
        }
        for (c, samples) in lat.iter_mut().enumerate() {
            samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            rep.classes[c].p50_us = percentile(samples, 0.50);
            rep.classes[c].p99_us = percentile(samples, 0.99);
        }
        rep
    }

    /// Attach the runtime autotuner's current per-class choices.
    pub fn with_autotune(mut self, autotune: Vec<AutotuneChoice>) -> LedgerReport {
        self.autotune = autotune;
        self
    }

    /// The report as a JSON document (the `--profile-out` format).
    pub fn to_json(&self) -> String {
        let mut f = String::with_capacity(1024);
        f.push_str("{\"schema\":\"batsolv-trace/ledger-report/v1\",");
        f.push_str(&format!(
            "\"requests\":{},\"stragglers\":{},\"balance_violations\":{},\
             \"max_imbalance_us\":{},",
            self.requests,
            self.stragglers,
            self.balance_violations,
            json_f64(self.max_imbalance_us)
        ));
        f.push_str("\"phases\":{");
        for (i, name) in WALL_PHASES.iter().enumerate() {
            if i > 0 {
                f.push(',');
            }
            let total = self.wall_totals_us[i];
            let mean = if self.requests == 0 {
                0.0
            } else {
                total / self.requests as f64
            };
            f.push_str(&format!(
                "\"{name}\":{{\"total_us\":{},\"mean_us\":{}}}",
                json_f64(total),
                json_f64(mean)
            ));
        }
        f.push_str("},\"sim_phases\":{");
        for (i, name) in SIM_PHASES.iter().enumerate() {
            if i > 0 {
                f.push(',');
            }
            f.push_str(&format!(
                "\"{name}\":{{\"total_us\":{}}}",
                json_f64(self.sim_totals_us[i])
            ));
        }
        if !self.autotune.is_empty() {
            f.push_str("},\"autotune\":{");
            for (i, a) in self.autotune.iter().enumerate() {
                if i > 0 {
                    f.push(',');
                }
                f.push_str(&format!(
                    "\"{}\":{{\"solver\":\"{}\",\"precond\":\"{}\",\
                     \"observations\":{},\"revision\":{}}}",
                    a.class.name(),
                    a.solver,
                    a.precond,
                    a.observations,
                    a.revision
                ));
            }
        }
        f.push_str("},\"classes\":{");
        for (i, class) in WorkloadClass::ALL.iter().enumerate() {
            if i > 0 {
                f.push(',');
            }
            let c = &self.classes[i];
            f.push_str(&format!(
                "\"{}\":{{\"count\":{},\"p50_us\":{},\"p99_us\":{},\
                 \"deadline_total\":{},\"deadline_hits\":{}}}",
                class.name(),
                c.count,
                json_f64(c.p50_us),
                json_f64(c.p99_us),
                c.deadline_total,
                c.deadline_hits
            ));
        }
        f.push_str("}}");
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::json::validate_json;

    #[test]
    fn classifier_matches_table_iii_bands() {
        assert_eq!(classify(0, true), WorkloadClass::IonLike);
        assert_eq!(classify(5, true), WorkloadClass::IonLike);
        assert_eq!(classify(ION_ITER_MAX, true), WorkloadClass::IonLike);
        assert_eq!(
            classify(ION_ITER_MAX + 1, true),
            WorkloadClass::ElectronLike
        );
        assert_eq!(classify(35, true), WorkloadClass::ElectronLike);
        assert_eq!(
            classify(ELECTRON_ITER_MAX, true),
            WorkloadClass::ElectronLike
        );
        assert_eq!(
            classify(ELECTRON_ITER_MAX + 1, true),
            WorkloadClass::Anomalous
        );
        assert_eq!(classify(5, false), WorkloadClass::Anomalous);
    }

    #[test]
    fn diverging_rate_overrides_iteration_band() {
        assert_eq!(classify_with_rate(5, true, 0.3), WorkloadClass::IonLike);
        assert_eq!(classify_with_rate(5, true, 1.2), WorkloadClass::Anomalous);
        // NaN rate (too-short history) falls back to the iteration band.
        assert_eq!(
            classify_with_rate(30, true, f64::NAN),
            WorkloadClass::ElectronLike
        );
    }

    #[test]
    fn class_names_round_trip() {
        for c in WorkloadClass::ALL {
            assert_eq!(WorkloadClass::from_name(c.name()), Some(c));
            assert_eq!(WorkloadClass::ALL[c.index()], c);
        }
        assert_eq!(WorkloadClass::from_name("proton-like"), None);
    }

    fn sample_ledger() -> PhaseLedger {
        let mut l = PhaseLedger {
            outcome: "converged_bicgstab",
            class: WorkloadClass::IonLike,
            iterations: 5,
            deadline: Some(true),
            end_to_end_us: 1000.0,
            queue_us: 300.0,
            linger_us: 100.0,
            solve_us: 550.0,
            sim_spmv_us: 400.0,
            sim_sync_us: 100.0,
            sim_reduction_us: 30.0,
            sim_transfer_us: 20.0,
            ..PhaseLedger::default()
        };
        l.close();
        l
    }

    #[test]
    fn close_makes_the_partition_exact() {
        let l = sample_ledger();
        assert_eq!(l.other_us, 50.0);
        assert!(l.balanced_within(1e-9));
        assert_eq!(l.phase_sum_us(), l.end_to_end_us);
    }

    #[test]
    fn ledger_json_has_every_phase_key() {
        let l = sample_ledger();
        let body = format!("{{\"probe\":1{}}}", l.json_fields());
        validate_json(&body).unwrap();
        for name in WALL_PHASES {
            assert!(body.contains(&format!("\"{name}_us\":")), "{body}");
        }
        for name in SIM_PHASES {
            assert!(body.contains(&format!("\"sim_{name}_us\":")), "{body}");
        }
        assert!(body.contains("\"class\":\"ion-like\""), "{body}");
        assert!(body.contains("\"deadline\":true"), "{body}");
    }

    #[test]
    fn aggregator_collects_authoritative_ledger_events() {
        let events = vec![
            TraceEvent {
                t_us: 0,
                trace_id: Some(7),
                kind: EventKind::Submitted { n: 16 },
            },
            TraceEvent {
                t_us: 1000,
                trace_id: Some(7),
                kind: EventKind::Ledger(sample_ledger()),
            },
        ];
        let agg = LedgerAggregator::build(&events);
        assert_eq!(agg.ledgers().len(), 1);
        assert_eq!(agg.open_count(), 0);
        assert_eq!(agg.ledgers()[0].0, 7);
        assert_eq!(agg.ledgers()[0].1.class, WorkloadClass::IonLike);
    }

    #[test]
    fn aggregator_synthesizes_from_lifecycle_edges() {
        let events = vec![
            TraceEvent {
                t_us: 100,
                trace_id: Some(3),
                kind: EventKind::Submitted { n: 16 },
            },
            TraceEvent {
                t_us: 400,
                trace_id: Some(3),
                kind: EventKind::Dequeued { wait_us: 300 },
            },
            TraceEvent {
                t_us: 900,
                trace_id: Some(3),
                kind: EventKind::Terminal {
                    outcome: "converged_bicgstab",
                    iterations: 5,
                    residual: 1e-11,
                    rungs: 1,
                },
            },
        ];
        let agg = LedgerAggregator::build(&events);
        assert_eq!(agg.ledgers().len(), 1);
        let (_, l) = &agg.ledgers()[0];
        assert_eq!(l.end_to_end_us, 800.0);
        assert_eq!(l.queue_us, 300.0);
        assert_eq!(l.solve_us, 500.0);
        assert_eq!(l.class, WorkloadClass::IonLike);
        assert!(l.balanced_within(1e-9));
    }

    #[test]
    fn authoritative_ledger_replaces_the_synthesized_fallback() {
        // The runtime emits `terminal` *before* `ledger` for the same
        // request; the aggregator must not count the request twice, and
        // the measured ledger must win over the coarse synthesis.
        let events = vec![
            TraceEvent {
                t_us: 0,
                trace_id: Some(9),
                kind: EventKind::Submitted { n: 16 },
            },
            TraceEvent {
                t_us: 200,
                trace_id: Some(9),
                kind: EventKind::Dequeued { wait_us: 200 },
            },
            TraceEvent {
                t_us: 900,
                trace_id: Some(9),
                kind: EventKind::Terminal {
                    outcome: "converged_bicgstab",
                    iterations: 5,
                    residual: 1e-11,
                    rungs: 1,
                },
            },
            TraceEvent {
                t_us: 901,
                trace_id: Some(9),
                kind: EventKind::Ledger(sample_ledger()),
            },
        ];
        let agg = LedgerAggregator::build(&events);
        assert_eq!(agg.ledgers().len(), 1, "one request, one ledger");
        let (id, l) = &agg.ledgers()[0];
        assert_eq!(*id, 9);
        // The authoritative ledger's phases, not the synthesized ones.
        assert_eq!(l.end_to_end_us, sample_ledger().end_to_end_us);
        assert_eq!(l.linger_us, 100.0, "synthesis never fills linger");
        // A terminal arriving after the ledger is ignored too.
        let mut reordered = events.clone();
        reordered.swap(2, 3);
        assert_eq!(LedgerAggregator::build(&reordered).ledgers().len(), 1);
    }

    #[test]
    fn report_aggregates_classes_and_detects_imbalance() {
        let mut bad = sample_ledger();
        bad.other_us += 500.0; // break the invariant on purpose
        let mut slow = sample_ledger();
        slow.class = WorkloadClass::ElectronLike;
        slow.iterations = 33;
        slow.end_to_end_us = 5000.0;
        slow.straggler = true;
        slow.deadline = Some(false);
        slow.close();
        let ledgers = vec![(1, sample_ledger()), (2, bad), (3, slow)];
        let rep = LedgerReport::from_ledgers(&ledgers, 1.0);
        assert_eq!(rep.requests, 3);
        assert_eq!(rep.balance_violations, 1);
        assert_eq!(rep.stragglers, 1);
        assert!(rep.max_imbalance_us >= 500.0);
        assert_eq!(rep.classes[WorkloadClass::IonLike.index()].count, 2);
        assert_eq!(rep.classes[WorkloadClass::ElectronLike.index()].count, 1);
        assert_eq!(
            rep.classes[WorkloadClass::ElectronLike.index()].p99_us,
            5000.0
        );
        assert_eq!(
            rep.classes[WorkloadClass::ElectronLike.index()].deadline_hits,
            0
        );
        assert_eq!(
            rep.classes[WorkloadClass::ElectronLike.index()].deadline_total,
            1
        );
        let doc = rep.to_json();
        validate_json(&doc).unwrap();
        assert!(doc.contains("\"schema\":\"batsolv-trace/ledger-report/v1\""));
        for name in WALL_PHASES {
            assert!(doc.contains(&format!("\"{name}\":{{")), "{doc}");
        }
    }

    #[test]
    fn percentile_edge_cases_are_deterministic() {
        assert_eq!(percentile(&[], 0.99), 0.0);
        assert_eq!(percentile(&[42.0], 0.5), 42.0);
        // Two samples: round((2-1)·0.5) = 1 → the larger sample.
        assert_eq!(percentile(&[10.0, 20.0], 0.5), 20.0);
        assert_eq!(percentile(&[10.0, 20.0], 0.99), 20.0);
        assert_eq!(percentile(&[10.0, 20.0], 0.0), 10.0);
    }
}
