//! Typed metrics registry and SLO burn-rate windows.
//!
//! The registry replaces the hand-rolled Prometheus pages the runtime
//! and fleet used to assemble string-by-string. It makes the exposition
//! conformance properties true by construction:
//!
//! * every family is declared exactly once with a kind and help text, so
//!   every sample has a matching `# HELP`/`# TYPE` pair;
//! * metric and label names are validated against the Prometheus
//!   charset at registration — a typo panics in tests instead of
//!   producing a silently unscrapeable page;
//! * duplicate series (same name + label set) panic instead of emitting
//!   two conflicting samples.
//!
//! Histograms are **log-bucketed** (powers of two, microseconds) and can
//! carry an **exemplar**: the trace id of the slowest observed request,
//! rendered OpenMetrics-style (`# {trace_id="N"} value`) on the tail
//! bucket so a p99 spike on a dashboard links directly to that request's
//! flight-recorder dump and ledger.
//!
//! [`SloWindow`] tracks deadline-hit SLO burn over a sliding horizon:
//! `burn = miss_rate / error_budget`, the standard multi-window
//! burn-rate alerting quantity (burn > 1 means the budget is being spent
//! faster than the SLO allows).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::event::TraceId;

/// The kinds a metric family can be declared as.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Log-bucketed distribution with `_bucket`/`_sum`/`_count` series.
    Histogram,
}

impl MetricKind {
    fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Largest power-of-two histogram bucket, µs (2^24 ≈ 16.8 s); beyond it
/// samples land in `+Inf`.
const MAX_BUCKET_POW: u32 = 24;

/// `le` label values for the power-of-two buckets, `2^0 ..= 2^24`.
const LE_LABELS: [&str; 25] = [
    "1", "2", "4", "8", "16", "32", "64", "128", "256", "512", "1024", "2048", "4096", "8192",
    "16384", "32768", "65536", "131072", "262144", "524288", "1048576", "2097152", "4194304",
    "8388608", "16777216",
];

struct Series {
    /// Name suffix: `""`, `"_bucket"`, `"_sum"`, or `"_count"`.
    suffix: &'static str,
    labels: Vec<(String, String)>,
    value: f64,
    /// OpenMetrics-style exemplar: `(trace_id, observed value)`.
    exemplar: Option<(TraceId, f64)>,
}

struct Family {
    name: String,
    kind: MetricKind,
    help: String,
    series: Vec<Series>,
}

/// Typed builder for one Prometheus text page.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Vec<Family>,
    by_name: BTreeMap<String, usize>,
    /// Duplicate-series guard: `name+suffix{canonical labels}`.
    seen: BTreeSet<String>,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Format a sample value the way the exposition format expects.
fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!("{k}=\"{escaped}\""));
    }
    out.push('}');
    out
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn declare(&mut self, name: &str, kind: MetricKind, help: &str) -> usize {
        assert!(
            valid_metric_name(name),
            "invalid metric name {name:?}: must match [a-zA-Z_:][a-zA-Z0-9_:]*"
        );
        if let Some(&idx) = self.by_name.get(name) {
            let fam = &self.families[idx];
            assert_eq!(
                fam.kind,
                kind,
                "family {name} re-declared as {} (was {})",
                kind.as_str(),
                fam.kind.as_str()
            );
            return idx;
        }
        self.families.push(Family {
            name: name.to_string(),
            kind,
            help: help.to_string(),
            series: Vec::new(),
        });
        let idx = self.families.len() - 1;
        self.by_name.insert(name.to_string(), idx);
        idx
    }

    fn push_series(
        &mut self,
        idx: usize,
        suffix: &'static str,
        labels: &[(&str, &str)],
        value: f64,
        exemplar: Option<(TraceId, f64)>,
    ) {
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name {k:?}");
        }
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let key = format!(
            "{}{}{}",
            self.families[idx].name,
            suffix,
            label_block(&labels)
        );
        assert!(
            self.seen.insert(key.clone()),
            "duplicate series {key} — each (name, label set) may be emitted once"
        );
        self.families[idx].series.push(Series {
            suffix,
            labels,
            value,
            exemplar,
        });
    }

    /// Declare a counter family and emit one sample.
    pub fn counter(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) -> &mut Self {
        let idx = self.declare(name, MetricKind::Counter, help);
        self.push_series(idx, "", labels, value, None);
        self
    }

    /// Declare a gauge family and emit one sample.
    pub fn gauge(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) -> &mut Self {
        let idx = self.declare(name, MetricKind::Gauge, help);
        self.push_series(idx, "", labels, value, None);
        self
    }

    /// Declare a log-bucketed histogram family and emit one labeled
    /// distribution from raw microsecond samples. `exemplar` is the
    /// `(trace id, latency µs)` of the slowest request, attached to the
    /// bucket that contains it so the tail links back to a trace.
    pub fn log_histogram_us(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        samples_us: &[u64],
        exemplar: Option<(TraceId, u64)>,
    ) -> &mut Self {
        let idx = self.declare(name, MetricKind::Histogram, help);
        let sum: f64 = samples_us.iter().map(|&s| s as f64).sum();
        let exemplar_bucket = exemplar.map(|(_, v)| bucket_of(v));
        for pow in 0..=MAX_BUCKET_POW {
            let le = 1u64 << pow;
            let cumulative = samples_us.iter().filter(|&&s| s <= le).count();
            let mut lbls: Vec<(&str, &str)> = labels.to_vec();
            lbls.push(("le", LE_LABELS[pow as usize]));
            let ex = if exemplar_bucket == Some(pow) {
                exemplar.map(|(id, v)| (id, v as f64))
            } else {
                None
            };
            self.push_series(idx, "_bucket", &lbls, cumulative as f64, ex);
        }
        let mut lbls: Vec<(&str, &str)> = labels.to_vec();
        lbls.push(("le", "+Inf"));
        let ex = if exemplar_bucket.map(|b| b > MAX_BUCKET_POW).unwrap_or(false) {
            exemplar.map(|(id, v)| (id, v as f64))
        } else {
            None
        };
        self.push_series(idx, "_bucket", &lbls, samples_us.len() as f64, ex);
        self.push_series(idx, "_sum", labels, sum, None);
        self.push_series(idx, "_count", labels, samples_us.len() as f64, None);
        self
    }

    /// Declare a histogram family and emit one distribution from
    /// **precomputed cumulative** buckets (`(le label, cumulative
    /// count)` pairs, ascending, excluding `+Inf`), plus the `+Inf`
    /// total, `_sum`, and `_count` series. For surfaces that aggregate
    /// into fixed buckets instead of retaining raw samples.
    pub fn histogram_from_buckets(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        cumulative: &[(&str, f64)],
        total: f64,
        sum: f64,
    ) -> &mut Self {
        let idx = self.declare(name, MetricKind::Histogram, help);
        for &(le, count) in cumulative {
            let mut lbls: Vec<(&str, &str)> = labels.to_vec();
            lbls.push(("le", le));
            self.push_series(idx, "_bucket", &lbls, count, None);
        }
        let mut lbls: Vec<(&str, &str)> = labels.to_vec();
        lbls.push(("le", "+Inf"));
        self.push_series(idx, "_bucket", &lbls, total, None);
        self.push_series(idx, "_sum", labels, sum, None);
        self.push_series(idx, "_count", labels, total, None);
        self
    }

    /// Render the page. Families appear in declaration order with one
    /// `# HELP`/`# TYPE` header each.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);
        for fam in &self.families {
            out.push_str(&format!("# HELP {} {}\n", fam.name, fam.help));
            out.push_str(&format!("# TYPE {} {}\n", fam.name, fam.kind.as_str()));
            for s in &fam.series {
                out.push_str(&fam.name);
                out.push_str(s.suffix);
                out.push_str(&label_block(&s.labels));
                out.push(' ');
                out.push_str(&format_value(s.value));
                if let Some((id, v)) = s.exemplar {
                    out.push_str(&format!(" # {{trace_id=\"{id}\"}} {}", format_value(v)));
                }
                out.push('\n');
            }
        }
        out
    }
}

/// Power-of-two bucket index a microsecond sample lands in, or
/// `MAX_BUCKET_POW + 1` for `+Inf`.
fn bucket_of(v: u64) -> u32 {
    for pow in 0..=MAX_BUCKET_POW {
        if v <= (1u64 << pow) {
            return pow;
        }
    }
    MAX_BUCKET_POW + 1
}

/// Default SLO target for deadline-hit rate: 99% of deadline-carrying
/// requests meet their deadline.
pub const DEFAULT_SLO_TARGET: f64 = 0.99;

/// Burn-rate windows exposed per class: `(label, horizon seconds)`.
pub const SLO_WINDOWS: [(&str, u64); 2] = [("1m", 60), ("5m", 300)];

/// Sliding-window good/total tally with 1-second buckets.
#[derive(Clone, Debug)]
pub struct SloWindow {
    horizon_s: u64,
    /// `(second, good, total)`, ascending by second.
    buckets: VecDeque<(u64, u64, u64)>,
}

impl SloWindow {
    /// Window covering the last `horizon_s` seconds.
    pub fn new(horizon_s: u64) -> SloWindow {
        SloWindow {
            horizon_s: horizon_s.max(1),
            buckets: VecDeque::new(),
        }
    }

    fn evict(&mut self, now_s: u64) {
        while let Some(&(sec, _, _)) = self.buckets.front() {
            if sec + self.horizon_s <= now_s {
                self.buckets.pop_front();
            } else {
                break;
            }
        }
    }

    /// Record one observation at `now_s` (seconds on any monotonic
    /// clock, e.g. the tracer epoch).
    pub fn record(&mut self, now_s: u64, good: bool) {
        self.evict(now_s);
        let g = u64::from(good);
        match self.buckets.back_mut() {
            Some((sec, gd, tot)) if *sec == now_s => {
                *gd += g;
                *tot += 1;
            }
            _ => self.buckets.push_back((now_s, g, 1)),
        }
    }

    /// `(good, total)` over the window ending at `now_s`.
    pub fn totals(&self, now_s: u64) -> (u64, u64) {
        self.buckets
            .iter()
            .filter(|&&(sec, _, _)| sec + self.horizon_s > now_s)
            .fold((0, 0), |(g, t), &(_, gd, tot)| (g + gd, t + tot))
    }

    /// Burn rate against `slo_target`: observed miss rate divided by the
    /// error budget `1 − target`. 0.0 with no observations; burn > 1
    /// means the budget is being consumed faster than the SLO allows.
    pub fn burn_rate(&self, now_s: u64, slo_target: f64) -> f64 {
        let (good, total) = self.totals(now_s);
        if total == 0 {
            return 0.0;
        }
        let miss_rate = (total - good) as f64 / total as f64;
        let budget = (1.0 - slo_target).max(f64::EPSILON);
        miss_rate / budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_renders_conformant_families() {
        let mut m = MetricsRegistry::new();
        m.counter("x_total", "Things.", &[], 3.0)
            .gauge("depth", "Queue depth.", &[("shard", "0")], 2.0)
            .gauge("depth", "Queue depth.", &[("shard", "1")], 5.0);
        let page = m.render();
        assert!(page.contains("# HELP x_total Things.\n"));
        assert!(page.contains("# TYPE x_total counter\n"));
        assert!(page.contains("x_total 3\n"));
        assert!(page.contains("depth{shard=\"0\"} 2\n"));
        assert!(page.contains("depth{shard=\"1\"} 5\n"));
        // One header for the two-depth family, not two.
        assert_eq!(page.matches("# TYPE depth gauge").count(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate series")]
    fn duplicate_series_panic() {
        let mut m = MetricsRegistry::new();
        m.counter("x_total", "Things.", &[("a", "1")], 3.0).counter(
            "x_total",
            "Things.",
            &[("a", "1")],
            4.0,
        );
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_metric_name_panics() {
        MetricsRegistry::new().counter("1bad-name", "h", &[], 0.0);
    }

    #[test]
    #[should_panic(expected = "re-declared")]
    fn kind_conflict_panics() {
        let mut m = MetricsRegistry::new();
        m.counter("x", "h", &[], 1.0).gauge("x", "h", &[], 1.0);
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_sum_and_count() {
        let mut m = MetricsRegistry::new();
        m.log_histogram_us(
            "lat_us",
            "Latency.",
            &[("class", "ion-like")],
            &[1, 3, 3000],
            None,
        );
        let page = m.render();
        assert!(page.contains("# TYPE lat_us histogram\n"));
        assert!(
            page.contains("lat_us_bucket{class=\"ion-like\",le=\"1\"} 1\n"),
            "{page}"
        );
        assert!(
            page.contains("lat_us_bucket{class=\"ion-like\",le=\"4\"} 2\n"),
            "{page}"
        );
        assert!(
            page.contains("lat_us_bucket{class=\"ion-like\",le=\"4096\"} 3\n"),
            "{page}"
        );
        assert!(
            page.contains("lat_us_bucket{class=\"ion-like\",le=\"+Inf\"} 3\n"),
            "{page}"
        );
        assert!(
            page.contains("lat_us_sum{class=\"ion-like\"} 3004\n"),
            "{page}"
        );
        assert!(
            page.contains("lat_us_count{class=\"ion-like\"} 3\n"),
            "{page}"
        );
    }

    #[test]
    fn exemplar_lands_on_the_containing_bucket() {
        let mut m = MetricsRegistry::new();
        m.log_histogram_us("lat_us", "Latency.", &[], &[10, 3000], Some((42, 3000)));
        let page = m.render();
        // 3000 µs lands in the le=4096 bucket (2^12).
        assert!(
            page.contains("lat_us_bucket{le=\"4096\"} 2 # {trace_id=\"42\"} 3000\n"),
            "{page}"
        );
        // Only one exemplar on the whole page.
        assert_eq!(page.matches("trace_id=\"42\"").count(), 1);
    }

    #[test]
    fn slo_window_burns_proportionally_to_misses() {
        let mut w = SloWindow::new(120);
        for s in 0..50 {
            w.record(s, true);
        }
        assert_eq!(w.totals(50), (50, 50));
        assert_eq!(w.burn_rate(50, 0.99), 0.0);
        // One miss in 100 at a 99% target burns at exactly 1.0.
        for s in 50..99 {
            w.record(s, true);
        }
        w.record(99, false);
        let burn = w.burn_rate(99, 0.99);
        assert!((burn - 1.0).abs() < 1e-9, "{burn}");
    }

    #[test]
    fn slo_window_evicts_old_seconds() {
        let mut w = SloWindow::new(60);
        w.record(0, false);
        assert_eq!(w.totals(0), (0, 1));
        // 59 seconds later the miss is still in the window; at 60 it ages out.
        assert_eq!(w.totals(59), (0, 1));
        assert_eq!(w.totals(60), (0, 0));
        w.record(100, true);
        assert_eq!(w.totals(100), (1, 1));
        assert_eq!(w.burn_rate(100, 0.99), 0.0);
    }

    #[test]
    fn empty_window_burns_zero() {
        let w = SloWindow::new(60);
        assert_eq!(w.burn_rate(10, 0.99), 0.0);
    }
}
