//! The flight recorder: a fixed-capacity ring of recent events, dumped
//! on demand for post-mortems.
//!
//! Tracing every event of a sustained workload to disk is expensive and
//! mostly useless — what matters is the window *just before* something
//! went wrong. The recorder keeps the last `capacity` events in a ring
//! (older ones are evicted and counted, never reallocated past the cap),
//! and [`FlightRecorder::trigger`] snapshots the ring into a
//! [`FlightDump`] when a breaker trip or watchdog stall fires.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::event::TraceEvent;
use crate::sink::TraceSink;

/// Default ring capacity: enough to cover several batches of spans
/// without unbounded growth.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A point-in-time snapshot of the ring, produced by a trigger.
#[derive(Clone, Debug)]
pub struct FlightDump {
    /// What triggered the dump (`"breaker_trip"`, `"watchdog_stall"`,
    /// or a caller-chosen tag).
    pub reason: String,
    /// Tracer-epoch timestamp of the trigger, microseconds.
    pub t_us: u64,
    /// The retained window, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events the ring had evicted before the trigger.
    pub dropped: u64,
}

impl FlightDump {
    /// Serialize the dump as JSONL: one header line, then one line per
    /// retained event.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 * (self.events.len() + 1));
        out.push_str(&format!(
            "{{\"flight_dump\":{{\"reason\":\"{}\",\"t_us\":{},\"events\":{},\"dropped\":{}}}}}\n",
            crate::event::json_escape(&self.reason),
            self.t_us,
            self.events.len(),
            self.dropped
        ));
        for ev in &self.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Whether any retained event belongs to `trace_id`.
    pub fn contains_trace(&self, trace_id: u64) -> bool {
        self.events.iter().any(|e| e.trace_id == Some(trace_id))
    }
}

/// The ring-buffer recorder. Implements [`TraceSink`] so it can ride a
/// fanout next to a file sink, or be fed directly by a tracer.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<Ring>,
    last_dump: Mutex<Option<FlightDump>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Recorder retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            ring: Mutex::new(Ring::default()),
            last_dump: Mutex::new(None),
        }
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().events.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped
    }

    /// Snapshot the ring into a dump, remember it as the most recent
    /// dump, and return it. The ring keeps recording afterwards.
    pub fn trigger(&self, reason: &str, t_us: u64) -> FlightDump {
        let ring = self.ring.lock().unwrap();
        let dump = FlightDump {
            reason: reason.to_string(),
            t_us,
            events: ring.events.iter().cloned().collect(),
            dropped: ring.dropped,
        };
        drop(ring);
        *self.last_dump.lock().unwrap() = Some(dump.clone());
        dump
    }

    /// The most recent dump, if any trigger has fired.
    pub fn last_dump(&self) -> Option<FlightDump> {
        self.last_dump.lock().unwrap().clone()
    }
}

impl TraceSink for FlightRecorder {
    fn emit(&self, event: &TraceEvent) {
        let mut ring = self.ring.lock().unwrap();
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(t: u64, id: u64) -> TraceEvent {
        TraceEvent {
            t_us: t,
            trace_id: Some(id),
            kind: EventKind::Dequeued { wait_us: t },
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let r = FlightRecorder::new(3);
        for t in 0..5 {
            r.emit(&ev(t, t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let dump = r.trigger("test", 99);
        assert_eq!(dump.events.len(), 3);
        assert_eq!(dump.events[0].t_us, 2, "oldest retained is t=2");
        assert_eq!(dump.dropped, 2);
        assert!(dump.contains_trace(4));
        assert!(!dump.contains_trace(1), "evicted trace is gone");
    }

    #[test]
    fn trigger_remembers_last_dump_and_keeps_recording() {
        let r = FlightRecorder::new(8);
        r.emit(&ev(1, 1));
        assert!(r.last_dump().is_none());
        r.trigger("breaker_trip", 10);
        r.emit(&ev(2, 2));
        let last = r.last_dump().unwrap();
        assert_eq!(last.reason, "breaker_trip");
        assert_eq!(last.events.len(), 1, "dump is a snapshot, not a live view");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn dump_serializes_with_header() {
        let r = FlightRecorder::new(4);
        r.emit(&ev(5, 7));
        let text = r.trigger("watchdog_stall", 42).to_jsonl();
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("\"flight_dump\""), "{header}");
        assert!(header.contains("watchdog_stall"));
        crate::export::json::validate_json(header).unwrap();
        crate::export::json::validate_json(lines.next().unwrap()).unwrap();
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let r = FlightRecorder::new(0);
        r.emit(&ev(1, 1));
        r.emit(&ev(2, 2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.capacity(), 1);
    }
}
