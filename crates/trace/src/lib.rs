//! Structured tracing and telemetry for the batched-solver stack.
//!
//! The paper's workload is a service: thousands of small collision-operator
//! systems per plasma time step, batched and solved on an accelerator
//! behind an escalation ladder. When something goes wrong — a breaker
//! trips, a watchdog fires, one system refuses to converge — aggregate
//! counters say *that* it happened but not *which request* or *which
//! rung*. This crate adds the missing causal record.
//!
//! # Model
//!
//! * [`TraceEvent`] — one timestamped observation, optionally tied to a
//!   request via its [`TraceId`] (the service request id).
//! * [`TraceSink`] — where events go. [`NoopSink`] is the disabled
//!   instantiation; [`MemorySink`] captures for tests and experiments;
//!   [`JsonlFileSink`](export::jsonl::JsonlFileSink) streams to disk;
//!   [`FanoutSink`] broadcasts.
//! * [`Tracer`] — the clonable handle layers emit through. Disabled it
//!   is a `None` and `emit` is a single branch; no event is built.
//! * [`FlightRecorder`] — fixed-capacity ring of recent events, dumped
//!   automatically on breaker trips and watchdog stalls.
//!
//! # Zero-cost guarantee
//!
//! The per-iteration hot path never sees this crate's dynamic dispatch.
//! Solver kernels stay generic over the solver crate's `IterationLogger`
//! (monomorphized; `NoopLogger` compiles to nothing) and the runtime
//! only bridges residuals into a sink when a tracer is attached. Layers
//! that emit per request or per batch hold `Arc<dyn TraceSink>` — an
//! indirect call at that granularity is noise next to a fused solve.
//!
//! # Exporters
//!
//! [`export::jsonl`] renders the raw line log, [`export::chrome`] a
//! `chrome://tracing` timeline (wall-clock request spans + cumulative
//! sim-time device lanes), and [`export::prom`] Prometheus text pages.

//! # Latency attribution
//!
//! [`ledger`] decomposes each request's end-to-end wall time into a
//! phase partition (queue, linger, transit, backoff, hedge, solve,
//! spill, …) with a phase-sum invariant, plus the Table III workload
//! classifier (ion-like / electron-like / anomalous) that labels every
//! downstream observation. [`metrics`] is the typed registry both
//! Prometheus pages are built from, with log-bucketed histograms,
//! exemplar trace ids, and SLO burn-rate windows.

pub mod event;
pub mod export;
pub mod flight;
pub mod ledger;
pub mod metrics;
pub mod sink;
pub mod tracer;

pub use event::{json_escape, EventKind, TraceEvent, TraceId};
pub use export::chrome::chrome_trace;
pub use export::json::validate_json;
pub use export::jsonl::{to_jsonl, write_jsonl, JsonlFileSink};
pub use export::prom::{check_prom_conformance, parse_prom_labeled, parse_prom_value, PromText};
pub use flight::{FlightDump, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use ledger::{
    classify, classify_with_rate, AutotuneChoice, LedgerAggregator, LedgerReport, PhaseLedger,
    WorkloadClass, CLASS_COUNT, ELECTRON_ITER_MAX, ION_ITER_MAX, SIM_PHASES, WALL_PHASES,
};
pub use metrics::{MetricsRegistry, SloWindow, DEFAULT_SLO_TARGET, SLO_WINDOWS};
pub use sink::{FanoutSink, MemorySink, NoopSink, TraceSink};
pub use tracer::Tracer;
