//! A minimal recursive-descent JSON validator.
//!
//! The exporters hand-roll their JSON (the offline build has no serde),
//! so the crate carries its own checker: tests and the repro experiment
//! validate every emitted line against it, and CI validates the Chrome
//! trace with an external parser on top.

/// Validate that `s` is exactly one well-formed JSON value (surrounding
/// whitespace allowed). Returns a position-tagged message on failure.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, "true"),
        Some(b'f') => parse_literal(b, pos, "false"),
        Some(b'n') => parse_literal(b, pos, "null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at offset {pos}", *c as char)),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at offset {pos}"))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}"));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at offset {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `]` at offset {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => {
                                    return Err(format!("bad \\u escape at offset {pos}"));
                                }
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
            }
            c if c < 0x20 => {
                return Err(format!("raw control char in string at offset {pos}"));
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: a lone 0, or a nonzero digit followed by digits.
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(d) if d.is_ascii_digit() => {
            while matches!(b.get(*pos), Some(d) if d.is_ascii_digit()) {
                *pos += 1;
            }
        }
        _ => return Err(format!("malformed number at offset {start}")),
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(b.get(*pos), Some(d) if d.is_ascii_digit()) {
            return Err(format!("malformed fraction at offset {pos}"));
        }
        while matches!(b.get(*pos), Some(d) if d.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(b.get(*pos), Some(d) if d.is_ascii_digit()) {
            return Err(format!("malformed exponent at offset {pos}"));
        }
        while matches!(b.get(*pos), Some(d) if d.is_ascii_digit()) {
            *pos += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::validate_json;

    #[test]
    fn accepts_well_formed_values() {
        for ok in [
            "null",
            "true",
            "0",
            "-12.5e-3",
            "\"a\\n\\u0041\"",
            "[]",
            "[1,2,[3]]",
            "{}",
            r#"{"a":1,"b":[null,{"c":"d"}]}"#,
            "  {\"x\": 1}  ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_values() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "nul",
            "NaN",
            "Infinity",
            "{\"a\":1} extra",
            "\"raw\ncontrol\"",
        ] {
            assert!(validate_json(bad).is_err(), "accepted malformed: {bad:?}");
        }
    }
}
