//! Chrome trace-event export (`chrome://tracing` / Perfetto).
//!
//! Two synthetic processes:
//!
//! * **pid 1 — requests (wall clock)**: one track (`tid`) per trace id.
//!   The request span runs from its `submitted` event to its `terminal`
//!   event; rung spans (`rung_begin`/`rung_end`) nest inside it on the
//!   same track. Service incidents render as instants.
//! * **pid 2 — simulated device**: the kernel-launch and transfer
//!   records laid end to end on a cumulative sim-time cursor (the
//!   simulator prices time; it does not schedule it on the wall clock).
//!
//! All timestamps are microseconds, which is Chrome's native `ts` unit.

use std::collections::HashMap;

use crate::event::{json_escape, EventKind, TraceEvent, TraceId};

const PID_REQUESTS: u64 = 1;
const PID_SIM_DEVICE: u64 = 2;
const TID_SIM_KERNELS: u64 = 1;
const TID_SIM_TRANSFERS: u64 = 2;
const TID_SERVICE: u64 = 0;

fn complete(name: &str, pid: u64, tid: u64, ts_us: f64, dur_us: f64, args: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts_us:?},\
         \"dur\":{:?},\"args\":{{{args}}}}}",
        json_escape(name),
        dur_us.max(1.0),
    )
}

fn instant(name: &str, pid: u64, tid: u64, ts_us: f64, args: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"g\",\"pid\":{pid},\"tid\":{tid},\
         \"ts\":{ts_us:?},\"args\":{{{args}}}}}",
        json_escape(name),
    )
}

fn metadata(pid: u64, process_name: &str) -> String {
    format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        json_escape(process_name),
    )
}

/// Render a captured event stream as a Chrome trace JSON document.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out: Vec<String> = vec![
        metadata(PID_REQUESTS, "requests (wall clock)"),
        metadata(PID_SIM_DEVICE, "simulated device"),
    ];

    // Open spans awaiting their closing event.
    let mut submitted_at: HashMap<TraceId, u64> = HashMap::new();
    let mut rung_open: HashMap<(TraceId, u8), (u64, &'static str)> = HashMap::new();
    // Cumulative sim-time cursor for the device process.
    let mut sim_cursor_us = 0.0f64;

    for ev in events {
        let ts = ev.t_us as f64;
        match &ev.kind {
            EventKind::Submitted { n } => {
                if let Some(id) = ev.trace_id {
                    submitted_at.insert(id, ev.t_us);
                    // Queue-wait and solve both live inside this span;
                    // emitted when the terminal event closes it.
                    let _ = n;
                }
            }
            EventKind::Terminal {
                outcome,
                iterations,
                residual,
                rungs,
            } => {
                if let Some(id) = ev.trace_id {
                    let start = submitted_at.remove(&id).unwrap_or(ev.t_us);
                    out.push(complete(
                        &format!("req {id}: {outcome}"),
                        PID_REQUESTS,
                        id,
                        start as f64,
                        (ev.t_us - start) as f64,
                        &format!(
                            "\"outcome\":\"{outcome}\",\"iterations\":{iterations},\
                             \"rungs\":{rungs},\"residual\":\"{residual:e}\""
                        ),
                    ));
                }
            }
            EventKind::RungBegin { rung, method } => {
                if let Some(id) = ev.trace_id {
                    rung_open.insert((id, *rung), (ev.t_us, method));
                }
            }
            EventKind::RungEnd {
                rung,
                method,
                iterations,
                residual,
                converged,
                ..
            } => {
                if let Some(id) = ev.trace_id {
                    let (start, _) = rung_open.remove(&(id, *rung)).unwrap_or((ev.t_us, method));
                    out.push(complete(
                        &format!("rung {rung}: {method}"),
                        PID_REQUESTS,
                        id,
                        start as f64,
                        (ev.t_us - start) as f64,
                        &format!(
                            "\"iterations\":{iterations},\"converged\":{converged},\
                             \"residual\":\"{residual:e}\""
                        ),
                    ));
                }
            }
            EventKind::KernelLaunch {
                seq,
                solver,
                blocks,
                resident_per_cu,
                total_slots,
                shared_per_block_bytes,
                spilled_vector_bytes,
                launch_us,
                exec_us,
                syncs,
                reductions,
                sync_us,
                syncs_per_iteration,
                ..
            } => {
                let dur = launch_us + exec_us;
                out.push(complete(
                    &format!("{solver} launch #{seq}"),
                    PID_SIM_DEVICE,
                    TID_SIM_KERNELS,
                    sim_cursor_us,
                    dur,
                    &format!(
                        "\"blocks\":{blocks},\"resident_per_cu\":{resident_per_cu},\
                         \"total_slots\":{total_slots},\
                         \"shared_per_block_bytes\":{shared_per_block_bytes},\
                         \"spilled_vector_bytes\":{spilled_vector_bytes},\
                         \"launch_us\":{launch_us:?},\"exec_us\":{exec_us:?},\
                         \"syncs\":{syncs},\"reductions\":{reductions},\
                         \"sync_us\":{sync_us:?},\
                         \"syncs_per_iteration\":{syncs_per_iteration:?}"
                    ),
                ));
                sim_cursor_us += dur.max(0.0);
            }
            EventKind::SyncPoint {
                seq,
                solver,
                syncs,
                sim_us,
            } => {
                // Markers at the owning launch's position on the device
                // lane; the kernel span already accounts for their time.
                out.push(instant(
                    &format!("{solver} #{seq}: {syncs} syncs"),
                    PID_SIM_DEVICE,
                    TID_SIM_KERNELS,
                    sim_cursor_us,
                    &format!("\"syncs\":{syncs},\"sim_us\":{sim_us:?}"),
                ));
            }
            EventKind::Reduction {
                seq,
                solver,
                reductions,
                width,
                depth,
            } => {
                out.push(instant(
                    &format!("{solver} #{seq}: {reductions} reductions"),
                    PID_SIM_DEVICE,
                    TID_SIM_KERNELS,
                    sim_cursor_us,
                    &format!("\"reductions\":{reductions},\"width\":{width},\"depth\":{depth}"),
                ));
            }
            EventKind::Transfer {
                direction,
                bytes,
                sim_us,
            } => {
                out.push(complete(
                    &format!("{direction} {bytes} B"),
                    PID_SIM_DEVICE,
                    TID_SIM_TRANSFERS,
                    sim_cursor_us,
                    *sim_us,
                    &format!("\"bytes\":{bytes}"),
                ));
                sim_cursor_us += sim_us.max(0.0);
            }
            EventKind::Rejected { reason } => {
                out.push(instant(
                    &format!("rejected: {reason}"),
                    PID_REQUESTS,
                    ev.trace_id.unwrap_or(TID_SERVICE),
                    ts,
                    "",
                ));
            }
            EventKind::BatchFormed { seq, size, reason } => {
                out.push(instant(
                    &format!("batch #{seq} ({size}, {reason})"),
                    PID_REQUESTS,
                    TID_SERVICE,
                    ts,
                    &format!("\"size\":{size}"),
                ));
            }
            EventKind::BreakerTrip => {
                out.push(instant("breaker trip", PID_REQUESTS, TID_SERVICE, ts, ""));
            }
            EventKind::WatchdogStall { budget_us } => {
                out.push(instant(
                    "watchdog stall",
                    PID_REQUESTS,
                    TID_SERVICE,
                    ts,
                    &format!("\"budget_us\":{budget_us}"),
                ));
            }
            EventKind::WorkerRespawn => {
                out.push(instant("worker respawn", PID_REQUESTS, TID_SERVICE, ts, ""));
            }
            EventKind::FlightDump { reason, events, .. } => {
                out.push(instant(
                    &format!("flight dump: {reason}"),
                    PID_REQUESTS,
                    TID_SERVICE,
                    ts,
                    &format!("\"events\":{events}"),
                ));
            }
            // Per-iteration residuals and queue plumbing stay in the
            // JSONL log; as Chrome spans they would only be noise.
            EventKind::Dequeued { .. } | EventKind::SolverIteration { .. } => {}
        }
    }

    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}",
        out.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::json::validate_json;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                t_us: 10,
                trace_id: Some(4),
                kind: EventKind::Submitted { n: 16 },
            },
            TraceEvent {
                t_us: 20,
                trace_id: Some(4),
                kind: EventKind::RungBegin {
                    rung: 1,
                    method: "bicgstab",
                },
            },
            TraceEvent {
                t_us: 21,
                trace_id: None,
                kind: EventKind::KernelLaunch {
                    seq: 0,
                    solver: "bicgstab",
                    device: "V100",
                    blocks: 1,
                    resident_per_cu: 2,
                    total_slots: 160,
                    shared_per_block_bytes: 1024,
                    spilled_vector_bytes: 0,
                    launch_us: 10.0,
                    exec_us: 40.0,
                    dram_bytes: 4096,
                    flops: 1 << 16,
                    syncs: 54,
                    reductions: 54,
                    sync_us: 3.2,
                    syncs_per_iteration: 6.0,
                },
            },
            TraceEvent {
                t_us: 22,
                trace_id: None,
                kind: EventKind::SyncPoint {
                    seq: 0,
                    solver: "bicgstab",
                    syncs: 54,
                    sim_us: 27.0,
                },
            },
            TraceEvent {
                t_us: 23,
                trace_id: None,
                kind: EventKind::Reduction {
                    seq: 0,
                    solver: "bicgstab",
                    reductions: 54,
                    width: 992 * 64,
                    depth: 16,
                },
            },
            TraceEvent {
                t_us: 25,
                trace_id: None,
                kind: EventKind::Transfer {
                    direction: "d2h",
                    bytes: 128,
                    sim_us: 11.0,
                },
            },
            TraceEvent {
                t_us: 30,
                trace_id: Some(4),
                kind: EventKind::RungEnd {
                    rung: 1,
                    method: "bicgstab",
                    iterations: 9,
                    residual: 1e-11,
                    converged: true,
                    breakdown: None,
                },
            },
            TraceEvent {
                t_us: 40,
                trace_id: Some(4),
                kind: EventKind::Terminal {
                    outcome: "converged_bicgstab",
                    iterations: 9,
                    residual: 1e-11,
                    rungs: 1,
                },
            },
            TraceEvent {
                t_us: 50,
                trace_id: None,
                kind: EventKind::WatchdogStall { budget_us: 5000 },
            },
        ]
    }

    #[test]
    fn produces_valid_json_document() {
        let doc = chrome_trace(&sample());
        validate_json(&doc).unwrap();
        assert!(doc.contains("\"traceEvents\""));
    }

    #[test]
    fn request_and_rung_spans_share_a_track() {
        let doc = chrome_trace(&sample());
        assert!(doc.contains("req 4: converged_bicgstab"), "{doc}");
        assert!(doc.contains("rung 1: bicgstab"), "{doc}");
        // Both live on pid 1, tid = trace id 4.
        assert_eq!(doc.matches("\"pid\":1,\"tid\":4").count(), 2, "{doc}");
    }

    #[test]
    fn sim_device_events_advance_a_cumulative_cursor() {
        let doc = chrome_trace(&sample());
        // Kernel at cursor 0 for 50 µs, transfer starts at 50.
        assert!(doc.contains("\"ts\":0.0,\"dur\":50.0"), "{doc}");
        assert!(doc.contains("\"ts\":50.0,\"dur\":11.0"), "{doc}");
    }

    #[test]
    fn sync_and_reduction_records_render_in_the_device_lane() {
        let doc = chrome_trace(&sample());
        assert!(doc.contains("bicgstab #0: 54 syncs"), "{doc}");
        assert!(doc.contains("bicgstab #0: 54 reductions"), "{doc}");
        assert!(doc.contains("\"syncs_per_iteration\":6.0"), "{doc}");
        assert!(doc.contains("\"depth\":16"), "{doc}");
    }

    #[test]
    fn incidents_become_instants() {
        let doc = chrome_trace(&sample());
        assert!(
            doc.contains("\"name\":\"watchdog stall\",\"ph\":\"i\""),
            "{doc}"
        );
    }
}
