//! Chrome trace-event export (`chrome://tracing` / Perfetto).
//!
//! Two synthetic processes:
//!
//! * **pid 1 — requests (wall clock)**: one track (`tid`) per trace id.
//!   The request span runs from its `submitted` event to its `terminal`
//!   event; rung spans (`rung_begin`/`rung_end`) nest inside it on the
//!   same track. Service incidents render as instants.
//! * **pid 2 — simulated devices**: the kernel-launch and transfer
//!   records laid end to end on a cumulative sim-time cursor (the
//!   simulator prices time; it does not schedule it on the wall clock).
//!   Each fleet shard gets its own pair of lanes (kernels + transfers)
//!   keyed by the shard id the records carry, so a multi-device run
//!   renders one timeline lane per device instead of collapsing onto
//!   one. Shard 0 is the single-device default.
//!
//! All timestamps are microseconds, which is Chrome's native `ts` unit.

use std::collections::{BTreeSet, HashMap};

use crate::event::{json_escape, EventKind, TraceEvent, TraceId};

const PID_REQUESTS: u64 = 1;
const PID_SIM_DEVICE: u64 = 2;
const TID_SERVICE: u64 = 0;

/// Kernel lane of one shard: shards get interleaved (kernel, transfer)
/// tid pairs starting at 1, so shard 0 keeps the historical tids 1/2.
fn tid_kernels(shard: u32) -> u64 {
    1 + 2 * shard as u64
}

/// Transfer lane of one shard.
fn tid_transfers(shard: u32) -> u64 {
    2 + 2 * shard as u64
}

fn complete(name: &str, pid: u64, tid: u64, ts_us: f64, dur_us: f64, args: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts_us:?},\
         \"dur\":{:?},\"args\":{{{args}}}}}",
        json_escape(name),
        dur_us.max(1.0),
    )
}

fn instant(name: &str, pid: u64, tid: u64, ts_us: f64, args: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"g\",\"pid\":{pid},\"tid\":{tid},\
         \"ts\":{ts_us:?},\"args\":{{{args}}}}}",
        json_escape(name),
    )
}

/// Flow event (`ph:"s"` start / `ph:"f"` finish): the arrow stitching a
/// retry or hedge across shard lanes. Start and finish share an `id`.
fn flow(name: &str, id: u64, ph: &str, pid: u64, tid: u64, ts_us: f64) -> String {
    let bind = if ph == "f" { ",\"bp\":\"e\"" } else { "" };
    format!(
        "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"id\":{id},\"pid\":{pid},\"tid\":{tid},\
         \"ts\":{ts_us:?}{bind}}}",
        json_escape(name),
    )
}

fn metadata(pid: u64, process_name: &str) -> String {
    format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        json_escape(process_name),
    )
}

fn thread_metadata(pid: u64, tid: u64, thread_name: &str) -> String {
    format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
         \"args\":{{\"name\":\"{}\"}}}}",
        json_escape(thread_name),
    )
}

/// Render a captured event stream as a Chrome trace JSON document.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out: Vec<String> = vec![
        metadata(PID_REQUESTS, "requests (wall clock)"),
        metadata(PID_SIM_DEVICE, "simulated device"),
    ];

    // Open spans awaiting their closing event.
    let mut submitted_at: HashMap<TraceId, u64> = HashMap::new();
    let mut rung_open: HashMap<(TraceId, u8), (u64, &'static str)> = HashMap::new();
    // One cumulative sim-time cursor per shard (device): each shard's
    // kernels and transfers advance its own lane independently.
    let mut sim_cursor_us: HashMap<u32, f64> = HashMap::new();
    let mut shards_seen: BTreeSet<u32> = BTreeSet::new();
    // Flow-arrow state: monotone flow ids, plus fired hedges awaiting
    // their `hedge_won` closing edge, keyed by the unordered shard pair.
    let mut flow_seq: u64 = 0;
    let mut open_hedges: HashMap<(u32, u32), u64> = HashMap::new();

    for ev in events {
        let ts = ev.t_us as f64;
        match &ev.kind {
            EventKind::Submitted { n } => {
                if let Some(id) = ev.trace_id {
                    submitted_at.insert(id, ev.t_us);
                    // Queue-wait and solve both live inside this span;
                    // emitted when the terminal event closes it.
                    let _ = n;
                }
            }
            EventKind::Terminal {
                outcome,
                iterations,
                residual,
                rungs,
            } => {
                if let Some(id) = ev.trace_id {
                    let start = submitted_at.remove(&id).unwrap_or(ev.t_us);
                    out.push(complete(
                        &format!("req {id}: {outcome}"),
                        PID_REQUESTS,
                        id,
                        start as f64,
                        (ev.t_us - start) as f64,
                        &format!(
                            "\"outcome\":\"{outcome}\",\"iterations\":{iterations},\
                             \"rungs\":{rungs},\"residual\":\"{residual:e}\""
                        ),
                    ));
                }
            }
            EventKind::RungBegin { rung, method } => {
                if let Some(id) = ev.trace_id {
                    rung_open.insert((id, *rung), (ev.t_us, method));
                }
            }
            EventKind::RungEnd {
                rung,
                method,
                iterations,
                residual,
                converged,
                ..
            } => {
                if let Some(id) = ev.trace_id {
                    let (start, _) = rung_open.remove(&(id, *rung)).unwrap_or((ev.t_us, method));
                    out.push(complete(
                        &format!("rung {rung}: {method}"),
                        PID_REQUESTS,
                        id,
                        start as f64,
                        (ev.t_us - start) as f64,
                        &format!(
                            "\"iterations\":{iterations},\"converged\":{converged},\
                             \"residual\":\"{residual:e}\""
                        ),
                    ));
                }
            }
            EventKind::KernelLaunch {
                shard,
                seq,
                solver,
                blocks,
                resident_per_cu,
                total_slots,
                shared_per_block_bytes,
                spilled_vector_bytes,
                launch_us,
                exec_us,
                syncs,
                reductions,
                sync_us,
                syncs_per_iteration,
                ..
            } => {
                let dur = launch_us + exec_us;
                let cursor = sim_cursor_us.entry(*shard).or_insert(0.0);
                shards_seen.insert(*shard);
                out.push(complete(
                    &format!("{solver} launch #{seq}"),
                    PID_SIM_DEVICE,
                    tid_kernels(*shard),
                    *cursor,
                    dur,
                    &format!(
                        "\"shard\":{shard},\"blocks\":{blocks},\
                         \"resident_per_cu\":{resident_per_cu},\
                         \"total_slots\":{total_slots},\
                         \"shared_per_block_bytes\":{shared_per_block_bytes},\
                         \"spilled_vector_bytes\":{spilled_vector_bytes},\
                         \"launch_us\":{launch_us:?},\"exec_us\":{exec_us:?},\
                         \"syncs\":{syncs},\"reductions\":{reductions},\
                         \"sync_us\":{sync_us:?},\
                         \"syncs_per_iteration\":{syncs_per_iteration:?}"
                    ),
                ));
                *cursor += dur.max(0.0);
            }
            EventKind::SyncPoint {
                shard,
                seq,
                solver,
                syncs,
                sim_us,
            } => {
                // Markers at the owning launch's position on its shard's
                // lane; the kernel span already accounts for their time.
                let cursor = sim_cursor_us.get(shard).copied().unwrap_or(0.0);
                out.push(instant(
                    &format!("{solver} #{seq}: {syncs} syncs"),
                    PID_SIM_DEVICE,
                    tid_kernels(*shard),
                    cursor,
                    &format!("\"syncs\":{syncs},\"sim_us\":{sim_us:?}"),
                ));
            }
            EventKind::Reduction {
                shard,
                seq,
                solver,
                reductions,
                width,
                depth,
            } => {
                let cursor = sim_cursor_us.get(shard).copied().unwrap_or(0.0);
                out.push(instant(
                    &format!("{solver} #{seq}: {reductions} reductions"),
                    PID_SIM_DEVICE,
                    tid_kernels(*shard),
                    cursor,
                    &format!("\"reductions\":{reductions},\"width\":{width},\"depth\":{depth}"),
                ));
            }
            EventKind::Transfer {
                shard,
                direction,
                bytes,
                sim_us,
            } => {
                let cursor = sim_cursor_us.entry(*shard).or_insert(0.0);
                shards_seen.insert(*shard);
                out.push(complete(
                    &format!("{direction} {bytes} B"),
                    PID_SIM_DEVICE,
                    tid_transfers(*shard),
                    *cursor,
                    *sim_us,
                    &format!("\"shard\":{shard},\"bytes\":{bytes}"),
                ));
                *cursor += sim_us.max(0.0);
            }
            EventKind::ShardDispatch {
                shard,
                device,
                size,
                queue_depth,
            } => {
                out.push(instant(
                    &format!("dispatch -> shard {shard} ({size} systems)"),
                    PID_REQUESTS,
                    TID_SERVICE,
                    ts,
                    &format!(
                        "\"shard\":{shard},\"device\":\"{}\",\"size\":{size},\
                         \"queue_depth\":{queue_depth}",
                        json_escape(device)
                    ),
                ));
            }
            EventKind::ShardSteal {
                thief,
                victim,
                size,
            } => {
                out.push(instant(
                    &format!("steal: shard {thief} <- shard {victim} ({size} systems)"),
                    PID_REQUESTS,
                    TID_SERVICE,
                    ts,
                    &format!("\"thief\":{thief},\"victim\":{victim},\"size\":{size}"),
                ));
            }
            EventKind::CpuSpill {
                size,
                min_batch_size,
            } => {
                out.push(instant(
                    &format!("spill -> cpu pool ({size} < {min_batch_size})"),
                    PID_REQUESTS,
                    TID_SERVICE,
                    ts,
                    &format!("\"size\":{size},\"min_batch_size\":{min_batch_size}"),
                ));
            }
            EventKind::Rejected { reason } => {
                out.push(instant(
                    &format!("rejected: {reason}"),
                    PID_REQUESTS,
                    ev.trace_id.unwrap_or(TID_SERVICE),
                    ts,
                    "",
                ));
            }
            EventKind::BatchFormed { seq, size, reason } => {
                out.push(instant(
                    &format!("batch #{seq} ({size}, {reason})"),
                    PID_REQUESTS,
                    TID_SERVICE,
                    ts,
                    &format!("\"size\":{size}"),
                ));
            }
            EventKind::BreakerTrip => {
                out.push(instant("breaker trip", PID_REQUESTS, TID_SERVICE, ts, ""));
            }
            EventKind::WatchdogStall { budget_us } => {
                out.push(instant(
                    "watchdog stall",
                    PID_REQUESTS,
                    TID_SERVICE,
                    ts,
                    &format!("\"budget_us\":{budget_us}"),
                ));
            }
            EventKind::WorkerRespawn => {
                out.push(instant("worker respawn", PID_REQUESTS, TID_SERVICE, ts, ""));
            }
            EventKind::FlightDump { reason, events, .. } => {
                out.push(instant(
                    &format!("flight dump: {reason}"),
                    PID_REQUESTS,
                    TID_SERVICE,
                    ts,
                    &format!("\"events\":{events}"),
                ));
            }
            EventKind::RetryAttempt {
                from,
                to,
                size,
                attempt,
                backoff_us,
                reason,
            } => {
                out.push(instant(
                    &format!("retry #{attempt}: shard {from} -> shard {to} ({size} systems)"),
                    PID_REQUESTS,
                    TID_SERVICE,
                    ts,
                    &format!(
                        "\"from\":{from},\"to\":{to},\"size\":{size},\
                         \"attempt\":{attempt},\"backoff_us\":{backoff_us},\
                         \"reason\":\"{}\"",
                        json_escape(reason)
                    ),
                ));
                // Stitch the re-route across lanes: an arrow from the
                // failing dispatch to where the retried chunk lands
                // after its backoff sleep.
                flow_seq += 1;
                out.push(flow(
                    &format!("retry #{attempt}: {from} -> {to}"),
                    flow_seq,
                    "s",
                    PID_REQUESTS,
                    TID_SERVICE,
                    ts,
                ));
                out.push(flow(
                    &format!("retry #{attempt}: {from} -> {to}"),
                    flow_seq,
                    "f",
                    PID_REQUESTS,
                    TID_SERVICE,
                    ts + *backoff_us as f64,
                ));
            }
            EventKind::HedgeFired {
                primary,
                hedge,
                size,
                age_us,
            } => {
                out.push(instant(
                    &format!("hedge: shard {hedge} duplicates shard {primary} ({size} systems)"),
                    PID_REQUESTS,
                    TID_SERVICE,
                    ts,
                    &format!(
                        "\"primary\":{primary},\"hedge\":{hedge},\"size\":{size},\
                         \"age_us\":{age_us}"
                    ),
                ));
                // Open a flow arrow from the straggling primary; the
                // matching `hedge_won` edge closes it at the winner.
                flow_seq += 1;
                let key = (*primary.min(hedge), *primary.max(hedge));
                open_hedges.insert(key, flow_seq);
                out.push(flow(
                    &format!("hedge: {primary} -> {hedge}"),
                    flow_seq,
                    "s",
                    PID_REQUESTS,
                    TID_SERVICE,
                    ts,
                ));
            }
            EventKind::HedgeWon {
                winner,
                loser,
                size,
            } => {
                out.push(instant(
                    &format!("hedge won: shard {winner} beat shard {loser} ({size} systems)"),
                    PID_REQUESTS,
                    TID_SERVICE,
                    ts,
                    &format!("\"winner\":{winner},\"loser\":{loser},\"size\":{size}"),
                ));
                let key = (*winner.min(loser), *winner.max(loser));
                if let Some(id) = open_hedges.remove(&key) {
                    out.push(flow(
                        &format!("hedge won: {winner}"),
                        id,
                        "f",
                        PID_REQUESTS,
                        TID_SERVICE,
                        ts,
                    ));
                }
            }
            EventKind::Shed { shard, size, level } => {
                out.push(instant(
                    &format!("shed: shard {shard} drops {size} systems (level {level})"),
                    PID_REQUESTS,
                    TID_SERVICE,
                    ts,
                    &format!("\"shard\":{shard},\"size\":{size},\"level\":{level}"),
                ));
            }
            EventKind::DegradeShift { from, to } => {
                out.push(instant(
                    &format!("degrade: level {from} -> {to}"),
                    PID_REQUESTS,
                    TID_SERVICE,
                    ts,
                    &format!("\"from\":{from},\"to\":{to}"),
                ));
            }
            EventKind::AutotuneDecision {
                class,
                solver,
                precond,
                observations,
                revision,
            } => {
                out.push(instant(
                    &format!("autotune: {class} -> {solver}+{precond}"),
                    PID_REQUESTS,
                    TID_SERVICE,
                    ts,
                    &format!(
                        "\"class\":\"{class}\",\"solver\":\"{solver}\",\
                         \"precond\":\"{precond}\",\"observations\":{observations},\
                         \"revision\":{revision}"
                    ),
                ));
            }
            // Per-iteration residuals, queue plumbing, and the terminal
            // ledger summary stay in the JSONL log; as Chrome spans they
            // would only be noise.
            EventKind::Dequeued { .. }
            | EventKind::SolverIteration { .. }
            | EventKind::Ledger(..) => {}
        }
    }

    // Name the device lanes so Perfetto shows "device N kernels" instead
    // of bare tids — one lane pair per shard that emitted records.
    for shard in &shards_seen {
        out.push(thread_metadata(
            PID_SIM_DEVICE,
            tid_kernels(*shard),
            &format!("device {shard} kernels"),
        ));
        out.push(thread_metadata(
            PID_SIM_DEVICE,
            tid_transfers(*shard),
            &format!("device {shard} transfers"),
        ));
    }

    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}",
        out.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::json::validate_json;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                t_us: 10,
                trace_id: Some(4),
                kind: EventKind::Submitted { n: 16 },
            },
            TraceEvent {
                t_us: 20,
                trace_id: Some(4),
                kind: EventKind::RungBegin {
                    rung: 1,
                    method: "bicgstab",
                },
            },
            TraceEvent {
                t_us: 21,
                trace_id: None,
                kind: EventKind::KernelLaunch {
                    shard: 0,
                    seq: 0,
                    solver: "bicgstab",
                    device: "V100",
                    blocks: 1,
                    resident_per_cu: 2,
                    total_slots: 160,
                    shared_per_block_bytes: 1024,
                    spilled_vector_bytes: 0,
                    launch_us: 10.0,
                    exec_us: 40.0,
                    dram_bytes: 4096,
                    flops: 1 << 16,
                    syncs: 54,
                    reductions: 54,
                    sync_us: 3.2,
                    syncs_per_iteration: 6.0,
                },
            },
            TraceEvent {
                t_us: 22,
                trace_id: None,
                kind: EventKind::SyncPoint {
                    shard: 0,
                    seq: 0,
                    solver: "bicgstab",
                    syncs: 54,
                    sim_us: 27.0,
                },
            },
            TraceEvent {
                t_us: 23,
                trace_id: None,
                kind: EventKind::Reduction {
                    shard: 0,
                    seq: 0,
                    solver: "bicgstab",
                    reductions: 54,
                    width: 992 * 64,
                    depth: 16,
                },
            },
            TraceEvent {
                t_us: 25,
                trace_id: None,
                kind: EventKind::Transfer {
                    shard: 0,
                    direction: "d2h",
                    bytes: 128,
                    sim_us: 11.0,
                },
            },
            TraceEvent {
                t_us: 30,
                trace_id: Some(4),
                kind: EventKind::RungEnd {
                    rung: 1,
                    method: "bicgstab",
                    iterations: 9,
                    residual: 1e-11,
                    converged: true,
                    breakdown: None,
                },
            },
            TraceEvent {
                t_us: 40,
                trace_id: Some(4),
                kind: EventKind::Terminal {
                    outcome: "converged_bicgstab",
                    iterations: 9,
                    residual: 1e-11,
                    rungs: 1,
                },
            },
            TraceEvent {
                t_us: 50,
                trace_id: None,
                kind: EventKind::WatchdogStall { budget_us: 5000 },
            },
        ]
    }

    #[test]
    fn produces_valid_json_document() {
        let doc = chrome_trace(&sample());
        validate_json(&doc).unwrap();
        assert!(doc.contains("\"traceEvents\""));
    }

    #[test]
    fn request_and_rung_spans_share_a_track() {
        let doc = chrome_trace(&sample());
        assert!(doc.contains("req 4: converged_bicgstab"), "{doc}");
        assert!(doc.contains("rung 1: bicgstab"), "{doc}");
        // Both live on pid 1, tid = trace id 4.
        assert_eq!(doc.matches("\"pid\":1,\"tid\":4").count(), 2, "{doc}");
    }

    #[test]
    fn sim_device_events_advance_a_cumulative_cursor() {
        let doc = chrome_trace(&sample());
        // Kernel at cursor 0 for 50 µs, transfer starts at 50.
        assert!(doc.contains("\"ts\":0.0,\"dur\":50.0"), "{doc}");
        assert!(doc.contains("\"ts\":50.0,\"dur\":11.0"), "{doc}");
    }

    #[test]
    fn sync_and_reduction_records_render_in_the_device_lane() {
        let doc = chrome_trace(&sample());
        assert!(doc.contains("bicgstab #0: 54 syncs"), "{doc}");
        assert!(doc.contains("bicgstab #0: 54 reductions"), "{doc}");
        assert!(doc.contains("\"syncs_per_iteration\":6.0"), "{doc}");
        assert!(doc.contains("\"depth\":16"), "{doc}");
    }

    #[test]
    fn incidents_become_instants() {
        let doc = chrome_trace(&sample());
        assert!(
            doc.contains("\"name\":\"watchdog stall\",\"ph\":\"i\""),
            "{doc}"
        );
    }

    fn launch(shard: u32, seq: u64, exec_us: f64) -> TraceEvent {
        TraceEvent {
            t_us: seq,
            trace_id: None,
            kind: EventKind::KernelLaunch {
                shard,
                seq,
                solver: "bicgstab",
                device: "V100",
                blocks: 1,
                resident_per_cu: 2,
                total_slots: 160,
                shared_per_block_bytes: 1024,
                spilled_vector_bytes: 0,
                launch_us: 10.0,
                exec_us,
                dram_bytes: 4096,
                flops: 1 << 16,
                syncs: 0,
                reductions: 0,
                sync_us: 0.0,
                syncs_per_iteration: 6.0,
            },
        }
    }

    #[test]
    fn each_shard_gets_its_own_lane_and_cursor() {
        // Interleaved launches on shards 0 and 2: each lane's cursor
        // starts at 0 and advances independently of the other's.
        let doc = chrome_trace(&[launch(0, 0, 40.0), launch(2, 1, 90.0), launch(0, 2, 40.0)]);
        // Shard 0 lane (tid 1): spans at 0 and 50.
        assert!(doc.contains("\"tid\":1,\"ts\":0.0,\"dur\":50.0"), "{doc}");
        assert!(doc.contains("\"tid\":1,\"ts\":50.0,\"dur\":50.0"), "{doc}");
        // Shard 2 lane (tid 5): its own cursor, starting at 0.
        assert!(doc.contains("\"tid\":5,\"ts\":0.0,\"dur\":100.0"), "{doc}");
        // Both lanes are named.
        assert!(doc.contains("device 0 kernels"), "{doc}");
        assert!(doc.contains("device 2 kernels"), "{doc}");
        validate_json(&doc).unwrap();
    }

    #[test]
    fn fleet_scheduler_events_become_service_instants() {
        let events = vec![
            TraceEvent {
                t_us: 5,
                trace_id: None,
                kind: EventKind::ShardDispatch {
                    shard: 3,
                    device: "NVIDIA V100-16GB",
                    size: 96,
                    queue_depth: 1,
                },
            },
            TraceEvent {
                t_us: 6,
                trace_id: None,
                kind: EventKind::ShardSteal {
                    thief: 1,
                    victim: 3,
                    size: 96,
                },
            },
            TraceEvent {
                t_us: 7,
                trace_id: None,
                kind: EventKind::CpuSpill {
                    size: 5,
                    min_batch_size: 8,
                },
            },
        ];
        let doc = chrome_trace(&events);
        assert!(doc.contains("dispatch -> shard 3 (96 systems)"), "{doc}");
        assert!(
            doc.contains("steal: shard 1 <- shard 3 (96 systems)"),
            "{doc}"
        );
        assert!(doc.contains("spill -> cpu pool (5 < 8)"), "{doc}");
        validate_json(&doc).unwrap();
    }

    #[test]
    fn retries_emit_flow_arrows_spanning_the_backoff() {
        let events = vec![TraceEvent {
            t_us: 100,
            trace_id: None,
            kind: EventKind::RetryAttempt {
                from: 0,
                to: 2,
                size: 8,
                attempt: 2,
                backoff_us: 1500,
                reason: "device_failure",
            },
        }];
        let doc = chrome_trace(&events);
        assert!(doc.contains("\"ph\":\"s\",\"id\":1"), "{doc}");
        assert!(doc.contains("\"ph\":\"f\",\"id\":1"), "{doc}");
        // Finish edge lands after the deterministic backoff sleep.
        assert!(doc.contains("\"ts\":1600.0,\"bp\":\"e\""), "{doc}");
        validate_json(&doc).unwrap();
    }

    #[test]
    fn hedge_flows_close_on_the_winning_shard() {
        let events = vec![
            TraceEvent {
                t_us: 10,
                trace_id: None,
                kind: EventKind::HedgeFired {
                    primary: 0,
                    hedge: 1,
                    size: 16,
                    age_us: 40_000,
                },
            },
            TraceEvent {
                t_us: 90,
                trace_id: None,
                kind: EventKind::HedgeWon {
                    winner: 1,
                    loser: 0,
                    size: 16,
                },
            },
        ];
        let doc = chrome_trace(&events);
        assert!(
            doc.contains("\"name\":\"hedge: 0 -> 1\",\"ph\":\"s\",\"id\":1"),
            "{doc}"
        );
        assert!(
            doc.contains("\"name\":\"hedge won: 1\",\"ph\":\"f\",\"id\":1"),
            "{doc}"
        );
        validate_json(&doc).unwrap();
        // A hedge that never wins leaves no dangling finish edge.
        let unclosed = chrome_trace(&events[..1]);
        assert!(!unclosed.contains("\"ph\":\"f\""), "{unclosed}");
    }
}
