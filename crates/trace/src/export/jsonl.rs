//! JSONL export: one [`TraceEvent`] per line.
//!
//! Two shapes: [`to_jsonl`] renders a captured slice (experiments with a
//! `MemorySink`), and [`JsonlFileSink`] streams events to a file as they
//! happen (the long-running server, where holding the full log in memory
//! defeats the flight recorder's purpose).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::TraceEvent;
use crate::sink::TraceSink;

/// Render events as JSONL (each line a self-contained JSON object).
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(96 * events.len());
    for ev in events {
        out.push_str(&ev.to_json());
        out.push('\n');
    }
    out
}

/// Render and write events to `path` in one shot.
pub fn write_jsonl(events: &[TraceEvent], path: &Path) -> std::io::Result<()> {
    std::fs::write(path, to_jsonl(events))
}

/// A [`TraceSink`] that appends each event to a buffered file as a JSONL
/// line. Writes are serialized by an internal lock; IO errors after a
/// successful open are counted rather than panicking the emitter.
pub struct JsonlFileSink {
    writer: Mutex<BufWriter<File>>,
    errors: std::sync::atomic::AtomicU64,
}

impl JsonlFileSink {
    /// Create (truncate) `path` for streaming.
    pub fn create(path: &Path) -> std::io::Result<JsonlFileSink> {
        Ok(JsonlFileSink {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
            errors: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Write errors swallowed so far (emitters must not panic the
    /// solve path over a full disk).
    pub fn io_errors(&self) -> u64 {
        self.errors.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl TraceSink for JsonlFileSink {
    fn emit(&self, event: &TraceEvent) {
        let mut w = self.writer.lock().unwrap();
        let line = event.to_json();
        if writeln!(w, "{line}").is_err() {
            self.errors
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        if self.writer.lock().unwrap().flush().is_err() {
            self.errors
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::export::json::validate_json;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                t_us: 1,
                trace_id: Some(0),
                kind: EventKind::Submitted { n: 16 },
            },
            TraceEvent {
                t_us: 9,
                trace_id: Some(0),
                kind: EventKind::Terminal {
                    outcome: "converged_bicgstab",
                    iterations: 12,
                    residual: 3.0e-11,
                    rungs: 1,
                },
            },
        ]
    }

    #[test]
    fn every_line_is_valid_json() {
        let text = to_jsonl(&sample_events());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            validate_json(line).unwrap();
        }
    }

    #[test]
    fn file_sink_streams_lines() {
        let dir = std::env::temp_dir().join("batsolv-trace-jsonl-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.jsonl");
        let sink = JsonlFileSink::create(&path).unwrap();
        for ev in sample_events() {
            sink.emit(&ev);
        }
        sink.flush();
        assert_eq!(sink.io_errors(), 0);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            validate_json(line).unwrap();
        }
        std::fs::remove_file(&path).ok();
    }
}
