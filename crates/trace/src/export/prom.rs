//! Prometheus text-exposition rendering.
//!
//! [`PromText`] is a small builder for the `# HELP` / `# TYPE` / sample
//! line format. It knows nothing about the runtime's stats — the runtime
//! crate maps its `StatsSnapshot` onto it — so the format lives next to
//! the other exporters and stays independently testable.

/// Builder for a Prometheus text-format metrics page.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

/// Format a sample value the way the exposition format expects
/// (`NaN`, `+Inf`, `-Inf` are legal sample values in Prometheus text).
fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

impl PromText {
    /// Empty page.
    pub fn new() -> PromText {
        PromText::default()
    }

    /// Write the `# HELP` and `# TYPE` header for a metric family.
    /// `kind` is `"counter"`, `"gauge"`, or `"histogram"`.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) -> &mut Self {
        self.out.push_str(&format!("# HELP {name} {help}\n"));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
        self
    }

    /// Write one sample line, with optional labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut Self {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
                self.out.push_str(&format!("{k}=\"{escaped}\""));
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(&format_value(value));
        self.out.push('\n');
        self
    }

    /// Header plus single unlabeled sample: the common counter shape.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) -> &mut Self {
        self.family(name, "counter", help)
            .sample(name, &[], value as f64)
    }

    /// Header plus single unlabeled sample: the common gauge shape.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) -> &mut Self {
        self.family(name, "gauge", help).sample(name, &[], value)
    }

    /// The rendered page.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Read back the first sample of `name` from a rendered page (label sets
/// are ignored; `name` must match the metric name exactly). Exists so
/// tests and the repro experiment can check exporter/snapshot agreement
/// without a real Prometheus parser.
pub fn parse_prom_value(text: &str, name: &str) -> Option<f64> {
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let Some(rest) = line.strip_prefix(name) else {
            continue;
        };
        // Wrong-metric lines (e.g. `foo_total` when asked for `foo`)
        // share a prefix; require a label block or a space next.
        let rest = match rest.as_bytes().first() {
            Some(b' ') => rest.trim_start(),
            Some(b'{') => match rest.split_once('}') {
                Some((_, v)) => v.trim_start(),
                None => continue,
            },
            _ => continue,
        };
        let token = rest.split_whitespace().next()?;
        return match token {
            "NaN" => Some(f64::NAN),
            "+Inf" => Some(f64::INFINITY),
            "-Inf" => Some(f64::NEG_INFINITY),
            t => t.parse().ok(),
        };
    }
    None
}

/// Read back the sample of `name` whose label block contains every
/// `key="value"` pair in `labels` (order-independent). Companion to
/// [`parse_prom_value`] for per-class/per-shard series.
pub fn parse_prom_labeled(text: &str, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let Some(rest) = line.strip_prefix(name) else {
            continue;
        };
        let Some(b'{') = rest.as_bytes().first() else {
            continue;
        };
        let (block, value) = rest[1..].split_once('}')?;
        if !labels
            .iter()
            .all(|(k, v)| block.contains(&format!("{k}=\"{v}\"")))
        {
            continue;
        }
        let token = value.split_whitespace().next()?;
        return match token {
            "NaN" => Some(f64::NAN),
            "+Inf" => Some(f64::INFINITY),
            "-Inf" => Some(f64::NEG_INFINITY),
            t => t.parse().ok(),
        };
    }
    None
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            .unwrap_or(false)
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Validate a rendered page against the exposition-format contract the
/// runtime and fleet pages share:
///
/// * every sample's family has a `# HELP` **and** `# TYPE` line before
///   its first sample (histogram `_bucket`/`_sum`/`_count` samples
///   resolve to their base family);
/// * every metric name matches `[a-zA-Z_:][a-zA-Z0-9_:]*`;
/// * no `(name, label set)` series appears twice;
/// * `# TYPE` values are legal kinds, declared at most once per family.
///
/// OpenMetrics-style exemplar suffixes (`value # {...} v`) are accepted.
pub fn check_prom_conformance(page: &str) -> Result<(), String> {
    use std::collections::{BTreeMap, BTreeSet};
    #[derive(Default)]
    struct Fam {
        help: bool,
        kind: Option<String>,
    }
    let mut fams: BTreeMap<String, Fam> = BTreeMap::new();
    let mut series: BTreeSet<String> = BTreeSet::new();
    for (lineno, line) in page.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            let fam = fams.entry(name.to_string()).or_default();
            if fam.help {
                return Err(format!("line {n}: duplicate # HELP for {name}"));
            }
            fam.help = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().unwrap_or("");
            let kind = it.next().unwrap_or("");
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {n}: illegal TYPE {kind:?} for {name}"));
            }
            let fam = fams.entry(name.to_string()).or_default();
            if fam.kind.is_some() {
                return Err(format!("line {n}: duplicate # TYPE for {name}"));
            }
            fam.kind = Some(kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        // Sample line: name[{labels}] value [# exemplar]
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| format!("line {n}: no value on sample line {line:?}"))?;
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return Err(format!("line {n}: invalid metric name {name:?}"));
        }
        let (series_key, value_part) = if line.as_bytes()[name_end] == b'{' {
            let close = line
                .find('}')
                .ok_or_else(|| format!("line {n}: unterminated label block"))?;
            (&line[..close + 1], line[close + 1..].trim_start())
        } else {
            (name, line[name_end..].trim_start())
        };
        let token = value_part
            .split_whitespace()
            .next()
            .ok_or_else(|| format!("line {n}: missing sample value"))?;
        if !matches!(token, "NaN" | "+Inf" | "-Inf") && token.parse::<f64>().is_err() {
            return Err(format!("line {n}: unparseable sample value {token:?}"));
        }
        if !series.insert(series_key.to_string()) {
            return Err(format!("line {n}: duplicate series {series_key}"));
        }
        // Histogram children resolve to the declared base family.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                name.strip_suffix(suf).filter(|base| {
                    fams.get(*base)
                        .map(|f| f.kind.as_deref() == Some("histogram"))
                        .unwrap_or(false)
                })
            })
            .unwrap_or(name);
        match fams.get(family) {
            Some(fam) if fam.help && fam.kind.is_some() => {}
            _ => {
                return Err(format!(
                    "line {n}: sample {name} precedes its # HELP/# TYPE declaration"
                ))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_render_headers_and_samples() {
        let mut p = PromText::new();
        p.counter("batsolv_requests_total", "Requests accepted.", 42);
        p.gauge("batsolv_wait_p99_us", "p99 queue wait.", 1250.5);
        let page = p.finish();
        assert!(page.contains("# HELP batsolv_requests_total Requests accepted.\n"));
        assert!(page.contains("# TYPE batsolv_requests_total counter\n"));
        assert!(page.contains("batsolv_requests_total 42\n"));
        assert!(page.contains("batsolv_wait_p99_us 1250.5\n"));
    }

    #[test]
    fn labeled_samples_escape_values() {
        let mut p = PromText::new();
        p.family("batsolv_outcomes_total", "counter", "Terminal outcomes.")
            .sample(
                "batsolv_outcomes_total",
                &[("outcome", "he said \"no\"")],
                3.0,
            );
        let page = p.finish();
        assert!(
            page.contains("batsolv_outcomes_total{outcome=\"he said \\\"no\\\"\"} 3\n"),
            "{page}"
        );
    }

    #[test]
    fn parse_reads_back_plain_and_labeled_values() {
        let page = "# HELP a b\n# TYPE a counter\na 7\nab 9\nc{l=\"x\"} 2.5\nd NaN\n";
        assert_eq!(parse_prom_value(page, "a"), Some(7.0));
        assert_eq!(parse_prom_value(page, "ab"), Some(9.0));
        assert_eq!(parse_prom_value(page, "c"), Some(2.5));
        assert!(parse_prom_value(page, "d").unwrap().is_nan());
        assert_eq!(parse_prom_value(page, "missing"), None);
    }

    #[test]
    fn non_finite_values_use_prom_spellings() {
        let mut p = PromText::new();
        p.gauge("g", "gauge", f64::INFINITY);
        assert!(p.finish().contains("g +Inf\n"));
    }

    #[test]
    fn labeled_parse_selects_by_label_pairs() {
        let page = "# HELP l h\n# TYPE l gauge\n\
                    l{class=\"ion-like\",quantile=\"p99\"} 120\n\
                    l{class=\"electron-like\",quantile=\"p99\"} 900\n";
        assert_eq!(
            parse_prom_labeled(
                page,
                "l",
                &[("class", "electron-like"), ("quantile", "p99")]
            ),
            Some(900.0)
        );
        assert_eq!(
            parse_prom_labeled(page, "l", &[("class", "ion-like")]),
            Some(120.0)
        );
        assert_eq!(parse_prom_labeled(page, "l", &[("class", "missing")]), None);
    }

    #[test]
    fn conformance_accepts_a_well_formed_page() {
        let page = "# HELP a help text\n# TYPE a counter\na 1\na{x=\"1\"} 2\n\
                    # HELP h help\n# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 0\nh_bucket{le=\"+Inf\"} 3 # {trace_id=\"9\"} 2.5\n\
                    h_sum 4.5\nh_count 3\n";
        check_prom_conformance(page).unwrap();
    }

    #[test]
    fn conformance_rejects_missing_headers() {
        assert!(check_prom_conformance("a 1\n").is_err());
        assert!(check_prom_conformance("# HELP a h\na 1\n").is_err());
        assert!(check_prom_conformance("# TYPE a counter\na 1\n").is_err());
    }

    #[test]
    fn conformance_rejects_duplicate_series_and_headers() {
        let dup = "# HELP a h\n# TYPE a counter\na{x=\"1\"} 1\na{x=\"1\"} 2\n";
        assert!(check_prom_conformance(dup)
            .unwrap_err()
            .contains("duplicate series"));
        let dup_type = "# HELP a h\n# TYPE a counter\n# TYPE a counter\na 1\n";
        assert!(check_prom_conformance(dup_type)
            .unwrap_err()
            .contains("duplicate # TYPE"));
    }

    #[test]
    fn conformance_rejects_bad_names_and_kinds() {
        assert!(check_prom_conformance("# HELP 9x h\n# TYPE 9x counter\n9x 1\n").is_err());
        assert!(check_prom_conformance("# HELP a h\n# TYPE a widget\na 1\n").is_err());
        let bad_value = "# HELP a h\n# TYPE a counter\na one\n";
        assert!(check_prom_conformance(bad_value).is_err());
    }
}
