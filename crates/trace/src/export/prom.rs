//! Prometheus text-exposition rendering.
//!
//! [`PromText`] is a small builder for the `# HELP` / `# TYPE` / sample
//! line format. It knows nothing about the runtime's stats — the runtime
//! crate maps its `StatsSnapshot` onto it — so the format lives next to
//! the other exporters and stays independently testable.

/// Builder for a Prometheus text-format metrics page.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

/// Format a sample value the way the exposition format expects
/// (`NaN`, `+Inf`, `-Inf` are legal sample values in Prometheus text).
fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

impl PromText {
    /// Empty page.
    pub fn new() -> PromText {
        PromText::default()
    }

    /// Write the `# HELP` and `# TYPE` header for a metric family.
    /// `kind` is `"counter"`, `"gauge"`, or `"histogram"`.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) -> &mut Self {
        self.out.push_str(&format!("# HELP {name} {help}\n"));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
        self
    }

    /// Write one sample line, with optional labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut Self {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
                self.out.push_str(&format!("{k}=\"{escaped}\""));
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(&format_value(value));
        self.out.push('\n');
        self
    }

    /// Header plus single unlabeled sample: the common counter shape.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) -> &mut Self {
        self.family(name, "counter", help)
            .sample(name, &[], value as f64)
    }

    /// Header plus single unlabeled sample: the common gauge shape.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) -> &mut Self {
        self.family(name, "gauge", help).sample(name, &[], value)
    }

    /// The rendered page.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Read back the first sample of `name` from a rendered page (label sets
/// are ignored; `name` must match the metric name exactly). Exists so
/// tests and the repro experiment can check exporter/snapshot agreement
/// without a real Prometheus parser.
pub fn parse_prom_value(text: &str, name: &str) -> Option<f64> {
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let Some(rest) = line.strip_prefix(name) else {
            continue;
        };
        // Wrong-metric lines (e.g. `foo_total` when asked for `foo`)
        // share a prefix; require a label block or a space next.
        let rest = match rest.as_bytes().first() {
            Some(b' ') => rest.trim_start(),
            Some(b'{') => match rest.split_once('}') {
                Some((_, v)) => v.trim_start(),
                None => continue,
            },
            _ => continue,
        };
        let token = rest.split_whitespace().next()?;
        return match token {
            "NaN" => Some(f64::NAN),
            "+Inf" => Some(f64::INFINITY),
            "-Inf" => Some(f64::NEG_INFINITY),
            t => t.parse().ok(),
        };
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_render_headers_and_samples() {
        let mut p = PromText::new();
        p.counter("batsolv_requests_total", "Requests accepted.", 42);
        p.gauge("batsolv_wait_p99_us", "p99 queue wait.", 1250.5);
        let page = p.finish();
        assert!(page.contains("# HELP batsolv_requests_total Requests accepted.\n"));
        assert!(page.contains("# TYPE batsolv_requests_total counter\n"));
        assert!(page.contains("batsolv_requests_total 42\n"));
        assert!(page.contains("batsolv_wait_p99_us 1250.5\n"));
    }

    #[test]
    fn labeled_samples_escape_values() {
        let mut p = PromText::new();
        p.family("batsolv_outcomes_total", "counter", "Terminal outcomes.")
            .sample(
                "batsolv_outcomes_total",
                &[("outcome", "he said \"no\"")],
                3.0,
            );
        let page = p.finish();
        assert!(
            page.contains("batsolv_outcomes_total{outcome=\"he said \\\"no\\\"\"} 3\n"),
            "{page}"
        );
    }

    #[test]
    fn parse_reads_back_plain_and_labeled_values() {
        let page = "# HELP a b\n# TYPE a counter\na 7\nab 9\nc{l=\"x\"} 2.5\nd NaN\n";
        assert_eq!(parse_prom_value(page, "a"), Some(7.0));
        assert_eq!(parse_prom_value(page, "ab"), Some(9.0));
        assert_eq!(parse_prom_value(page, "c"), Some(2.5));
        assert!(parse_prom_value(page, "d").unwrap().is_nan());
        assert_eq!(parse_prom_value(page, "missing"), None);
    }

    #[test]
    fn non_finite_values_use_prom_spellings() {
        let mut p = PromText::new();
        p.gauge("g", "gauge", f64::INFINITY);
        assert!(p.finish().contains("g +Inf\n"));
    }
}
