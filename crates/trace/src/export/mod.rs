//! Export formats for captured event streams.
//!
//! * [`jsonl`] — one JSON object per line; the canonical raw log.
//! * [`chrome`] — Chrome trace-event JSON for `chrome://tracing`.
//! * [`prom`] — Prometheus text exposition for metrics pages.
//! * [`json`] — the in-crate JSON validator the tests lean on.

pub mod chrome;
pub mod json;
pub mod jsonl;
pub mod prom;
