//! The tracer handle threaded through the runtime.
//!
//! [`Tracer`] is a cheap clonable handle: disabled it is a `None` — the
//! emit path is one branch and no event is ever constructed, which is
//! the whole-runtime analogue of the solver kernels' `NoopLogger`
//! monomorphization. Enabled it stamps events against a fixed epoch and
//! forwards them to one [`TraceSink`] plus (optionally) a
//! [`FlightRecorder`] ring.

use std::sync::Arc;
use std::time::Instant;

use crate::event::{EventKind, TraceEvent, TraceId};
use crate::flight::{FlightDump, FlightRecorder};
use crate::sink::TraceSink;

struct TracerInner {
    epoch: Instant,
    sink: Arc<dyn TraceSink>,
    flight: Option<Arc<FlightRecorder>>,
}

/// Clonable tracing handle. The default is disabled.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Tracer(disabled)"),
            Some(inner) => f
                .debug_struct("Tracer")
                .field("flight_recorder", &inner.flight.is_some())
                .finish_non_exhaustive(),
        }
    }
}

impl Tracer {
    /// The no-op tracer: every `emit` is a single `None` check.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Tracer emitting to `sink`, with timestamps measured from now.
    pub fn new(sink: Arc<dyn TraceSink>) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                epoch: Instant::now(),
                sink,
                flight: None,
            })),
        }
    }

    /// Tracer emitting to `sink` and mirroring every event into the
    /// flight-recorder ring.
    pub fn with_flight_recorder(sink: Arc<dyn TraceSink>, flight: Arc<FlightRecorder>) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                epoch: Instant::now(),
                sink,
                flight: Some(flight),
            })),
        }
    }

    /// Whether events are recorded at all. Callers with non-trivial
    /// event construction should check this first.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since the tracer's epoch (0 when disabled).
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => u64::try_from(inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX),
            None => 0,
        }
    }

    /// Emit one event, stamped now. A disabled tracer returns
    /// immediately without constructing anything.
    #[inline]
    pub fn emit(&self, trace_id: Option<TraceId>, kind: EventKind) {
        if let Some(inner) = &self.inner {
            let event = TraceEvent {
                t_us: u64::try_from(inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX),
                trace_id,
                kind,
            };
            inner.sink.emit(&event);
            if let Some(flight) = &inner.flight {
                flight.emit(&event);
            }
        }
    }

    /// The flight recorder, when one is attached.
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.inner.as_ref().and_then(|i| i.flight.as_ref())
    }

    /// Trigger a flight dump (no-op without a recorder): snapshots the
    /// ring, emits a [`EventKind::FlightDump`] marker to the sink, and
    /// returns the dump.
    pub fn dump_flight(&self, reason: &'static str) -> Option<FlightDump> {
        let inner = self.inner.as_ref()?;
        let flight = inner.flight.as_ref()?;
        let dump = flight.trigger(reason, self.now_us());
        self.emit(
            None,
            EventKind::FlightDump {
                reason,
                events: dump.events.len(),
                dropped: dump.dropped,
            },
        );
        Some(dump)
    }

    /// Flush the underlying sink (file sinks buffer).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_tracer_emits_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(Some(1), EventKind::Submitted { n: 8 });
        assert_eq!(t.now_us(), 0);
        assert!(t.dump_flight("x").is_none());
        t.flush();
    }

    #[test]
    fn enabled_tracer_stamps_and_forwards() {
        let sink = Arc::new(MemorySink::new());
        let t = Tracer::new(sink.clone());
        assert!(t.is_enabled());
        t.emit(Some(7), EventKind::Submitted { n: 8 });
        t.emit(None, EventKind::WorkerRespawn);
        let events = sink.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].trace_id, Some(7));
        assert!(events[1].t_us >= events[0].t_us, "monotonic timestamps");
    }

    #[test]
    fn flight_recorder_mirrors_and_dumps() {
        let sink = Arc::new(MemorySink::new());
        let flight = Arc::new(FlightRecorder::new(16));
        let t = Tracer::with_flight_recorder(sink.clone(), flight.clone());
        t.emit(Some(3), EventKind::Dequeued { wait_us: 10 });
        let dump = t.dump_flight("breaker_trip").unwrap();
        assert_eq!(dump.events.len(), 1);
        assert!(dump.contains_trace(3));
        // The dump marker reached the primary sink.
        assert!(sink
            .snapshot()
            .iter()
            .any(|e| matches!(e.kind, EventKind::FlightDump { .. })));
        assert!(flight.last_dump().is_some());
    }

    #[test]
    fn clones_share_the_epoch_and_sink() {
        let sink = Arc::new(MemorySink::new());
        let t1 = Tracer::new(sink.clone());
        let t2 = t1.clone();
        t1.emit(None, EventKind::BreakerTrip);
        t2.emit(None, EventKind::WorkerRespawn);
        assert_eq!(sink.len(), 2);
    }
}
