//! Flight-recorder coverage for the fleet-resilience event kinds.
//!
//! The retry/hedge/shed/degrade events are what an operator needs when a
//! breaker trips: the dump has to show the resilience machinery's last
//! actions, not just solver outcomes. This test pins three properties
//! for every one of those kinds: the ring captures it, it survives a
//! `to_jsonl` round-trip as valid JSON carrying its kind tag, and it is
//! present in the dump a breaker trip triggers.

use std::sync::Arc;

use batsolv_trace::{validate_json, EventKind, FlightRecorder, MemorySink, Tracer};

/// The five kinds the fleet resilience layer emits.
fn resilience_events() -> Vec<(EventKind, &'static str)> {
    vec![
        (
            EventKind::RetryAttempt {
                from: 0,
                to: 2,
                size: 8,
                attempt: 2,
                backoff_us: 1500,
                reason: "device_failure",
            },
            "retry_attempt",
        ),
        (
            EventKind::HedgeFired {
                primary: 0,
                hedge: 1,
                size: 16,
                age_us: 40_000,
            },
            "hedge_fired",
        ),
        (
            EventKind::HedgeWon {
                winner: 1,
                loser: 0,
                size: 16,
            },
            "hedge_won",
        ),
        (
            EventKind::Shed {
                shard: 2,
                size: 4,
                level: 2,
            },
            "shed",
        ),
        (EventKind::DegradeShift { from: 0, to: 1 }, "degrade_shift"),
    ]
}

#[test]
fn ring_captures_every_resilience_kind() {
    let flight = FlightRecorder::new(64);
    let tracer = Tracer::with_flight_recorder(Arc::new(MemorySink::new()), Arc::new(flight));
    let kinds = resilience_events();
    for (i, (kind, _)) in kinds.iter().enumerate() {
        tracer.emit(Some(i as u64), kind.clone());
    }
    let dump = tracer.dump_flight("coverage").expect("recorder attached");
    assert_eq!(dump.events.len(), kinds.len());
    assert_eq!(dump.dropped, 0);
    for (i, ((_, name), got)) in kinds.iter().zip(dump.events.iter()).enumerate() {
        assert_eq!(got.kind.name(), *name, "ring preserves order");
        assert_eq!(got.trace_id, Some(i as u64));
    }
}

#[test]
fn dump_jsonl_round_trips_each_kind() {
    let flight = FlightRecorder::new(64);
    let tracer = Tracer::with_flight_recorder(Arc::new(MemorySink::new()), Arc::new(flight));
    for (kind, _) in resilience_events() {
        tracer.emit(Some(9), kind);
    }
    let dump = tracer.dump_flight("jsonl").expect("recorder attached");
    let jsonl = dump.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    // Header line plus one line per event.
    assert_eq!(lines.len(), 1 + resilience_events().len());
    for line in &lines {
        validate_json(line).unwrap_or_else(|e| panic!("invalid JSON line {line:?}: {e}"));
    }
    for (_, name) in resilience_events() {
        let tag = format!("\"kind\":\"{name}\"");
        assert!(
            lines[1..].iter().any(|l| l.contains(&tag)),
            "dump JSONL is missing {tag}"
        );
    }
}

#[test]
fn breaker_trip_dump_carries_the_resilience_history() {
    let sink = Arc::new(MemorySink::new());
    let flight = Arc::new(FlightRecorder::new(64));
    let tracer = Tracer::with_flight_recorder(sink.clone(), flight.clone());
    for (kind, _) in resilience_events() {
        tracer.emit(Some(41), kind);
    }
    // The trip itself is recorded, then the dump fires with the ring
    // contents at that instant.
    tracer.emit(None, EventKind::BreakerTrip);
    let dump = tracer
        .dump_flight("breaker_trip")
        .expect("recorder attached");
    assert_eq!(dump.reason, "breaker_trip");
    assert!(dump.contains_trace(41));
    for (_, name) in resilience_events() {
        assert!(
            dump.events.iter().any(|e| e.kind.name() == name),
            "breaker-trip dump is missing kind {name}"
        );
    }
    // The recorder retains the dump for post-mortem retrieval and the
    // marker event reached the primary sink.
    assert!(flight.last_dump().is_some());
    assert!(sink.snapshot().iter().any(|e| matches!(
        e.kind,
        EventKind::FlightDump {
            reason: "breaker_trip",
            ..
        }
    )));
}
