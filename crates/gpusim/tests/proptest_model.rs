//! Property-based tests of the execution model: cache-outcome bounds,
//! pricing monotonicity, occupancy, scheduling invariants.

use batsolv_gpusim::cache::cache_outcome;
use batsolv_gpusim::{
    makespan, resident_blocks_per_cu, BlockStats, DeviceSpec, Scheduling, SimKernel, TrafficProfile,
};
use batsolv_types::OpCounts;
use proptest::prelude::*;

fn devices() -> Vec<DeviceSpec> {
    vec![
        DeviceSpec::v100(),
        DeviceSpec::a100(),
        DeviceSpec::mi100(),
        DeviceSpec::skylake_node(),
    ]
}

fn traffic_strategy() -> impl Strategy<Value = TrafficProfile> {
    (
        0u64..1_000_000,
        1u64..64,
        0u64..500_000,
        1u64..16,
        0u64..100_000,
    )
        .prop_map(
            |(ro_ws, passes, rw_ws, rw_passes, write_once)| TrafficProfile {
                ro_working_set: ro_ws,
                shared_ro_working_set: ro_ws / 3,
                ro_requested: ro_ws * passes,
                rw_working_set: rw_ws,
                rw_requested: rw_ws * rw_passes,
                write_once,
                shared_bytes: 0,
            },
        )
}

fn block_strategy() -> impl Strategy<Value = BlockStats> {
    (
        1u32..200,
        1u64..100_000,
        1u64..10_000,
        0u64..20,
        0u64..8,
        traffic_strategy(),
    )
        .prop_map(|(iterations, lanes, steps, syncs, reductions, traffic)| {
            let mut counts = OpCounts::ZERO;
            counts.lane_total = lanes * 32;
            counts.lane_active = lanes * 20;
            counts.flops = lanes * 16;
            counts.cross_warp_ops = lanes / 4;
            BlockStats {
                iterations,
                converged: true,
                syncs,
                reductions,
                hidden_reductions: reductions / 2,
                counts,
                dependent_steps: steps,
                traffic,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_rates_are_probabilities(
        t in traffic_strategy(),
        shared in 0usize..100_000,
        blocks in 1u32..5000,
    ) {
        for d in devices() {
            let o = cache_outcome(&d, &t, shared, blocks);
            prop_assert!((0.0..=1.0).contains(&o.l1_hit_rate), "{}", o.l1_hit_rate);
            prop_assert!((0.0..=1.0).contains(&o.l2_hit_rate), "{}", o.l2_hit_rate);
            // DRAM traffic never exceeds what was requested plus writes.
            prop_assert!(o.dram_bytes <= t.requested() + t.write_once);
        }
    }

    #[test]
    fn more_concurrency_never_improves_cache(t in traffic_strategy()) {
        for d in devices() {
            let few = cache_outcome(&d, &t, 0, 4);
            let many = cache_outcome(&d, &t, 0, 4000);
            prop_assert!(many.dram_bytes >= few.dram_bytes);
            prop_assert!(many.l2_hit_rate <= few.l2_hit_rate + 1e-12);
        }
    }

    #[test]
    fn block_time_is_positive_and_monotone_in_work(b in block_strategy()) {
        for d in devices() {
            let k = SimKernel::new(&d, 16 * 1024);
            let t1 = k.block_time(&b, 100);
            prop_assert!(t1 > 0.0 && t1.is_finite());
            // Doubling every cost component cannot make the block faster.
            let mut b2 = b.clone();
            b2.counts = b2.counts * 2;
            b2.dependent_steps *= 2;
            b2.syncs *= 2;
            b2.reductions *= 2;
            b2.hidden_reductions *= 2;
            b2.traffic.ro_requested = b2.traffic.ro_requested.saturating_mul(2);
            b2.traffic.rw_requested = b2.traffic.rw_requested.saturating_mul(2);
            let t2 = k.block_time(&b2, 100);
            prop_assert!(t2 >= t1 * 0.999, "{t2} < {t1}");
        }
    }

    #[test]
    fn kernel_price_scales_with_batch(b in block_strategy(), reps in 1usize..40) {
        let d = DeviceSpec::v100();
        let k = SimKernel::new(&d, 16 * 1024);
        let one = k.price(std::slice::from_ref(&b));
        let many = k.price(&vec![b.clone(); reps * 80]);
        prop_assert!(many.time_s >= one.time_s * 0.999);
        prop_assert!(many.flops == one.flops * (reps as u64) * 80);
    }

    #[test]
    fn occupancy_never_exceeds_cap(shared in 0usize..300_000) {
        for d in devices() {
            let r = resident_blocks_per_cu(&d, shared);
            prop_assert!(r >= 1);
            prop_assert!(r <= d.max_resident_blocks.max(1));
        }
    }

    #[test]
    fn greedy_schedule_is_optimal_for_uniform_blocks(
        dur in 1e-6f64..1e-2,
        count in 1usize..500,
        slots in 1u32..128,
    ) {
        // For identical durations, greedy achieves the exact lower bound
        // ceil(count/slots) * dur.
        let durations = vec![dur; count];
        let m = makespan(&durations, slots, Scheduling::Greedy);
        let expect = count.div_ceil(slots as usize) as f64 * dur;
        prop_assert!((m - expect).abs() < 1e-12 * expect.max(1.0));
    }

    #[test]
    fn wave_makespan_is_sum_of_wave_maxima(
        durations in proptest::collection::vec(1e-6f64..1e-3, 1..300),
        slots in 1u32..64,
    ) {
        let m = makespan(&durations, slots, Scheduling::WaveSynchronous);
        let expect: f64 = durations
            .chunks(slots as usize)
            .map(|w| w.iter().cloned().fold(0.0f64, f64::max))
            .sum();
        prop_assert!((m - expect).abs() < 1e-15 + 1e-12 * expect);
    }
}
