//! Global-synchronization and tree-reduction pricing.
//!
//! Every dot-product or norm inside a fused batched solver ends in a
//! barrier: partial sums are combined in a tree and the result must be
//! visible to every lane before the iteration can continue. Rupp et al.
//! ("Pipelined Iterative Solvers with Kernel Fusion for GPUs") show this
//! latency dominates at small-to-medium system sizes — exactly the
//! paper's per-mesh-node collision systems. This module prices the two
//! components separately:
//!
//! * **sync** — the fixed barrier cost ([`DeviceSpec::sync_ns`]). Paid
//!   once per synchronization point. Not hidden by co-residency: at the
//!   barrier every warp of the block stalls together.
//! * **reduction** — the tree combine. An *exposed* reduction over `w`
//!   participants pays `ceil(log2 w)` levels of
//!   [`DeviceSpec::reduction_ns_per_level`]; a reduction fused into an
//!   SpMV (the pipelined solvers) overlaps its tree with the matrix
//!   pass and pays only the sync.
//!
//! The width is `rows × concurrent blocks` — the reduction tree a
//! device-wide implementation would build over the whole batch; per-sync
//! cost is constant while tree depth grows only logarithmically, which
//! is why the per-iteration *count* of synchronization points is the
//! quantity the pipelined reformulations attack.

use crate::device::DeviceSpec;

/// Depth of a binary reduction tree over `width` participants.
pub fn reduction_depth(width: u64) -> u32 {
    let w = width.max(2);
    64 - (w - 1).leading_zeros()
}

/// Fixed cost of one synchronization point, seconds.
pub fn sync_time_s(device: &DeviceSpec) -> f64 {
    device.sync_ns * 1e-9
}

/// Latency of one exposed tree reduction over `width` participants,
/// seconds (the tree alone — the accompanying barrier is priced
/// separately via [`sync_time_s`]).
pub fn reduction_time_s(device: &DeviceSpec, width: u64) -> f64 {
    reduction_depth(width) as f64 * device.reduction_ns_per_level * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_is_ceil_log2() {
        assert_eq!(reduction_depth(2), 1);
        assert_eq!(reduction_depth(3), 2);
        assert_eq!(reduction_depth(4), 2);
        assert_eq!(reduction_depth(992), 10);
        assert_eq!(reduction_depth(992 * 64), 16);
        // Degenerate widths still cost one level.
        assert_eq!(reduction_depth(0), 1);
        assert_eq!(reduction_depth(1), 1);
    }

    #[test]
    fn depth_grows_logarithmically_with_batch() {
        // Quadrupling the batch adds exactly two tree levels.
        let d1 = reduction_depth(992 * 16);
        let d4 = reduction_depth(992 * 64);
        assert_eq!(d4, d1 + 2);
    }

    #[test]
    fn gpu_syncs_cost_far_more_than_cpu() {
        let v = DeviceSpec::v100();
        let s = DeviceSpec::skylake_node();
        assert!(sync_time_s(&v) > 10.0 * sync_time_s(&s));
        assert!(reduction_time_s(&v, 992 * 64) > 5.0 * reduction_time_s(&s, 992 * 64));
    }

    #[test]
    fn exposed_reduction_is_microsecond_scale_on_v100() {
        // 992 rows × batch 64 → 16 tree levels ≈ 1 µs: the per-iteration
        // cost the pipelined variants amortize into one sync.
        let v = DeviceSpec::v100();
        let t = reduction_time_s(&v, 992 * 64);
        assert!(t > 0.5e-6 && t < 2e-6, "{t}");
    }
}
