//! Device descriptions (the paper's Table I) plus the calibration
//! constants of the timing model.
//!
//! The first block of fields is taken directly from Table I / vendor white
//! papers. The second block ("model calibration") has no hardware data
//! sheet to copy from: the constants are chosen so the *relative* behavior
//! of the simulated devices matches the paper's measurements (ELL-vs-CSR
//! gap, GPU-vs-Skylake speedups of 4–9x, MI100 wave steps, cuSolver-QR
//! 10–30x slower). `EXPERIMENTS.md` records the calibrated outcomes.

/// Processor family, which selects scheduling and cache-pool behavior.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceClass {
    /// NVIDIA GPU: unified L1/shared pool, flexible block scheduler.
    NvidiaGpu,
    /// AMD GPU: fixed-function L1 + separate LDS, wave-synchronous look.
    AmdGpu,
    /// Multicore CPU node: one "block" per core, caches per core.
    CpuNode,
}

/// Block-to-CU dispatch discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduling {
    /// Greedy list scheduling: a finishing CU immediately receives the next
    /// block. Produces the smooth V100/A100 curves of Figure 6.
    Greedy,
    /// Wave-synchronous: blocks dispatch in full waves of
    /// `num_cus × resident_blocks`; a wave costs its slowest block.
    /// Produces the MI100's discrete jumps at multiples of 120.
    WaveSynchronous,
}

/// A processor the batched solvers can be priced on.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"NVIDIA A100-40GB"`.
    pub name: &'static str,
    /// Processor family.
    pub class: DeviceClass,
    /// Peak FP64 throughput in GFLOP/s (Table I).
    pub peak_fp64_gflops: f64,
    /// Main-memory bandwidth in GB/s (Table I).
    pub mem_bw_gbps: f64,
    /// L1 data cache per CU in KiB. For NVIDIA this is the part of the
    /// unified pool left after the kernel's shared-memory carve-out is
    /// subtracted at runtime; the field holds the full pool size.
    pub l1_pool_kb: f64,
    /// Maximum shared memory (LDS) per CU in KiB.
    pub shared_mem_kb: f64,
    /// Whether L1 and shared memory draw from one configurable pool
    /// (NVIDIA) or are separate fixed resources (AMD: 16 KiB L1 + 64 KiB
    /// LDS).
    pub unified_l1_shared: bool,
    /// Per-block dynamic shared-memory budget in KiB, the knob of the
    /// paper's Section IV.D (on V100 a 48 KiB budget places 6 of
    /// BiCGSTAB's 9 vectors in shared memory for n = 992).
    pub max_dynamic_shared_kb: f64,
    /// L2 cache in MiB (Table I).
    pub l2_mb: f64,
    /// Number of SMs / CUs / worker cores (Table I).
    pub num_cus: u32,
    /// SIMD width: 32 (NVIDIA warp), 64 (AMD wavefront), 8 (AVX-512 f64).
    pub warp_size: u32,
    /// Hardware cap on blocks resident per CU.
    pub max_resident_blocks: u32,
    /// Kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
    // ---- model calibration ----
    /// Effective time per issued warp instruction per block, in ns
    /// (folds in issue width, ILP, and FP64 pipe latency).
    pub warp_issue_ns: f64,
    /// Latency of one serialized solver stage (a `__syncthreads()` plus
    /// pipeline drain between dependent vector ops), in ns.
    pub step_latency_ns: f64,
    /// Extra cost of a cross-lane (shuffle/DPP) warp instruction, in ns.
    /// Small on NVIDIA warps; large on AMD's 64-wide CDNA wavefronts,
    /// where FP64 reductions serialize over the 16-wide SIMDs.
    pub cross_lane_ns: f64,
    /// Peak streaming bandwidth one CU / core can pull from DRAM, GB/s.
    /// Per-block memory time is priced at this rate; the *device*-level
    /// bandwidth cap is enforced as a kernel-wide roofline floor rather
    /// than a per-block fair share (blocks rarely stream simultaneously).
    pub cu_stream_bw_gbps: f64,
    /// Fixed cost of one global synchronization point (the barrier at
    /// which a reduction result becomes visible to every lane), in ns.
    /// Unlike `step_latency_ns` this is *not* hidden by co-residency:
    /// at a reduction barrier every warp of the block stalls together,
    /// so there is nothing else for the CU to run.
    pub sync_ns: f64,
    /// Latency of one level of a tree reduction, in ns. An exposed
    /// reduction over `w` participants pays `ceil(log2 w)` levels on top
    /// of its synchronization; a reduction fused into (and overlapped
    /// with) an SpMV pays only the sync.
    pub reduction_ns_per_level: f64,
    /// Dispatch discipline.
    pub scheduling: Scheduling,
    /// Host link (PCIe/NVLink) bandwidth in GB/s, for the Figure 1
    /// transfer model.
    pub host_link_gbps: f64,
}

impl DeviceSpec {
    /// NVIDIA V100-16GB (Volta), as on Summit.
    pub fn v100() -> DeviceSpec {
        DeviceSpec {
            name: "NVIDIA V100-16GB",
            class: DeviceClass::NvidiaGpu,
            peak_fp64_gflops: 7_800.0,
            mem_bw_gbps: 990.0,
            l1_pool_kb: 128.0,
            shared_mem_kb: 96.0,
            unified_l1_shared: true,
            max_dynamic_shared_kb: 48.0,
            l2_mb: 6.0,
            num_cus: 80,
            warp_size: 32,
            max_resident_blocks: 2,
            launch_overhead_us: 8.0,
            warp_issue_ns: 1.4,
            step_latency_ns: 810.0,
            cross_lane_ns: 0.4,
            cu_stream_bw_gbps: 60.0,
            sync_ns: 500.0,
            reduction_ns_per_level: 60.0,
            scheduling: Scheduling::Greedy,
            host_link_gbps: 25.0, // NVLink effective per direction
        }
    }

    /// NVIDIA A100-40GB (Ampere).
    pub fn a100() -> DeviceSpec {
        DeviceSpec {
            name: "NVIDIA A100-40GB",
            class: DeviceClass::NvidiaGpu,
            peak_fp64_gflops: 9_700.0,
            mem_bw_gbps: 1_555.0,
            l1_pool_kb: 192.0,
            shared_mem_kb: 164.0,
            unified_l1_shared: true,
            max_dynamic_shared_kb: 96.0,
            l2_mb: 40.0,
            num_cus: 108,
            warp_size: 32,
            max_resident_blocks: 2,
            launch_overhead_us: 7.0,
            warp_issue_ns: 1.2,
            step_latency_ns: 700.0,
            cross_lane_ns: 0.3,
            cu_stream_bw_gbps: 80.0,
            sync_ns: 430.0,
            reduction_ns_per_level: 50.0,
            scheduling: Scheduling::Greedy,
            host_link_gbps: 25.0, // PCIe 4
        }
    }

    /// AMD MI100-32GB (CDNA).
    pub fn mi100() -> DeviceSpec {
        DeviceSpec {
            name: "AMD MI100-32GB",
            class: DeviceClass::AmdGpu,
            peak_fp64_gflops: 11_500.0,
            mem_bw_gbps: 1_230.0,
            l1_pool_kb: 16.0,
            shared_mem_kb: 64.0,
            unified_l1_shared: false,
            max_dynamic_shared_kb: 64.0,
            l2_mb: 8.0,
            num_cus: 120,
            warp_size: 64,
            max_resident_blocks: 1,
            launch_overhead_us: 10.0,
            warp_issue_ns: 2.8,
            step_latency_ns: 520.0,
            cross_lane_ns: 5.5,
            cu_stream_bw_gbps: 50.0,
            sync_ns: 650.0,
            reduction_ns_per_level: 110.0,
            scheduling: Scheduling::WaveSynchronous,
            host_link_gbps: 25.0,
        }
    }

    /// Dual-socket Intel Xeon Gold 6148 node (the paper's CPU baseline):
    /// 40 cores total, of which Kokkos uses 38 as solve workers. Each
    /// core is a "CU" with 8-wide AVX-512 FP64 vectors; the 1 MiB per-core
    /// L2 plays the role of the per-CU cache and the two 27.5 MiB L3s the
    /// role of the device L2.
    pub fn skylake_node() -> DeviceSpec {
        DeviceSpec {
            name: "2x Intel Xeon Gold 6148 (38 worker cores)",
            class: DeviceClass::CpuNode,
            peak_fp64_gflops: 2_000.0,
            mem_bw_gbps: 256.0,
            l1_pool_kb: 1_024.0,
            shared_mem_kb: 0.0,
            unified_l1_shared: false,
            max_dynamic_shared_kb: 0.0,
            l2_mb: 55.0,
            num_cus: 38,
            warp_size: 8,
            max_resident_blocks: 1,
            launch_overhead_us: 1.0, // OpenMP fork/join
            warp_issue_ns: 1.5,
            step_latency_ns: 12.0,
            cross_lane_ns: 0.5,
            cu_stream_bw_gbps: 12.0,
            sync_ns: 30.0,
            reduction_ns_per_level: 8.0,
            scheduling: Scheduling::Greedy,
            host_link_gbps: f64::INFINITY, // data already on host
        }
    }

    /// All GPUs of the paper's evaluation.
    pub fn all_gpus() -> Vec<DeviceSpec> {
        vec![Self::v100(), Self::a100(), Self::mi100()]
    }

    /// Peak FP64 per compute unit, GFLOP/s.
    pub fn cu_gflops(&self) -> f64 {
        self.peak_fp64_gflops / self.num_cus as f64
    }

    /// Fair per-CU share of main-memory bandwidth, GB/s.
    pub fn cu_mem_bw_gbps(&self) -> f64 {
        self.mem_bw_gbps / self.num_cus as f64
    }

    /// L1 data cache available to a block that carved out
    /// `shared_used_bytes` of dynamic shared memory.
    pub fn l1_available_bytes(&self, shared_used_bytes: usize) -> f64 {
        if self.unified_l1_shared {
            (self.l1_pool_kb * 1024.0 - shared_used_bytes as f64).max(0.0)
        } else {
            self.l1_pool_kb * 1024.0
        }
    }

    /// Dynamic shared memory budget per block, bytes.
    pub fn shared_budget_bytes(&self) -> usize {
        (self.max_dynamic_shared_kb * 1024.0) as usize
    }

    /// Coarse roofline prediction of one fused batched-solve chunk:
    /// `iters` iterations of a BiCGSTAB-shaped kernel (two SpMVs plus
    /// ~10 vector ops per iteration) over `batch` systems of `rows`
    /// rows and `nnz` stored entries each, priced at the worse of the
    /// compute and bandwidth roofs, plus launch overhead and the
    /// per-iteration synchronization floor.
    ///
    /// This is deliberately *not* the full timing model — it is the
    /// admission-time feasibility estimate a deadline budget is checked
    /// against, so it must be cheap, monotone in the inputs, and safe
    /// to evaluate without building a launch plan.
    pub fn predict_chunk_seconds(&self, rows: usize, nnz: usize, batch: usize, iters: u32) -> f64 {
        let batch = batch.max(1) as f64;
        let flops_per_iter = batch * (4.0 * nnz as f64 + 10.0 * rows as f64);
        let bytes_per_iter = batch * (2.0 * nnz as f64 * 12.0 + 10.0 * rows as f64 * 8.0);
        let compute_s = flops_per_iter / (self.peak_fp64_gflops * 1e9);
        let memory_s = bytes_per_iter / (self.mem_bw_gbps * 1e9);
        // Six synchronization points per classical-BiCGSTAB iteration.
        let sync_s = 6.0 * self.sync_ns * 1e-9;
        iters as f64 * (compute_s.max(memory_s) + sync_s) + self.launch_overhead_us * 1e-6
    }

    /// Table I as a formatted text table (the `repro table1` output).
    pub fn table1() -> String {
        let mut out = String::from(
            "Architecture                              | Peak FP64 | Main mem BW | (L1+shared)/CU | L2    | #CUs | warp\n",
        );
        out.push_str(
            "                                          | (TFlops)  | (GB/s)      | (KB)           | (MB)  |      |     \n",
        );
        for d in [
            Self::a100(),
            Self::v100(),
            Self::mi100(),
            Self::skylake_node(),
        ] {
            let l1s = if d.unified_l1_shared {
                format!("{:.0}", d.l1_pool_kb)
            } else if d.class == DeviceClass::AmdGpu {
                format!("{:.0}+{:.0}", d.l1_pool_kb, d.shared_mem_kb)
            } else {
                format!("{:.0}", d.l1_pool_kb)
            };
            out.push_str(&format!(
                "{:<42}| {:<10.1}| {:<12.0}| {:<15}| {:<6.1}| {:<5}| {}\n",
                d.name,
                d.peak_fp64_gflops / 1000.0,
                d.mem_bw_gbps,
                l1s,
                d.l2_mb,
                d.num_cus,
                d.warp_size
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        let a = DeviceSpec::a100();
        assert_eq!(a.peak_fp64_gflops, 9_700.0);
        assert_eq!(a.mem_bw_gbps, 1_555.0);
        assert_eq!(a.num_cus, 108);
        assert_eq!(a.l2_mb, 40.0);
        let v = DeviceSpec::v100();
        assert_eq!(v.peak_fp64_gflops, 7_800.0);
        assert_eq!(v.num_cus, 80);
        let m = DeviceSpec::mi100();
        assert_eq!(m.peak_fp64_gflops, 11_500.0);
        assert_eq!(m.num_cus, 120);
        assert_eq!(m.warp_size, 64);
    }

    #[test]
    fn nvidia_l1_shrinks_with_shared_use() {
        let v = DeviceSpec::v100();
        // Full pool when no shared memory requested.
        assert_eq!(v.l1_available_bytes(0), 128.0 * 1024.0);
        // Carving out 48 KiB leaves 80 KiB of L1.
        assert_eq!(v.l1_available_bytes(48 * 1024), 80.0 * 1024.0);
    }

    #[test]
    fn amd_l1_is_fixed() {
        let m = DeviceSpec::mi100();
        assert_eq!(m.l1_available_bytes(0), 16.0 * 1024.0);
        assert_eq!(m.l1_available_bytes(64 * 1024), 16.0 * 1024.0);
    }

    #[test]
    fn per_cu_rates() {
        let a = DeviceSpec::a100();
        assert!((a.cu_gflops() - 9700.0 / 108.0).abs() < 1e-9);
        assert!((a.cu_mem_bw_gbps() - 1555.0 / 108.0).abs() < 1e-9);
    }

    #[test]
    fn scheduling_assignment_matches_vendor() {
        assert_eq!(DeviceSpec::v100().scheduling, Scheduling::Greedy);
        assert_eq!(DeviceSpec::mi100().scheduling, Scheduling::WaveSynchronous);
    }

    #[test]
    fn chunk_prediction_is_positive_and_monotone() {
        let v = DeviceSpec::v100();
        let base = v.predict_chunk_seconds(992, 4960, 64, 35);
        assert!(base > v.launch_overhead_us * 1e-6, "includes launch cost");
        assert!(base < 1.0, "a single chunk stays far under a second");
        // Monotone in every input the admission check varies over.
        assert!(v.predict_chunk_seconds(992, 4960, 128, 35) > base);
        assert!(v.predict_chunk_seconds(992, 4960, 64, 70) > base);
        assert!(v.predict_chunk_seconds(1984, 9920, 64, 35) > base);
        // A faster device predicts a cheaper chunk.
        let a = DeviceSpec::a100();
        assert!(a.predict_chunk_seconds(992, 4960, 64, 35) < base);
    }

    #[test]
    fn table1_renders_all_rows() {
        let t = DeviceSpec::table1();
        assert!(t.contains("A100"));
        assert!(t.contains("V100"));
        assert!(t.contains("MI100"));
        assert!(t.contains("6148"));
        assert!(t.contains("16+64")); // AMD split L1/LDS notation
    }
}
