//! Block-to-CU scheduling and kernel makespan.
//!
//! The per-system convergence monitoring of the paper means blocks of one
//! launch have *different* durations (ion systems converge in ~5
//! iterations, electrons in ~30). How the hardware packs those blocks
//! onto compute units decides the shape of Figure 6:
//!
//! * NVIDIA parts re-dispatch greedily, absorbing the imbalance — smooth
//!   curves;
//! * the MI100 in our model dispatches wave-synchronously — hard steps at
//!   batch sizes that are multiples of its 120 CUs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::device::{DeviceSpec, Scheduling};

/// Makespan (seconds) of running `durations` (one entry per block) on
/// `slots` parallel executors under the given discipline.
pub fn makespan(durations: &[f64], slots: u32, discipline: Scheduling) -> f64 {
    assert!(slots > 0, "device must have at least one slot");
    if durations.is_empty() {
        return 0.0;
    }
    match discipline {
        Scheduling::Greedy => greedy_makespan(durations, slots as usize),
        Scheduling::WaveSynchronous => wave_makespan(durations, slots as usize),
    }
}

/// Greedy list scheduling: each finishing slot immediately takes the next
/// block in submission order.
fn greedy_makespan(durations: &[f64], slots: usize) -> f64 {
    // Min-heap of slot finish times, keyed on bit-ordered f64 (durations
    // are non-negative and finite).
    let mut heap: BinaryHeap<Reverse<OrderedF64>> = (0..slots.min(durations.len()))
        .map(|_| Reverse(OrderedF64(0.0)))
        .collect();
    let mut last = 0.0f64;
    for &d in durations {
        let Reverse(OrderedF64(free_at)) = heap.pop().expect("heap non-empty");
        let end = free_at + d;
        last = last.max(end);
        heap.push(Reverse(OrderedF64(end)));
    }
    last
}

/// Wave-synchronous: consecutive groups of `slots` blocks form waves, and
/// each wave costs its slowest member.
fn wave_makespan(durations: &[f64], slots: usize) -> f64 {
    durations
        .chunks(slots)
        .map(|wave| wave.iter().cloned().fold(0.0f64, f64::max))
        .sum()
}

/// Convenience: makespan on a device given per-block shared usage.
pub fn device_makespan(
    device: &DeviceSpec,
    durations: &[f64],
    shared_per_block_bytes: usize,
) -> f64 {
    let slots = crate::occupancy::total_slots(device, shared_per_block_bytes);
    makespan(durations, slots, device.scheduling)
}

/// Total-order wrapper for non-NaN f64 durations.
#[derive(PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("durations are not NaN")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_slot_is_sequential() {
        let d = [1.0, 2.0, 3.0];
        assert_eq!(makespan(&d, 1, Scheduling::Greedy), 6.0);
        assert_eq!(makespan(&d, 1, Scheduling::WaveSynchronous), 6.0);
    }

    #[test]
    fn uniform_blocks_step_at_slot_multiples() {
        // 120 slots, uniform 1s blocks: 120 blocks take 1s, 121 take 2s —
        // the MI100 step pattern.
        let slots = 120;
        let d120 = vec![1.0; 120];
        let d121 = vec![1.0; 121];
        assert_eq!(makespan(&d120, slots, Scheduling::WaveSynchronous), 1.0);
        assert_eq!(makespan(&d121, slots, Scheduling::WaveSynchronous), 2.0);
        // Greedy has the same behavior for *uniform* durations.
        assert_eq!(makespan(&d121, slots, Scheduling::Greedy), 2.0);
    }

    #[test]
    fn greedy_absorbs_heterogeneity_better_than_waves() {
        // One slow (electron-like) block followed by fast (ion-like) ones
        // on two slots: greedy packs the fast blocks behind each other
        // while the slow one runs; wave-sync pays the slow block's time in
        // its wave and then runs the fast remainder in extra waves.
        let durations = [6.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let greedy = makespan(&durations, 2, Scheduling::Greedy);
        let wave = makespan(&durations, 2, Scheduling::WaveSynchronous);
        assert_eq!(greedy, 6.0);
        assert_eq!(wave, 6.0 + 1.0 + 1.0);
        assert!(greedy < wave);
    }

    #[test]
    fn greedy_never_loses_to_waves() {
        // Greedy list scheduling dominates wave-sync for any duration mix.
        let durations: Vec<f64> = (0..333)
            .map(|i| 0.5 + ((i * 2654435761u64 as usize) % 97) as f64 * 0.07)
            .collect();
        for slots in [1, 7, 38, 80, 120] {
            let g = makespan(&durations, slots, Scheduling::Greedy);
            let w = makespan(&durations, slots, Scheduling::WaveSynchronous);
            assert!(g <= w + 1e-12, "slots={slots}: greedy {g} > wave {w}");
        }
    }

    #[test]
    fn makespan_bounds() {
        // Lower bound: max(total/slots, longest). Upper: total.
        let d: Vec<f64> = (1..=37).map(|i| (i % 7 + 1) as f64 * 0.3).collect();
        let slots = 8;
        let total: f64 = d.iter().sum();
        let longest = d.iter().cloned().fold(0.0, f64::max);
        for sched in [Scheduling::Greedy, Scheduling::WaveSynchronous] {
            let m = makespan(&d, slots, sched);
            assert!(m >= longest - 1e-12);
            assert!(m >= total / slots as f64 - 1e-12);
            assert!(m <= total + 1e-12);
        }
    }

    #[test]
    fn empty_batch_is_free() {
        assert_eq!(makespan(&[], 4, Scheduling::Greedy), 0.0);
    }

    #[test]
    fn device_makespan_uses_occupancy() {
        let v = DeviceSpec::v100();
        // 2 resident blocks per CU at small shared usage → 160 slots.
        let d = vec![1.0; 160];
        assert_eq!(device_makespan(&v, &d, 1024), 1.0);
        // At 50 KiB shared per block, only 80 slots → two rounds.
        assert_eq!(device_makespan(&v, &d, 50 * 1024), 2.0);
    }
}
