//! Multi-device batch partitioning.
//!
//! The collision kernel is embarrassingly parallel over mesh nodes, and
//! production XGC distributes it with MPI: on Summit, each node drives
//! six V100s. This module models that deployment: a batch is split
//! across devices, each device prices its share independently (there is
//! no inter-device communication inside the solve), and the step costs
//! the slowest device plus a per-step coordination overhead.

use batsolv_trace::EventKind;

use crate::device::DeviceSpec;
use crate::model::{BlockStats, KernelReport, SimKernel};
use crate::timeline::kernel_launch_event;

/// A set of devices working one batch together.
#[derive(Clone, Debug)]
pub struct MultiGpu {
    /// The devices (usually homogeneous, e.g. 6 × V100).
    pub devices: Vec<DeviceSpec>,
    /// Per-step host coordination overhead (MPI barrier + launch fan-out),
    /// seconds.
    pub coordination_s: f64,
}

/// Result of a multi-device launch.
#[derive(Clone, Debug)]
pub struct MultiGpuReport {
    /// Makespan across devices (+ coordination), seconds.
    pub time_s: f64,
    /// Each device's own kernel report, in device order.
    pub per_device: Vec<KernelReport>,
    /// How many blocks each device received.
    pub blocks_per_device: Vec<usize>,
}

impl MultiGpuReport {
    /// Fold the per-device [`KernelReport`]s into one shard-tagged
    /// [`EventKind::KernelLaunch`] per device, so a multi-GPU launch
    /// renders as one chrome-trace timeline lane per device instead of
    /// collapsing onto a single device lane.
    ///
    /// `gpus` must be the device set this report was priced on; device
    /// `i` becomes shard `i`. Launch sequence numbers run
    /// `base_seq .. base_seq + devices`.
    pub fn launch_events(
        &self,
        gpus: &MultiGpu,
        solver: &'static str,
        base_seq: u64,
        shared_per_block: usize,
        syncs_per_iteration: f64,
    ) -> Vec<EventKind> {
        assert_eq!(gpus.devices.len(), self.per_device.len());
        gpus.devices
            .iter()
            .zip(self.per_device.iter())
            .zip(self.blocks_per_device.iter())
            .enumerate()
            .map(|(i, ((device, report), &blocks))| {
                kernel_launch_event(
                    base_seq + i as u64,
                    solver,
                    device,
                    blocks,
                    shared_per_block,
                    0,
                    syncs_per_iteration,
                    report,
                )
                .with_shard(i as u32)
            })
            .collect()
    }
}

impl MultiGpu {
    /// A Summit-style node: six V100s.
    pub fn summit_node() -> MultiGpu {
        MultiGpu {
            devices: vec![DeviceSpec::v100(); 6],
            coordination_s: 25e-6,
        }
    }

    /// `count` copies of `device`.
    pub fn homogeneous(device: DeviceSpec, count: usize) -> MultiGpu {
        assert!(count >= 1);
        MultiGpu {
            devices: vec![device; count],
            coordination_s: 25e-6,
        }
    }

    /// Price a batched kernel split round-robin across the devices.
    ///
    /// Round-robin (rather than contiguous chunks) mirrors how XGC
    /// distributes mesh nodes and keeps each device's ion/electron mix
    /// representative.
    pub fn price(&self, blocks: &[BlockStats], shared_per_block: usize) -> MultiGpuReport {
        let k = self.devices.len();
        let mut partitions: Vec<Vec<BlockStats>> = vec![Vec::new(); k];
        for (i, b) in blocks.iter().enumerate() {
            partitions[i % k].push(b.clone());
        }
        let per_device: Vec<KernelReport> = self
            .devices
            .iter()
            .zip(partitions.iter())
            .map(|(d, part)| SimKernel::new(d, shared_per_block).price(part))
            .collect();
        let makespan = per_device.iter().map(|r| r.time_s).fold(0.0f64, f64::max);
        MultiGpuReport {
            time_s: makespan + self.coordination_s,
            blocks_per_device: partitions.iter().map(Vec::len).collect(),
            per_device,
        }
    }

    /// Strong-scaling efficiency against a single device of the first
    /// kind: `t(1) / (k · t(k))`.
    pub fn strong_scaling_efficiency(&self, blocks: &[BlockStats], shared_per_block: usize) -> f64 {
        let single = SimKernel::new(&self.devices[0], shared_per_block)
            .price(blocks)
            .time_s;
        let multi = self.price(blocks, shared_per_block).time_s;
        single / (self.devices.len() as f64 * multi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::TrafficProfile;
    use batsolv_types::OpCounts;

    fn block(warp_ops: u64, steps: u64) -> BlockStats {
        let mut counts = OpCounts::ZERO;
        counts.lane_total = warp_ops * 32;
        counts.lane_active = warp_ops * 28;
        counts.flops = warp_ops * 20;
        BlockStats {
            iterations: 10,
            converged: true,
            syncs: 0,
            reductions: 0,
            hidden_reductions: 0,
            counts,
            dependent_steps: steps,
            traffic: TrafficProfile {
                ro_working_set: 100 * 1024,
                shared_ro_working_set: 30 * 1024,
                ro_requested: 1024 * 1024,
                rw_working_set: 16 * 1024,
                rw_requested: 64 * 1024,
                write_once: 8 * 1024,
                shared_bytes: 0,
            },
        }
    }

    #[test]
    fn six_gpus_scale_a_big_batch_nearly_linearly() {
        let node = MultiGpu::summit_node();
        let blocks = vec![block(5000, 300); 2880]; // 6 × 480
        let eff = node.strong_scaling_efficiency(&blocks, 40 * 1024);
        assert!(eff > 0.8, "efficiency {eff}");
    }

    #[test]
    fn small_batches_scale_poorly() {
        // 30 blocks across 6 × 80-CU GPUs: each device is mostly idle, a
        // single V100 would have absorbed them in one wave anyway.
        let node = MultiGpu::summit_node();
        let blocks = vec![block(5000, 300); 30];
        let eff = node.strong_scaling_efficiency(&blocks, 40 * 1024);
        assert!(eff < 0.5, "efficiency {eff}");
    }

    #[test]
    fn round_robin_distributes_evenly() {
        let node = MultiGpu::homogeneous(DeviceSpec::a100(), 4);
        let blocks = vec![block(100, 10); 10];
        let rep = node.price(&blocks, 0);
        assert_eq!(rep.blocks_per_device, vec![3, 3, 2, 2]);
        assert_eq!(rep.per_device.len(), 4);
    }

    #[test]
    fn heterogeneous_mix_is_balanced_by_round_robin() {
        // Alternating fast/slow blocks on an odd device count: the
        // round-robin stride interleaves both kinds onto every device,
        // so device makespans stay close.
        let node = MultiGpu::homogeneous(DeviceSpec::v100(), 3);
        let blocks: Vec<BlockStats> = (0..402)
            .map(|i| {
                if i % 2 == 0 {
                    block(500, 60)
                } else {
                    block(3000, 360)
                }
            })
            .collect();
        let rep = node.price(&blocks, 40 * 1024);
        let times: Vec<f64> = rep.per_device.iter().map(|r| r.time_s).collect();
        let tmax = times.iter().cloned().fold(0.0f64, f64::max);
        let tmin = times.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(tmax - tmin < 0.1 * tmax, "device times {times:?}");
    }

    #[test]
    fn coordination_floor_shows_at_tiny_batches() {
        let node = MultiGpu::summit_node();
        let rep = node.price(&[block(10, 2)], 0);
        assert!(rep.time_s >= node.coordination_s);
    }

    #[test]
    fn launch_events_tag_one_lane_per_device() {
        let node = MultiGpu::homogeneous(DeviceSpec::v100(), 4);
        let blocks = vec![block(100, 10); 10];
        let rep = node.price(&blocks, 0);
        let events = rep.launch_events(&node, "bicgstab", 7, 0, 6.0);
        assert_eq!(events.len(), 4);
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.shard(), Some(i as u32));
            match ev {
                EventKind::KernelLaunch { seq, blocks, .. } => {
                    assert_eq!(*seq, 7 + i as u64);
                    assert_eq!(*blocks, rep.blocks_per_device[i]);
                }
                other => panic!("wrong kind: {other:?}"),
            }
        }
    }
}
