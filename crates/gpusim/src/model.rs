//! The kernel timing model.
//!
//! A batched solve is one kernel launch; each batch system is one thread
//! block (Section IV.C of the paper). Block `i` reports what it did
//! ([`BlockStats`]); the model prices each block on the device, schedules
//! the blocks onto compute units, and returns the simulated kernel time
//! together with the profiler-style metrics of Table II.

use batsolv_types::OpCounts;

use crate::cache::{cache_outcome, TrafficProfile};
use crate::device::DeviceSpec;
use crate::occupancy::{resident_blocks_per_cu, total_slots};
use crate::schedule::makespan;

/// Everything one block (= one batch system) did during the kernel.
#[derive(Clone, Debug, Default)]
pub struct BlockStats {
    /// Solver iterations this system needed (per-system convergence).
    pub iterations: u32,
    /// Whether the system reached its tolerance.
    pub converged: bool,
    /// Arithmetic / lane-occupancy totals over the block's lifetime.
    pub counts: OpCounts,
    /// Number of serialized stages (dependent vector ops separated by
    /// block synchronization) the block executed.
    pub dependent_steps: u64,
    /// Global synchronization points (reduction barriers) the block
    /// executed. Each costs [`DeviceSpec::sync_ns`], never hidden by
    /// co-residency.
    pub syncs: u64,
    /// Exposed tree reductions: each pays `depth(rows × batch)` levels
    /// of reduction latency on top of its sync.
    pub reductions: u64,
    /// Reductions fused into (and overlapped with) an SpMV — the
    /// pipelined-solver trick. They pay only their sync; counted here so
    /// the profiler totals stay honest.
    pub hidden_reductions: u64,
    /// Memory-traffic description for the cache model.
    pub traffic: TrafficProfile,
}

/// A kernel to be priced: the device it runs on, the per-block dynamic
/// shared memory carve-out, and how many launches the operation needed
/// (the paper's fused solver needs exactly one).
#[derive(Clone, Debug)]
pub struct SimKernel<'a> {
    /// Target device.
    pub device: &'a DeviceSpec,
    /// Dynamic shared memory per block, bytes.
    pub shared_per_block: usize,
    /// Number of kernel launches (launch overhead is paid per launch).
    pub launches: u32,
    /// Rows per system, the per-block width of reduction trees. The
    /// device-wide tree spans `reduction_width × concurrent blocks`
    /// participants (rows × batch). 0 when the kernel performs no
    /// reductions.
    pub reduction_width: u64,
}

/// Result of pricing a kernel.
#[derive(Clone, Debug)]
pub struct KernelReport {
    /// Total simulated time: launches + makespan, seconds.
    pub time_s: f64,
    /// Scheduling makespan alone, seconds.
    pub makespan_s: f64,
    /// Launch overhead component, seconds.
    pub launch_s: f64,
    /// Lane (warp/wavefront) utilization, weighted over all blocks —
    /// Table II column 1.
    pub warp_utilization: f64,
    /// Aggregate L1 hit rate — Table II column 2.
    pub l1_hit_rate: f64,
    /// Aggregate L2 hit rate — Table II column 3.
    pub l2_hit_rate: f64,
    /// Total DRAM traffic, bytes.
    pub dram_bytes: u64,
    /// Total floating-point operations.
    pub flops: u64,
    /// Achieved FP64 rate, GFLOP/s (flops / time).
    pub achieved_gflops: f64,
    /// Synchronization points on the critical path (max over blocks —
    /// blocks sync independently, so the slowest block's count is the
    /// launch's count).
    pub syncs: u64,
    /// Reductions on the critical path (exposed + hidden, max over
    /// blocks).
    pub reductions: u64,
    /// Sync + exposed-reduction time of the critical block, seconds.
    pub sync_s: f64,
    /// Per-block simulated durations, seconds (for ablation plots).
    pub block_times: Vec<f64>,
}

impl<'a> SimKernel<'a> {
    /// Construct with one launch (the fused-solver default).
    pub fn new(device: &'a DeviceSpec, shared_per_block: usize) -> Self {
        SimKernel {
            device,
            shared_per_block,
            launches: 1,
            reduction_width: 0,
        }
    }

    /// Set the per-system reduction width (rows), enabling tree-depth
    /// pricing of exposed reductions.
    pub fn with_reduction_width(mut self, rows: u64) -> Self {
        self.reduction_width = rows;
        self
    }

    /// Sync + exposed-reduction time of one block, seconds.
    fn sync_time(&self, stats: &BlockStats, concurrent_blocks: u32) -> f64 {
        if stats.syncs == 0 && stats.reductions == 0 {
            return 0.0;
        }
        let width = self.reduction_width.max(1) * concurrent_blocks.max(1) as u64;
        stats.syncs as f64 * crate::sync::sync_time_s(self.device)
            + stats.reductions as f64 * crate::sync::reduction_time_s(self.device, width)
    }

    /// Time one block in isolation (before scheduling), seconds.
    ///
    /// `concurrent_blocks` is how many blocks contend for L2/DRAM.
    pub fn block_time(&self, stats: &BlockStats, concurrent_blocks: u32) -> f64 {
        let d = self.device;
        let resident = resident_blocks_per_cu(d, self.shared_per_block).max(1) as f64;

        // Instruction issue: every warp instruction costs warp_issue_ns on
        // the CU; cross-lane exchanges (reduction shuffles) pay a
        // device-specific surcharge; co-resident blocks share the pipes.
        let warp_ops = stats.counts.lane_total as f64 / d.warp_size as f64;
        let instr_t = (warp_ops * d.warp_issue_ns
            + stats.counts.cross_warp_ops as f64 * d.cross_lane_ns)
            * 1e-9
            * resident;

        // Memory: the block streams its DRAM traffic at the CU's own
        // streaming rate (device-level bandwidth saturation is enforced
        // as a kernel-wide floor in `price`), plus a faster L2 term.
        let cache = cache_outcome(d, &stats.traffic, self.shared_per_block, concurrent_blocks);
        let cu_bw = d.cu_stream_bw_gbps * 1e9;
        let mem_t = cache.dram_bytes as f64 / cu_bw + cache.l2_bytes as f64 / (4.0 * cu_bw);

        // Serialized-stage latency: pipeline drain + block sync between
        // dependent vector operations. Co-residency hides part of it.
        let lat_t = stats.dependent_steps as f64 * d.step_latency_ns * 1e-9 / resident;

        // Reduction barriers and exposed tree reductions: dependency
        // latency, NOT divided by residency (every warp of the block
        // stalls at the barrier together).
        let sync_t = self.sync_time(stats, concurrent_blocks);

        instr_t.max(mem_t) + lat_t + sync_t
    }

    /// Price the whole kernel.
    pub fn price(&self, blocks: &[BlockStats]) -> KernelReport {
        let d = self.device;
        let concurrent = (blocks.len() as u32).min(total_slots(d, self.shared_per_block));
        let block_times: Vec<f64> = blocks
            .iter()
            .map(|b| self.block_time(b, concurrent.max(1)))
            .collect();
        let slots = total_slots(d, self.shared_per_block);
        let sched_makespan = makespan(&block_times, slots, d.scheduling);
        let launch_s = self.launches as f64 * d.launch_overhead_us * 1e-6;

        // Aggregate metrics.
        let mut lane_active = 0u64;
        let mut lane_total = 0u64;
        let mut flops = 0u64;
        let mut dram = 0u64;
        let mut req = 0.0f64;
        let mut l1h = 0.0f64;
        let mut miss = 0.0f64;
        let mut l2h = 0.0f64;
        for b in blocks {
            lane_active += b.counts.lane_active;
            lane_total += b.counts.lane_total;
            flops += b.counts.flops;
            let o = cache_outcome(d, &b.traffic, self.shared_per_block, concurrent.max(1));
            dram += o.dram_bytes;
            let r = b.traffic.requested() as f64;
            req += r;
            l1h += o.l1_hit_rate * r;
            let m = r * (1.0 - o.l1_hit_rate);
            miss += m;
            l2h += o.l2_hit_rate * m;
        }
        // Kernel-wide bandwidth roofline: the whole launch cannot finish
        // faster than its aggregate DRAM traffic at device bandwidth.
        let bw_floor = dram as f64 / (d.mem_bw_gbps * 1e9);
        let makespan_s = sched_makespan.max(bw_floor);
        let time_s = makespan_s + launch_s;

        // Sync/reduction counters: blocks synchronize independently, so
        // the launch executes as many sync points as its slowest block.
        let syncs = blocks.iter().map(|b| b.syncs).max().unwrap_or(0);
        let reductions = blocks
            .iter()
            .map(|b| b.reductions + b.hidden_reductions)
            .max()
            .unwrap_or(0);
        let sync_s = blocks
            .iter()
            .map(|b| self.sync_time(b, concurrent.max(1)))
            .fold(0.0f64, f64::max);
        KernelReport {
            time_s,
            makespan_s,
            launch_s,
            warp_utilization: if lane_total == 0 {
                1.0
            } else {
                lane_active as f64 / lane_total as f64
            },
            l1_hit_rate: if req == 0.0 { 0.0 } else { l1h / req },
            l2_hit_rate: if miss == 0.0 { 0.0 } else { l2h / miss },
            dram_bytes: dram,
            flops,
            achieved_gflops: if time_s > 0.0 {
                flops as f64 / time_s / 1e9
            } else {
                0.0
            },
            syncs,
            reductions,
            sync_s,
            block_times,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(warp_ops: u64, steps: u64, ws_kb: u64, passes: u64, warp: u64) -> BlockStats {
        let mut counts = OpCounts::ZERO;
        counts.lane_total = warp_ops * warp;
        counts.lane_active = warp_ops * warp;
        counts.flops = warp_ops * warp;
        BlockStats {
            iterations: passes as u32,
            converged: true,
            syncs: 0,
            reductions: 0,
            hidden_reductions: 0,
            counts,
            dependent_steps: steps,
            traffic: TrafficProfile {
                ro_working_set: ws_kb * 1024,
                ro_requested: ws_kb * 1024 * passes,
                ..Default::default()
            },
        }
    }

    #[test]
    fn more_blocks_take_longer() {
        let v = DeviceSpec::v100();
        let k = SimKernel::new(&v, 40 * 1024);
        let one = k.price(&[block(1000, 100, 100, 10, 32)]);
        let many = k.price(&vec![block(1000, 100, 100, 10, 32); 2000]);
        assert!(many.time_s > one.time_s);
        // But far less than 2000x: the device parallelizes over CUs.
        assert!(many.time_s < one.time_s * 200.0);
    }

    #[test]
    fn launch_overhead_dominates_tiny_batches() {
        let v = DeviceSpec::v100();
        let k = SimKernel::new(&v, 0);
        let r = k.price(&[block(10, 2, 1, 1, 32)]);
        assert!(r.launch_s > 0.5 * r.time_s);
    }

    #[test]
    fn more_iterations_cost_more() {
        let v = DeviceSpec::v100();
        let k = SimKernel::new(&v, 40 * 1024);
        let fast = k.price(&vec![block(500, 50, 100, 5, 32); 80]);
        let slow = k.price(&vec![block(3000, 300, 100, 30, 32); 80]);
        assert!(slow.time_s > 3.0 * fast.time_s);
    }

    #[test]
    fn wave_steps_on_mi100() {
        let m = DeviceSpec::mi100();
        let k = SimKernel::new(&m, 40 * 1024);
        let b = block(1000, 100, 100, 10, 64);
        let t120 = k.price(&vec![b.clone(); 120]).makespan_s;
        let t121 = k.price(&vec![b.clone(); 121]).makespan_s;
        let t240 = k.price(&vec![b; 240]).makespan_s;
        // One extra block beyond a full wave costs a whole extra wave.
        assert!(t121 > 1.8 * t120, "t121={t121} t120={t120}");
        assert!((t240 / t121 - 1.0).abs() < 0.2);
    }

    #[test]
    fn greedy_v100_has_no_hard_step() {
        let v = DeviceSpec::v100();
        let k = SimKernel::new(&v, 50 * 1024); // 1 block/CU → 80 slots
                                               // Heterogeneous durations (ion/electron mix) — greedy smooths.
        let blocks: Vec<BlockStats> = (0..161)
            .map(|i| {
                if i % 2 == 0 {
                    block(500, 60, 100, 5, 32)
                } else {
                    block(3000, 360, 100, 30, 32)
                }
            })
            .collect();
        let t160 = k.price(&blocks[..160]).makespan_s;
        let t161 = k.price(&blocks).makespan_s;
        // The 161st block slots into an idle CU; no doubling.
        assert!(t161 < 1.3 * t160, "t161={t161} t160={t160}");
    }

    #[test]
    fn metrics_are_sane() {
        let a = DeviceSpec::a100();
        let k = SimKernel::new(&a, 64 * 1024);
        let r = k.price(&vec![block(900, 90, 115, 30, 32); 500]);
        assert!(r.warp_utilization > 0.0 && r.warp_utilization <= 1.0);
        assert!(r.l1_hit_rate >= 0.0 && r.l1_hit_rate <= 1.0);
        assert!(r.l2_hit_rate >= 0.0 && r.l2_hit_rate <= 1.0);
        assert!(r.dram_bytes > 0);
        assert!(r.achieved_gflops > 0.0);
        assert_eq!(r.block_times.len(), 500);
    }

    #[test]
    fn exposed_syncs_add_unhidden_latency() {
        let v = DeviceSpec::v100();
        let k = SimKernel::new(&v, 40 * 1024).with_reduction_width(992);
        let plain = block(1000, 100, 100, 10, 32);
        let mut synced = plain.clone();
        synced.syncs = 30;
        synced.reductions = 30;
        let t0 = k.price(&vec![plain; 64]).time_s;
        let r1 = k.price(&vec![synced; 64]);
        // Each sync pays the full fixed cost (no residency hiding), each
        // exposed reduction at least one tree level on top.
        assert!(
            r1.time_s > t0 + 30.0 * v.sync_ns * 1e-9,
            "{} {}",
            r1.time_s,
            t0
        );
        assert_eq!(r1.syncs, 30);
        assert_eq!(r1.reductions, 30);
        assert!(r1.sync_s > 0.0);
    }

    #[test]
    fn hidden_reductions_pay_only_their_sync() {
        let v = DeviceSpec::v100();
        let k = SimKernel::new(&v, 40 * 1024).with_reduction_width(992);
        let mut exposed = block(1000, 100, 100, 10, 32);
        exposed.syncs = 30;
        exposed.reductions = 30;
        let mut hidden = block(1000, 100, 100, 10, 32);
        hidden.syncs = 30;
        hidden.hidden_reductions = 30;
        let te = k.price(&vec![exposed; 64]);
        let th = k.price(&vec![hidden; 64]);
        // Overlapping the tree with the SpMV removes the depth term...
        assert!(th.time_s < te.time_s);
        // ...but the profiler still counts the reductions.
        assert_eq!(th.reductions, 30);
    }

    #[test]
    fn reduction_cost_grows_logarithmically_with_batch() {
        let v = DeviceSpec::v100();
        let k = SimKernel::new(&v, 40 * 1024).with_reduction_width(992);
        let mut b = block(100, 10, 100, 1, 32);
        b.syncs = 100;
        b.reductions = 100;
        let t8 = k.price(&vec![b.clone(); 8]);
        let t64 = k.price(&vec![b; 64]);
        // 8x the batch adds 3 tree levels, not 8x the reduction time.
        assert!(t64.sync_s > t8.sync_s);
        assert!(t64.sync_s < 1.5 * t8.sync_s, "{} {}", t64.sync_s, t8.sync_s);
    }

    #[test]
    fn sync_free_kernels_price_unchanged() {
        // Non-solver kernels (SpMV benches, transfers) carry zero sync
        // counts and must price exactly as before.
        let v = DeviceSpec::v100();
        let k = SimKernel::new(&v, 40 * 1024);
        let r = k.price(&vec![block(1000, 100, 100, 10, 32); 64]);
        assert_eq!(r.syncs, 0);
        assert_eq!(r.reductions, 0);
        assert_eq!(r.sync_s, 0.0);
    }

    #[test]
    fn per_entry_time_falls_with_batch_size() {
        // The right panel of Figure 6: time per system decreases until the
        // GPU saturates.
        let a = DeviceSpec::a100();
        let k = SimKernel::new(&a, 64 * 1024);
        let b = block(900, 90, 115, 30, 32);
        let t16 = k.price(&vec![b.clone(); 16]).time_s / 16.0;
        let t1024 = k.price(&vec![b; 1024]).time_s / 1024.0;
        assert!(t1024 < t16 / 2.0, "per-entry {t1024} vs {t16}");
    }
}
