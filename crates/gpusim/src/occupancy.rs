//! Occupancy: how many blocks fit on one compute unit.

use crate::device::DeviceSpec;

/// Number of thread blocks simultaneously resident on one CU, limited by
/// the hardware cap and by the dynamic shared memory each block carves
/// out. Always at least one (a block that over-asks simply runs alone —
/// validation of the request against `shared_budget_bytes` happens in the
/// solver's workspace planner).
pub fn resident_blocks_per_cu(device: &DeviceSpec, shared_per_block_bytes: usize) -> u32 {
    let cap = device.max_resident_blocks.max(1);
    if shared_per_block_bytes == 0 {
        return cap;
    }
    let pool = device.shared_mem_kb * 1024.0;
    let by_shared = (pool / shared_per_block_bytes as f64).floor() as u32;
    by_shared.clamp(1, cap)
}

/// Total concurrent block slots on the device.
pub fn total_slots(device: &DeviceSpec, shared_per_block_bytes: usize) -> u32 {
    device.num_cus * resident_blocks_per_cu(device, shared_per_block_bytes)
}

/// Register file capacity per CU (32-bit registers). 64K on every GPU of
/// Table I (V100/A100 SMs and CDNA CUs alike); irrelevant for the CPU.
pub const REGISTERS_PER_CU: u32 = 65_536;

/// Threads per block the register budget allows, given the kernel's
/// per-thread register usage — the paper's Section IV.E constraint
/// ("there is a limit to how many threads can be used to solve one batch
/// entry", set by register pressure).
///
/// The fused BiCGSTAB kernel is register-hungry (~64–96 registers per
/// thread: solver scalars, pointers into 9 vectors, loop state), which
/// caps a block well below the architectural 1024-thread maximum.
pub fn max_threads_per_block(registers_per_thread: u32) -> u32 {
    if registers_per_thread == 0 {
        return 1024;
    }
    (REGISTERS_PER_CU / registers_per_thread).clamp(32, 1024)
}

/// Warps per block for a device, given register pressure and the row
/// count (one thread per row is the natural ELL mapping; more threads
/// than rows are wasted).
pub fn warps_per_block(device: &DeviceSpec, registers_per_thread: u32, num_rows: usize) -> u32 {
    let by_regs = max_threads_per_block(registers_per_thread);
    let wanted = (num_rows as u32).min(by_regs);
    wanted.div_ceil(device.warp_size).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_shared_gives_hardware_cap() {
        let v = DeviceSpec::v100();
        assert_eq!(resident_blocks_per_cu(&v, 0), 2);
    }

    #[test]
    fn big_shared_footprint_means_one_block() {
        let v = DeviceSpec::v100();
        // 48 KiB per block: 96 KiB pool fits 2, but 50 KiB fits only 1.
        assert_eq!(resident_blocks_per_cu(&v, 48 * 1024), 2);
        assert_eq!(resident_blocks_per_cu(&v, 50 * 1024), 1);
    }

    #[test]
    fn oversized_request_still_runs_alone() {
        let v = DeviceSpec::v100();
        assert_eq!(resident_blocks_per_cu(&v, 10 * 1024 * 1024), 1);
    }

    #[test]
    fn mi100_slots_are_120() {
        let m = DeviceSpec::mi100();
        // One resident block per CU (hardware cap in our model).
        assert_eq!(total_slots(&m, 40 * 1024), 120);
    }

    #[test]
    fn skylake_is_one_block_per_core() {
        let s = DeviceSpec::skylake_node();
        assert_eq!(total_slots(&s, 0), 38);
    }

    #[test]
    fn register_pressure_caps_block_size() {
        // The fused BiCGSTAB kernel at ~80 regs/thread: 819 threads max,
        // well under the architectural 1024.
        assert_eq!(max_threads_per_block(80), 819);
        // Lightweight kernels hit the architectural cap instead.
        assert_eq!(max_threads_per_block(16), 1024);
        assert_eq!(max_threads_per_block(0), 1024);
        // Pathological register use still leaves one warp.
        assert_eq!(max_threads_per_block(4096), 32);
    }

    #[test]
    fn warps_per_block_follows_rows_until_registers_bind() {
        let v = DeviceSpec::v100();
        // 992 rows at 64 regs/thread: 992 threads wanted, 1024 allowed →
        // 31 warps, one thread per row.
        assert_eq!(warps_per_block(&v, 64, 992), 31);
        // At 96 regs/thread only 682 threads fit → 22 warps; the kernel
        // must loop rows over threads.
        assert_eq!(warps_per_block(&v, 96, 992), 22);
        // Small systems need few warps regardless.
        assert_eq!(warps_per_block(&v, 64, 100), 4);
        // AMD's 64-wide wavefronts halve the warp count.
        let m = DeviceSpec::mi100();
        assert_eq!(warps_per_block(&m, 64, 992), 16);
    }
}
