//! Launch-disruption hooks.
//!
//! A fused batched kernel is one launch: once it is in flight, nothing
//! inside it can be cancelled or retried (the Rupp et al. observation
//! that kernel fusion pushes all fault handling to the dispatch layer).
//! This module gives the dispatch layer a seam to exercise exactly that:
//! a [`LaunchHook`] is consulted immediately before a fused launch and
//! may let it proceed, fail it like a device/launch error, stall it, or
//! panic the launching worker. Production runs use [`NoDisruption`]
//! (zero cost); chaos runs plug in a seeded fault plan.

use std::time::Duration;

/// What a [`LaunchHook`] decided to do to a launch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LaunchDisruption {
    /// Launch normally.
    Proceed,
    /// Simulate a device-side launch failure (e.g.
    /// `cudaErrorLaunchFailure`): the dispatch must fail the whole batch
    /// with a structured error — per-system recovery is impossible.
    DeviceFail {
        /// Short machine-readable failure code.
        code: &'static str,
    },
    /// Simulate a host-side crash while the launch is being issued: the
    /// hook caller is expected to `panic!`, exercising the supervisor's
    /// panic-isolation path.
    Panic {
        /// Panic payload text.
        reason: String,
    },
    /// Simulate a stuck launch: the dispatch blocks this long before the
    /// kernel makes progress (a few pathological systems stalling the
    /// shared launch — the Adams et al. failure mode).
    Stall(Duration),
}

/// Pre-launch hook consulted by batch dispatchers.
///
/// `launch_ids` are the dispatcher-assigned ids of the systems fused
/// into this launch, so an implementation can make per-system-
/// deterministic decisions (the same poisoned request disrupts its
/// launch no matter which batch it lands in).
pub trait LaunchHook: Send + Sync {
    /// Decide the fate of a launch carrying these systems.
    fn disrupt(&self, launch_ids: &[u64]) -> LaunchDisruption;
}

/// The production hook: never disrupts anything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoDisruption;

impl LaunchHook for NoDisruption {
    fn disrupt(&self, _launch_ids: &[u64]) -> LaunchDisruption {
        LaunchDisruption::Proceed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_disruption_always_proceeds() {
        assert_eq!(NoDisruption.disrupt(&[]), LaunchDisruption::Proceed);
        assert_eq!(NoDisruption.disrupt(&[1, 2, 3]), LaunchDisruption::Proceed);
    }

    #[test]
    fn hook_is_object_safe() {
        let hook: Box<dyn LaunchHook> = Box::new(NoDisruption);
        assert_eq!(hook.disrupt(&[7]), LaunchDisruption::Proceed);
    }
}
