//! Host↔device transfer model, for the Figure 1 timeline.
//!
//! The paper's motivation: with the linear solve on the CPU, the collision
//! kernel must ship matrices and right-hand sides device→host and
//! solutions host→device every Picard iteration (~9% of the loop). A
//! simple latency + bandwidth model reproduces that overhead.

use crate::device::DeviceSpec;

/// Fixed per-transfer latency (driver + DMA setup), seconds.
pub const TRANSFER_LATENCY_S: f64 = 10.0e-6;

/// Direction of a host↔device copy (symmetric in this model, named for
/// timeline readability).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Host to device (the timeline's green boxes).
    HostToDevice,
    /// Device to host (the timeline's red boxes).
    DeviceToHost,
}

/// Time to move `bytes` across the host link, seconds.
pub fn transfer_time(device: &DeviceSpec, bytes: u64, _dir: Direction) -> f64 {
    if bytes == 0 {
        return 0.0;
    }
    if device.host_link_gbps.is_infinite() {
        // CPU "device": data is already in host memory.
        return 0.0;
    }
    TRANSFER_LATENCY_S + bytes as f64 / (device.host_link_gbps * 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_transfers_are_free() {
        let s = DeviceSpec::skylake_node();
        assert_eq!(transfer_time(&s, 1 << 30, Direction::DeviceToHost), 0.0);
    }

    #[test]
    fn bandwidth_term_scales() {
        let v = DeviceSpec::v100();
        let t1 = transfer_time(&v, 100 << 20, Direction::HostToDevice);
        let t2 = transfer_time(&v, 200 << 20, Direction::HostToDevice);
        assert!(t2 > 1.9 * t1 - TRANSFER_LATENCY_S);
        assert!(t1 > 0.0);
    }

    #[test]
    fn latency_floor_for_small_copies() {
        let v = DeviceSpec::v100();
        let t = transfer_time(&v, 8, Direction::DeviceToHost);
        assert!(t >= TRANSFER_LATENCY_S);
    }

    #[test]
    fn zero_bytes_is_free() {
        let v = DeviceSpec::v100();
        assert_eq!(transfer_time(&v, 0, Direction::HostToDevice), 0.0);
    }
}
