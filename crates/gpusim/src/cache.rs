//! L1/L2 residency model.
//!
//! Converts the traffic a block *requests* into the traffic that actually
//! reaches DRAM, given the cache capacities of the device and how many
//! blocks contend for the L2. This produces the hit rates reported in the
//! paper's Table II and the memory term of the block timing model.

use crate::device::DeviceSpec;

/// Best-case fraction of a nominally-fitting working set that actually
/// stays L1-resident (conflict misses, streaming interference).
pub const MAX_L1_RESIDENCY: f64 = 0.85;

/// Per-block memory-traffic description, filled in by the solver (which
/// knows its working sets and per-iteration access pattern exactly).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TrafficProfile {
    /// Unique read-only bytes: matrix values, shared indices, right-hand
    /// side. Re-read every iteration.
    pub ro_working_set: u64,
    /// The subset of `ro_working_set` that is **identical across blocks**
    /// (the shared sparsity-pattern arrays). After any one block touches
    /// it, it is L2-resident for every other block — so even its
    /// "compulsory" per-block misses are L2 hits.
    pub shared_ro_working_set: u64,
    /// Total read requests against the read-only data over the block's
    /// lifetime (≈ working set × iterations × redundancy).
    pub ro_requested: u64,
    /// Unique bytes of solver vectors that spilled to global memory.
    pub rw_working_set: u64,
    /// Total requests (reads + writes) against spilled vectors.
    pub rw_requested: u64,
    /// Cold streaming writes (e.g. the final solution store).
    pub write_once: u64,
    /// Traffic served by local shared memory (bypasses the cache system).
    pub shared_bytes: u64,
}

impl TrafficProfile {
    /// Total unique global working set of the block.
    pub fn working_set(&self) -> u64 {
        self.ro_working_set + self.rw_working_set
    }

    /// Total cacheable requests.
    pub fn requested(&self) -> u64 {
        self.ro_requested + self.rw_requested
    }
}

/// What the cache hierarchy did with a block's requests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheOutcome {
    /// Fraction of cacheable requests served by L1.
    pub l1_hit_rate: f64,
    /// Fraction of L1 misses served by L2.
    pub l2_hit_rate: f64,
    /// Bytes this block pulls from / pushes to DRAM.
    pub dram_bytes: u64,
    /// Bytes served by the L2 (L1 misses that hit).
    pub l2_bytes: u64,
}

/// Evaluate the residency model for one block.
///
/// * `shared_used_bytes` — the block's dynamic shared-memory carve-out
///   (shrinks NVIDIA's unified L1 pool);
/// * `concurrent_blocks` — blocks simultaneously resident on the device
///   (they share the L2).
pub fn cache_outcome(
    device: &DeviceSpec,
    traffic: &TrafficProfile,
    shared_used_bytes: usize,
    concurrent_blocks: u32,
) -> CacheOutcome {
    let requested = traffic.requested();
    if requested == 0 {
        return CacheOutcome {
            l1_hit_rate: 0.0,
            l2_hit_rate: 0.0,
            dram_bytes: traffic.write_once,
            l2_bytes: 0,
        };
    }
    let ws = traffic.working_set().max(1);
    let avail_l1 = device.l1_available_bytes(shared_used_bytes);
    // Fraction of the working set that stays L1-resident between passes.
    // Capped below 1: real L1s suffer conflict/streaming evictions even
    // when the working set nominally fits.
    let l1_cover = (avail_l1 / ws as f64).min(MAX_L1_RESIDENCY);
    // Cold misses: the working set must be fetched at least once. Re-reads
    // hit L1 for the resident fraction.
    let reread = requested.saturating_sub(ws) as f64;
    let l1_miss = ws as f64 + reread * (1.0 - l1_cover);
    let l1_hits = requested as f64 - l1_miss;
    let l1_hit_rate = (l1_hits / requested as f64).clamp(0.0, 1.0);

    // L2 is shared by all concurrently resident blocks.
    let combined_ws = ws.saturating_mul(concurrent_blocks.max(1) as u64);
    let l2_bytes_cap = device.l2_mb * 1024.0 * 1024.0;
    let l2_cover = (l2_bytes_cap / combined_ws as f64).min(1.0);
    // The compulsory (first-touch) part of the misses cannot hit L2 —
    // per-system values are unique — except for the cross-block shared
    // index structure, which some earlier block already pulled in.
    let compulsory = ws as f64;
    let capacity_misses = (l1_miss - compulsory).max(0.0);
    let shared_credit = (traffic.shared_ro_working_set.min(ws) as f64).min(l2_bytes_cap);
    let l2_hits = capacity_misses * l2_cover + shared_credit;
    let l2_hit_rate = if l1_miss > 0.0 {
        (l2_hits / l1_miss).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let dram = (l1_miss - l2_hits).max(0.0) as u64 + traffic.write_once;
    CacheOutcome {
        l1_hit_rate,
        l2_hit_rate,
        dram_bytes: dram,
        l2_bytes: l2_hits as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_profile(ws: u64, passes: u64) -> TrafficProfile {
        TrafficProfile {
            ro_working_set: ws,
            ro_requested: ws * passes,
            ..Default::default()
        }
    }

    #[test]
    fn fits_in_l1_high_hit_rate() {
        let v = DeviceSpec::v100();
        // 32 KiB working set read 30 times, nothing in shared memory.
        let t = small_profile(32 * 1024, 30);
        let o = cache_outcome(&v, &t, 0, 80);
        // 29 of 30 passes hit, capped by the 85% residency ceiling:
        // ~82% overall.
        assert!(o.l1_hit_rate > 0.78, "hit rate {}", o.l1_hit_rate);
        // DRAM traffic is close to one cold pass (plus conflict misses
        // the 8 MiB-per-80-blocks L2 cannot fully absorb).
        assert!(o.dram_bytes >= 32 * 1024);
        assert!(o.dram_bytes < 3 * 32 * 1024, "dram {}", o.dram_bytes);
    }

    #[test]
    fn shared_carveout_reduces_l1_hits() {
        let v = DeviceSpec::v100();
        let t = small_profile(100 * 1024, 30);
        let with_carveout = cache_outcome(&v, &t, 60 * 1024, 80).l1_hit_rate;
        let without = cache_outcome(&v, &t, 0, 80).l1_hit_rate;
        assert!(with_carveout < without);
    }

    #[test]
    fn l2_absorbs_overflow_when_few_blocks() {
        let a = DeviceSpec::a100(); // 40 MiB L2
        let t = small_profile(300 * 1024, 30); // overflows 192 KiB L1
        let few = cache_outcome(&a, &t, 0, 10);
        let many = cache_outcome(&a, &t, 0, 1000);
        assert!(few.l2_hit_rate > many.l2_hit_rate);
        assert!(few.dram_bytes < many.dram_bytes);
    }

    #[test]
    fn single_pass_is_all_cold() {
        let v = DeviceSpec::v100();
        let t = small_profile(64 * 1024, 1);
        let o = cache_outcome(&v, &t, 0, 80);
        assert_eq!(o.l1_hit_rate, 0.0);
        assert_eq!(o.dram_bytes, 64 * 1024);
    }

    #[test]
    fn empty_traffic() {
        let v = DeviceSpec::v100();
        let o = cache_outcome(&v, &TrafficProfile::default(), 0, 80);
        assert_eq!(o.dram_bytes, 0);
    }

    #[test]
    fn write_once_goes_to_dram() {
        let v = DeviceSpec::v100();
        let mut t = small_profile(16 * 1024, 10);
        t.write_once = 8 * 1024;
        let o = cache_outcome(&v, &t, 0, 80);
        assert!(o.dram_bytes >= 16 * 1024 + 8 * 1024);
    }

    #[test]
    fn amd_small_l1_hurts() {
        // MI100's 16 KiB L1 vs V100's unified pool: same workload, worse
        // hit rate on AMD.
        let t = small_profile(100 * 1024, 30);
        let mi = cache_outcome(&DeviceSpec::mi100(), &t, 0, 120);
        let v = cache_outcome(&DeviceSpec::v100(), &t, 0, 80);
        assert!(mi.l1_hit_rate < v.l1_hit_rate);
    }
}
