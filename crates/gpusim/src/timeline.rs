//! Bridges from simulator records to trace events.
//!
//! The simulator prices kernels and transfers; the trace layer records
//! them. These builders fold a [`KernelReport`] (plus the occupancy facts
//! that shaped it) into one [`EventKind::KernelLaunch`] record, and a
//! priced copy into one [`EventKind::Transfer`], so the dispatch layer
//! emits timeline events without re-deriving simulator internals.

use batsolv_trace::EventKind;

use crate::device::DeviceSpec;
use crate::model::KernelReport;
use crate::occupancy::{resident_blocks_per_cu, total_slots};
use crate::transfer::{transfer_time, Direction};

/// Build the kernel-launch timeline record for one priced launch.
///
/// `spilled_vector_bytes` is the workspace planner's shared-memory spill
/// decision: bytes of per-system solver vectors that did not fit the
/// shared carve-out and live in global memory instead (0 = fully fused).
/// `syncs_per_iteration` is the solver's synchronization-point density
/// (classical BiCGSTAB 6, pipelined 2; classical CG 3, pipelined 1;
/// 0 for direct solvers).
#[allow(clippy::too_many_arguments)]
pub fn kernel_launch_event(
    seq: u64,
    solver: &'static str,
    device: &DeviceSpec,
    blocks: usize,
    shared_per_block_bytes: usize,
    spilled_vector_bytes: usize,
    syncs_per_iteration: f64,
    report: &KernelReport,
) -> EventKind {
    EventKind::KernelLaunch {
        shard: 0,
        seq,
        solver,
        device: device.name,
        blocks,
        resident_per_cu: resident_blocks_per_cu(device, shared_per_block_bytes),
        total_slots: total_slots(device, shared_per_block_bytes),
        shared_per_block_bytes,
        spilled_vector_bytes,
        launch_us: report.launch_s * 1e6,
        exec_us: report.makespan_s * 1e6,
        dram_bytes: report.dram_bytes,
        flops: report.flops,
        syncs: report.syncs,
        reductions: report.reductions,
        sync_us: report.sync_s * 1e6,
        syncs_per_iteration,
    }
}

/// Build the synchronization-point record for one priced launch: how many
/// global barriers the launch contained and the simulated time they cost
/// (already folded into the launch's `exec_us`).
pub fn sync_point_event(seq: u64, solver: &'static str, report: &KernelReport) -> EventKind {
    EventKind::SyncPoint {
        shard: 0,
        seq,
        solver,
        syncs: report.syncs,
        sim_us: report.sync_s * 1e6,
    }
}

/// Build the reduction record for one priced launch: how many tree
/// reductions the launch performed and the tree shape they paid for
/// (`width` participants → `depth` combine levels).
pub fn reduction_event(
    seq: u64,
    solver: &'static str,
    width: u64,
    report: &KernelReport,
) -> EventKind {
    EventKind::Reduction {
        shard: 0,
        seq,
        solver,
        reductions: report.reductions,
        width,
        depth: crate::sync::reduction_depth(width),
    }
}

/// Build (and price) the transfer record for one host↔device copy.
pub fn transfer_event(device: &DeviceSpec, bytes: u64, dir: Direction) -> EventKind {
    EventKind::Transfer {
        shard: 0,
        direction: match dir {
            Direction::HostToDevice => "h2d",
            Direction::DeviceToHost => "d2h",
        },
        bytes,
        sim_us: transfer_time(device, bytes, dir) * 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BlockStats, SimKernel};

    #[test]
    fn launch_event_carries_occupancy_and_time_split() {
        let v = DeviceSpec::v100();
        let shared = 50 * 1024; // forces 1 resident block per CU
        let stats = vec![BlockStats::default(); 8];
        let report = SimKernel::new(&v, shared).price(&stats);
        let ev = kernel_launch_event(3, "bicgstab", &v, 8, shared, 128, 6.0, &report);
        match ev {
            EventKind::KernelLaunch {
                seq,
                solver,
                device,
                blocks,
                resident_per_cu,
                total_slots,
                shared_per_block_bytes,
                spilled_vector_bytes,
                launch_us,
                exec_us,
                syncs_per_iteration,
                ..
            } => {
                assert_eq!(seq, 3);
                assert_eq!(solver, "bicgstab");
                assert_eq!(device, "NVIDIA V100-16GB");
                assert_eq!(blocks, 8);
                assert_eq!(resident_per_cu, 1);
                assert_eq!(total_slots, v.num_cus);
                assert_eq!(shared_per_block_bytes, shared);
                assert_eq!(spilled_vector_bytes, 128);
                assert!((launch_us - report.launch_s * 1e6).abs() < 1e-9);
                assert!((exec_us - report.makespan_s * 1e6).abs() < 1e-9);
                assert_eq!(syncs_per_iteration, 6.0);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn sync_and_reduction_events_mirror_the_report() {
        let v = DeviceSpec::v100();
        let stats = vec![BlockStats {
            syncs: 18,
            reductions: 9,
            hidden_reductions: 9,
            ..BlockStats::default()
        }];
        let report = SimKernel::new(&v, 0)
            .with_reduction_width(992)
            .price(&stats);
        match sync_point_event(1, "bicgstab", &report) {
            EventKind::SyncPoint { syncs, sim_us, .. } => {
                assert_eq!(syncs, 18);
                assert!(sim_us > 0.0);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        match reduction_event(1, "bicgstab", 992 * 64, &report) {
            EventKind::Reduction {
                reductions,
                width,
                depth,
                ..
            } => {
                assert_eq!(reductions, 18, "exposed + hidden");
                assert_eq!(width, 992 * 64);
                assert_eq!(depth, 16);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn transfer_event_prices_the_copy() {
        let v = DeviceSpec::v100();
        let ev = transfer_event(&v, 1 << 20, Direction::HostToDevice);
        match ev {
            EventKind::Transfer {
                direction,
                bytes,
                sim_us,
                ..
            } => {
                assert_eq!(direction, "h2d");
                assert_eq!(bytes, 1 << 20);
                let expect = transfer_time(&v, 1 << 20, Direction::HostToDevice) * 1e6;
                assert!((sim_us - expect).abs() < 1e-9);
                assert!(sim_us >= 10.0, "latency floor is 10 µs");
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn cpu_transfers_trace_as_free() {
        let s = DeviceSpec::skylake_node();
        match transfer_event(&s, 1 << 30, Direction::DeviceToHost) {
            EventKind::Transfer { sim_us, .. } => assert_eq!(sim_us, 0.0),
            other => panic!("wrong kind: {other:?}"),
        }
    }
}
