//! Real parallel execution of the batch.
//!
//! The numeric result of every batched operation is computed for real —
//! one closure invocation per "thread block" (batch system), executed on
//! the host's cores via rayon. Only *time* comes from the model; values
//! are bit-exact regardless of which simulated device is selected.

use rayon::prelude::*;

/// Run `f(block_index)` for every block of the grid in parallel and
/// collect the results in block order.
///
/// This is the software analogue of launching a CUDA/HIP grid with
/// `num_blocks` thread blocks (the paper's "one system per thread block"
/// mapping): each invocation must be independent of the others.
pub fn run_batch<R, F>(num_blocks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync + Send,
{
    (0..num_blocks).into_par_iter().map(f).collect()
}

/// Run `f(block_index, chunk)` over disjoint mutable chunks (e.g. the
/// per-system slices of a solution multivector) in parallel.
pub fn run_batch_mut<T, F>(chunks: Vec<&mut [T]>, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync + Send,
{
    chunks
        .into_par_iter()
        .enumerate()
        .for_each(|(i, chunk)| f(i, chunk));
}

/// Like [`run_batch_mut`] but collects a per-block result — the shape the
/// batched solvers use: block `i` updates its solution slice in place and
/// returns its convergence record.
pub fn run_batch_map_mut<T, R, F>(chunks: Vec<&mut [T]>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync + Send,
{
    chunks
        .into_par_iter()
        .enumerate()
        .map(|(i, chunk)| f(i, chunk))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_block_order() {
        let out = run_batch(100, |i| i * i);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn every_block_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let _ = run_batch(1000, |_| counter.fetch_add(1, Ordering::Relaxed));
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn mutable_chunks_are_disjoint() {
        let mut data = vec![0u64; 40];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(10).collect();
        run_batch_mut(chunks, |i, c| {
            for v in c.iter_mut() {
                *v = i as u64 + 1;
            }
        });
        assert!(data[..10].iter().all(|&v| v == 1));
        assert!(data[30..].iter().all(|&v| v == 4));
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<usize> = run_batch(0, |i| i);
        assert!(out.is_empty());
    }
}
