#![allow(clippy::needless_range_loop)] // indexed loops are the clearest idiom for stencil/linear-algebra kernels
//! GPU execution-model simulator.
//!
//! The paper evaluates batched solvers on NVIDIA V100/A100 and AMD MI100
//! GPUs against a dual-socket Skylake node. This environment has no GPU,
//! so — per the substitution policy in `DESIGN.md` — this crate provides a
//! software model of the execution hierarchy those results depend on:
//!
//! * [`device`] — the processors of the paper's Table I as parameterized
//!   [`DeviceSpec`]s (peak FP64, memory bandwidth, L1/shared capacity, L2,
//!   compute-unit count, warp width, launch overhead);
//! * [`occupancy`] — how many thread blocks are resident per compute unit
//!   given their dynamic shared-memory footprint (Section IV.D);
//! * [`schedule`] — block-to-CU scheduling and makespan: greedy list
//!   scheduling for the NVIDIA parts (smooth curves in Figure 6) and
//!   wave-synchronous dispatch for the MI100 (the step pattern at
//!   multiples of its 120 CUs);
//! * [`cache`] — an L1/L2 residency model that converts requested traffic
//!   into DRAM traffic and produces the hit rates of Table II;
//! * [`model`] — the per-block timing model (issued warp instructions +
//!   memory time + serialized-stage latency) and whole-kernel pricing;
//! * [`sync`] — global-synchronization and tree-reduction pricing (the
//!   per-iteration barrier costs the pipelined solver variants attack);
//! * [`exec`] — actually runs the per-block numeric closures in parallel
//!   on CPU threads (rayon), so results are bit-exact while time is
//!   simulated;
//! * [`transfer`] — host↔device copy model for the Figure 1 timeline;
//! * [`timeline`] — builders folding priced launches and transfers into
//!   `batsolv-trace` timeline events;
//! * [`hook`] — pre-launch disruption seam ([`LaunchHook`]) used by the
//!   dispatch layer for chaos testing: simulated launch failures, stalls,
//!   and worker panics.
//!
//! Numerics are always executed for real; only *time* is modeled.

pub mod cache;
pub mod device;
pub mod exec;
pub mod hook;
pub mod model;
pub mod multi;
pub mod occupancy;
pub mod schedule;
pub mod sync;
pub mod timeline;
pub mod transfer;

pub use cache::{CacheOutcome, TrafficProfile};
pub use device::{DeviceClass, DeviceSpec, Scheduling};
pub use exec::{run_batch, run_batch_map_mut, run_batch_mut};
pub use hook::{LaunchDisruption, LaunchHook, NoDisruption};
pub use model::{BlockStats, KernelReport, SimKernel};
pub use multi::{MultiGpu, MultiGpuReport};
pub use occupancy::{max_threads_per_block, resident_blocks_per_cu, warps_per_block};
pub use schedule::makespan;
pub use sync::{reduction_depth, reduction_time_s, sync_time_s};
pub use timeline::{kernel_launch_event, reduction_event, sync_point_event, transfer_event};
pub use transfer::{transfer_time, Direction};
