//! Transient (first-attempt-only) launch faults.
//!
//! The retry chaos tests need a fault that disrupts a chunk's *first*
//! flight but lets a re-routed attempt succeed — the transient device
//! hiccup a retry policy exists for. [`TransientFaults`] wraps a
//! [`FaultPlan`]: each request id's launch-level fault fires only the
//! first time the id is seen by the hook; every later launch carrying
//! that id (a retry, a hedge duplicate, a steal re-execution) proceeds
//! clean. Data faults are unaffected — they live in the request payload
//! and are terminal by [`FaultKind::class`](crate::FaultKind::class).

use std::collections::HashSet;
use std::sync::Mutex;

use batsolv_gpusim::{LaunchDisruption, LaunchHook};

use crate::plan::FaultPlan;

/// A [`LaunchHook`] that injects each id's launch fault exactly once.
pub struct TransientFaults {
    inner: FaultPlan,
    seen: Mutex<HashSet<u64>>,
}

impl TransientFaults {
    /// Wrap a plan so its launch faults are transient.
    pub fn new(plan: FaultPlan) -> TransientFaults {
        TransientFaults {
            inner: plan,
            seen: Mutex::new(HashSet::new()),
        }
    }

    /// The wrapped plan (for predicting which first attempts fault).
    pub fn plan(&self) -> &FaultPlan {
        &self.inner
    }
}

impl LaunchHook for TransientFaults {
    fn disrupt(&self, launch_ids: &[u64]) -> LaunchDisruption {
        let fresh: Vec<u64> = {
            let mut seen = self.seen.lock().unwrap();
            launch_ids
                .iter()
                .copied()
                .filter(|&id| seen.insert(id))
                .collect()
        };
        if fresh.is_empty() {
            return LaunchDisruption::Proceed;
        }
        self.inner.disrupt(&fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultRates;
    use std::time::Duration;

    #[test]
    fn fault_fires_once_per_id_then_clears() {
        let plan = FaultPlan::new(
            3,
            FaultRates {
                device_fail: 1.0,
                ..Default::default()
            },
        );
        let hook = TransientFaults::new(plan);
        assert!(matches!(
            hook.disrupt(&[10, 11]),
            LaunchDisruption::DeviceFail { .. }
        ));
        // The retry of the same ids proceeds clean.
        assert_eq!(hook.disrupt(&[10, 11]), LaunchDisruption::Proceed);
        // A launch mixing seen and fresh ids faults only on the fresh.
        assert!(matches!(
            hook.disrupt(&[11, 12]),
            LaunchDisruption::DeviceFail { .. }
        ));
        assert_eq!(hook.disrupt(&[12]), LaunchDisruption::Proceed);
    }

    #[test]
    fn stall_is_transient_too() {
        let plan = FaultPlan::new(
            7,
            FaultRates {
                stall: 1.0,
                ..Default::default()
            },
        )
        .with_stall_duration(Duration::from_millis(1));
        let hook = TransientFaults::new(plan);
        assert_eq!(
            hook.disrupt(&[1]),
            LaunchDisruption::Stall(Duration::from_millis(1))
        );
        assert_eq!(hook.disrupt(&[1]), LaunchDisruption::Proceed);
    }
}
