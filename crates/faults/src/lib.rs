//! `batsolv-faults` — deterministic, seeded fault injection.
//!
//! The paper's premise is that per-system convergence monitoring lets a
//! fused batched solve survive heterogeneous systems inside one launch.
//! This crate manufactures the *hostile* end of that heterogeneity so the
//! dispatch layer can be tested against it: NaN/Inf poisoning of matrix
//! values or right-hand sides, zero and near-zero Jacobi diagonals,
//! structurally singular systems, artificial solver stalls, simulated
//! device/launch failures, worker panics, and queue-delay spikes.
//!
//! Everything is driven by a [`FaultPlan`]: a seed plus per-kind rates.
//! Whether request `id` suffers fault kind `k` is a pure function of
//! `(seed, k, id)` — replaying the same plan over the same ids reproduces
//! the exact same fault pattern, which is what lets the chaos suite
//! assert stats counters against *predicted* fault counts. A plan with
//! all rates zero never touches the data and costs one branch per hook.
//!
//! Injection points:
//!
//! * **data faults** ([`FaultPlan::corrupt_system`]) mutate a system's
//!   CSR values / RHS before submission — the shape of corruption an
//!   upstream producer (or a broken transport) would introduce;
//! * **launch faults** ([`FaultPlan`] implements
//!   [`batsolv_gpusim::LaunchHook`]) disrupt a fused dispatch: fail the
//!   launch, stall it, or panic the worker mid-solve;
//! * **queue-delay spikes** ([`FaultPlan::queue_delay`]) are consumed by
//!   traffic drivers to perturb arrival timing.

pub mod plan;
pub mod transient;

pub use plan::{FailureClass, FaultKind, FaultPlan, FaultRates, InjectedFault};
pub use transient::TransientFaults;
